package rankedtriang

// This file holds one benchmark per table and figure of the paper's
// evaluation (Section 7) — see the per-experiment index in DESIGN.md —
// plus micro-benchmarks of the building blocks and the ablations DESIGN.md
// calls out. The experiment benchmarks run the same harness as
// cmd/experiments with seconds-scale budgets and surface the headline
// numbers as benchmark metrics; run cmd/experiments to get the full
// rendered tables.

import (
	"io"
	"math/rand"
	"testing"
	"time"

	"repro/internal/ckk"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/minsep"
	"repro/internal/pmc"
	"repro/internal/triang"
)

// Budgets for the experiment benchmarks. The paper used 60 s for
// separators, 30 min for PMCs and 30 min per enumeration; the shapes are
// budget-relative so these scaled budgets reproduce them in CI time.
const (
	benchMSBudget   = 200 * time.Millisecond
	benchPMCBudget  = 400 * time.Millisecond
	benchEnumBudget = 150 * time.Millisecond
)

// BenchmarkFigure5Tractability classifies every dataset graph by whether
// MinSep and PMC generation finish in budget (Figure 5).
func BenchmarkFigure5Tractability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds := exp.Datasets(42)
		rows, _ := exp.Figure5(ds, benchMSBudget, benchPMCBudget)
		var term, ms, not int
		for _, r := range rows {
			term += r.Terminated
			ms += r.MSTerminated
			not += r.NotTerminated
		}
		b.ReportMetric(float64(term), "terminated")
		b.ReportMetric(float64(ms), "ms-terminated")
		b.ReportMetric(float64(not), "not-terminated")
	}
}

// BenchmarkFigure6SeparatorDistribution reports the #min-seps vs #edges
// distribution over MS-tractable graphs (Figure 6).
func BenchmarkFigure6SeparatorDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds := exp.Datasets(42)
		_, results := exp.Figure5(ds, benchMSBudget, benchPMCBudget)
		pts := exp.Figure6(results)
		var ratio float64
		for _, p := range pts {
			if p.Edges > 0 {
				ratio += float64(p.MinSeps) / float64(p.Edges)
			}
		}
		if len(pts) > 0 {
			b.ReportMetric(ratio/float64(len(pts)), "avg-minseps/edges")
			b.ReportMetric(float64(len(pts)), "tractable-graphs")
		}
	}
}

// BenchmarkFigure7RandomSeparators measures the separator count of
// G(n, p) across the density sweep (Figure 7): small for sparse and dense
// p, blowing up in between.
func BenchmarkFigure7RandomSeparators(b *testing.B) {
	ns := []int{20, 30, 50}
	ps := []float64{0.05, 0.15, 0.25, 0.4, 0.55, 0.75, 0.95}
	for i := 0; i < b.N; i++ {
		pts := exp.Figure7(42, ns, ps, 2, 100*time.Millisecond)
		timeouts := 0
		peak := 0
		for _, p := range pts {
			if p.TimedOut {
				timeouts++
			} else if p.MinSeps > peak {
				peak = p.MinSeps
			}
		}
		b.ReportMetric(float64(timeouts), "timeouts")
		b.ReportMetric(float64(peak), "peak-minseps")
	}
}

// BenchmarkTable2Enumeration runs the head-to-head RankedTriang vs CKK
// comparison over the tractable dataset graphs (Table 2).
func BenchmarkTable2Enumeration(b *testing.B) {
	ds := exp.Datasets(42)
	_, tract := exp.Figure5(ds, benchMSBudget, benchPMCBudget)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := exp.Table2(ds, tract, benchEnumBudget)
		var rankedOpt, ckkOpt, rankedResults, ckkResults int
		for _, r := range rows {
			rankedOpt += r.RankedWidth.NumMinWidth
			ckkOpt += r.CKK.NumMinWidth
			rankedResults += r.RankedWidth.Results
			ckkResults += r.CKK.Results
		}
		b.ReportMetric(float64(rankedOpt), "ranked-minw-results")
		b.ReportMetric(float64(ckkOpt), "ckk-minw-results")
		b.ReportMetric(float64(rankedResults), "ranked-results")
		b.ReportMetric(float64(ckkResults), "ckk-results")
	}
}

// BenchmarkFigure8Delay compares average delays of RankedTriang (with and
// without initialization) and CKK on G(n, p) (Figure 8(a)(b)).
func BenchmarkFigure8Delay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := exp.Figure8(42, []int{20}, []float64{0.15, 0.35, 0.55, 0.75}, 2, benchEnumBudget)
		var ranked, noinit, baseline time.Duration
		for _, p := range pts {
			ranked += p.RankedDelay
			noinit += p.RankedDelayNoInit
			baseline += p.CKKDelay
		}
		n := float64(len(pts))
		b.ReportMetric(float64(ranked.Microseconds())/n, "ranked-delay-µs")
		b.ReportMetric(float64(noinit.Microseconds())/n, "ranked-noinit-µs")
		b.ReportMetric(float64(baseline.Microseconds())/n, "ckk-delay-µs")
	}
}

// BenchmarkFigure8Quality compares the fraction of optimal-cost results
// CKK returns relative to RankedTriang (Figure 8(c)(d)).
func BenchmarkFigure8Quality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := exp.Figure8(43, []int{20}, []float64{0.2, 0.5, 0.8}, 2, benchEnumBudget)
		var pctW, pctF float64
		var nW, nF int
		for _, p := range pts {
			if p.PctMinWidth == p.PctMinWidth { // not NaN
				pctW += p.PctMinWidth
				nW++
			}
			if p.PctMinFill == p.PctMinFill {
				pctF += p.PctMinFill
				nF++
			}
		}
		if nW > 0 {
			b.ReportMetric(100*pctW/float64(nW), "ckk-pct-minw")
		}
		if nF > 0 {
			b.ReportMetric(100*pctF/float64(nF), "ckk-pct-minf")
		}
	}
}

// BenchmarkFigure9CaseStudy reproduces the two case-study time series: a
// CSP-style graph and an object-detection-style graph, results and widths
// over time for both algorithms (Figure 9 / Appendix B).
func BenchmarkFigure9CaseStudy(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	csp := gen.CSPGrid(rng, 4, 4, 5)
	obj := gen.ConnectedGNP(rng, 13, 0.4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for name, g := range map[string]*graph.Graph{"csp": csp, "objdet": obj} {
			ranked := exp.RunRanked(g, cost.Width{}, benchEnumBudget)
			baseline := exp.RunCKK(g, benchEnumBudget)
			rb := exp.Figure9(ranked, benchEnumBudget/10, 10)
			cb := exp.Figure9(baseline, benchEnumBudget/10, 10)
			exp.RenderFigure9(io.Discard, name, rb, cb)
			b.ReportMetric(float64(len(ranked.Records)), name+"-ranked-results")
			b.ReportMetric(float64(len(baseline.Records)), name+"-ckk-results")
		}
	}
}

// --- Micro-benchmarks of the substrates -------------------------------

func benchGraph(n int, p float64, seed int64) *graph.Graph {
	return gen.ConnectedGNP(rand.New(rand.NewSource(seed)), n, p)
}

func BenchmarkMinSepEnumeration(b *testing.B) {
	g := benchGraph(24, 0.2, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(minsep.All(g)) == 0 {
			b.Fatal("no separators")
		}
	}
}

func BenchmarkPMCEnumeration(b *testing.B) {
	g := benchGraph(16, 0.25, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(pmc.All(g)) == 0 {
			b.Fatal("no PMCs")
		}
	}
}

func BenchmarkSolverInit(b *testing.B) {
	g := benchGraph(16, 0.25, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.NewSolver(g, cost.Width{})
	}
}

func BenchmarkMinTriangWidth(b *testing.B) {
	g := benchGraph(16, 0.25, 7)
	s := core.NewSolver(g, cost.Width{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.MinTriang(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRankedDelay(b *testing.B) {
	// Cost of one Next() call after warm-up — the paper's "delay".
	g := benchGraph(14, 0.3, 7)
	s := core.NewSolver(g, cost.Width{})
	e := s.Enumerate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := e.Next(); !ok {
			b.StopTimer()
			e = s.Enumerate()
			b.StartTimer()
		}
	}
}

func BenchmarkCKKDelay(b *testing.B) {
	g := benchGraph(14, 0.3, 7)
	e := ckk.New(g, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := e.Next(); !ok {
			b.StopTimer()
			e = ckk.New(g, nil)
			b.StartTimer()
		}
	}
}

func BenchmarkLBTriang(b *testing.B) {
	g := benchGraph(40, 0.15, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		triang.LBTriang(g, nil)
	}
}

func BenchmarkMCSM(b *testing.B) {
	g := benchGraph(40, 0.15, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		triang.MCSM(g)
	}
}

// --- Ablations ----------------------------------------------------------

// slowCost hides the Combinable fast path of the width cost, so the DP
// falls back to whole-decomposition evaluation: the ablation for the
// summary fast path called out in DESIGN.md.
type slowCost struct{ inner cost.Cost }

func (s slowCost) Name() string { return s.inner.Name() + "-slow" }
func (s slowCost) Eval(g *graph.Graph, bags []VertexSet) float64 {
	return s.inner.Eval(g, bags)
}

func BenchmarkAblationCombinableFastPath(b *testing.B) {
	g := benchGraph(14, 0.3, 7)
	b.Run("fast", func(b *testing.B) {
		s := core.NewSolver(g, cost.FillIn{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.MinTriang(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("generic", func(b *testing.B) {
		s := core.NewSolver(g, slowCost{cost.FillIn{}})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.MinTriang(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationCKKBlackBox compares LB-Triang against MCS-M as CKK's
// black-box triangulator (the paper chose LB-Triang for result quality).
func BenchmarkAblationCKKBlackBox(b *testing.B) {
	g := benchGraph(13, 0.3, 7)
	b.Run("lbtriang", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := ckk.New(g, nil)
			for {
				if _, ok := e.Next(); !ok {
					break
				}
			}
		}
	})
	b.Run("mcsm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := ckk.New(g, func(x *graph.Graph) *graph.Graph { return triang.MCSM(x) })
			for {
				if _, ok := e.Next(); !ok {
					break
				}
			}
		}
	})
}
