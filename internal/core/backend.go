package core

import (
	"context"
	"math"

	"repro/internal/chordal"
	"repro/internal/ckk"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/td"
	"repro/internal/vset"
)

// BackendKind names an enumeration strategy. The serving tier treats it as
// an opaque routing token: it selects which machine produces the Result
// stream, and keys caches so streams from different backends never alias.
type BackendKind string

const (
	// BackendAuto defers the choice to SelectBackend's separator probe.
	BackendAuto BackendKind = "auto"
	// BackendDP is the ranked-exact Bouchitté–Todinca DP with Lawler–Murty
	// enumeration (RankedTriang): results in non-decreasing cost order, at
	// the price of a |MinSep|-exponential PMC-table initialization.
	BackendDP BackendKind = "dp"
	// BackendMIS is the Carmeli–Kenig–Kimelfeld separator-graph
	// maximal-independent-set enumeration: no init to speak of, incremental
	// polynomial time, results in no particular order.
	BackendMIS BackendKind = "mis"
	// BackendMISScored is BackendMIS with a cheap heuristic score ordering
	// the move frontier best-first (the C++ TriangulationScoringCriterion
	// idea): results trend cheap-first with no exactness claim.
	BackendMISScored BackendKind = "mis-scored"
)

// ParseBackendKind normalizes a user-supplied backend name. The empty
// string parses to BackendAuto so config and query-knob defaults compose.
func ParseBackendKind(s string) (BackendKind, bool) {
	switch s {
	case "", "auto":
		return BackendAuto, true
	case "dp", "ranked":
		return BackendDP, true
	case "mis", "ckk":
		return BackendMIS, true
	case "mis-scored", "scored":
		return BackendMISScored, true
	}
	return "", false
}

// Backend is an enumeration engine over one (graph, cost) pair. All
// backends produce the same Result stream shape through the same
// Enumerator front, and every backend's enumeration order is
// deterministic — the contract SharedStream's evict-and-replay depends
// on — so the shared-stream cache, sessions and NDJSON fan-out work
// unchanged on any of them. Only Ranked distinguishes the semantics: a
// ranked backend emits in non-decreasing cost order, an unranked one
// merely emits each minimal triangulation exactly once.
type Backend interface {
	// BackendKind identifies the engine (never BackendAuto).
	BackendKind() BackendKind
	// Ranked reports whether the stream is sorted by non-decreasing cost.
	Ranked() bool
	// Graph returns the input graph the backend enumerates over.
	Graph() *graph.Graph
	// Cost returns the cost the backend evaluates results under.
	Cost() cost.Cost
	// EnumerateContext starts a fresh enumeration bound to ctx (see
	// Solver.EnumerateContext for the cancellation semantics).
	EnumerateContext(ctx context.Context) *Enumerator
	// EnumerateParallelContext is EnumerateContext with the independent
	// sub-solves of each Next fanned over a worker pool where the machine
	// supports it — the Lawler–Murty branch solves on the DP backend. The
	// emitted sequence is identical for every worker count; machines with
	// no parallelizable inner step (the MIS walk is inherently sequential)
	// ignore workers and behave exactly like EnumerateContext.
	EnumerateParallelContext(ctx context.Context, workers int) *Enumerator
}

// BackendKind on a Solver: the ranked-exact DP.
func (s *Solver) BackendKind() BackendKind { return BackendDP }

// Ranked on a Solver: the whole point of RankedTriang.
func (s *Solver) Ranked() bool { return true }

// misBackend adapts the internal/ckk enumeration to the Backend contract:
// each CKK result (a chordal graph plus its minimal separators) is lifted
// to a full Result by building its clique tree and evaluating the cost on
// the tree's bags. Construction is O(1) — the separator stream and MIS
// machine start lazily on the first Next — which is exactly the property
// the serving tier buys when the DP's init budget is blown.
type misBackend struct {
	g      *graph.Graph
	c      cost.Cost
	bound  int // maximum admissible treewidth; < 0 means unbounded
	scored bool
}

// MISOptions tunes a MIS backend. The zero value is ready to use.
type MISOptions struct {
	// WidthBound drops results of treewidth exceeding the bound when
	// non-nil, mirroring Options.WidthBound. Unlike the DP — whose PMC
	// filter prunes the search space — the MIS walk must still visit
	// over-wide triangulations to reach their neighbors, so the bound is a
	// post-filter here, not a speed-up.
	WidthBound *int
	// Scored orders the move frontier best-first by the true cost of each
	// discovered triangulation (see BackendMISScored).
	Scored bool
}

// NewMISBackend returns the CKK separator-graph MIS backend for (g, c).
func NewMISBackend(g *graph.Graph, c cost.Cost, opts MISOptions) Backend {
	bound := -1
	if opts.WidthBound != nil {
		bound = *opts.WidthBound
	}
	return &misBackend{g: g, c: c, bound: bound, scored: opts.Scored}
}

func (b *misBackend) BackendKind() BackendKind {
	if b.scored {
		return BackendMISScored
	}
	return BackendMIS
}

func (b *misBackend) Ranked() bool        { return false }
func (b *misBackend) Graph() *graph.Graph { return b.g }
func (b *misBackend) Cost() cost.Cost     { return b.c }

// EnumerateParallelContext on the MIS backend ignores workers: the
// separator-graph MIS walk advances one move at a time with nothing
// independent to fan out (each move's admissibility depends on the set
// reached so far), so parallel and sequential enumeration coincide.
func (b *misBackend) EnumerateParallelContext(ctx context.Context, workers int) *Enumerator {
	return b.EnumerateContext(ctx)
}

func (b *misBackend) EnumerateContext(ctx context.Context) *Enumerator {
	m := &misEnumerator{b: b, ctx: ctx}
	if b.g.NumVertices() == 0 {
		// Mirror the DP's empty-graph convention (see Solver.MinTriang):
		// one empty triangulation, no trip through the MIS machinery.
		m.empty = true
		return &Enumerator{ext: m}
	}
	if b.scored {
		// The heuristic score of a pending MIS result is the true cost of
		// that triangulation — cheap to evaluate (its maximal cliques are
		// the clique-tree bags), and it steers both emission and the move
		// frontier toward cheap neighborhoods first.
		m.inner = ckk.NewScored(b.g, nil, func(r *ckk.Result) float64 {
			bags, err := chordal.MaximalCliques(r.H)
			if err != nil {
				return math.Inf(1)
			}
			return b.c.Eval(b.g, bags)
		})
	} else {
		m.inner = ckk.New(b.g, nil)
	}
	return &Enumerator{ext: m}
}

// misEnumerator is the ext machine lifting ckk results to core Results.
type misEnumerator struct {
	b     *misBackend
	ctx   context.Context
	inner *ckk.Enumerator
	empty bool // emit the single empty-graph result, then exhaust
	done  bool
}

func (m *misEnumerator) Next() (*Result, bool) {
	if m.done || m.ctx.Err() != nil {
		return nil, false
	}
	if m.empty {
		m.done = true
		g := m.b.g
		return &Result{H: g.Clone(), Tree: td.New(), Cost: m.b.c.Eval(g, nil)}, true
	}
	for {
		r, ok := m.inner.NextContext(m.ctx)
		if !ok {
			m.done = true
			return nil, false
		}
		tree, err := chordal.CliqueTree(r.H)
		if err != nil {
			panic("core: ckk emitted a non-chordal triangulation: " + err.Error())
		}
		if m.b.bound >= 0 && tree.Width() > m.b.bound {
			continue
		}
		bags := append([]vset.Set(nil), tree.Bags...)
		return &Result{
			H:    r.H,
			Tree: tree,
			Bags: bags,
			Seps: r.Seps,
			Cost: m.b.c.Eval(m.b.g, bags),
		}, true
	}
}

// Remaining is instrumentation-only; the MIS machine has no meaningful
// queue-depth analogue of the Lawler–Murty partition count.
func (m *misEnumerator) Remaining() int { return 0 }

// DefaultProbeBudget is the separator budget SelectBackend probes under
// when the caller passes no budget. The DP's init cost is driven by
// |MinSep| (the PMC table is built over it), so "more than a couple
// thousand separators" is the practical signature of a graph whose ranked
// init will blow a serving-tier timeout.
const DefaultProbeBudget = 2048

// SelectBackend resolves BackendAuto for a graph: it draws minimal
// separators from the streaming Berry–Bordat generator — the same lazy
// source the MIS backend itself uses, so the probe's cost is a strict
// prefix of work either backend would do anyway — and picks the ranked DP
// only when the separator universe provably exhausts under probeBudget
// (<= 0 selects DefaultProbeBudget). Budget overflow, or ctx expiring
// mid-probe, both mean "too separator-rich to rank" and select MIS. An
// explicit kind short-circuits the probe entirely.
func SelectBackend(ctx context.Context, g *graph.Graph, kind BackendKind, probeBudget int) BackendKind {
	if kind != BackendAuto && kind != "" {
		return kind
	}
	if probeBudget <= 0 {
		probeBudget = DefaultProbeBudget
	}
	ss := ckk.NewSepStream(g)
	for n := 0; n < probeBudget; n++ {
		if _, ok := ss.Next(ctx); !ok {
			if ctx.Err() != nil {
				return BackendMIS
			}
			return BackendDP
		}
	}
	return BackendMIS
}
