package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/vset"
)

// genericCost hides the Combinable fast path, forcing the DP onto the
// whole-decomposition evaluation (and the incremental solver off the
// keep-baseline shortcut).
type genericCost struct{ inner cost.Cost }

func (c genericCost) Name() string { return c.inner.Name() + "-generic" }
func (c genericCost) Eval(g *graph.Graph, bags []vset.Set) float64 {
	return c.inner.Eval(g, bags)
}

// resultKey fingerprints a Result exactly: cost, bag sequence, separator
// sequence and triangulation edges. Two runs emitting equal keys in equal
// order are byte-identical enumerations.
func resultKey(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cost=%v|bags:", r.Cost)
	for _, bag := range r.Bags {
		b.WriteString(bag.String())
		b.WriteByte(';')
	}
	b.WriteString("|seps:")
	for _, s := range r.Seps {
		b.WriteString(s.String())
		b.WriteByte(';')
	}
	fmt.Fprintf(&b, "|edges:%v", r.H.Edges())
	return b.String()
}

// randomConstraints draws a constraint pair whose separators come from
// the solver's separator list plus, occasionally, an arbitrary vertex set
// (exercising the public API's non-minimal-separator fallback).
func randomConstraints(rng *rand.Rand, s *Solver, arbitrary bool) *cost.Constraints {
	seps := s.MinimalSeparators()
	cons := &cost.Constraints{}
	if len(seps) == 0 {
		return cons
	}
	k := rng.Intn(4)
	for i := 0; i < k; i++ {
		sep := seps[rng.Intn(len(seps))]
		if rng.Intn(2) == 0 {
			cons.Include = append(cons.Include, sep)
		} else {
			cons.Exclude = append(cons.Exclude, sep)
		}
	}
	if arbitrary && rng.Intn(2) == 0 {
		n := s.Graph().Universe()
		set := vset.New(n)
		for v := 0; v < n; v++ {
			if rng.Intn(3) == 0 {
				set.AddInPlace(v)
			}
		}
		if !set.IsEmpty() {
			cons.Include = append(cons.Include, set)
		}
	}
	return cons
}

// TestIncrementalMatchesFullResolveMinTriang property-tests the
// incremental constrained solve against the from-scratch oracle on
// random graphs: same feasibility, same cost, same triangulation, bag for
// bag.
func TestIncrementalMatchesFullResolveMinTriang(t *testing.T) {
	costs := []cost.Cost{cost.Width{}, cost.FillIn{}, genericCost{cost.FillIn{}}}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(5)
		p := 0.2 + 0.3*rng.Float64()
		g := gen.ConnectedGNP(rng, n, p)
		for _, c := range costs {
			inc := NewSolver(g, c)
			oracle := NewSolver(g, c)
			oracle.SetFullResolve(true)
			for trial := 0; trial < 25; trial++ {
				cons := randomConstraints(rng, inc, true)
				got, gotErr := inc.MinTriang(cons)
				want, wantErr := oracle.MinTriang(cons)
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("seed %d cost %s trial %d: incremental err=%v, oracle err=%v (cons %+v)",
						seed, c.Name(), trial, gotErr, wantErr, cons)
				}
				if gotErr != nil {
					continue
				}
				if gk, wk := resultKey(got), resultKey(want); gk != wk {
					t.Fatalf("seed %d cost %s trial %d: incremental result differs\n got %s\nwant %s",
						seed, c.Name(), trial, gk, wk)
				}
			}
		}
	}
}

// TestIncrementalMatchesFullResolveBounded repeats the property test for
// the bounded solver, whose baseline DP has infeasible blocks.
func TestIncrementalMatchesFullResolveBounded(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ConnectedGNP(rng, 10, 0.35)
		for _, b := range []int{2, 3, 5} {
			inc := NewBoundedSolver(g, cost.Width{}, b)
			oracle := NewBoundedSolver(g, cost.Width{}, b)
			oracle.SetFullResolve(true)
			for trial := 0; trial < 15; trial++ {
				cons := randomConstraints(rng, inc, false)
				got, gotErr := inc.MinTriang(cons)
				want, wantErr := oracle.MinTriang(cons)
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("seed %d bound %d trial %d: incremental err=%v, oracle err=%v",
						seed, b, trial, gotErr, wantErr)
				}
				if gotErr == nil && resultKey(got) != resultKey(want) {
					t.Fatalf("seed %d bound %d trial %d: bounded incremental result differs", seed, b, trial)
				}
			}
		}
	}
}

// collectEnumeration drains up to max results as exact keys.
func collectEnumeration(e *Enumerator, max int) []string {
	var out []string
	for len(out) < max {
		r, ok := e.Next()
		if !ok {
			break
		}
		out = append(out, resultKey(r))
	}
	return out
}

// TestEnumerationOrderMatchesOracle asserts the headline guarantee of the
// refactor: the full ranked enumeration — order included — is identical
// between the incremental solver and the from-scratch re-solve oracle,
// sequentially and with parallel branch workers.
func TestEnumerationOrderMatchesOracle(t *testing.T) {
	costs := []cost.Cost{cost.Width{}, cost.FillIn{}, cost.LexWidthFill{}, genericCost{cost.Width{}}}
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		n := 7 + rng.Intn(4)
		g := gen.ConnectedGNP(rng, n, 0.2+0.3*rng.Float64())
		for _, c := range costs {
			inc := NewSolver(g, c)
			oracle := NewSolver(g, c)
			oracle.SetFullResolve(true)
			const max = 300
			want := collectEnumeration(oracle.Enumerate(), max)
			got := collectEnumeration(inc.Enumerate(), max)
			if len(got) != len(want) {
				t.Fatalf("seed %d cost %s: incremental emitted %d results, oracle %d",
					seed, c.Name(), len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d cost %s: enumeration diverges at rank %d\n got %s\nwant %s",
						seed, c.Name(), i, got[i], want[i])
				}
			}
			par := collectEnumeration(inc.EnumerateParallel(4), max)
			if len(par) != len(want) {
				t.Fatalf("seed %d cost %s: parallel emitted %d results, oracle %d",
					seed, c.Name(), len(par), len(want))
			}
			for i := range par {
				if par[i] != want[i] {
					t.Fatalf("seed %d cost %s: parallel enumeration diverges at rank %d",
						seed, c.Name(), i)
				}
			}
		}
	}
}

// TestReuseStatsCount sanity-checks the /v1/stats counters: constrained
// solves accumulate, and dirty plus reused blocks account for every block
// of every solve.
func TestReuseStatsCount(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := gen.ConnectedGNP(rng, 12, 0.3)
	s := NewSolver(g, cost.Width{})
	if st := s.ReuseStats(); st.ConstrainedSolves != 0 {
		t.Fatalf("fresh solver reports %d constrained solves", st.ConstrainedSolves)
	}
	e := s.Enumerate()
	for i := 0; i < 10; i++ {
		if _, ok := e.Next(); !ok {
			break
		}
	}
	st := s.ReuseStats()
	if st.ConstrainedSolves == 0 {
		t.Fatal("enumeration ran no constrained solves")
	}
	perSolve := uint64(s.NumFullBlocks() + 1)
	if st.DirtyBlocks+st.ReusedBlocks != st.ConstrainedSolves*perSolve {
		t.Fatalf("dirty %d + reused %d != solves %d × blocks %d",
			st.DirtyBlocks, st.ReusedBlocks, st.ConstrainedSolves, perSolve)
	}
	if st.ReusedBlocks == 0 {
		t.Fatal("incremental solver reused no blocks")
	}
}

// TestLeanSepCovMatchesOracle exhausts the sepCov precomputation budget
// so every separator's constraint geometry takes the lean path (masks
// derived from pair lists on demand) and asserts the enumeration is
// still identical to the from-scratch oracle.
func TestLeanSepCovMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		g := gen.ConnectedGNP(rng, 9+rng.Intn(3), 0.25+0.2*rng.Float64())
		lean := NewSolver(g, cost.FillIn{})
		lean.covBudget.Store(0)
		oracle := NewSolver(g, cost.FillIn{})
		oracle.SetFullResolve(true)
		const max = 200
		want := collectEnumeration(oracle.Enumerate(), max)
		got := collectEnumeration(lean.Enumerate(), max)
		if len(got) != len(want) {
			t.Fatalf("seed %d: lean emitted %d results, oracle %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: lean enumeration diverges at rank %d", seed, i)
			}
		}
	}
}
