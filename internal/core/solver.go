// Package core implements the paper's contribution: MinTriang, the
// dynamic program of Figure 3 computing a minimum-cost minimal
// triangulation for any split-monotone bag cost (generalizing
// Bouchitté–Todinca), its bounded-width variant MinTriangB (Section 5.3),
// and RankedTriang, the Lawler–Murty ranked enumeration of Figure 4.
package core

import (
	"context"
	"errors"
	"math"
	"sort"
	"time"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/minsep"
	"repro/internal/pmc"
	"repro/internal/td"
	"repro/internal/vset"
)

// Result is one minimal triangulation produced by the solver: the chordal
// graph H, a clique tree of it, its bags (= maximal cliques of H), its
// minimal separators, and its cost.
type Result struct {
	H    *graph.Graph
	Tree *td.Decomposition
	Bags []vset.Set
	Seps []vset.Set
	Cost float64
}

// candidate is one PMC usable at a block, with the blocks of its
// components inside the realization precomputed (they are full blocks of
// the input graph, Theorem 5.4, so they index into Solver.blocks).
type candidate struct {
	omega    vset.Set
	children []int
}

// blockData is the static, constraint-independent description of a block:
// the DP re-solves costs per constraint set over this fixed structure.
type blockData struct {
	block pmc.Block
	span  vset.Set
	cands []candidate
}

// Solver carries the initialization state of the algorithms: the minimal
// separators, the potential maximal cliques, and the full-block DAG. The
// paper computes these once and shares them across all MinTriang
// invocations of the enumeration (Section 7.1); Solver does the same.
type Solver struct {
	g      *graph.Graph
	c      cost.Cost
	comb   cost.Combinable // non-nil fast path
	bound  int             // width bound, or -1
	seps   []vset.Set
	pmcs   []vset.Set
	blocks []blockData // sorted by |span|; the last entry is the top level

	// InitDuration records the time spent computing separators, PMCs and
	// the block structure — the "init" column of the paper's Table 2.
	InitDuration time.Duration
}

// ErrNoTriangulation is reported when no minimal triangulation satisfies
// the width bound and constraints.
var ErrNoTriangulation = errors.New("core: no admissible minimal triangulation")

// NewSolver initializes the unbounded solver: it computes MinSep(G),
// PMC(G) and the full-block structure (lines 1–2 of Figure 3). The cost
// must be a split-monotone bag cost; costs implementing cost.Combinable
// use the fast combining path.
func NewSolver(g *graph.Graph, c cost.Cost) *Solver {
	s, _ := NewSolverContext(context.Background(), g, c)
	return s
}

// NewSolverContext is NewSolver with cancellation: initialization aborts
// with ctx.Err() when ctx is cancelled or times out during the separator,
// PMC or block computation. The error path returns a nil solver; a
// background context never fails. Services use this so a disconnected
// client stops burning initialization CPU.
func NewSolverContext(ctx context.Context, g *graph.Graph, c cost.Cost) (*Solver, error) {
	return newSolver(ctx, g, c, -1)
}

// NewBoundedSolverContext is NewBoundedSolver with cancellation (see
// NewSolverContext).
func NewBoundedSolverContext(ctx context.Context, g *graph.Graph, c cost.Cost, b int) (*Solver, error) {
	if b < 0 {
		panic("core: negative width bound")
	}
	return newSolver(ctx, g, c, b)
}

// NewBoundedSolver initializes MinTriangB⟨b, κ⟩: only minimal separators
// of size ≤ b and potential maximal cliques of size ≤ b+1 participate, so
// every produced triangulation has width ≤ b (Theorem 5.6).
func NewBoundedSolver(g *graph.Graph, c cost.Cost, b int) *Solver {
	s, _ := NewBoundedSolverContext(context.Background(), g, c, b)
	return s
}

func newSolver(ctx context.Context, g *graph.Graph, c cost.Cost, bound int) (*Solver, error) {
	start := time.Now()
	s := &Solver{g: g, c: c, bound: bound}
	if comb, ok := c.(cost.Combinable); ok {
		s.comb = comb
	}
	var sepsOK bool
	var pmcErr error
	if bound >= 0 {
		s.seps, sepsOK = minsep.AtMostCtx(ctx, g, bound)
		if sepsOK {
			s.pmcs, pmcErr = pmc.AtMostCtx(ctx, g, bound+1)
		}
	} else {
		s.seps, sepsOK = minsep.AllCtx(ctx, g)
		if sepsOK {
			s.pmcs, pmcErr = pmc.AllCtx(ctx, g)
		}
	}
	if !sepsOK || pmcErr != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, pmcErr
	}
	if err := s.buildBlocks(ctx); err != nil {
		return nil, err
	}
	s.InitDuration = time.Since(start)
	return s, nil
}

// buildBlocks constructs the static DP structure: all full blocks sorted
// by cardinality, each with its admissible PMCs and their sub-blocks, plus
// a virtual top-level block (S = ∅, C = V). It checks ctx between blocks
// and aborts with ctx.Err() on cancellation.
func (s *Solver) buildBlocks(ctx context.Context) error {
	g := s.g
	full := pmc.FullBlocks(g, s.seps)
	index := map[string]int{}
	for i, b := range full {
		index[b.Key()] = i
	}
	s.blocks = make([]blockData, 0, len(full)+1)
	for _, b := range full {
		s.blocks = append(s.blocks, blockData{block: b, span: b.Vertices()})
	}
	top := pmc.Block{S: vset.New(g.Universe()), C: g.Vertices().Clone()}
	s.blocks = append(s.blocks, blockData{block: top, span: g.Vertices().Clone()})

	for i := range s.blocks {
		if err := ctx.Err(); err != nil {
			return err
		}
		bd := &s.blocks[i]
		for _, omega := range s.pmcs {
			if !omega.SubsetOf(bd.span) || !bd.block.S.ProperSubsetOf(omega) {
				continue
			}
			cand := candidate{omega: omega}
			ok := true
			for _, ci := range g.ComponentsWithin(bd.span.Diff(omega)) {
				si := g.NeighborsOfSet(ci).Intersect(bd.span)
				child, found := index[(pmc.Block{S: si, C: ci}).Key()]
				if !found {
					// Under a width bound the child block may have been
					// pruned, making this PMC unusable here. In the
					// unbounded case Theorem 5.4 guarantees the lookup
					// succeeds.
					ok = false
					break
				}
				cand.children = append(cand.children, child)
			}
			if ok {
				bd.cands = append(bd.cands, cand)
			}
		}
	}
	return nil
}

// Graph returns the input graph.
func (s *Solver) Graph() *graph.Graph { return s.g }

// Cost returns the solver's cost function.
func (s *Solver) Cost() cost.Cost { return s.c }

// MinimalSeparators returns the precomputed MinSep(G) (restricted by the
// width bound for bounded solvers).
func (s *Solver) MinimalSeparators() []vset.Set { return s.seps }

// PMCs returns the precomputed PMC(G) (restricted by the width bound).
func (s *Solver) PMCs() []vset.Set { return s.pmcs }

// NumFullBlocks returns the number of full blocks in the DP.
func (s *Solver) NumFullBlocks() int { return len(s.blocks) - 1 }

// blockSol is the per-constraint-set DP value of one block.
type blockSol struct {
	ok       bool
	cand     int // index into blockData.cands
	value    float64
	max, sum float64  // cost.Combinable summary
	coverage []uint64 // constraint-pair coverage bitmask
	bags     []vset.Set
}

// MinTriang returns a minimum-cost minimal triangulation of the input
// graph subject to the constraints (nil means unconstrained), or
// ErrNoTriangulation when the constrained space (or bounded-width space)
// is empty. This is MinTriang⟨κ[I,X]⟩(G) of the paper.
func (s *Solver) MinTriang(cons *cost.Constraints) (*Result, error) {
	g := s.g
	if g.NumVertices() == 0 {
		return &Result{H: g.Clone(), Tree: td.New(), Cost: s.evalBags(g, nil)}, nil
	}
	cc := compileConstraints(g, cons)
	sols := make([]blockSol, len(s.blocks))
	for i := range s.blocks {
		sols[i] = s.solveBlock(i, cc, sols)
	}
	topSol := sols[len(s.blocks)-1]
	if !topSol.ok {
		return nil, ErrNoTriangulation
	}
	return s.buildResult(len(s.blocks)-1, sols), nil
}

// solveBlock evaluates every admissible PMC of block bi over the already
// solved smaller blocks and keeps the cheapest (lines 3–5 of Figure 3;
// line 6 for the virtual top block).
func (s *Solver) solveBlock(bi int, cc *compiledConstraints, sols []blockSol) blockSol {
	bd := &s.blocks[bi]
	best := blockSol{ok: false, value: math.Inf(1)}
	for ci := range bd.cands {
		cand := &bd.cands[ci]
		sol, ok := s.evalCandidate(bd, cand, cc, sols)
		if !ok {
			continue
		}
		if !best.ok || sol.value < best.value {
			sol.cand = ci
			best = sol
		}
	}
	return best
}

// evalCandidate combines the children of one candidate PMC with its root
// bag, returning the candidate's solution or ok=false when a child is
// unsolvable or a constraint is violated (κ[I,X] = ∞).
func (s *Solver) evalCandidate(bd *blockData, cand *candidate, cc *compiledConstraints, sols []blockSol) (blockSol, bool) {
	var sol blockSol
	for _, child := range cand.children {
		if !sols[child].ok {
			return sol, false
		}
	}
	// Constraint coverage: bag-covered pairs of the subtree.
	if cc != nil {
		sol.coverage = make([]uint64, cc.words)
		for _, child := range cand.children {
			for w, bits := range sols[child].coverage {
				sol.coverage[w] |= bits
			}
		}
		cc.addBagPairs(sol.coverage, cand.omega)
		if !cc.check(bd.span, bd.block.S, sol.coverage) {
			return sol, false
		}
	}
	if s.comb != nil {
		sol.max = s.comb.BagMax(s.g, cand.omega)
		sol.sum = s.comb.BagSum(s.g, cand.omega, bd.block.S)
		for _, child := range cand.children {
			if sols[child].max > sol.max {
				sol.max = sols[child].max
			}
			sol.sum += sols[child].sum
		}
		sol.value = s.comb.Value(s.g, sol.max, sol.sum)
	} else {
		sol.bags = append(sol.bags, cand.omega)
		for _, child := range cand.children {
			sol.bags = append(sol.bags, sols[child].bags...)
		}
		r := s.g.Realization(bd.block.S, bd.block.C)
		sol.value = s.c.Eval(r, sol.bags)
	}
	if math.IsInf(sol.value, 1) {
		return sol, false
	}
	sol.ok = true
	return sol, true
}

func (s *Solver) evalBags(g *graph.Graph, bags []vset.Set) float64 {
	return s.c.Eval(g, bags)
}

// buildResult assembles the decomposition tree, triangulation, bags and
// separators of the solved top block.
func (s *Solver) buildResult(top int, sols []blockSol) *Result {
	tree := td.New()
	sepSeen := map[string]vset.Set{}
	var build func(bi int) int
	build = func(bi int) int {
		bd := &s.blocks[bi]
		cand := &bd.cands[sols[bi].cand]
		node := tree.AddNode(cand.omega.Clone())
		for _, child := range cand.children {
			cn := build(child)
			tree.AddEdge(node, cn)
			si := s.blocks[child].block.S
			if !si.IsEmpty() {
				sepSeen[si.Key()] = si
			}
		}
		return node
	}
	build(top)
	h := s.g.Clone()
	for _, b := range tree.Bags {
		h.SaturateInPlace(b)
	}
	seps := make([]vset.Set, 0, len(sepSeen))
	for _, sp := range sepSeen {
		seps = append(seps, sp)
	}
	sort.Slice(seps, func(i, j int) bool { return seps[i].Compare(seps[j]) < 0 })
	return &Result{
		H:    h,
		Tree: tree,
		Bags: append([]vset.Set(nil), tree.Bags...),
		Seps: seps,
		Cost: s.evalBags(s.g, tree.Bags),
	}
}
