// Package core implements the paper's contribution: MinTriang, the
// dynamic program of Figure 3 computing a minimum-cost minimal
// triangulation for any split-monotone bag cost (generalizing
// Bouchitté–Todinca), its bounded-width variant MinTriangB (Section 5.3),
// and RankedTriang, the Lawler–Murty ranked enumeration of Figure 4.
package core

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/atoms"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/intern"
	"repro/internal/minsep"
	"repro/internal/pmc"
	"repro/internal/td"
	"repro/internal/vset"
)

// Result is one minimal triangulation produced by the solver: the chordal
// graph H, a clique tree of it, its bags (= maximal cliques of H), its
// minimal separators, and its cost.
type Result struct {
	H    *graph.Graph
	Tree *td.Decomposition
	Bags []vset.Set
	Seps []vset.Set
	Cost float64

	// OrbitSize is the number of label-equivalent triangulations this
	// result stands for under Aut(G) — set (≥ 1) only by orbit-reduced
	// enumeration (see NewOrbitBackend), 0 on unreduced streams. Summing
	// it over an orbit-reduced stream reconstructs the unreduced stream
	// length.
	OrbitSize int64

	// sepIDs are the solver-interned IDs of Seps (aligned), letting the
	// enumerator branch on separator identity without hashing set keys.
	sepIDs []int
}

// candidate is one PMC usable at a block, with the blocks of its
// components inside the realization precomputed (they are full blocks of
// the input graph, Theorem 5.4, so they index into Solver.blocks).
type candidate struct {
	omega    vset.Set
	pmcID    int // index of omega in Solver.pmcs
	children []int
}

// blockData is the static, constraint-independent description of a block:
// the DP re-solves costs per constraint set over this fixed structure.
type blockData struct {
	block pmc.Block
	span  vset.Set
	cands []candidate
}

// Solver carries the initialization state of the algorithms: the minimal
// separators, the potential maximal cliques, and the full-block DAG. The
// paper computes these once and shares them across all MinTriang
// invocations of the enumeration (Section 7.1); Solver does the same.
//
// On top of the static structures the solver keeps the unconstrained
// baseline DP solved once at init. A constrained MinTriang call then
// re-solves only the "dirty cone" of the block DAG — the upward-closed
// set of blocks whose span contains some constraint separator — and
// reuses the baseline solution everywhere else (see DESIGN.md,
// "Incremental constraint-aware DP").
type Solver struct {
	g      *graph.Graph
	c      cost.Cost
	comb   cost.Combinable // non-nil fast path
	bound  int             // width bound, or -1
	seps   []vset.Set
	pmcs   []vset.Set
	blocks []blockData // sorted by |span|; the last entry is the top level

	// Interned-ID structures, built once at init.
	sepTab     *intern.Table   // dense separator IDs, aligned with seps
	blockSepID []int           // sep ID of each block's S; -1 when S = ∅
	dirtyBySep []intern.Bitset // per sep ID: blocks whose span contains it
	base       []blockSol      // unconstrained baseline DP

	// Lazily built constraint geometry (see sepCov): one entry per
	// separator ID, plus an escape hatch for non-minimal-separator
	// constraint sets arriving through the public API. covBudget caps, in
	// words, the precomputed per-separator tables; once spent, further
	// sepCovs are built lean (masks derived from pair lists on demand),
	// bounding the solver's memory on separator-rich graphs.
	sepCovs   []sepCovEntry
	covBudget atomic.Int64
	extraMu   sync.Mutex
	extras    map[string]*extraCov

	fullResolve bool      // solve every block from scratch (oracle/ablation)
	scratch     sync.Pool // *solveScratch, reused across constrained solves

	// Decomposed mode (see DESIGN.md, "Atom decomposition"). When the
	// graph splits into more than one clique-separator atom and the cost
	// declares an atom-wise merge rule, the monolithic structures above
	// stay empty: the solver instead owns one sub-solver per atom, built
	// lazily and in parallel on first use, and answers enumeration
	// queries through the ranked product-stream merge of product.go.
	dec       *atoms.Decomposition
	mergeKind cost.MergeKind
	subMu     sync.Mutex // guards subs/aggSeps/aggPMCs construction
	subs      []*Solver  // aligned with dec.Atoms; nil until first use
	aggSeps   []vset.Set // cached MinimalSeparators() aggregate
	aggPMCs   []vset.Set // cached PMCs() aggregate

	statSolves atomic.Uint64 // constrained solves served incrementally
	statDirty  atomic.Uint64 // blocks re-solved across those calls
	statReused atomic.Uint64 // blocks reused from the baseline

	// InitDuration records the time spent computing separators, PMCs and
	// the block structure — the "init" column of the paper's Table 2.
	// Written once during construction and immutable afterwards. For a
	// decomposed solver built with a cancellable context (or Prepare'd)
	// it includes the per-atom sub-solver builds; for a lazily built one
	// it covers only the decomposition, with the deferred build times
	// reported per atom by AtomInfos.
	InitDuration time.Duration
}

// ErrNoTriangulation is reported when no minimal triangulation satisfies
// the width bound and constraints.
var ErrNoTriangulation = errors.New("core: no admissible minimal triangulation")

// NewSolver initializes the unbounded solver: it computes MinSep(G),
// PMC(G) and the full-block structure (lines 1–2 of Figure 3). The cost
// must be a split-monotone bag cost; costs implementing cost.Combinable
// use the fast combining path.
func NewSolver(g *graph.Graph, c cost.Cost) *Solver {
	s, _ := NewSolverContext(context.Background(), g, c)
	return s
}

// NewSolverContext is NewSolver with cancellation: initialization aborts
// with ctx.Err() when ctx is cancelled or times out during the separator,
// PMC or block computation. The error path returns a nil solver; a
// background context never fails. Services use this so a disconnected
// client stops burning initialization CPU.
func NewSolverContext(ctx context.Context, g *graph.Graph, c cost.Cost) (*Solver, error) {
	return newSolver(ctx, g, c, -1, false)
}

// NewBoundedSolverContext is NewBoundedSolver with cancellation (see
// NewSolverContext).
func NewBoundedSolverContext(ctx context.Context, g *graph.Graph, c cost.Cost, b int) (*Solver, error) {
	if b < 0 {
		panic("core: negative width bound")
	}
	return newSolver(ctx, g, c, b, false)
}

// Options configures solver construction beyond the cost function.
type Options struct {
	// WidthBound restricts the solver to triangulations of width at most
	// *WidthBound (see NewBoundedSolver); nil means unbounded.
	WidthBound *int
	// NoDecompose forces the monolithic whole-graph solver even when the
	// graph factors into clique-separator atoms. This is the ablation and
	// oracle knob for the atom decomposition: the enumeration output is
	// identical either way up to cost ties (property-tested), only the
	// delay and initialization cost differ.
	NoDecompose bool
}

// New is the fully configurable constructor behind NewSolver and friends.
func New(ctx context.Context, g *graph.Graph, c cost.Cost, opts Options) (*Solver, error) {
	bound := -1
	if opts.WidthBound != nil {
		if *opts.WidthBound < 0 {
			panic("core: negative width bound")
		}
		bound = *opts.WidthBound
	}
	return newSolver(ctx, g, c, bound, opts.NoDecompose)
}

// NewBoundedSolver initializes MinTriangB⟨b, κ⟩: only minimal separators
// of size ≤ b and potential maximal cliques of size ≤ b+1 participate, so
// every produced triangulation has width ≤ b (Theorem 5.6).
func NewBoundedSolver(g *graph.Graph, c cost.Cost, b int) *Solver {
	s, _ := NewBoundedSolverContext(context.Background(), g, c, b)
	return s
}

func newSolver(ctx context.Context, g *graph.Graph, c cost.Cost, bound int, noDecompose bool) (*Solver, error) {
	start := time.Now()
	s := &Solver{g: g, c: c, bound: bound}
	if comb, ok := c.(cost.Combinable); ok {
		s.comb = comb
	}
	// Atom decomposition: when the graph splits on clique minimal
	// separators and the cost declares an atom-wise merge rule, skip the
	// (exponential) whole-graph structures entirely; everything else in
	// this function is the monolithic path, which sub-solvers also take
	// (their atoms have no clique separators, so re-decomposing them
	// would only waste an MCS-M pass).
	if !noDecompose && g.NumVertices() > 0 {
		if m, ok := c.(cost.Mergeable); ok && m.MergeKind() != cost.NoMerge {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if dec := atoms.Decompose(g); len(dec.Atoms) > 1 {
				s.dec = dec
				s.mergeKind = m.MergeKind()
				// A cancellable context is a caller that wants the
				// NewSolverContext abort contract: build the sub-solvers
				// now, under that context, so no exponential work escapes
				// it later through a context-free query. A background
				// context (plain NewSolver) keeps the build lazy — the
				// first query pays it, in parallel.
				if ctx.Done() != nil {
					if err := s.ensureSubs(ctx); err != nil {
						return nil, err
					}
				}
				s.InitDuration = time.Since(start)
				return s, nil
			}
		}
	}
	var sepsOK bool
	var pmcErr error
	if bound >= 0 {
		s.seps, sepsOK = minsep.AtMostCtx(ctx, g, bound)
		if sepsOK {
			s.pmcs, pmcErr = pmc.AtMostCtx(ctx, g, bound+1)
		}
	} else {
		s.seps, sepsOK = minsep.AllCtx(ctx, g)
		if sepsOK {
			s.pmcs, pmcErr = pmc.AllCtx(ctx, g)
		}
	}
	if !sepsOK || pmcErr != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, pmcErr
	}
	if err := s.buildBlocks(ctx); err != nil {
		return nil, err
	}
	if err := s.buildIncremental(ctx); err != nil {
		return nil, err
	}
	s.InitDuration = time.Since(start)
	return s, nil
}

// buildBlocks constructs the static DP structure: all full blocks sorted
// by cardinality, each with its admissible PMCs and their sub-blocks, plus
// a virtual top-level block (S = ∅, C = V). It checks ctx between blocks
// and aborts with ctx.Err() on cancellation.
func (s *Solver) buildBlocks(ctx context.Context) error {
	g := s.g
	full := pmc.FullBlocks(g, s.seps)
	index := map[string]int{}
	for i, b := range full {
		index[b.Key()] = i
	}
	s.blocks = make([]blockData, 0, len(full)+1)
	for _, b := range full {
		s.blocks = append(s.blocks, blockData{block: b, span: b.Vertices()})
	}
	top := pmc.Block{S: vset.New(g.Universe()), C: g.Vertices().Clone()}
	s.blocks = append(s.blocks, blockData{block: top, span: g.Vertices().Clone()})

	for i := range s.blocks {
		if err := ctx.Err(); err != nil {
			return err
		}
		bd := &s.blocks[i]
		for pi, omega := range s.pmcs {
			if !omega.SubsetOf(bd.span) || !bd.block.S.ProperSubsetOf(omega) {
				continue
			}
			cand := candidate{omega: omega, pmcID: pi}
			ok := true
			for _, ci := range g.ComponentsWithin(bd.span.Diff(omega)) {
				si := g.NeighborsOfSet(ci).Intersect(bd.span)
				child, found := index[(pmc.Block{S: si, C: ci}).Key()]
				if !found {
					// Under a width bound the child block may have been
					// pruned, making this PMC unusable here. In the
					// unbounded case Theorem 5.4 guarantees the lookup
					// succeeds.
					ok = false
					break
				}
				cand.children = append(cand.children, child)
			}
			if ok {
				bd.cands = append(bd.cands, cand)
			}
		}
	}
	return nil
}

// buildIncremental finishes initialization: it interns the separators,
// maps each block to its separator ID, precomputes for every separator
// the dirty cone it induces (the blocks whose span contains it — exactly
// the blocks a constraint on that separator can re-rank), and solves the
// unconstrained baseline DP once. Every later constrained MinTriang call
// re-solves only a union of these cones.
func (s *Solver) buildIncremental(ctx context.Context) error {
	s.sepTab = intern.FromSets(s.seps)
	s.blockSepID = make([]int, len(s.blocks))
	for i := range s.blocks {
		s.blockSepID[i] = -1
		if sp := s.blocks[i].block.S; !sp.IsEmpty() {
			if id, ok := s.sepTab.Lookup(sp); ok {
				s.blockSepID[i] = id
			}
		}
	}
	s.dirtyBySep = make([]intern.Bitset, s.sepTab.Len())
	for id := range s.dirtyBySep {
		if err := ctx.Err(); err != nil {
			return err
		}
		mask := intern.NewBitset(len(s.blocks))
		sep := s.sepTab.Set(id)
		for bi := range s.blocks {
			if sep.SubsetOf(s.blocks[bi].span) {
				mask.Set(bi)
			}
		}
		s.dirtyBySep[id] = mask
	}
	// Baseline DP (lines 3–6 of Figure 3, unconstrained). Solved once;
	// constrained calls start from these solutions.
	s.base = make([]blockSol, len(s.blocks))
	sc := &solveScratch{sols: s.base}
	for i := range s.blocks {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.base[i] = s.solveBlock(i, nil, sc, nil)
	}
	s.sepCovs = make([]sepCovEntry, s.sepTab.Len())
	s.covBudget.Store(sepCovBudgetWords)
	s.extras = make(map[string]*extraCov)
	s.scratch.New = func() any {
		return &solveScratch{
			sols:    make([]blockSol, len(s.blocks)),
			cov:     make([][]uint64, len(s.blocks)),
			changed: make([]bool, len(s.blocks)),
		}
	}
	return nil
}

// sepCovBudgetWords bounds the precomputed sepCov tables per solver at
// 64 MiB of mask words; the tables are quadratic in the separator count,
// so without a cap a separator-rich graph would pin hundreds of
// megabytes on one pool-cached solver. Past the budget, sepCovs fall
// back to the (exact, somewhat slower) lean path.
const sepCovBudgetWords = 8 << 20

// sepCovEntry guards one separator's lazily built constraint geometry;
// enumeration workers race on the first touch.
type sepCovEntry struct {
	once sync.Once
	cov  sepCov
}

// sepCovFor returns the constraint geometry of an interned separator,
// building it on first use.
func (s *Solver) sepCovFor(id int) *sepCov {
	e := &s.sepCovs[id]
	e.once.Do(func() { s.buildSepCov(&e.cov, s.sepTab.Set(id)) })
	return &e.cov
}

// extraCov is the constraint geometry plus dirty cone of a constraint
// separator that is not a minimal separator of the graph.
type extraCov struct {
	cov  sepCov
	cone intern.Bitset
}

// extraCovFor returns (building on first use) the geometry and cone of a
// non-interned constraint separator. Extras are always built lean —
// there is no bound on how many distinct sets the public API can send a
// long-lived solver, so they must neither pin precomputed tables nor
// drain the shared budget the interned separators rely on.
func (s *Solver) extraCovFor(sep vset.Set) (*sepCov, intern.Bitset) {
	key := sep.Key()
	s.extraMu.Lock()
	defer s.extraMu.Unlock()
	if e, ok := s.extras[key]; ok {
		return &e.cov, e.cone
	}
	e := &extraCov{cone: intern.NewBitset(len(s.blocks))}
	s.buildSepCovLean(&e.cov, sep)
	for bi := range s.blocks {
		if sep.SubsetOf(s.blocks[bi].span) {
			e.cone.Set(bi)
		}
	}
	s.extras[key] = e
	return &e.cov, e.cone
}

// Graph returns the input graph.
func (s *Solver) Graph() *graph.Graph { return s.g }

// Cost returns the solver's cost function.
func (s *Solver) Cost() cost.Cost { return s.c }

// Decomposed reports whether the solver routes through the atom
// decomposition (more than one clique-separator atom, mergeable cost, and
// decomposition not disabled).
func (s *Solver) Decomposed() bool { return s.dec != nil }

// Atoms returns the clique-minimal-separator decomposition of the input
// graph, or nil for a monolithic solver.
func (s *Solver) Atoms() *atoms.Decomposition { return s.dec }

// ensureSubs builds the per-atom sub-solvers on first use, in parallel
// with up to GOMAXPROCS workers. Failed builds (only possible through ctx
// cancellation) are not cached, so a later call with a live context
// retries; concurrent callers serialize on subMu and the winner's build
// is shared.
func (s *Solver) ensureSubs(ctx context.Context) error {
	if s.dec == nil {
		return nil
	}
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.subs != nil {
		return nil
	}
	n := len(s.dec.Atoms)
	subs := make([]*Solver, n)
	errs := make([]error, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if ctx.Err() != nil {
					errs[i] = ctx.Err()
					continue
				}
				sg := s.g.InducedSubgraph(s.dec.Atoms[i].Vertices)
				sub, err := newSolver(ctx, sg, s.c, s.bound, true)
				if err != nil {
					errs[i] = err
					continue
				}
				sub.SetFullResolve(s.fullResolve)
				subs[i] = sub
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	s.subs = subs
	return nil
}

// Prepare forces the lazy per-atom sub-solver initialization now, under
// ctx's budget. Library callers can ignore it (the first query prepares
// on demand); the service layer calls it inside the pooled build so a
// decomposed solver's initialization is bounded by the same timeout as a
// monolithic one. A no-op on monolithic solvers.
func (s *Solver) Prepare(ctx context.Context) error {
	return s.ensureSubs(ctx)
}

// subSolvers returns the built sub-solver list, or nil for a monolithic
// solver or before the first successful ensureSubs.
func (s *Solver) subSolvers() []*Solver {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	return s.subs
}

// MinimalSeparators returns the precomputed MinSep(G) (restricted by the
// width bound for bounded solvers). For a decomposed solver this is the
// disjoint union of the atoms' minimal separators and the clique minimal
// separators of the decomposition, in canonical order — the same set the
// monolithic solver computes directly.
func (s *Solver) MinimalSeparators() []vset.Set {
	if s.dec == nil {
		return s.seps
	}
	if err := s.ensureSubs(context.Background()); err != nil {
		return nil
	}
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.aggSeps == nil {
		var agg []vset.Set
		for _, sub := range s.subs {
			agg = append(agg, sub.seps...)
		}
		for _, cs := range s.dec.CliqueSeps {
			if s.bound < 0 || cs.Len() <= s.bound {
				agg = append(agg, cs)
			}
		}
		sort.Slice(agg, func(i, j int) bool { return agg[i].Compare(agg[j]) < 0 })
		s.aggSeps = agg
	}
	return s.aggSeps
}

// PMCs returns the precomputed PMC(G) (restricted by the width bound).
// For a decomposed solver this is the union of the atoms' PMC sets in
// canonical order.
func (s *Solver) PMCs() []vset.Set {
	if s.dec == nil {
		return s.pmcs
	}
	if err := s.ensureSubs(context.Background()); err != nil {
		return nil
	}
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.aggPMCs == nil {
		var agg []vset.Set
		for _, sub := range s.subs {
			agg = append(agg, sub.pmcs...)
		}
		sort.Slice(agg, func(i, j int) bool { return agg[i].Compare(agg[j]) < 0 })
		s.aggPMCs = agg
	}
	return s.aggPMCs
}

// NumFullBlocks returns the number of full blocks in the DP — summed over
// the atoms for a decomposed solver.
func (s *Solver) NumFullBlocks() int {
	if s.dec == nil {
		return len(s.blocks) - 1
	}
	if err := s.ensureSubs(context.Background()); err != nil {
		return 0
	}
	total := 0
	for _, sub := range s.subSolvers() {
		total += sub.NumFullBlocks()
	}
	return total
}

// SetFullResolve disables (true) or re-enables (false) incremental reuse:
// with full resolve on, every constrained call re-runs the whole DP from
// scratch. This is the oracle the incremental path is property-tested
// against and the ablation knob for benchmarks; production callers leave
// it off. Not safe to flip while enumerations are in flight.
func (s *Solver) SetFullResolve(on bool) {
	s.fullResolve = on
	for _, sub := range s.subSolvers() {
		sub.SetFullResolve(on)
	}
}

// ReuseStats is a snapshot of the incremental-DP counters: how many
// constrained solves ran, how many blocks they re-solved with a full
// candidate scan, and how many they served from the unconstrained
// baseline (clean blocks outside every constraint's dirty cone, plus
// dirty-cone blocks kept by the exact baseline-still-wins shortcut).
type ReuseStats struct {
	ConstrainedSolves uint64 `json:"constrained_solves"`
	DirtyBlocks       uint64 `json:"dirty_blocks"`
	ReusedBlocks      uint64 `json:"reused_blocks"`
}

// ReuseStats returns the cumulative incremental-solve counters — summed
// over the atom sub-solvers for a decomposed solver. It is safe to call
// concurrently with enumeration.
func (s *Solver) ReuseStats() ReuseStats {
	out := ReuseStats{
		ConstrainedSolves: s.statSolves.Load(),
		DirtyBlocks:       s.statDirty.Load(),
		ReusedBlocks:      s.statReused.Load(),
	}
	for _, sub := range s.subSolvers() {
		st := sub.ReuseStats()
		out.ConstrainedSolves += st.ConstrainedSolves
		out.DirtyBlocks += st.DirtyBlocks
		out.ReusedBlocks += st.ReusedBlocks
	}
	return out
}

// AtomInfo is a snapshot of one atom's sub-solver, reported by the
// service layer's /v1/stats.
type AtomInfo struct {
	Vertices   int   `json:"vertices"`
	Ready      bool  `json:"ready"`
	Separators int   `json:"separators,omitempty"`
	PMCs       int   `json:"pmcs,omitempty"`
	FullBlocks int   `json:"full_blocks,omitempty"`
	InitMillis int64 `json:"init_ms,omitempty"`
}

// AtomInfos describes the per-atom sub-solvers without forcing their
// initialization: atoms whose sub-solver has not been built yet report
// Ready=false and only their vertex count. Nil for monolithic solvers.
func (s *Solver) AtomInfos() []AtomInfo {
	if s.dec == nil {
		return nil
	}
	subs := s.subSolvers()
	out := make([]AtomInfo, len(s.dec.Atoms))
	for i, a := range s.dec.Atoms {
		out[i] = AtomInfo{Vertices: a.Vertices.Len()}
		if subs != nil && subs[i] != nil {
			sub := subs[i]
			out[i].Ready = true
			out[i].Separators = len(sub.seps)
			out[i].PMCs = len(sub.pmcs)
			out[i].FullBlocks = sub.NumFullBlocks()
			out[i].InitMillis = sub.InitDuration.Milliseconds()
		}
	}
	return out
}

// blockSol is the per-constraint-set DP value of one block.
type blockSol struct {
	ok       bool
	cand     int // index into blockData.cands
	value    float64
	max, sum float64  // cost.Combinable summary
	coverage []uint64 // constraint-pair coverage bitmask
	bags     []vset.Set
}

// solveScratch is the per-call working state of one constrained solve,
// pooled so the steady-state enumeration allocates no per-block slices.
type solveScratch struct {
	sols      []blockSol  // working solutions; starts as a copy of the baseline
	cov       [][]uint64  // memoized coverage of clean (baseline-reused) blocks
	covBuf    []uint64    // per-candidate coverage working buffer
	act       []activeCon // active constraints of the block being solved
	needArena []uint64    // backing storage for activeCon.need slices
	bagArena  []uint64    // memoized per-PMC coverage contributions
	bagDone   []bool      // which bagArena segments are filled
	changed   []bool      // dirty blocks whose re-solve deviated from baseline
}

// coverage returns the candidate working buffer zeroed to n words.
func (sc *solveScratch) coverage(n int) []uint64 {
	if cap(sc.covBuf) < n {
		sc.covBuf = make([]uint64, n)
	}
	buf := sc.covBuf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// prepare sizes the per-call buffers for a solve over npmcs PMCs with
// words coverage words and invalidates the per-PMC memo.
func (sc *solveScratch) prepare(npmcs, words int) {
	if len(sc.bagDone) < npmcs {
		sc.bagDone = make([]bool, npmcs)
	} else {
		for i := range sc.bagDone {
			sc.bagDone[i] = false
		}
	}
	if need := npmcs * words; cap(sc.bagArena) < need {
		sc.bagArena = make([]uint64, need)
	}
	if cap(sc.needArena) < words {
		sc.needArena = make([]uint64, 0, words)
	}
}

func (s *Solver) getScratch(cc *compiledConstraints) *solveScratch {
	sc := s.scratch.Get().(*solveScratch)
	copy(sc.sols, s.base)
	for i := range sc.cov {
		sc.cov[i] = nil
		sc.changed[i] = false
	}
	sc.prepare(len(s.pmcs), cc.words)
	return sc
}

// MinTriang returns a minimum-cost minimal triangulation of the input
// graph subject to the constraints (nil means unconstrained), or
// ErrNoTriangulation when the constrained space (or bounded-width space)
// is empty. This is MinTriang⟨κ[I,X]⟩(G) of the paper.
func (s *Solver) MinTriang(cons *cost.Constraints) (*Result, error) {
	if s.g.NumVertices() == 0 {
		return &Result{H: s.g.Clone(), Tree: td.New(), Cost: s.evalBags(s.g, nil)}, nil
	}
	if s.dec != nil {
		return s.minTriangAtoms(context.Background(), cons)
	}
	return s.minTriangCompiled(s.compileConstraints(cons))
}

// minTriangAtoms answers MinTriang on a decomposed solver: constraints
// are routed to the single atom that can decide them, each atom solves
// its restricted problem, and the per-atom optima are glued. Correctness
// rests on Leimer's factorization (minimal triangulations of G = unions
// of independent minimal triangulations of the atoms) plus the merge rule
// of the cost, under which the union of per-atom optima is a global
// optimum.
func (s *Solver) minTriangAtoms(ctx context.Context, cons *cost.Constraints) (*Result, error) {
	if err := s.ensureSubs(ctx); err != nil {
		return nil, err
	}
	perAtom, err := s.splitConstraints(cons)
	if err != nil {
		return nil, err
	}
	subs := s.subSolvers()
	parts := make([]*Result, len(subs))
	for i, sub := range subs {
		r, err := sub.MinTriang(perAtom[i])
		if err != nil {
			return nil, ErrNoTriangulation
		}
		parts[i] = r
	}
	return s.combineResults(parts), nil
}

// splitConstraints routes each constraint separator of [I, X] to the one
// atom that can decide it, exploiting that every clique of a minimal
// triangulation lies inside a single atom (no H-edge crosses a clique
// separator):
//
//   - a separator that is already a clique of G is a clique of every
//     triangulation: an inclusion is vacuous, an exclusion unsatisfiable;
//   - a separator inside an atom becomes a clique of H iff it becomes a
//     clique of that atom's triangulation (atoms overlap only in cliques
//     of G, so the atom is unique), and is routed there;
//   - a separator inside no atom can never become a clique: an inclusion
//     is unsatisfiable, an exclusion vacuous.
//
// The unsatisfiable cases return ErrNoTriangulation.
func (s *Solver) splitConstraints(cons *cost.Constraints) ([]*cost.Constraints, error) {
	out := make([]*cost.Constraints, len(s.dec.Atoms))
	if cons.IsEmpty() {
		return out, nil
	}
	route := func(sep vset.Set, include bool) (bool, error) {
		if s.g.IsClique(sep) {
			if include {
				return false, nil // vacuously satisfied
			}
			return false, ErrNoTriangulation
		}
		for i, a := range s.dec.Atoms {
			if sep.SubsetOf(a.Vertices) {
				if out[i] == nil {
					out[i] = &cost.Constraints{}
				}
				if include {
					out[i].Include = append(out[i].Include, sep)
				} else {
					out[i].Exclude = append(out[i].Exclude, sep)
				}
				return true, nil
			}
		}
		if include {
			return false, ErrNoTriangulation // can never become a clique
		}
		return false, nil // vacuously excluded
	}
	for _, sep := range cons.Include {
		if _, err := route(sep, true); err != nil {
			return nil, err
		}
	}
	for _, sep := range cons.Exclude {
		if _, err := route(sep, false); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// minTriangCompiled is the internal entry point shared by MinTriang and
// the enumerator's branch solving (which extends compiled constraints by
// single-separator deltas instead of recompiling).
func (s *Solver) minTriangCompiled(cc *compiledConstraints) (*Result, error) {
	top := len(s.blocks) - 1
	if cc == nil {
		// Unconstrained: the baseline DP is the answer.
		if !s.base[top].ok {
			return nil, ErrNoTriangulation
		}
		return s.buildResult(top, s.base), nil
	}
	if s.fullResolve {
		sc := &solveScratch{sols: make([]blockSol, len(s.blocks)), cov: make([][]uint64, len(s.blocks))}
		sc.prepare(len(s.pmcs), cc.words)
		for i := range s.blocks {
			sc.sols[i] = s.solveBlock(i, cc, sc, nil)
		}
		if !sc.sols[top].ok {
			return nil, ErrNoTriangulation
		}
		return s.buildResult(top, sc.sols), nil
	}
	sc := s.getScratch(cc)
	defer s.scratch.Put(sc)
	// Re-solve the dirty cone bottom-up. Blocks are globally sorted by
	// span size, so ascending bit order respects the child-before-parent
	// DP order; the top block's span is V, hence always dirty.
	var scanned uint64
	cc.dirty.ForEach(func(bi int) {
		if s.resolveBlock(bi, cc, sc) {
			scanned++
		}
	})
	s.statSolves.Add(1)
	s.statDirty.Add(scanned)
	s.statReused.Add(uint64(len(s.blocks)) - scanned)
	if !sc.sols[top].ok {
		return nil, ErrNoTriangulation
	}
	return s.buildResult(top, sc.sols), nil
}

// resolveBlock re-solves one dirty block of an incremental constrained
// call, with the exact fast path that makes the dirty cone cheap to walk:
// constraining can only remove candidates and raise children, so every
// candidate's constrained value is at least its baseline value. Hence if
// the baseline-chosen candidate's children are all unchanged and its
// constraint check passes, it still attains the (unchanged) minimum — and
// the first-minimum tie-break of the from-scratch DP picks it again — so
// the baseline solution is kept wholesale and only its coverage mask is
// materialized. Otherwise the block falls back to the full candidate scan
// and records whether its solution deviated (children consult that flag).
// The return value reports whether the full scan ran — blocks served
// from the baseline count as reused in ReuseStats, scanned ones as
// dirty.
func (s *Solver) resolveBlock(bi int, cc *compiledConstraints, sc *solveScratch) bool {
	base := &s.base[bi]
	if !base.ok {
		// Infeasible without constraints stays infeasible with them.
		return false
	}
	bd := &s.blocks[bi]
	cand := &bd.cands[base.cand]
	// The keep-baseline path requires a Combinable cost: it reuses the
	// baseline blockSol verbatim, which for generic costs carries the
	// subtree bag list — stale when an equal-value child re-decomposed.
	// Combinable solutions fold through (max, sum) scalars, which the
	// changed flags track exactly.
	stable := s.comb != nil
	for _, child := range cand.children {
		if !stable {
			break
		}
		if sc.changed[child] {
			stable = false
		}
	}
	var act []activeCon
	if stable {
		act = cc.activeAt(bi, s.blockSepID[bi], bd.block.S, sc)
		buf := sc.coverage(cc.words)
		copy(buf, cc.bagMask(sc, cand.pmcID, cand.omega))
		for _, child := range cand.children {
			for w, bits := range s.coverageOf(child, cc, sc) {
				buf[w] |= bits
			}
		}
		if checkActive(act, buf) {
			sol := *base
			sol.coverage = append([]uint64(nil), buf...)
			sc.sols[bi] = sol
			return false
		}
	}
	sol := s.solveBlock(bi, cc, sc, act)
	sc.sols[bi] = sol
	if sol.ok != base.ok || sol.value != base.value || sol.max != base.max || sol.sum != base.sum {
		sc.changed[bi] = true
	}
	return true
}

// solveBlock evaluates every admissible PMC of block bi over the already
// solved smaller blocks and keeps the cheapest (lines 3–5 of Figure 3;
// line 6 for the virtual top block). The winner's coverage mask is
// rebuilt once after selection, so losing candidates allocate nothing.
// act may carry the block's already-built active-constraint list (from a
// failed keep-baseline attempt); nil means build it here.
func (s *Solver) solveBlock(bi int, cc *compiledConstraints, sc *solveScratch, act []activeCon) blockSol {
	bd := &s.blocks[bi]
	if cc != nil && act == nil {
		act = cc.activeAt(bi, s.blockSepID[bi], bd.block.S, sc)
	}
	best := blockSol{ok: false, value: math.Inf(1)}
	for ci := range bd.cands {
		cand := &bd.cands[ci]
		sol, ok := s.evalCandidate(bd, cand, cc, act, sc)
		if !ok {
			continue
		}
		if !best.ok || sol.value < best.value {
			sol.cand = ci
			best = sol
		}
	}
	if cc != nil && best.ok {
		cand := &bd.cands[best.cand]
		cov := make([]uint64, cc.words)
		copy(cov, cc.bagMask(sc, cand.pmcID, cand.omega))
		for _, child := range cand.children {
			for w, bits := range s.coverageOf(child, cc, sc) {
				cov[w] |= bits
			}
		}
		best.coverage = cov
	}
	return best
}

// coverageOf returns the constraint-pair coverage of a solved child
// block: dirty children carry it on their re-solved solution, clean
// children derive it lazily from the baseline sub-decomposition (memoized
// per call — the block DAG shares subtrees).
func (s *Solver) coverageOf(bi int, cc *compiledConstraints, sc *solveScratch) []uint64 {
	if cov := sc.sols[bi].coverage; cov != nil {
		return cov
	}
	if m := sc.cov[bi]; m != nil {
		return m
	}
	m := make([]uint64, cc.words)
	sol := &sc.sols[bi] // clean: identical to the baseline solution
	cand := &s.blocks[bi].cands[sol.cand]
	copy(m, cc.bagMask(sc, cand.pmcID, cand.omega))
	for _, child := range cand.children {
		for w, bits := range s.coverageOf(child, cc, sc) {
			m[w] |= bits
		}
	}
	sc.cov[bi] = m
	return m
}

// evalCandidate combines the children of one candidate PMC with its root
// bag, returning the candidate's solution or ok=false when a child is
// unsolvable or a constraint is violated (κ[I,X] = ∞). The constraint
// check runs on the scratch coverage buffer against the block's active
// constraints; the caller rebuilds and retains coverage only for the
// winning candidate.
func (s *Solver) evalCandidate(bd *blockData, cand *candidate, cc *compiledConstraints, act []activeCon, sc *solveScratch) (blockSol, bool) {
	var sol blockSol
	sols := sc.sols
	for _, child := range cand.children {
		if !sols[child].ok {
			return sol, false
		}
	}
	// Constraint coverage: bag-covered pairs of the subtree.
	if cc != nil {
		buf := sc.coverage(cc.words)
		copy(buf, cc.bagMask(sc, cand.pmcID, cand.omega))
		for _, child := range cand.children {
			for w, bits := range s.coverageOf(child, cc, sc) {
				buf[w] |= bits
			}
		}
		if !checkActive(act, buf) {
			return sol, false
		}
	}
	if s.comb != nil {
		sol.max = s.comb.BagMax(s.g, cand.omega)
		sol.sum = s.comb.BagSum(s.g, cand.omega, bd.block.S)
		for _, child := range cand.children {
			if sols[child].max > sol.max {
				sol.max = sols[child].max
			}
			sol.sum += sols[child].sum
		}
		sol.value = s.comb.Value(s.g, sol.max, sol.sum)
	} else {
		sol.bags = append(sol.bags, cand.omega)
		for _, child := range cand.children {
			sol.bags = append(sol.bags, sols[child].bags...)
		}
		r := s.g.Realization(bd.block.S, bd.block.C)
		sol.value = s.c.Eval(r, sol.bags)
	}
	if math.IsInf(sol.value, 1) {
		return sol, false
	}
	sol.ok = true
	return sol, true
}

func (s *Solver) evalBags(g *graph.Graph, bags []vset.Set) float64 {
	return s.c.Eval(g, bags)
}

// buildResult assembles the decomposition tree, triangulation, bags and
// separators of the solved top block. Separators are collected by
// interned ID; ascending ID order is the canonical vset.Compare order
// because the separator table is built from the sorted separator list.
func (s *Solver) buildResult(top int, sols []blockSol) *Result {
	tree := td.New()
	sepSeen := intern.NewBitset(s.sepTab.Len())
	var build func(bi int) int
	build = func(bi int) int {
		bd := &s.blocks[bi]
		cand := &bd.cands[sols[bi].cand]
		node := tree.AddNode(cand.omega.Clone())
		for _, child := range cand.children {
			cn := build(child)
			tree.AddEdge(node, cn)
			if id := s.blockSepID[child]; id >= 0 {
				sepSeen.Set(id)
			}
		}
		return node
	}
	build(top)
	h := s.g.Clone()
	for _, b := range tree.Bags {
		h.SaturateInPlace(b)
	}
	n := sepSeen.Count()
	seps := make([]vset.Set, 0, n)
	sepIDs := make([]int, 0, n)
	sepSeen.ForEach(func(id int) {
		seps = append(seps, s.sepTab.Set(id))
		sepIDs = append(sepIDs, id)
	})
	return &Result{
		H:      h,
		Tree:   tree,
		Bags:   append([]vset.Set(nil), tree.Bags...),
		Seps:   seps,
		sepIDs: sepIDs,
		Cost:   s.evalBags(s.g, tree.Bags),
	}
}
