package core

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/graph"
)

// drainResults drains an enumerator into a slice, capped like the backend
// oracle drains.
func drainResults(t *testing.T, e *Enumerator) []*Result {
	t.Helper()
	var out []*Result
	for i := 0; ; i++ {
		if i > backendOracleCap {
			t.Fatalf("enumeration exceeded %d results; runaway", backendOracleCap)
		}
		r, ok := e.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// checkOrbitInvariant is the orbit-mode oracle on one graph: the reduced
// stream must consist of exactly one representative per Aut(G)-orbit of
// the unreduced stream, each stamped with the orbit's true cardinality
// and cost. Concretely, keying every unreduced result by its orbit
// canonical form must reproduce the reduced stream's (key → (size, cost))
// map exactly, and Σ OrbitSize must equal the unreduced length.
func checkOrbitInvariant(t *testing.T, g *graph.Graph, label string) {
	t.Helper()
	c := cost.FillIn{}
	s, err := New(context.Background(), g, c, Options{NoDecompose: true})
	if err != nil {
		t.Fatalf("%s: solver init: %v", label, err)
	}
	full := drainResults(t, s.Enumerate())

	// Expected orbit structure, computed independently of the filter's
	// dedup bookkeeping: group the unreduced stream by orbit key.
	type orbit struct {
		size int64
		cost float64
	}
	want := make(map[string]orbit)
	for _, r := range full {
		key, _, exact := resultOrbitKey(g, r.H)
		if !exact {
			t.Fatalf("%s: oracle orbit key fell back on a tiny graph", label)
		}
		o, seen := want[key]
		if seen && o.cost != r.Cost {
			t.Fatalf("%s: one orbit, two costs (%v vs %v) — cost not label-invariant?", label, o.cost, r.Cost)
		}
		want[key] = orbit{size: o.size + 1, cost: r.Cost}
	}

	counters := &OrbitCounters{}
	ob := NewOrbitBackend(s, counters)
	reduced := drainResults(t, ob.EnumerateContext(context.Background()))

	var sum int64
	prev := -1.0
	got := make(map[string]orbit)
	for _, r := range reduced {
		if r.OrbitSize < 1 {
			t.Fatalf("%s: reduced stream emitted OrbitSize %d", label, r.OrbitSize)
		}
		sum += r.OrbitSize
		if r.Cost < prev {
			t.Fatalf("%s: reduced stream left ranked order (%v after %v)", label, r.Cost, prev)
		}
		prev = r.Cost
		key, _, exact := resultOrbitKey(g, r.H)
		if !exact {
			t.Fatalf("%s: orbit key fell back on a tiny graph", label)
		}
		if _, dup := got[key]; dup {
			t.Fatalf("%s: reduced stream emitted two members of one orbit", label)
		}
		got[key] = orbit{size: r.OrbitSize, cost: r.Cost}
	}
	if sum != int64(len(full)) {
		t.Fatalf("%s: Σ orbit sizes = %d, unreduced stream length = %d", label, sum, len(full))
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d orbit representatives, want %d orbits", label, len(got), len(want))
	}
	for key, w := range want {
		gr, ok := got[key]
		if !ok {
			t.Fatalf("%s: an orbit of size %d (cost %v) has no representative", label, w.size, w.cost)
		}
		if gr.size != w.size || gr.cost != w.cost {
			t.Fatalf("%s: orbit reported (size=%d cost=%v), want (size=%d cost=%v)",
				label, gr.size, gr.cost, w.size, w.cost)
		}
	}
}

// TestOrbitOracleAllSmallGraphs proves the orbit-mode invariant
// exhaustively on every graph with up to 6 vertices (the ISSUE's 33k
// sweep): Σ orbit sizes matches the unreduced stream length and the
// multiset of (cost, orbit-canonical form, size) is reproduced exactly,
// with the Lawler–Murty branch pruner active throughout (monolithic DP).
func TestOrbitOracleAllSmallGraphs(t *testing.T) {
	maxN := 6
	if testing.Short() {
		maxN = 5
	}
	for n := 1; n <= maxN; n++ {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			t.Parallel()
			pairs := n * (n - 1) / 2
			total := 1 << pairs
			workers := runtime.GOMAXPROCS(0)
			if workers > total {
				workers = total
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for mask := w; mask < total; mask += workers {
						if t.Failed() {
							return
						}
						checkOrbitInvariant(t, maskGraph(n, mask), fmt.Sprintf("n=%d mask=%d", n, mask))
					}
				}()
			}
			wg.Wait()
		})
	}
}

// orbitSignature drains an orbit-wrapped backend into the canonical
// (orbit key → size, cost) map used to compare orbit streams across
// engines that emit in different orders and pick different
// representatives.
func orbitSignature(t *testing.T, g *graph.Graph, b Backend) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, r := range drainResults(t, b.EnumerateContext(context.Background())) {
		key, _, exact := resultOrbitKey(g, r.H)
		if !exact {
			t.Fatalf("orbit key fell back")
		}
		if _, dup := out[key]; dup {
			t.Fatalf("backend %s emitted two members of one orbit", b.BackendKind())
		}
		out[key] = fmt.Sprintf("size=%d cost=%v", r.OrbitSize, r.Cost)
	}
	return out
}

// TestOrbitComposesAtomsAndBackends is the satellite property test: orbit
// mode must produce identical orbit-representative multisets — same
// orbits, same sizes, same costs — whether the inner engine is the
// monolithic DP (with branch pruning), the atom-decomposed DP (post-filter
// only), or either MIS backend (post-filter only), on random n=7..8
// graphs.
func TestOrbitComposesAtomsAndBackends(t *testing.T) {
	trials := 8
	if testing.Short() {
		trials = 2
	}
	rng := rand.New(rand.NewSource(63))
	c := cost.FillIn{}
	for _, n := range []int{7, 8} {
		for _, p := range []float64{0.3, 0.5} {
			for trial := 0; trial < trials; trial++ {
				g := gen.GNP(rng, n, p)
				label := fmt.Sprintf("gnp n=%d p=%v trial=%d", n, p, trial)

				mono, err := New(context.Background(), g, c, Options{NoDecompose: true})
				if err != nil {
					t.Fatalf("%s: monolithic init: %v", label, err)
				}
				ref := orbitSignature(t, g, NewOrbitBackend(mono, nil))

				dec, err := New(context.Background(), g, c, Options{})
				if err != nil {
					t.Fatalf("%s: decomposed init: %v", label, err)
				}
				alts := map[string]Backend{
					"dp-decomposed": NewOrbitBackend(dec, nil),
					"mis":           NewOrbitBackend(NewMISBackend(g, c, MISOptions{}), nil),
					"mis-scored":    NewOrbitBackend(NewMISBackend(g, c, MISOptions{Scored: true}), nil),
				}
				for name, b := range alts {
					sig := orbitSignature(t, g, b)
					if len(sig) != len(ref) {
						t.Fatalf("%s: %s found %d orbits, monolithic DP found %d", label, name, len(sig), len(ref))
					}
					for key, v := range ref {
						if sig[key] != v {
							t.Fatalf("%s: %s disagrees on an orbit: %q vs %q", label, name, sig[key], v)
						}
					}
				}
			}
		}
	}
}

// TestOrbitPrunerSkipsBranches pins the perf mechanism itself: on a
// symmetric input where Aut(G)-equivalent constraint sets arise in the
// Lawler–Murty tree, the monolithic DP must actually skip branches (not
// just post-filter results), the reduced stream must be shorter than the
// unreduced one, and the parallel-worker stream must be byte-identical to
// the sequential one (pruning happens in the deterministic
// single-threaded section). The 3×3 grid is the canonical firing input;
// cycles, notably, never collide (the include-prefix structure of LM
// constraint sets keeps them pairwise inequivalent there), which is why
// post-filtering — not pruning — carries the reduction guarantee.
func TestOrbitPrunerSkipsBranches(t *testing.T) {
	g := gen.Grid(3, 3) // |Aut| = 8
	c := cost.FillIn{}
	s, err := New(context.Background(), g, c, Options{NoDecompose: true})
	if err != nil {
		t.Fatalf("solver init: %v", err)
	}
	full := drainResults(t, s.Enumerate())

	counters := &OrbitCounters{}
	ob := NewOrbitBackend(s, counters)
	seq := drainResults(t, ob.EnumerateContext(context.Background()))
	par := drainResults(t, ob.EnumerateParallelContext(context.Background(), 4))

	if len(seq) >= len(full) {
		t.Fatalf("orbit stream not reduced: %d of %d", len(seq), len(full))
	}
	var sum int64
	for _, r := range seq {
		sum += r.OrbitSize
	}
	if sum != int64(len(full)) {
		t.Fatalf("Σ orbit sizes = %d, unreduced length = %d", sum, len(full))
	}
	st := counters.Snapshot()
	if st.SkippedBranches == 0 {
		t.Fatalf("pruner skipped no branches on the 3x3 grid (counters: %+v)", st)
	}
	if st.MaxGroupOrder != 8 {
		t.Fatalf("max group order %d, want 8", st.MaxGroupOrder)
	}
	if len(par) != len(seq) {
		t.Fatalf("parallel stream length %d, sequential %d", len(par), len(seq))
	}
	for i := range seq {
		if seq[i].H.EdgeSetKey() != par[i].H.EdgeSetKey() ||
			seq[i].OrbitSize != par[i].OrbitSize || seq[i].Cost != par[i].Cost {
			t.Fatalf("parallel stream diverges from sequential at result %d", i)
		}
	}
}

// TestOrbitInexactGroupDegradesToPassthrough pins the degraded mode: when
// the automorphism-group search cannot finish within budget, orbit mode
// must keep every result (OrbitSize 1) rather than dedup under an
// untrusted group.
func TestOrbitInexactGroupDegradesToPassthrough(t *testing.T) {
	g := gen.Cycle(9)
	c := cost.FillIn{}
	s, err := New(context.Background(), g, c, Options{NoDecompose: true})
	if err != nil {
		t.Fatalf("solver init: %v", err)
	}
	full := drainResults(t, s.Enumerate())

	counters := &OrbitCounters{}
	ob := &orbitBackend{inner: s, counters: counters}
	// Force the degraded path with a starved group computation.
	aut := g.AutomorphismsBudget(4)
	if aut.Exact() {
		t.Fatalf("budget 4 unexpectedly completed the C9 automorphism search")
	}
	ob.once.Do(func() {}) // mark computed
	ob.aut = aut

	reduced := drainResults(t, ob.EnumerateContext(context.Background()))
	if len(reduced) != len(full) {
		t.Fatalf("degraded mode dropped results: %d of %d", len(reduced), len(full))
	}
	for _, r := range reduced {
		if r.OrbitSize != 1 {
			t.Fatalf("degraded mode emitted OrbitSize %d", r.OrbitSize)
		}
	}
	if counters.Snapshot().InexactGroups != 1 {
		t.Fatalf("inexact-group counter not bumped: %+v", counters.Snapshot())
	}
}
