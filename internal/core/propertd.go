package core

import (
	"repro/internal/chordal"
	"repro/internal/td"
)

// TDEnumerator streams the proper tree decompositions of the solver's
// graph by increasing cost — Proposition 6.1 of the paper: proper tree
// decompositions are exactly the clique trees of minimal triangulations,
// clique-tree sets of distinct minimal triangulations are disjoint, and a
// bag cost gives every clique tree of one triangulation the same cost, so
// interleaving the two enumerations preserves the ranked order.
type TDEnumerator struct {
	inner *Enumerator
	cur   *Result
	ct    *chordal.CliqueTreeEnumerator
}

// EnumerateProperTDs starts the ranked enumeration of the proper tree
// decompositions of the solver's graph.
func (s *Solver) EnumerateProperTDs() *TDEnumerator {
	return &TDEnumerator{inner: s.Enumerate()}
}

// Next returns the next proper tree decomposition together with the
// minimal triangulation it is a clique tree of, or ok=false at the end.
func (t *TDEnumerator) Next() (*td.Decomposition, *Result, bool) {
	for {
		if t.ct != nil {
			if d, ok := t.ct.Next(); ok {
				return d, t.cur, true
			}
			t.ct = nil
		}
		r, ok := t.inner.Next()
		if !ok {
			return nil, nil, false
		}
		ct, err := chordal.EnumerateCliqueTrees(r.H)
		if err != nil {
			// The solver emits chordal graphs by construction.
			panic("core: enumerated triangulation is not chordal: " + err.Error())
		}
		t.cur = r
		t.ct = ct
	}
}
