package core

import (
	"math/rand"
	"testing"

	"repro/internal/chordal"
	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/td"
)

func TestProperTDsPaperExample(t *testing.T) {
	// H2 has 9 clique trees (3 ways to connect the three {u,v,wi}
	// cliques in a tree, times 3 attachment points for {v,v'}), and H1
	// has exactly 1 — so the paper example has 10 proper tree
	// decompositions, the width-2 family first.
	g := gen.PaperExample()
	s := NewSolver(g, cost.Width{})
	e := s.EnumerateProperTDs()
	var widths []int
	var tds []*td.Decomposition
	for {
		d, r, ok := e.Next()
		if !ok {
			break
		}
		if r == nil {
			t.Fatalf("missing triangulation for decomposition")
		}
		widths = append(widths, d.Width())
		tds = append(tds, d)
		if err := d.Validate(g); err != nil {
			t.Fatalf("invalid proper TD: %v", err)
		}
	}
	if len(tds) != 10 {
		t.Fatalf("got %d proper TDs, want 10", len(tds))
	}
	for i := 0; i < 9; i++ {
		if widths[i] != 2 {
			t.Fatalf("TD %d has width %d, want 2 (ranked order)", i, widths[i])
		}
	}
	if widths[9] != 3 {
		t.Fatalf("last TD has width %d, want 3", widths[9])
	}
	// All distinct as labeled trees over bags: compare via bag multiset +
	// edge structure key.
	seen := map[string]bool{}
	for _, d := range tds {
		key := tdKey(d)
		if seen[key] {
			t.Fatalf("duplicate proper TD emitted")
		}
		seen[key] = true
	}
}

// tdKey canonicalizes a decomposition as a sorted list of bag-key pairs
// per tree edge plus the bag set (trees on ≥2 nodes are determined by
// their edge sets).
func tdKey(d *td.Decomposition) string {
	var key string
	var parts []string
	for x, nb := range d.Adj {
		for _, y := range nb {
			if x < y {
				a, b := d.Bags[x].Key(), d.Bags[y].Key()
				if a > b {
					a, b = b, a
				}
				parts = append(parts, a+"~"+b)
			}
		}
	}
	for _, b := range d.Bags {
		parts = append(parts, b.Key())
	}
	// Order-insensitive fold.
	sortStrings(parts)
	for _, p := range parts {
		key += p + "|"
	}
	return key
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestProperTDsAreProper(t *testing.T) {
	// Every emitted decomposition must be a clique tree of its minimal
	// triangulation — the definition of proper (Theorem 2.2(3)).
	rng := rand.New(rand.NewSource(2121))
	for trial := 0; trial < 25; trial++ {
		g := gen.GNP(rng, 3+rng.Intn(4), 0.4)
		s := NewSolver(g, cost.FillIn{})
		e := s.EnumerateProperTDs()
		count := 0
		lastCost := -1.0
		for {
			d, r, ok := e.Next()
			if !ok {
				break
			}
			count++
			if count > 5000 {
				t.Fatalf("runaway proper TD enumeration")
			}
			cliques, err := chordal.MaximalCliques(r.H)
			if err != nil {
				t.Fatal(err)
			}
			if !d.IsCliqueTreeOf(r.H, cliques) {
				t.Fatalf("emitted TD is not a clique tree of its triangulation")
			}
			if r.Cost < lastCost {
				t.Fatalf("ranked order violated across proper TDs")
			}
			lastCost = r.Cost
		}
		if count == 0 && g.NumVertices() > 0 {
			t.Fatalf("no proper TDs emitted")
		}
	}
}

func TestProperTDSingleClique(t *testing.T) {
	s := NewSolver(gen.Complete(4), cost.Width{})
	e := s.EnumerateProperTDs()
	d, _, ok := e.Next()
	if !ok || d.NumNodes() != 1 {
		t.Fatalf("K4 should have one single-bag proper TD")
	}
	if _, _, ok := e.Next(); ok {
		t.Fatalf("K4 has exactly one proper TD")
	}
}
