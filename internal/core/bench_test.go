package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/graph"
)

func delayBenchGraph(n int, p float64, seed int64) *graph.Graph {
	return gen.ConnectedGNP(rand.New(rand.NewSource(seed)), n, p)
}

// BenchmarkEnumerateDelay measures the time per Next() call after the
// first result — the paper's "delay" — on paper-style G(n, p) instances.
// Each iteration advances a warm enumeration by one result; exhausted
// enumerations are restarted (and their first result consumed) off the
// clock. This is the headline number the incremental constraint-aware DP
// targets: every Next() solves one Lawler–Murty branch per fresh
// separator of the popped result.
func BenchmarkEnumerateDelay(b *testing.B) {
	cases := []struct {
		name string
		n    int
		p    float64
		c    cost.Cost
	}{
		{"n14p30width", 14, 0.30, cost.Width{}},
		{"n16p25width", 16, 0.25, cost.Width{}},
		{"n16p25fill", 16, 0.25, cost.FillIn{}},
	}
	for _, tc := range cases {
		for _, mode := range []string{"incremental", "fullresolve"} {
			b.Run(tc.name+"/"+mode, func(b *testing.B) {
				g := delayBenchGraph(tc.n, tc.p, 7)
				// Pin the monolithic machine: this benchmark measures the
				// incremental constraint-aware DP, and a sparse G(n,p)
				// instance may otherwise route through the atom
				// decomposition (BenchmarkAtomsDelay covers that).
				s, err := New(context.Background(), g, tc.c, Options{NoDecompose: true})
				if err != nil {
					b.Fatal(err)
				}
				s.SetFullResolve(mode == "fullresolve")
				e := s.Enumerate()
				if _, ok := e.Next(); !ok {
					b.Fatal("empty enumeration")
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, ok := e.Next(); !ok {
						b.StopTimer()
						e = s.Enumerate()
						if _, ok := e.Next(); !ok {
							b.Fatal("empty enumeration")
						}
						b.StartTimer()
					}
				}
			})
		}
	}
}

// BenchmarkBranchParallel measures the per-rank delay of the parallel
// branch solver at increasing worker counts on a separator-rich G(n, p)
// instance. Each Next() of the ranked enumeration solves one constrained
// branch per fresh separator of the popped result — independent solves
// the paper notes can run concurrently (§7.1) — so on a multi-core host
// the delay should shrink toward the longest single branch as workers
// grow. Run on one core the worker pool only adds scheduling overhead;
// interpret the scaling numbers alongside GOMAXPROCS.
func BenchmarkBranchParallel(b *testing.B) {
	g := delayBenchGraph(16, 0.25, 7)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			// Monolithic machine for the same reason as BenchmarkEnumerateDelay:
			// the branch fan-out being measured lives inside one DP instance.
			s, err := New(context.Background(), g, cost.FillIn{}, Options{NoDecompose: true})
			if err != nil {
				b.Fatal(err)
			}
			e := s.EnumerateParallelContext(context.Background(), workers)
			if _, ok := e.Next(); !ok {
				b.Fatal("empty enumeration")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := e.Next(); !ok {
					b.StopTimer()
					e = s.EnumerateParallelContext(context.Background(), workers)
					if _, ok := e.Next(); !ok {
						b.Fatal("empty enumeration")
					}
					b.StartTimer()
				}
			}
		})
	}
}

// BenchmarkMinTriangConstrained measures one constrained re-solve — the
// unit of work of every Lawler–Murty branch.
func BenchmarkMinTriangConstrained(b *testing.B) {
	g := delayBenchGraph(16, 0.25, 7)
	s := NewSolver(g, cost.Width{})
	r, err := s.MinTriang(nil)
	if err != nil {
		b.Fatal(err)
	}
	if len(r.Seps) < 2 {
		b.Fatal("want at least two separators")
	}
	cons := (&cost.Constraints{}).WithInclude(r.Seps[0]).WithExclude(r.Seps[1])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.MinTriang(cons); err != nil {
			b.Fatal(err)
		}
	}
}
