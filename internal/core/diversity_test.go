package core

import (
	"context"
	"testing"

	"repro/internal/cost"
	"repro/internal/gen"
)

// TestDiverseTopKWindowBeyondStream: a window far past the end of a
// finite enumeration truncates to what exists and still selects k.
func TestDiverseTopKWindowBeyondStream(t *testing.T) {
	g := gen.Cycle(6) // Catalan(4) = 14 minimal triangulations
	s := NewSolver(g, cost.FillIn{})
	div := s.DiverseTopK(5, 100000)
	if len(div) != 5 {
		t.Fatalf("selected %d, want 5", len(div))
	}
	best, err := s.MinTriang(nil)
	if err != nil {
		t.Fatal(err)
	}
	if div[0].Cost != best.Cost {
		t.Fatalf("optimum does not lead: %v vs %v", div[0].Cost, best.Cost)
	}
	for i := range div {
		for j := i + 1; j < len(div); j++ {
			if FillDistance(g, div[i], div[j]) == 0 {
				t.Fatalf("duplicate pair (%d,%d) in diverse set", i, j)
			}
		}
	}
}

// TestDiverseTopKExceedsTotal: k past the total result count returns the
// whole enumeration in rank order — there is nothing to choose between.
func TestDiverseTopKExceedsTotal(t *testing.T) {
	g := gen.Cycle(5) // 5 minimal triangulations
	s := NewSolver(g, cost.FillIn{})
	div := s.DiverseTopK(9, 50)
	ranked := s.TopK(5)
	if len(div) != 5 {
		t.Fatalf("selected %d, want all 5", len(div))
	}
	for i := range div {
		if div[i].Cost != ranked[i].Cost || FillDistance(g, div[i], ranked[i]) != 0 {
			t.Fatalf("rank %d: exhaustive selection must preserve rank order", i)
		}
	}
}

// TestDiverseTopKWidthBound: selection over a width-bounded solver only
// ever sees (and returns) in-bound triangulations, and a window past the
// bounded stream's end truncates exactly like an unbounded finite stream.
func TestDiverseTopKWidthBound(t *testing.T) {
	g := gen.PaperExample()
	unbounded := NewSolver(g, cost.Width{})
	all := unbounded.TopK(1 << 20)
	minWidth := all[0].Tree.Width()
	inBound := 0
	for _, r := range all {
		if r.Tree.Width() <= minWidth {
			inBound++
		}
	}
	if inBound == len(all) {
		t.Skipf("paper example has no width-%d exclusions; bound test vacuous", minWidth)
	}

	b := minWidth
	bounded, err := New(context.Background(), g, cost.Width{}, Options{WidthBound: &b})
	if err != nil {
		t.Fatal(err)
	}
	div := bounded.DiverseTopK(inBound+3, 1000)
	if len(div) != inBound {
		t.Fatalf("bounded diverse set has %d results, want the %d in-bound ones", len(div), inBound)
	}
	for i, r := range div {
		if w := r.Tree.Width(); w > minWidth {
			t.Fatalf("result %d has width %d past the bound %d", i, w, minWidth)
		}
	}
}

// TestDiverseSelectOrbitMode: selection composes with orbit-reduced
// enumeration — the pool is the reduced stream, picks stay distinct
// representatives, and orbit sizes survive selection (so the portfolio
// still reports how much of the unreduced space each pick stands for).
func TestDiverseSelectOrbitMode(t *testing.T) {
	g := gen.Cycle(6)
	s := NewSolver(g, cost.FillIn{})
	var counters OrbitCounters
	ob := NewOrbitBackend(s, &counters)
	e := ob.EnumerateContext(context.Background())
	var pool []*Result
	total := int64(0)
	for {
		r, ok := e.Next()
		if !ok {
			break
		}
		if r.OrbitSize < 1 {
			t.Fatalf("orbit-reduced result without orbit size: %+v", r)
		}
		total += r.OrbitSize
		pool = append(pool, r)
	}
	if total != 14 {
		t.Fatalf("orbit sizes sum to %d, want the 14 unreduced C6 triangulations", total)
	}
	if len(pool) >= 14 {
		t.Fatalf("stream not reduced: %d representatives", len(pool))
	}
	k := 2
	if len(pool) < k {
		k = len(pool)
	}
	idx := DiverseSelect(g, pool, k)
	if len(idx) != k || idx[0] != 0 {
		t.Fatalf("selection %v: want %d picks led by rank 0", idx, k)
	}
	for i := range idx {
		for j := i + 1; j < len(idx); j++ {
			if FillDistance(g, pool[idx[i]], pool[idx[j]]) == 0 {
				t.Fatalf("picks %d and %d coincide", idx[i], idx[j])
			}
		}
	}
	for _, j := range idx {
		if pool[j].OrbitSize < 1 {
			t.Fatalf("selection dropped the orbit size of rank %d", j)
		}
	}
}
