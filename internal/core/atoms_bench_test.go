package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/gen"
)

// BenchmarkAtomsDelay measures per-result delay on clique-separated
// instances — chains of dense blobs glued on small shared cliques — with
// the atom decomposition on ("decomposed") and off ("nodecompose"). The
// decomposition's promise is that delay depends on the largest atom
// rather than the whole graph: each Next() advances one atom's
// Lawler–Murty machine instead of branching over every separator of a
// whole-graph result. Recorded in BENCH_atoms.json; the acceptance bar of
// ISSUE 3 is ≥ 3x.
//
// Solver initialization (including the lazy parallel sub-solver builds,
// forced by the warm-up Next) runs off the clock; BenchmarkAtomsInit
// reports it separately.
func BenchmarkAtomsDelay(b *testing.B) {
	cases := []struct {
		name     string
		blobs    int
		blobSize int
		sepSize  int
		c        cost.Cost
	}{
		{"chain4x10fill", 4, 10, 2, cost.FillIn{}},
		{"chain4x8width", 4, 8, 2, cost.Width{}},
		{"chain6x8fill", 6, 8, 2, cost.FillIn{}},
	}
	for _, tc := range cases {
		g := gen.CliqueChain(rand.New(rand.NewSource(11)), tc.blobs, tc.blobSize, tc.sepSize, 0.5)
		for _, mode := range []struct {
			name  string
			noDec bool
		}{{"decomposed", false}, {"nodecompose", true}} {
			b.Run(tc.name+"/"+mode.name, func(b *testing.B) {
				s, err := New(context.Background(), g, tc.c, Options{NoDecompose: mode.noDec})
				if err != nil {
					b.Fatal(err)
				}
				e := s.Enumerate()
				if _, ok := e.Next(); !ok {
					b.Fatal("empty enumeration")
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, ok := e.Next(); !ok {
						b.StopTimer()
						e = s.Enumerate()
						if _, ok := e.Next(); !ok {
							b.Fatal("empty enumeration")
						}
						b.StartTimer()
					}
				}
			})
		}
	}
}

// BenchmarkAtomsInit measures solver initialization on the same
// clique-separated family: the decomposition replaces one whole-graph
// MinSep/PMC/block computation (exponential in the whole graph's
// separator structure) by one per atom plus a polynomial decomposition
// pass. Sub-solver builds are forced so both modes pay their full
// initialization inside the loop.
func BenchmarkAtomsInit(b *testing.B) {
	g := gen.CliqueChain(rand.New(rand.NewSource(11)), 4, 8, 2, 0.5)
	for _, mode := range []struct {
		name  string
		noDec bool
	}{{"decomposed", false}, {"nodecompose", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := New(context.Background(), g, cost.FillIn{}, Options{NoDecompose: mode.noDec})
				if err != nil {
					b.Fatal(err)
				}
				if r, err := s.MinTriang(nil); err != nil || r == nil {
					b.Fatal("no optimum")
				}
			}
		})
	}
}
