package core

import (
	"context"
	"encoding/binary"
	"math"
	"math/big"
	"sync"
	"sync/atomic"

	"repro/internal/cost"
	"repro/internal/graph"
)

// Orbit-reduced enumeration (see DESIGN.md, "Orbit-reduced enumeration"):
// a wrapper backend that collapses the ranked result stream modulo the
// automorphism group of the input graph. The unreduced stream emits every
// minimal triangulation individually, so a symmetric input pays for
// |Aut(G)|-many label-equivalent results per orbit; the orbit backend
// emits exactly one representative per orbit, stamps it with the orbit
// size (so consumers can reconstruct full counts: Σ OrbitSize over the
// reduced stream equals the unreduced stream length), and — on the
// monolithic ranked DP — additionally prunes Lawler–Murty branches whose
// constraint set is Aut(G)-equivalent to one already explored, cutting
// the constrained solves themselves, not just the emitted results.
//
// Soundness requires a label-invariant cost (every member of an orbit
// then has the same cost, so a representative speaks for its orbit and
// the ranked order survives the filtering). The serving tier gates the
// mode on that property; library callers are trusted.

// OrbitCounters aggregates the observability counters of one or more
// orbit backends. All fields are updated atomically; a zero value is
// ready to use. The serving tier keeps one per server and surfaces a
// snapshot in /v1/stats.
type OrbitCounters struct {
	// Enumerations counts orbit-mode enumeration starts; TrivialGroups
	// and InexactGroups count the ones that degraded to passthrough
	// (identity automorphism group, respectively budget-exhausted group
	// computation).
	Enumerations  atomic.Uint64
	TrivialGroups atomic.Uint64
	InexactGroups atomic.Uint64

	// Representatives counts emitted orbit representatives;
	// SkippedResults counts stream members suppressed as duplicates of an
	// already-emitted representative; SkippedBranches counts Lawler–Murty
	// branches pruned before their constrained solve.
	Representatives atomic.Uint64
	SkippedResults  atomic.Uint64
	SkippedBranches atomic.Uint64

	// InexactResultKeys / InexactBranchKeys count canonical-key searches
	// that blew their budget: the result (resp. branch) was then admitted
	// unreduced rather than risking an unsound skip.
	InexactResultKeys atomic.Uint64
	InexactBranchKeys atomic.Uint64

	maxGroupOrder atomic.Uint64 // largest |Aut(G)| seen, saturating
}

// noteGroupOrder raises the max-group-order watermark.
func (c *OrbitCounters) noteGroupOrder(order uint64) {
	for {
		cur := c.maxGroupOrder.Load()
		if order <= cur || c.maxGroupOrder.CompareAndSwap(cur, order) {
			return
		}
	}
}

// OrbitStats is a point-in-time snapshot of OrbitCounters, shaped for
// the service's /v1/stats payload.
type OrbitStats struct {
	Enumerations      uint64 `json:"enumerations"`
	TrivialGroups     uint64 `json:"trivial_groups"`
	InexactGroups     uint64 `json:"inexact_groups"`
	Representatives   uint64 `json:"representatives"`
	SkippedResults    uint64 `json:"skipped_results"`
	SkippedBranches   uint64 `json:"skipped_branches"`
	InexactResultKeys uint64 `json:"inexact_result_keys"`
	InexactBranchKeys uint64 `json:"inexact_branch_keys"`
	MaxGroupOrder     uint64 `json:"max_group_order"`
}

// Snapshot returns the current counter values.
func (c *OrbitCounters) Snapshot() OrbitStats {
	return OrbitStats{
		Enumerations:      c.Enumerations.Load(),
		TrivialGroups:     c.TrivialGroups.Load(),
		InexactGroups:     c.InexactGroups.Load(),
		Representatives:   c.Representatives.Load(),
		SkippedResults:    c.SkippedResults.Load(),
		SkippedBranches:   c.SkippedBranches.Load(),
		InexactResultKeys: c.InexactResultKeys.Load(),
		InexactBranchKeys: c.InexactBranchKeys.Load(),
		MaxGroupOrder:     c.maxGroupOrder.Load(),
	}
}

// orbitBackend wraps any Backend with the orbit post-filter, and — when
// the inner backend is a monolithic ranked DP solver — installs the
// branch pruner on its Lawler–Murty enumerator.
type orbitBackend struct {
	inner    Backend
	counters *OrbitCounters

	once sync.Once
	aut  *graph.AutGroup
}

// NewOrbitBackend wraps inner so its enumerations emit one representative
// per Aut(G)-orbit, each stamped with Result.OrbitSize. counters may be
// nil (a private set is used). The wrapped stream is deterministic (the
// SharedStream contract) and stays ranked whenever inner is ranked.
//
// The caller is responsible for only enabling the mode under a
// label-invariant cost; with a label-sensitive cost the orbit collapse
// would merge results of different costs.
func NewOrbitBackend(inner Backend, counters *OrbitCounters) Backend {
	if counters == nil {
		counters = &OrbitCounters{}
	}
	return &orbitBackend{inner: inner, counters: counters}
}

func (b *orbitBackend) BackendKind() BackendKind { return b.inner.BackendKind() }
func (b *orbitBackend) Ranked() bool             { return b.inner.Ranked() }
func (b *orbitBackend) Graph() *graph.Graph      { return b.inner.Graph() }
func (b *orbitBackend) Cost() cost.Cost          { return b.inner.Cost() }

// Aut returns the automorphism group the backend reduces under, computing
// it on first use.
func (b *orbitBackend) Aut() *graph.AutGroup {
	b.once.Do(func() { b.aut = b.inner.Graph().Automorphisms() })
	return b.aut
}

func (b *orbitBackend) EnumerateContext(ctx context.Context) *Enumerator {
	return b.EnumerateParallelContext(ctx, 1)
}

func (b *orbitBackend) EnumerateParallelContext(ctx context.Context, workers int) *Enumerator {
	aut := b.Aut()
	b.counters.Enumerations.Add(1)
	if o := aut.Order(); o.IsUint64() {
		b.counters.noteGroupOrder(o.Uint64())
	} else {
		b.counters.noteGroupOrder(math.MaxUint64)
	}
	f := &orbitFilter{g: b.inner.Graph(), counters: b.counters}
	switch {
	case !aut.Exact():
		// Degraded mode: the generators found are genuine but may not
		// generate all of Aut(G), so neither the orbit keys (which decide
		// equivalence under the FULL group) nor the orbit sizes are
		// trustworthy. Pass everything through with OrbitSize 1 — Σ orbit
		// sizes still equals the unreduced length, just without reduction.
		b.counters.InexactGroups.Add(1)
		f.passthrough = true
	case aut.IsTrivial():
		// Every orbit is a singleton: skip the per-result canonical keying
		// entirely. This is what keeps orbit mode near-free on asymmetric
		// inputs — one automorphism search at enumeration start, then a
		// plain passthrough.
		b.counters.TrivialGroups.Add(1)
		f.passthrough = true
	default:
		f.order = aut.Order()
		f.seen = make(map[string]struct{})
	}
	inner := b.inner.EnumerateParallelContext(ctx, workers)
	if !f.passthrough && inner.lm != nil {
		// Monolithic ranked DP: also skip Aut(G)-equivalent Lawler–Murty
		// branches before they spawn constrained solves. Sound only
		// because the post-filter above still runs — see DESIGN.md for
		// the induction; decomposed and MIS streams get post-filter only.
		if s, ok := b.inner.(*Solver); ok && s.dec == nil {
			inner.lm.pruner = newOrbitPruner(s, b.counters)
		}
	}
	f.inner = inner
	return &Enumerator{ext: f}
}

// orbitFilter is the post-filter extMachine: it keys every emitted
// triangulation by its Aut(G)-orbit canonical form, suppresses non-first
// orbit members, and stamps representatives with their orbit size
// |Aut(G)| / |Stab(H)| (orbit-stabilizer; the stabilizer order falls out
// of the same canonical search that produces the key).
type orbitFilter struct {
	inner       *Enumerator
	g           *graph.Graph
	order       *big.Int // |Aut(G)|; nil in passthrough mode
	counters    *OrbitCounters
	seen        map[string]struct{}
	passthrough bool
}

func (f *orbitFilter) Next() (*Result, bool) {
	for {
		r, ok := f.inner.Next()
		if !ok {
			return nil, false
		}
		if f.passthrough {
			return stampOrbit(r, 1), true
		}
		key, stab, exact := resultOrbitKey(f.g, r.H)
		if !exact {
			// Key search blew its budget: emit unreduced (OrbitSize 1,
			// not recorded) rather than risk suppressing a whole orbit.
			f.counters.InexactResultKeys.Add(1)
			return stampOrbit(r, 1), true
		}
		if _, dup := f.seen[key]; dup {
			f.counters.SkippedResults.Add(1)
			continue
		}
		f.seen[key] = struct{}{}
		f.counters.Representatives.Add(1)
		return stampOrbit(r, orbitSize(f.order, stab.Order())), true
	}
}

func (f *orbitFilter) Remaining() int { return f.inner.Remaining() }

// stampOrbit returns a shallow copy of r with OrbitSize set. The copy
// matters: results may be shared through the serving tier's stream cache,
// and the same solver-produced Result must not be mutated under a reader.
func stampOrbit(r *Result, size int64) *Result {
	out := *r
	out.OrbitSize = size
	return &out
}

// orbitSize computes |orbit| = |Aut(G)| / |Stab(H)| (exact by Lagrange),
// saturating at MaxInt64 for astronomically symmetric inputs.
func orbitSize(autOrder, stabOrder *big.Int) int64 {
	q := new(big.Int).Quo(autOrder, stabOrder)
	if !q.IsInt64() {
		return math.MaxInt64
	}
	return q.Int64()
}

// resultOrbitKey encodes "same triangulation up to Aut(G)" as a
// colored-graph canonical form: a 2k-vertex layered graph whose A-layer
// carries G, whose B-layer carries H, and whose only cross edges are the
// perfect matching identifying the layers, canonicalized under the
// ordered partition [A, B]. A cell-preserving isomorphism must map the
// matching to itself (it is the only A–B adjacency), so it acts as one
// permutation γ on both layers; preserving the A-layer makes γ an
// automorphism of G, preserving the B-layer makes γ(H) = H'. Hence keys
// are equal iff the triangulations lie in the same Aut(G)-orbit, and the
// layered graph's own cell-preserving automorphism group is exactly
// Stab_{Aut(G)}(H) — the stabilizer the orbit size needs.
func resultOrbitKey(g *graph.Graph, h *graph.Graph) (string, *graph.AutGroup, bool) {
	verts := g.Vertices().Slice()
	k := len(verts)
	l := graph.New(2 * k)
	a := make([]int, k)
	bb := make([]int, k)
	for i := 0; i < k; i++ {
		a[i], bb[i] = i, k+i
		l.AddEdge(i, k+i)
		for j := i + 1; j < k; j++ {
			if g.HasEdge(verts[i], verts[j]) {
				l.AddEdge(i, j)
			}
			if h.HasEdge(verts[i], verts[j]) {
				l.AddEdge(k+i, k+j)
			}
		}
	}
	return l.CanonicalKeyCells([][]int{a, bb}, 0)
}

// orbitPruner skips Lawler–Murty branches whose constraint set [I, X] is
// Aut(G)-equivalent to one already admitted. Equivalence is decided by a
// gadget canonical form: G plus one fresh node per constraint separator
// (adjacent to exactly its members), canonicalized under the partition
// [graph vertices, include nodes, exclude nodes]. Keys are recorded at
// admit time — before the branch is solved, and even if it then proves
// unsolvable — which is what the soundness induction in DESIGN.md
// requires. A pruned branch's region is the γ-image of its admitted
// twin's region, so every orbit retains a reachable member and the
// downstream post-filter still emits exactly one representative each.
type orbitPruner struct {
	s        *Solver
	counters *OrbitCounters
	seen     map[string]struct{}
	verts    []int       // active vertices of G, ascending
	idx      map[int]int // vertex label -> gadget index
	vcell    []int       // the graph-layer cell, reused across admits
}

func newOrbitPruner(s *Solver, counters *OrbitCounters) *orbitPruner {
	verts := s.g.Vertices().Slice()
	idx := make(map[int]int, len(verts))
	vcell := make([]int, len(verts))
	for i, v := range verts {
		idx[v] = i
		vcell[i] = i
	}
	return &orbitPruner{
		s:        s,
		counters: counters,
		seen:     make(map[string]struct{}),
		verts:    verts,
		idx:      idx,
		vcell:    vcell,
	}
}

// admit reports whether the branch carrying cc should be solved. It
// returns true (and records the key) for the first branch of each
// constraint-set orbit, true without recording when the set cannot be
// keyed exactly, and false for recognized repeats.
func (p *orbitPruner) admit(cc *compiledConstraints) bool {
	k := len(p.verts)
	m := len(cc.cons)
	l := graph.New(k + m)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if p.s.g.HasEdge(p.verts[i], p.verts[j]) {
				l.AddEdge(i, j)
			}
		}
	}
	var icell, xcell []int
	for t := range cc.cons {
		info := &cc.cons[t]
		if info.sepID < 0 {
			// A non-interned constraint separator (possible only through
			// the public API, never on the enumerator's own branches) has
			// no set to rebuild the gadget from here; admit unkeyed.
			return true
		}
		node := k + t
		p.s.seps[info.sepID].ForEach(func(v int) bool {
			l.AddEdge(node, p.idx[v])
			return true
		})
		if info.include {
			icell = append(icell, node)
		} else {
			xcell = append(xcell, node)
		}
	}
	key, _, exact := l.CanonicalKeyCells([][]int{p.vcell, icell, xcell}, 0)
	if !exact {
		p.counters.InexactBranchKeys.Add(1)
		return true
	}
	// CanonicalKeyCells drops empty cells from its size signature, so
	// ([V], I, ∅) and ([V], ∅, X) shapes could alias; prefix the cell
	// split explicitly.
	var pre [16]byte
	binary.LittleEndian.PutUint64(pre[:8], uint64(len(icell)))
	binary.LittleEndian.PutUint64(pre[8:], uint64(len(xcell)))
	key = string(pre[:]) + key
	if _, dup := p.seen[key]; dup {
		p.counters.SkippedBranches.Add(1)
		return false
	}
	p.seen[key] = struct{}{}
	return true
}
