package core

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/chordal"
	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/graph"
)

// This file is the oracle suite for the atom decomposition: on a corpus
// of random G(n,p), trees-plus-chords and disconnected graphs, the
// decomposed enumeration must be byte-identical to the NoDecompose
// whole-graph enumeration — same count, same cost at every rank, and,
// after the tie-normalization below, the same triangulation (fill set,
// bags, separators) at every rank. It mirrors the SetFullResolve oracle
// pattern of incremental_test.go.
//
// Within a run of equal-cost results the two machines order ties
// differently (Lawler–Murty insertion order vs product-frontier insertion
// order; both deterministic), so both streams are normalized by sorting
// each equal-cost run on the triangulation's canonical edge-set key
// before the rank-by-rank comparison. Costs are compared un-normalized.

const oracleCap = 6000 // outputs per enumeration; corpora stay well below

func drainAll(t *testing.T, s *Solver) []*Result {
	t.Helper()
	e := s.Enumerate()
	var out []*Result
	for {
		r, ok := e.Next()
		if !ok {
			return out
		}
		out = append(out, r)
		if len(out) > oracleCap {
			t.Fatalf("enumeration exceeded the oracle cap %d", oracleCap)
		}
	}
}

// normalizeTies sorts every run of equal-cost results by the canonical
// edge-set key of the triangulation, making the two machines' outputs
// directly comparable rank by rank.
func normalizeTies(rs []*Result) {
	i := 0
	for i < len(rs) {
		j := i
		for j < len(rs) && rs[j].Cost == rs[i].Cost {
			j++
		}
		sort.Slice(rs[i:j], func(a, b int) bool {
			return rs[i+a].H.EdgeSetKey() < rs[i+b].H.EdgeSetKey()
		})
		i = j
	}
}

func sepKeys(r *Result) []string {
	out := make([]string, len(r.Seps))
	for i, s := range r.Seps {
		out[i] = s.Key()
	}
	sort.Strings(out)
	return out
}

func bagKeys(r *Result) []string {
	out := make([]string, len(r.Bags))
	for i, b := range r.Bags {
		out[i] = b.Key()
	}
	sort.Strings(out)
	return out
}

// checkOracle asserts that the decomposed and NoDecompose enumerations of
// g under c (and optional width bound) agree, and that every decomposed
// result is a well-formed clique tree of its triangulation.
func checkOracle(t *testing.T, g *graph.Graph, c cost.Cost, bound *int) (decomposed bool) {
	t.Helper()
	ctx := context.Background()
	dec, err := New(ctx, g, c, Options{WidthBound: bound})
	if err != nil {
		t.Fatal(err)
	}
	mono, err := New(ctx, g, c, Options{WidthBound: bound, NoDecompose: true})
	if err != nil {
		t.Fatal(err)
	}

	got := drainAll(t, dec)
	want := drainAll(t, mono)
	if len(got) != len(want) {
		t.Fatalf("count: decomposed %d, monolithic %d (graph %q, cost %s)",
			len(got), len(want), g.EdgeSetKey(), c.Name())
	}
	for i := range got {
		if got[i].Cost != want[i].Cost {
			t.Fatalf("rank %d: cost %v vs %v (cost %s)", i, got[i].Cost, want[i].Cost, c.Name())
		}
	}
	normalizeTies(got)
	normalizeTies(want)
	seen := map[string]bool{}
	for i := range got {
		gk, wk := got[i].H.EdgeSetKey(), want[i].H.EdgeSetKey()
		if gk != wk {
			t.Fatalf("rank %d: triangulations differ after tie normalization (cost %s)", i, c.Name())
		}
		if seen[gk] {
			t.Fatalf("rank %d: duplicate triangulation emitted (cost %s)", i, c.Name())
		}
		seen[gk] = true
		if gf, wf := got[i].H.NumEdges(), want[i].H.NumEdges(); gf != wf {
			t.Fatalf("rank %d: fill %d vs %d", i, gf-g.NumEdges(), wf-g.NumEdges())
		}
		gb, wb := bagKeys(got[i]), bagKeys(want[i])
		gs, ws := sepKeys(got[i]), sepKeys(want[i])
		if len(gb) != len(wb) || len(gs) != len(ws) {
			t.Fatalf("rank %d: %d/%d bags, %d/%d seps", i, len(gb), len(wb), len(gs), len(ws))
		}
		for k := range gb {
			if gb[k] != wb[k] {
				t.Fatalf("rank %d: bag sets differ", i)
			}
		}
		for k := range gs {
			if gs[k] != ws[k] {
				t.Fatalf("rank %d: separator sets differ", i)
			}
		}
	}

	if dec.Decomposed() {
		// Structural validation of a sample of glued results: valid tree
		// decomposition, bags exactly the maximal cliques of H.
		for i := 0; i < len(got); i += 1 + len(got)/8 {
			r := got[i]
			if err := r.Tree.Validate(g); err != nil {
				t.Fatalf("rank %d: invalid glued tree: %v", i, err)
			}
			cliques, err := chordal.MaximalCliques(r.H)
			if err != nil {
				t.Fatalf("rank %d: combined H not chordal: %v", i, err)
			}
			if len(cliques) != len(r.Bags) {
				t.Fatalf("rank %d: %d bags, %d maximal cliques", i, len(r.Bags), len(cliques))
			}
			ck := map[string]bool{}
			for _, cl := range cliques {
				ck[cl.Key()] = true
			}
			for _, b := range r.Bags {
				if !ck[b.Key()] {
					t.Fatalf("rank %d: bag %v is not a maximal clique of H", i, b)
				}
			}
		}
		// The separator/PMC aggregates must be the monolithic sets.
		if ga, wa := len(dec.MinimalSeparators()), len(mono.MinimalSeparators()); ga != wa {
			t.Fatalf("aggregate seps %d vs %d", ga, wa)
		}
		if ga, wa := len(dec.PMCs()), len(mono.PMCs()); ga != wa {
			t.Fatalf("aggregate pmcs %d vs %d", ga, wa)
		}
	}
	return dec.Decomposed()
}

func oracleCosts() []cost.Cost {
	return []cost.Cost{cost.FillIn{}, cost.Width{}, cost.TotalStateSpace{}}
}

func TestAtomOracleGNP(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	decomposed := 0
	for _, n := range []int{7, 8, 9} {
		for _, p := range []float64{0.2, 0.35, 0.5} {
			trials := 4
			if testing.Short() {
				trials = 1
			}
			for i := 0; i < trials; i++ {
				g := gen.GNP(rng, n, p)
				for _, c := range oracleCosts() {
					if checkOracle(t, g, c, nil) {
						decomposed++
					}
				}
			}
		}
	}
	if decomposed == 0 {
		t.Fatalf("oracle corpus never exercised the decomposed path")
	}
}

func TestAtomOracleTreesPlusChords(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	decomposed := 0
	trials := 12
	if testing.Short() {
		trials = 3
	}
	for i := 0; i < trials; i++ {
		g := gen.TreePlusChords(rng, 10, 2)
		for _, c := range oracleCosts() {
			if checkOracle(t, g, c, nil) {
				decomposed++
			}
		}
	}
	if decomposed == 0 {
		t.Fatalf("trees-plus-chords corpus never decomposed")
	}
}

func TestAtomOracleDisconnected(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trials := 8
	if testing.Short() {
		trials = 2
	}
	for i := 0; i < trials; i++ {
		// Two independent G(n,p) components sharing a universe.
		a, b := 4+rng.Intn(2), 4+rng.Intn(2)
		g := graph.New(a + b)
		for u := 0; u < a; u++ {
			for v := u + 1; v < a; v++ {
				if rng.Float64() < 0.5 {
					g.AddEdge(u, v)
				}
			}
		}
		for u := a; u < a+b; u++ {
			for v := u + 1; v < a+b; v++ {
				if rng.Float64() < 0.5 {
					g.AddEdge(u, v)
				}
			}
		}
		for _, c := range oracleCosts() {
			if !checkOracle(t, g, c, nil) {
				t.Fatalf("disconnected graph did not decompose")
			}
		}
	}
}

func TestAtomOracleBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	decomposed := 0
	trials := 8
	if testing.Short() {
		trials = 2
	}
	for i := 0; i < trials; i++ {
		g := gen.TreePlusChords(rng, 9, 3)
		for _, b := range []int{2, 3, 4} {
			bound := b
			for _, c := range []cost.Cost{cost.FillIn{}, cost.Width{}} {
				if checkOracle(t, g, c, &bound) {
					decomposed++
				}
			}
		}
	}
	if decomposed == 0 {
		t.Fatalf("bounded corpus never decomposed")
	}
}

// TestAtomOracleParallelTopK asserts the parallel decomposed TopKContext
// emits exactly the sequential prefix — tie order included.
func TestAtomOracleParallelTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 6; i++ {
		g := gen.TreePlusChords(rng, 11, 3)
		s := NewSolver(g, cost.FillIn{})
		if !s.Decomposed() {
			continue
		}
		seq := s.TopK(40)
		par := s.TopKContext(context.Background(), 40, 4)
		if len(seq) != len(par) {
			t.Fatalf("parallel TopK %d results, sequential %d", len(par), len(seq))
		}
		for j := range seq {
			if seq[j].Cost != par[j].Cost || seq[j].H.EdgeSetKey() != par[j].H.EdgeSetKey() {
				t.Fatalf("rank %d: parallel deviates from sequential", j)
			}
		}
	}
}

// TestAtomOracleConstrained routes [I, X] constraints through the
// decomposed MinTriang and compares the optimum against the monolithic
// solver under the same constraints.
func TestAtomOracleConstrained(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	checked := 0
	for i := 0; i < 10; i++ {
		g := gen.TreePlusChords(rng, 9, 2)
		dec := NewSolver(g, cost.FillIn{})
		mono, _ := New(context.Background(), g, cost.FillIn{}, Options{NoDecompose: true})
		if !dec.Decomposed() {
			continue
		}
		seps := mono.MinimalSeparators()
		if len(seps) == 0 {
			continue
		}
		for trial := 0; trial < 12; trial++ {
			cons := &cost.Constraints{}
			for _, s := range seps {
				switch rng.Intn(4) {
				case 0:
					cons.Include = append(cons.Include, s)
				case 1:
					cons.Exclude = append(cons.Exclude, s)
				}
			}
			rd, errD := dec.MinTriang(cons)
			rm, errM := mono.MinTriang(cons)
			if (errD != nil) != (errM != nil) {
				t.Fatalf("constrained feasibility differs: dec=%v mono=%v", errD, errM)
			}
			if errD == nil && rd.Cost != rm.Cost {
				t.Fatalf("constrained optimum differs: %v vs %v", rd.Cost, rm.Cost)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatalf("constrained corpus never decomposed")
	}
}
