package core

import (
	"container/heap"
	"context"
	"sync"

	"repro/internal/cost"
	"repro/internal/vset"
)

// Enumerator streams the minimal triangulations of a graph by increasing
// cost — the RankedTriang algorithm of Figure 4. Obtain one from
// Solver.Enumerate and call Next until it reports exhaustion.
//
// Each partition of the unexplored space is an inclusion/exclusion
// constraint pair [I, X] held in a priority queue together with that
// partition's cheapest member; popping a partition emits its member and
// splits the remainder Lawler–Murty style over the member's minimal
// separators.
type Enumerator struct {
	s       *Solver
	ctx     context.Context // cancellation for the branch-solving hot loop
	queue   partitionQueue
	seq     int
	workers int // parallel branch solving when > 1
}

type partition struct {
	res  *Result
	cons *cost.Constraints
	seq  int
}

// partitionQueue is a min-heap on (cost, insertion sequence).
type partitionQueue []*partition

func (q partitionQueue) Len() int { return len(q) }
func (q partitionQueue) Less(i, j int) bool {
	if q[i].res.Cost != q[j].res.Cost {
		return q[i].res.Cost < q[j].res.Cost
	}
	return q[i].seq < q[j].seq
}
func (q partitionQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *partitionQueue) Push(x interface{}) { *q = append(*q, x.(*partition)) }
func (q *partitionQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return item
}

// Enumerate starts RankedTriang⟨κ⟩(G) over the solver's precomputed
// structures. The first result is a minimum-cost minimal triangulation.
func (s *Solver) Enumerate() *Enumerator {
	return s.EnumerateParallel(1)
}

// EnumerateContext is Enumerate bound to a context: once ctx is cancelled,
// Next stops solving Lawler–Murty branches and reports exhaustion, so an
// abandoned enumeration (e.g. a disconnected service session) stops
// burning CPU. Cancellation truncates the enumeration — results already
// queued are discarded, not drained.
func (s *Solver) EnumerateContext(ctx context.Context) *Enumerator {
	return s.EnumerateParallelContext(ctx, 1)
}

// EnumerateParallel is Enumerate with the Lawler–Murty branch
// optimizations solved by a pool of workers — the delay-reduction
// parallelization the paper sketches in Section 7.1 (footnote 3). The
// emitted sequence is identical to the sequential enumeration: branches
// are re-ordered deterministically before entering the queue. The solver's
// static structures are read-only during enumeration, so the cost function
// must merely be safe for concurrent Eval calls (all built-ins are).
func (s *Solver) EnumerateParallel(workers int) *Enumerator {
	return s.EnumerateParallelContext(context.Background(), workers)
}

// EnumerateParallelContext is EnumerateParallel bound to a context (see
// EnumerateContext). A background context makes every check a no-op, so
// existing callers pay nothing.
func (s *Solver) EnumerateParallelContext(ctx context.Context, workers int) *Enumerator {
	if workers < 1 {
		workers = 1
	}
	e := &Enumerator{s: s, ctx: ctx, workers: workers}
	if ctx.Err() == nil {
		if r, err := s.MinTriang(nil); err == nil {
			e.push(r, &cost.Constraints{})
		}
	}
	return e
}

func (e *Enumerator) push(r *Result, cons *cost.Constraints) {
	e.seq++
	heap.Push(&e.queue, &partition{res: r, cons: cons, seq: e.seq})
}

// Next returns the next minimal triangulation in non-decreasing cost
// order, or ok=false when the enumeration is complete. The time between
// consecutive calls is polynomial in the initialization size (polynomial
// delay under poly-MS, Theorem 4.4).
func (e *Enumerator) Next() (*Result, bool) {
	if len(e.queue) == 0 || e.ctx.Err() != nil {
		return nil, false
	}
	p := heap.Pop(&e.queue).(*partition)

	// Split the remainder of the partition. Let S1..Sk be the minimal
	// separators of the popped triangulation outside I; branch i forces
	// S1..S_{i-1} in and Si out. Note the loop runs to k (not the paper's
	// k-1; see DESIGN.md — the k-th branch "all but Sk" is nonempty in
	// general and dropping it loses completeness).
	inI := map[string]bool{}
	for _, s := range p.cons.Include {
		inI[s.Key()] = true
	}
	var fresh []vset.Set
	for _, s := range p.res.Seps {
		if !inI[s.Key()] {
			fresh = append(fresh, s)
		}
	}
	// Build the branch constraint sets, then solve them (in parallel when
	// workers > 1) and push any nonempty partitions in branch order, which
	// keeps the queue state — and hence the output — identical to the
	// sequential run.
	branches := make([]*cost.Constraints, len(fresh))
	cons := p.cons
	for i, si := range fresh {
		branches[i] = cons.WithExclude(si)
		cons = cons.WithInclude(si)
	}
	results := make([]*Result, len(branches))
	if e.workers <= 1 || len(branches) <= 1 {
		for i, b := range branches {
			if e.ctx.Err() != nil {
				break
			}
			if r, err := e.s.MinTriang(b); err == nil {
				results[i] = r
			}
		}
	} else {
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < e.workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					if e.ctx.Err() != nil {
						continue
					}
					if r, err := e.s.MinTriang(branches[i]); err == nil {
						results[i] = r
					}
				}
			}()
		}
		for i := range branches {
			work <- i
		}
		close(work)
		wg.Wait()
	}
	for i, r := range results {
		if r != nil {
			e.push(r, branches[i])
		}
	}
	return p.res, true
}

// Remaining reports how many partitions are currently queued (mainly for
// instrumentation).
func (e *Enumerator) Remaining() int { return len(e.queue) }

// TopK returns up to k minimal triangulations of the solver's graph by
// increasing cost.
func (s *Solver) TopK(k int) []*Result {
	e := s.Enumerate()
	var out []*Result
	for len(out) < k {
		r, ok := e.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}
