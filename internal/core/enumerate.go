package core

import (
	"container/heap"
	"context"
	"runtime"
	"sync"
)

// Enumerator streams the minimal triangulations of a graph. Obtain one
// from Solver.Enumerate (non-decreasing cost order) or any other
// core.Backend, and call Next until it reports exhaustion. It fronts one
// of three machines: the Lawler–Murty RankedTriang of Figure 4 on a
// monolithic solver, the ranked product-stream merge of the per-atom
// enumerations on a decomposed solver (product.go), or an alternative
// backend's machine (backend.go) — which is why the stream cache and
// serving tiers can treat every backend's output identically.
type Enumerator struct {
	lm  *lmEnumerator
	pm  *productEnumerator
	ext extMachine
}

// extMachine is the seam alternative backends plug their enumeration
// machinery into (see backend.go).
type extMachine interface {
	Next() (*Result, bool)
	Remaining() int
}

// Next returns the next minimal triangulation, or ok=false when the
// enumeration is complete. Solver enumerators emit in non-decreasing cost
// order with time between consecutive calls polynomial in the
// initialization size (polynomial delay under poly-MS, Theorem 4.4) — for
// a decomposed solver, in the initialization size of the atoms. Other
// backends emit per their Ranked contract.
func (e *Enumerator) Next() (*Result, bool) {
	if e.ext != nil {
		return e.ext.Next()
	}
	if e.pm != nil {
		return e.pm.Next()
	}
	return e.lm.Next()
}

// Remaining reports how many partitions (monolithic) or product-frontier
// combinations (decomposed) are currently queued. Pure instrumentation
// for tests and debugging — it is deliberately no longer exposed on the
// service wire, where it was misleading metadata (neither a bound on
// remaining results nor a measure of buffered work).
func (e *Enumerator) Remaining() int {
	if e.ext != nil {
		return e.ext.Remaining()
	}
	if e.pm != nil {
		return e.pm.Remaining()
	}
	return e.lm.Remaining()
}

// lmEnumerator is the monolithic machine — the RankedTriang algorithm of
// Figure 4.
//
// Each partition of the unexplored space is an inclusion/exclusion
// constraint pair [I, X] held in a priority queue together with that
// partition's cheapest member; popping a partition emits its member and
// splits the remainder Lawler–Murty style over the member's minimal
// separators. Constraint pairs are kept in compiled form and extended by
// single-separator deltas, so a branch solve never recompiles its
// ancestors' constraints and reuses their precomputed dirty cones.
type lmEnumerator struct {
	s       *Solver
	ctx     context.Context // cancellation for the branch-solving hot loop
	queue   partitionQueue
	seq     int
	workers int // parallel branch solving when > 1

	// pruner, when non-nil, drops branches whose constraint set is
	// Aut(G)-equivalent to an already-admitted one before their solve
	// (orbit-reduced enumeration; installed by NewOrbitBackend).
	pruner *orbitPruner
}

type partition struct {
	res *Result
	cc  *compiledConstraints // nil for the unconstrained root partition
	seq int
}

// partitionQueue is a min-heap on (cost, insertion sequence).
type partitionQueue []*partition

func (q partitionQueue) Len() int { return len(q) }
func (q partitionQueue) Less(i, j int) bool {
	if q[i].res.Cost != q[j].res.Cost {
		return q[i].res.Cost < q[j].res.Cost
	}
	return q[i].seq < q[j].seq
}
func (q partitionQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *partitionQueue) Push(x any)   { *q = append(*q, x.(*partition)) }
func (q *partitionQueue) Pop() any {
	old := *q
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return item
}

// Enumerate starts RankedTriang⟨κ⟩(G) over the solver's precomputed
// structures. The first result is a minimum-cost minimal triangulation.
func (s *Solver) Enumerate() *Enumerator {
	return s.EnumerateParallel(1)
}

// EnumerateContext is Enumerate bound to a context: once ctx is cancelled,
// Next stops solving Lawler–Murty branches and reports exhaustion, so an
// abandoned enumeration (e.g. a disconnected service session) stops
// burning CPU. Cancellation truncates the enumeration — results already
// queued are discarded, not drained.
func (s *Solver) EnumerateContext(ctx context.Context) *Enumerator {
	return s.EnumerateParallelContext(ctx, 1)
}

// EnumerateParallel is Enumerate with the Lawler–Murty branch
// optimizations solved by a pool of workers — the delay-reduction
// parallelization the paper sketches in Section 7.1 (footnote 3). The
// emitted sequence is identical to the sequential enumeration: branches
// are re-ordered deterministically before entering the queue. The solver's
// static structures are read-only during enumeration, so the cost function
// must merely be safe for concurrent Eval calls (all built-ins are).
func (s *Solver) EnumerateParallel(workers int) *Enumerator {
	return s.EnumerateParallelContext(context.Background(), workers)
}

// EnumerateParallelContext is EnumerateParallel bound to a context (see
// EnumerateContext). A background context makes every check a no-op, so
// existing callers pay nothing. On a decomposed solver the workers apply
// inside each atom's Lawler–Murty branch solving.
func (s *Solver) EnumerateParallelContext(ctx context.Context, workers int) *Enumerator {
	if workers < 1 {
		workers = 1
	}
	if s.dec != nil {
		return &Enumerator{pm: s.newProductEnumerator(ctx, workers)}
	}
	lm := &lmEnumerator{s: s, ctx: ctx, workers: workers}
	if ctx.Err() == nil {
		if r, err := s.MinTriang(nil); err == nil {
			lm.push(r, nil)
		}
	}
	return &Enumerator{lm: lm}
}

func (e *lmEnumerator) push(r *Result, cc *compiledConstraints) {
	e.seq++
	heap.Push(&e.queue, &partition{res: r, cc: cc, seq: e.seq})
}

// Next pops the cheapest partition, emits its member and splits the
// remainder (see the Enumerator doc).
func (e *lmEnumerator) Next() (*Result, bool) {
	if len(e.queue) == 0 || e.ctx.Err() != nil {
		return nil, false
	}
	p := heap.Pop(&e.queue).(*partition)
	// Queued partitions carry their constraint masks in released form
	// (O(depth) memory); rebuild them before branching on this one.
	e.s.rematerialize(p.cc)

	// Split the remainder of the partition. Let S1..Sk be the minimal
	// separators of the popped triangulation outside I; branch i forces
	// S1..S_{i-1} in and Si out. Note the loop runs to k (not the paper's
	// k-1; see DESIGN.md — the k-th branch "all but Sk" is nonempty in
	// general and dropping it loses completeness). Separators are compared
	// by interned ID against the partition's include mask — no set keys
	// are hashed on this path.
	var fresh []int
	for _, id := range p.res.sepIDs {
		if p.cc == nil || !p.cc.includeIDs.Has(id) {
			fresh = append(fresh, id)
		}
	}
	// Build each branch's constraints as a delta on the partition's: one
	// appended exclusion over the accumulated inclusions. The branches are
	// then solved (in parallel when workers > 1) and pushed in branch
	// order, which keeps the queue state — and hence the output —
	// identical to the sequential run.
	branches := make([]*compiledConstraints, len(fresh))
	cc := p.cc
	for i, id := range fresh {
		branches[i] = e.s.extendConstraints(cc, id, false)
		if i+1 < len(fresh) {
			cc = e.s.extendConstraints(cc, id, true)
		}
	}
	// Orbit mode: drop branches whose constraint set is equivalent, under
	// an automorphism of G, to one already admitted — their regions are
	// label-images of regions the admitted branches cover. Runs in the
	// single-threaded section so admit order (and hence the stream) stays
	// deterministic.
	if e.pruner != nil {
		kept := branches[:0]
		for _, b := range branches {
			if e.pruner.admit(b) {
				kept = append(kept, b)
			}
		}
		branches = kept
	}
	results := make([]*Result, len(branches))
	if e.workers <= 1 || len(branches) <= 1 {
		for i, b := range branches {
			if e.ctx.Err() != nil {
				break
			}
			if r, err := e.s.minTriangCompiled(b); err == nil {
				results[i] = r
			}
		}
	} else {
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < e.workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					if e.ctx.Err() != nil {
						continue
					}
					if r, err := e.s.minTriangCompiled(branches[i]); err == nil {
						results[i] = r
					}
				}
			}()
		}
		for i := range branches {
			work <- i
		}
		close(work)
		wg.Wait()
	}
	for i, r := range results {
		if r != nil {
			branches[i].release()
			e.push(r, branches[i])
		}
	}
	return p.res, true
}

// Remaining reports how many partitions are currently queued (mainly for
// instrumentation).
func (e *lmEnumerator) Remaining() int { return len(e.queue) }

// TopK returns up to k minimal triangulations of the solver's graph by
// increasing cost, solving Lawler–Murty branches over GOMAXPROCS workers
// — the same default TopKContext applies when its worker count is unset,
// so the two entry points agree (the emitted prefix is identical for
// every worker count; only the delay changes). Pass workers=1 to
// TopKContext for a strictly sequential enumeration.
func (s *Solver) TopK(k int) []*Result {
	return s.TopKContext(context.Background(), k, 0)
}

// effectiveWorkers normalizes a requested branch-solver worker count:
// positive counts are taken as-is (1 = sequential), zero and negative
// default to GOMAXPROCS. Callers passing "unset" get the parallel
// speed-up instead of silently running serially.
func effectiveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// TopKContext returns up to k minimal triangulations by increasing cost,
// solving Lawler–Murty branches with the given worker count and stopping
// early — possibly short of k results — once ctx is cancelled. A worker
// count of 1 means sequential; zero or negative means GOMAXPROCS. The
// emitted prefix is identical for every worker count.
func (s *Solver) TopKContext(ctx context.Context, k, workers int) []*Result {
	e := s.EnumerateParallelContext(ctx, effectiveWorkers(workers))
	var out []*Result
	for len(out) < k {
		r, ok := e.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}
