package core

import (
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(12321))
	for trial := 0; trial < 20; trial++ {
		g := gen.GNP(rng, 3+rng.Intn(6), 0.4)
		c := cost.FillIn{}
		seq := NewSolver(g, c).Enumerate()
		par := NewSolver(g, c).EnumerateParallel(4)
		for step := 0; ; step++ {
			rs, okS := seq.Next()
			rp, okP := par.Next()
			if okS != okP {
				t.Fatalf("trial %d step %d: exhaustion mismatch", trial, step)
			}
			if !okS {
				break
			}
			if rs.H.EdgeSetKey() != rp.H.EdgeSetKey() {
				t.Fatalf("trial %d step %d: parallel emitted a different triangulation", trial, step)
			}
			if rs.Cost != rp.Cost {
				t.Fatalf("trial %d step %d: cost mismatch %v vs %v", trial, step, rs.Cost, rp.Cost)
			}
		}
	}
}

func TestParallelWorkerClamping(t *testing.T) {
	s := NewSolver(gen.Cycle(5), cost.Width{})
	e := s.EnumerateParallel(0) // clamps to 1
	n := 0
	for {
		if _, ok := e.Next(); !ok {
			break
		}
		n++
	}
	if n != 5 {
		t.Fatalf("C5: %d results, want 5", n)
	}
}

func TestFillDistance(t *testing.T) {
	g := gen.PaperExample()
	s := NewSolver(g, cost.FillIn{})
	results := s.TopK(2)
	if len(results) != 2 {
		t.Fatalf("need both paper triangulations")
	}
	if d := FillDistance(g, results[0], results[0]); d != 0 {
		t.Fatalf("self distance = %d", d)
	}
	// H2 fills {u,v}; H1 fills the three w-pairs: symmetric diff 4.
	if d := FillDistance(g, results[0], results[1]); d != 4 {
		t.Fatalf("H1–H2 distance = %d, want 4", d)
	}
	if FillDistance(g, results[0], results[1]) != FillDistance(g, results[1], results[0]) {
		t.Fatalf("distance not symmetric")
	}
}

func TestDiverseTopK(t *testing.T) {
	g := gen.Cycle(7)
	s := NewSolver(g, cost.FillIn{})
	div := s.DiverseTopK(4, 0)
	if len(div) != 4 {
		t.Fatalf("selected %d", len(div))
	}
	// The optimum always leads.
	best, err := s.MinTriang(nil)
	if err != nil {
		t.Fatal(err)
	}
	if div[0].Cost != best.Cost {
		t.Fatalf("diverse set does not start at the optimum")
	}
	// All distinct (pairwise distance > 0).
	for i := range div {
		for j := i + 1; j < len(div); j++ {
			if FillDistance(g, div[i], div[j]) == 0 {
				t.Fatalf("duplicate in diverse set")
			}
		}
	}
	// Greedy max-min beats taking the ranked prefix: compare the minimum
	// pairwise distance of the two sets.
	prefix := s.TopK(4)
	if minPairDist(g, div) < minPairDist(g, prefix) {
		t.Fatalf("diverse selection worse than ranked prefix: %d < %d",
			minPairDist(g, div), minPairDist(g, prefix))
	}
	// Degenerate inputs.
	if got := s.DiverseTopK(0, 10); got != nil {
		t.Fatalf("k=0 returned results")
	}
	if got := s.DiverseTopK(1000, 2000); len(got) != 42 {
		// C7 has Catalan(5) = 42 minimal triangulations.
		t.Fatalf("exhaustive diverse selection = %d, want 42", len(got))
	}
}

func minPairDist(g *graph.Graph, rs []*Result) int {
	min := int(^uint(0) >> 1)
	for i := range rs {
		for j := i + 1; j < len(rs); j++ {
			if d := FillDistance(g, rs[i], rs[j]); d < min {
				min = d
			}
		}
	}
	return min
}
