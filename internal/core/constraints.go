package core

import (
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/vset"
)

// compiledConstraints is the DP-ready form of κ[I,X] (Section 6.1): the
// non-edge pairs of every constraint separator get global indices, each
// block solution carries a coverage bitmask over those indices, and the
// clique test for a constraint at a block (S, C) treats pairs inside S as
// present — they are edges of the realization R(S, C), which is exactly
// what makes the local check agree with the global semantics (Lemma 6.2).
type compiledConstraints struct {
	words int
	pairs []conPair
	cons  []conInfo
}

type conPair struct {
	u, v int
	con  int
}

type conInfo struct {
	span    vset.Set
	include bool
	first   int // index of first pair in pairs
	count   int
}

// compileConstraints indexes the non-edge pairs of each constraint
// separator. Pairs that are edges of g are always present in any
// triangulation and are omitted.
func compileConstraints(g *graph.Graph, c *cost.Constraints) *compiledConstraints {
	if c.IsEmpty() {
		return nil
	}
	cc := &compiledConstraints{}
	add := func(s vset.Set, include bool) {
		info := conInfo{span: s, include: include, first: len(cc.pairs)}
		vs := s.Slice()
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				if !g.HasEdge(vs[i], vs[j]) {
					cc.pairs = append(cc.pairs, conPair{u: vs[i], v: vs[j], con: len(cc.cons)})
				}
			}
		}
		info.count = len(cc.pairs) - info.first
		cc.cons = append(cc.cons, info)
	}
	for _, s := range c.Include {
		add(s, true)
	}
	for _, s := range c.Exclude {
		add(s, false)
	}
	cc.words = (len(cc.pairs) + 63) / 64
	return cc
}

// addBagPairs marks every constraint pair contained in the bag omega.
func (cc *compiledConstraints) addBagPairs(mask []uint64, omega vset.Set) {
	for i, p := range cc.pairs {
		if omega.Contains(p.u) && omega.Contains(p.v) {
			mask[i/64] |= 1 << uint(i%64)
		}
	}
}

// check evaluates every constraint whose separator lies inside the block
// span: inclusion separators must already be cliques of the block's
// triangulation (pairs covered by a bag or inside the block separator),
// exclusion separators must not. It returns false when some constraint is
// violated, i.e. κ[I,X] = ∞ for this sub-decomposition.
func (cc *compiledConstraints) check(span, blockSep vset.Set, mask []uint64) bool {
	for _, info := range cc.cons {
		if !info.span.SubsetOf(span) {
			continue
		}
		clique := true
		for i := info.first; i < info.first+info.count; i++ {
			if mask[i/64]&(1<<uint(i%64)) != 0 {
				continue
			}
			p := cc.pairs[i]
			if blockSep.Contains(p.u) && blockSep.Contains(p.v) {
				continue
			}
			clique = false
			break
		}
		if clique != info.include {
			return false
		}
	}
	return true
}
