package core

import (
	"repro/internal/cost"
	"repro/internal/intern"
	"repro/internal/vset"
)

// sepCov is the precomputed constraint geometry of one separator: its
// missing (non-edge) pairs and, precomputation budget permitting, for
// every PMC and every potential block separator a bitmask over those
// pairs. The DP-time clique test for a constraint on this separator
// (Section 6.1, Lemma 6.2) then degenerates to a handful of word ORs —
// no per-pair set probes in the hot loop. Built lazily (once per
// separator per solver) because only separators that actually appear in
// constraints need it.
//
// The two tables together cost (#pmcs + #seps + 1) × words words per
// separator — quadratic over separator-rich graphs — so they are only
// materialized while the solver's covBudget lasts. Past the budget a
// sepCov stays "lean" (byPMC/bySep nil) and the same masks are derived
// on demand from the pair list: exactly as correct, per-solve instead of
// per-solver memory, a constant factor slower.
type sepCov struct {
	npairs int
	words  int      // ceil(npairs/64); the constraint's slot width
	pairs  [][2]int // the missing pairs themselves (lean-path source)
	all    []uint64 // npairs ones — the "is a clique" target
	byPMC  []uint64 // pmcID*words+w: pairs covered by that PMC's bag
	bySep  []uint64 // (sepID+1)*words+w: pairs inside that block separator
	//                 slot 0 is the empty separator (the top block)
}

// markPairs sets, in dst[base:], the bits of the pairs fully inside
// holder.
func (cov *sepCov) markPairs(dst []uint64, base int, holder vset.Set) {
	for k, p := range cov.pairs {
		if holder.Contains(p[0]) && holder.Contains(p[1]) {
			dst[base+k/64] |= 1 << uint(k%64)
		}
	}
}

// buildSepCovLean fills only the pair list and clique target of cov —
// the parts every mode needs and the whole of lean mode.
func (s *Solver) buildSepCovLean(cov *sepCov, sep vset.Set) {
	vs := sep.Slice()
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if !s.g.HasEdge(vs[i], vs[j]) {
				cov.pairs = append(cov.pairs, [2]int{vs[i], vs[j]})
			}
		}
	}
	cov.npairs = len(cov.pairs)
	cov.words = (len(cov.pairs) + 63) / 64
	cov.all = make([]uint64, cov.words)
	for k := range cov.pairs {
		cov.all[k/64] |= 1 << uint(k%64)
	}
}

// buildSepCov fills cov for sep against the solver's PMC and separator
// tables, charging the precomputed tables to the solver's budget.
func (s *Solver) buildSepCov(cov *sepCov, sep vset.Set) {
	s.buildSepCovLean(cov, sep)
	tables := int64(len(s.pmcs)+s.sepTab.Len()+1) * int64(cov.words)
	if s.covBudget.Add(-tables) < 0 {
		// Lean mode: masks derived from pairs on demand. Refund the
		// charge so one oversized separator doesn't disable
		// precomputation for every smaller one after it.
		s.covBudget.Add(tables)
		return
	}
	cov.byPMC = make([]uint64, len(s.pmcs)*cov.words)
	for pi, omega := range s.pmcs {
		cov.markPairs(cov.byPMC, pi*cov.words, omega)
	}
	cov.bySep = make([]uint64, (s.sepTab.Len()+1)*cov.words)
	for si, t := range s.seps {
		cov.markPairs(cov.bySep, (si+1)*cov.words, t)
	}
}

// compiledConstraints is the DP-ready form of κ[I,X]: one word-aligned
// coverage slot per constraint, each backed by its separator's
// precomputed sepCov, plus the two interned-ID masks the incremental
// solver branches on. dirty marks the blocks whose span contains some
// constraint separator — the only blocks whose DP solution can deviate
// from the unconstrained baseline — and includeIDs marks the separator
// IDs of the inclusion side so the enumerator finds the fresh separators
// of a popped result without hashing set keys.
type compiledConstraints struct {
	words      int // total coverage words across constraints
	cons       []conInfo
	dirty      intern.Bitset // over block indices
	includeIDs intern.Bitset // over separator IDs
}

type conInfo struct {
	cov     *sepCov
	cone    intern.Bitset // blocks whose span contains the separator
	sepID   int           // interned separator ID, or -1 for extras
	off     int           // word offset of this constraint's coverage slot
	include bool
}

// compileConstraints builds the compiled form from the public constraint
// pair. Constraint separators that are not minimal separators of g
// (possible through the public API) get an on-demand sepCov and a span
// scan for their cone.
func (s *Solver) compileConstraints(c *cost.Constraints) *compiledConstraints {
	if c.IsEmpty() {
		return nil
	}
	cc := &compiledConstraints{
		dirty:      intern.NewBitset(len(s.blocks)),
		includeIDs: intern.NewBitset(s.sepTab.Len()),
	}
	for _, sep := range c.Include {
		s.addConstraint(cc, sep, true)
	}
	for _, sep := range c.Exclude {
		s.addConstraint(cc, sep, false)
	}
	return cc
}

// addConstraint appends one separator's constraint to cc.
func (s *Solver) addConstraint(cc *compiledConstraints, sep vset.Set, include bool) {
	info := conInfo{sepID: -1}
	if id, ok := s.sepTab.Lookup(sep); ok {
		info.cov = s.sepCovFor(id)
		info.cone = s.dirtyBySep[id]
		info.sepID = id
		if include {
			cc.includeIDs.Set(id)
		}
	} else {
		info.cov, info.cone = s.extraCovFor(sep)
	}
	info.include = include
	info.off = cc.words
	cc.words += info.cov.words
	cc.dirty.Or(info.cone)
	cc.cons = append(cc.cons, info)
}

// release drops the materialized dirty/includeIDs masks — O(#blocks +
// #seps) bits per compiled set — once a branch has been solved and only
// waits in the partition queue. rematerialize rebuilds both from the
// cons list (each entry keeps its cone and separator ID), so a queued
// partition costs O(constraint depth) memory like the uncompiled
// representation did.
func (cc *compiledConstraints) release() {
	cc.dirty = nil
	cc.includeIDs = nil
}

func (s *Solver) rematerialize(cc *compiledConstraints) {
	if cc == nil || cc.dirty != nil {
		return
	}
	cc.dirty = intern.NewBitset(len(s.blocks))
	cc.includeIDs = intern.NewBitset(s.sepTab.Len())
	for i := range cc.cons {
		info := &cc.cons[i]
		cc.dirty.Or(info.cone)
		if info.include && info.sepID >= 0 {
			cc.includeIDs.Set(info.sepID)
		}
	}
}

// extendConstraints returns cc (nil for the empty pair) extended with one
// more constraint on an interned separator — the single-separator branch
// delta of the Lawler–Murty split. The parent's coverage layout is a
// prefix of the child's; its dirty cone is a precomputed mask OR rather
// than a recompile.
func (s *Solver) extendConstraints(cc *compiledConstraints, sepID int, include bool) *compiledConstraints {
	out := &compiledConstraints{}
	if cc == nil {
		out.dirty = intern.NewBitset(len(s.blocks))
		out.includeIDs = intern.NewBitset(s.sepTab.Len())
	} else {
		out.words = cc.words
		out.cons = append(make([]conInfo, 0, len(cc.cons)+1), cc.cons...)
		out.dirty = cc.dirty.Clone()
		out.includeIDs = cc.includeIDs.Clone()
	}
	cov := s.sepCovFor(sepID)
	out.cons = append(out.cons, conInfo{
		cov:     cov,
		cone:    s.dirtyBySep[sepID],
		sepID:   sepID,
		off:     out.words,
		include: include,
	})
	out.words += cov.words
	out.dirty.Or(s.dirtyBySep[sepID])
	if include {
		out.includeIDs.Set(sepID)
	}
	return out
}

// bagMask returns the full coverage-mask contribution of the PMC Ω with
// index pmcID under cc — the concatenation, per constraint slot, of the
// pairs that PMC's bag covers. Memoized in the call scratch: a PMC is a
// candidate at many blocks of one solve, so later uses are a single
// contiguous OR.
func (cc *compiledConstraints) bagMask(sc *solveScratch, pmcID int, omega vset.Set) []uint64 {
	m := sc.bagArena[pmcID*cc.words : (pmcID+1)*cc.words]
	if !sc.bagDone[pmcID] {
		for w := range m {
			m[w] = 0
		}
		for i := range cc.cons {
			info := &cc.cons[i]
			cov := info.cov
			if cov.byPMC == nil {
				cov.markPairs(m[info.off:], 0, omega) // lean sepCov
				continue
			}
			base := pmcID * cov.words
			for w := 0; w < cov.words; w++ {
				m[info.off+w] |= cov.byPMC[base+w]
			}
		}
		sc.bagDone[pmcID] = true
	}
	return m
}

// activeCon is one constraint applicable at the block being solved, with
// its clique target already reduced by the block separator: need holds
// the pairs a candidate's subtree coverage must supply. Pairs inside the
// block separator are edges of the realization R(S, C) and count as
// covered — which is exactly what makes the local check agree with the
// global semantics, Lemma 6.2.
type activeCon struct {
	need    []uint64
	off     int
	words   int
	include bool
}

// activeAt collects into sc the constraints whose separator lies inside
// the span of block bi (precomputed as the constraint's cone), hoisting
// the cone test and the block-separator reduction out of the
// per-candidate loop.
func (cc *compiledConstraints) activeAt(bi, blockSepID int, blockSep vset.Set, sc *solveScratch) []activeCon {
	act := sc.act[:0]
	arena := sc.needArena[:0] // cap ≥ cc.words: appends never reallocate
	for i := range cc.cons {
		info := &cc.cons[i]
		if !info.cone.Has(bi) {
			continue
		}
		cov := info.cov
		start := len(arena)
		if cov.bySep != nil {
			bs := (blockSepID + 1) * cov.words
			for w := 0; w < cov.words; w++ {
				arena = append(arena, cov.all[w]&^cov.bySep[bs+w])
			}
		} else {
			// Lean sepCov: derive the block-separator reduction from the
			// pair list.
			arena = append(arena, cov.all...)
			need := arena[start:]
			for k, p := range cov.pairs {
				if blockSep.Contains(p[0]) && blockSep.Contains(p[1]) {
					need[k/64] &^= 1 << uint(k%64)
				}
			}
		}
		act = append(act, activeCon{
			need:    arena[start:],
			off:     info.off,
			words:   cov.words,
			include: info.include,
		})
	}
	sc.act = act
	sc.needArena = arena[:0]
	return act
}

// checkActive evaluates the block's active constraints against one
// candidate's coverage mask: inclusion separators must already be cliques
// of the candidate's sub-triangulation (every missing pair covered by a
// bag or inside the block separator), exclusion separators must not. It
// returns false when some constraint is violated, i.e. κ[I,X] = ∞ for
// this sub-decomposition.
func checkActive(act []activeCon, mask []uint64) bool {
	for i := range act {
		a := &act[i]
		clique := true
		for w := 0; w < a.words; w++ {
			if a.need[w]&^mask[a.off+w] != 0 {
				clique = false
				break
			}
		}
		if clique != a.include {
			return false
		}
	}
	return true
}
