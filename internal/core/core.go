package core
