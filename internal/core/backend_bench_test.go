package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/graph"
)

// BenchmarkBackendCrossover measures the quantity SelectBackend trades on:
// the ranked DP's full initialization (NewSolverContext + Prepare — exactly
// what the service runs inside InitTimeout) against the MIS backends'
// time-to-first-result, which needs no PMC table at all. Two regimes:
//
//   - gnp26: separator-rich ConnectedGNP(n=26, p=0.35), ~700 minimal
//     separators — the DP pays seconds of table-building before rank 1,
//     while MIS streams its first triangulation in microseconds. This is
//     the degraded-mode case ?backend=mis exists for.
//   - tree40c3: TreePlusChords(n=40, chords=3), near-chordal — both are
//     cheap and the DP's ranked order is worth keeping, which is why the
//     auto probe routes such graphs to DP.
//
// Recorded in BENCH_backend.json; the acceptance bar of ISSUE 6 is MIS
// time-to-first-result ≥ 10x below DP init on the separator-rich instance.
func BenchmarkBackendCrossover(b *testing.B) {
	cases := []struct {
		name string
		make func() *graph.Graph
	}{
		{"gnp26", func() *graph.Graph {
			return gen.ConnectedGNP(rand.New(rand.NewSource(42)), 26, 0.35)
		}},
		{"tree40c3", func() *graph.Graph {
			return gen.TreePlusChords(rand.New(rand.NewSource(43)), 40, 3)
		}},
	}
	c := cost.FillIn{}
	for _, tc := range cases {
		g := tc.make()
		b.Run(tc.name+"/dp-init", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := NewSolverContext(context.Background(), g, c)
				if err != nil {
					b.Fatal(err)
				}
				if err := s.Prepare(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tc.name+"/dp-first", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := NewSolverContext(context.Background(), g, c)
				if err != nil {
					b.Fatal(err)
				}
				if _, ok := s.EnumerateContext(context.Background()).Next(); !ok {
					b.Fatal("empty enumeration")
				}
			}
		})
		b.Run(tc.name+"/mis-first", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := NewMISBackend(g, c, MISOptions{}).EnumerateContext(context.Background())
				if _, ok := e.Next(); !ok {
					b.Fatal("empty enumeration")
				}
			}
		})
		b.Run(tc.name+"/mis-scored-first", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := NewMISBackend(g, c, MISOptions{Scored: true}).EnumerateContext(context.Background())
				if _, ok := e.Next(); !ok {
					b.Fatal("empty enumeration")
				}
			}
		})
	}
}
