package core

import (
	"repro/internal/graph"
)

// FillDistance is the diversification metric suggested by the paper's
// concluding remarks, made concrete: the size of the symmetric difference
// of the two triangulations' fill sets. Two triangulations at distance 0
// are identical (Parra–Scheffler: a minimal triangulation is determined by
// its fill set).
func FillDistance(g *graph.Graph, a, b *Result) int {
	fills := func(h *graph.Graph) map[[2]int]bool {
		out := map[[2]int]bool{}
		for _, e := range h.Edges() {
			if !g.HasEdge(e[0], e[1]) {
				out[e] = true
			}
		}
		return out
	}
	fa, fb := fills(a.H), fills(b.H)
	d := 0
	for e := range fa {
		if !fb[e] {
			d++
		}
	}
	for e := range fb {
		if !fa[e] {
			d++
		}
	}
	return d
}

// DiverseTopK addresses the diversification question of the paper's
// concluding remarks: among the `window` cheapest minimal triangulations,
// greedily select k that maximize the minimum pairwise fill distance,
// always keeping the overall optimum first. The result is a small
// portfolio of cheap-but-structurally-different decompositions for the
// application to evaluate, rather than k near-duplicates.
//
// window ≤ 0 means 4k. The enumeration stops early when the space is
// exhausted.
func (s *Solver) DiverseTopK(k, window int) []*Result {
	if k <= 0 {
		return nil
	}
	if window < k {
		window = 4 * k
	}
	pool := s.TopK(window)
	if len(pool) <= k {
		return pool
	}
	chosen := []*Result{pool[0]} // the optimum is non-negotiable
	used := map[int]bool{0: true}
	for len(chosen) < k {
		bestIdx, bestDist := -1, -1
		for i, cand := range pool {
			if used[i] {
				continue
			}
			minDist := int(^uint(0) >> 1)
			for _, c := range chosen {
				if d := FillDistance(s.g, cand, c); d < minDist {
					minDist = d
				}
			}
			if minDist > bestDist {
				bestIdx, bestDist = i, minDist
			}
		}
		if bestIdx == -1 {
			break
		}
		used[bestIdx] = true
		chosen = append(chosen, pool[bestIdx])
	}
	return chosen
}
