package core

import (
	"repro/internal/graph"
)

// FillDistance is the diversification metric suggested by the paper's
// concluding remarks, made concrete: the size of the symmetric difference
// of the two triangulations' fill sets. Two triangulations at distance 0
// are identical (Parra–Scheffler: a minimal triangulation is determined by
// its fill set).
func FillDistance(g *graph.Graph, a, b *Result) int {
	fills := func(h *graph.Graph) map[[2]int]bool {
		out := map[[2]int]bool{}
		for _, e := range h.Edges() {
			if !g.HasEdge(e[0], e[1]) {
				out[e] = true
			}
		}
		return out
	}
	fa, fb := fills(a.H), fills(b.H)
	d := 0
	for e := range fa {
		if !fb[e] {
			d++
		}
	}
	for e := range fb {
		if !fa[e] {
			d++
		}
	}
	return d
}

// DiverseSelect greedily picks up to k indices into pool maximizing the
// minimum pairwise fill distance of the picked triangulations, always
// keeping index 0 (the ranked optimum) first. The returned indices are in
// selection order — the optimum, then each pick maximizing its distance
// to everything chosen so far — so a prefix of the selection is itself a
// valid (smaller) diverse portfolio. When the pool holds k or fewer
// results every index is returned in rank order: there is nothing to
// choose between.
//
// The pool is any ranked (or merely deterministic) prefix of an
// enumeration: Solver.DiverseTopK feeds it from TopK, and the serving
// tier feeds it from a shared materialized stream so the diversification
// window is cached and deduplicated across clients like any other read.
func DiverseSelect(g *graph.Graph, pool []*Result, k int) []int {
	if k <= 0 || len(pool) == 0 {
		return nil
	}
	if len(pool) <= k {
		out := make([]int, len(pool))
		for i := range out {
			out[i] = i
		}
		return out
	}
	chosen := []int{0} // the optimum is non-negotiable
	used := map[int]bool{0: true}
	for len(chosen) < k {
		bestIdx, bestDist := -1, -1
		for i, cand := range pool {
			if used[i] {
				continue
			}
			minDist := int(^uint(0) >> 1)
			for _, c := range chosen {
				if d := FillDistance(g, cand, pool[c]); d < minDist {
					minDist = d
				}
			}
			if minDist > bestDist {
				bestIdx, bestDist = i, minDist
			}
		}
		if bestIdx == -1 {
			break
		}
		used[bestIdx] = true
		chosen = append(chosen, bestIdx)
	}
	return chosen
}

// DiverseTopK addresses the diversification question of the paper's
// concluding remarks: among the `window` cheapest minimal triangulations,
// greedily select k that maximize the minimum pairwise fill distance,
// always keeping the overall optimum first. The result is a small
// portfolio of cheap-but-structurally-different decompositions for the
// application to evaluate, rather than k near-duplicates.
//
// window ≤ 0 means 4k. The enumeration stops early when the space is
// exhausted.
func (s *Solver) DiverseTopK(k, window int) []*Result {
	if k <= 0 {
		return nil
	}
	if window < k {
		window = 4 * k
	}
	pool := s.TopK(window)
	idx := DiverseSelect(s.g, pool, k)
	out := make([]*Result, len(idx))
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}
