package core

import (
	"repro/internal/td"
	"repro/internal/vset"
)

// RelabelResult returns a copy of r with every vertex v renamed to
// perm[v]: the triangulation H, the clique tree's bags (tree edges keep
// their node indices — only bag contents carry vertex labels), and the
// bag and separator lists all map through perm. Cost is copied unchanged
// — every cost in this repository is label-invariant once its parameters
// (domains, hyperedges) are expressed in the same labeling, which the
// serving tier guarantees by relabeling those parameters alongside the
// graph on ingress.
//
// This is the egress half of canonical cache keying: the serving tier
// solves and materializes streams in canonical labels, and each cursor
// relabels results back into its client's labeling on the way out. The
// solver-internal separator IDs are deliberately dropped (they are
// meaningless outside the solver that interned them).
func RelabelResult(r *Result, perm []int) *Result {
	out := &Result{Cost: r.Cost, OrbitSize: r.OrbitSize}
	if r.H != nil {
		out.H = r.H.Relabel(perm)
	}
	if r.Tree != nil {
		tree := &td.Decomposition{
			Bags: relabelSets(r.Tree.Bags, perm),
			Adj:  make([][]int, len(r.Tree.Adj)),
		}
		for i, nb := range r.Tree.Adj {
			tree.Adj[i] = append([]int(nil), nb...)
		}
		out.Tree = tree
	}
	out.Bags = relabelSets(r.Bags, perm)
	out.Seps = relabelSets(r.Seps, perm)
	return out
}

func relabelSets(sets []vset.Set, perm []int) []vset.Set {
	if sets == nil {
		return nil
	}
	out := make([]vset.Set, len(sets))
	for i, s := range sets {
		out[i] = s.Relabel(perm)
	}
	return out
}
