package core

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/graph"
)

// backendOracleCap bounds one enumeration drain in the oracle tests; no
// graph in their size range comes near it, so hitting the cap means a
// backend loops.
const backendOracleCap = 20000

// drainBackend drains a backend's enumeration into a canonical result
// set: triangulation edge-set key → cost. The map form is the "canonical
// tie-sort" — two backends agree iff they produce the same triangulation
// set with the same cost attached to each member, regardless of order.
func drainBackend(t *testing.T, b Backend) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	e := b.EnumerateContext(context.Background())
	for i := 0; ; i++ {
		if i > backendOracleCap {
			t.Fatalf("backend %s exceeded %d results; runaway enumeration", b.BackendKind(), backendOracleCap)
		}
		r, ok := e.Next()
		if !ok {
			return out
		}
		key := r.H.EdgeSetKey()
		if prev, dup := out[key]; dup {
			t.Fatalf("backend %s emitted a duplicate triangulation (cost %v then %v)", b.BackendKind(), prev, r.Cost)
		}
		out[key] = r.Cost
	}
}

// checkBackendsAgree asserts that the MIS and MIS-scored backends emit
// exactly the DP backend's result set — same triangulations, same costs —
// on g. This is the Parra–Scheffler equivalence the backend subsystem
// rests on: all three machines enumerate the same mathematical object.
func checkBackendsAgree(t *testing.T, g *graph.Graph, label string) {
	t.Helper()
	c := cost.FillIn{}
	s, err := NewSolverContext(context.Background(), g, c)
	if err != nil {
		t.Fatalf("%s: solver init: %v", label, err)
	}
	dp := drainBackend(t, s)
	for _, opts := range []MISOptions{{}, {Scored: true}} {
		mb := NewMISBackend(g, c, opts)
		mis := drainBackend(t, mb)
		if len(mis) != len(dp) {
			t.Fatalf("%s: backend %s found %d triangulations, DP found %d",
				label, mb.BackendKind(), len(mis), len(dp))
		}
		for key, dpCost := range dp {
			misCost, ok := mis[key]
			if !ok {
				t.Fatalf("%s: backend %s missed a triangulation DP found (cost %v)",
					label, mb.BackendKind(), dpCost)
			}
			if misCost != dpCost {
				t.Fatalf("%s: backend %s disagrees on cost: %v vs DP %v",
					label, mb.BackendKind(), misCost, dpCost)
			}
		}
	}
}

// maskGraph builds the graph on n vertices whose edge set is the given
// bitmask over the n(n-1)/2 vertex pairs in lexicographic order.
func maskGraph(n int, mask int) *graph.Graph {
	g := graph.New(n)
	bit := 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if mask&(1<<bit) != 0 {
				g.AddEdge(u, v)
			}
			bit++
		}
	}
	return g
}

// TestBackendOracleAllSmallGraphs proves backend equivalence exhaustively:
// on EVERY graph with up to 6 vertices (33k graphs — connected or not,
// chordal or not), the MIS and MIS-scored backends produce exactly the DP
// backend's triangulation set with identical costs. Sharded across
// GOMAXPROCS goroutines, which doubles as race coverage for the
// construction paths under -race.
func TestBackendOracleAllSmallGraphs(t *testing.T) {
	maxN := 6
	if testing.Short() {
		maxN = 5
	}
	for n := 1; n <= maxN; n++ {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			t.Parallel()
			pairs := n * (n - 1) / 2
			total := 1 << pairs
			workers := runtime.GOMAXPROCS(0)
			if workers > total {
				workers = total
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for mask := w; mask < total; mask += workers {
						if t.Failed() {
							return
						}
						checkBackendsAgree(t, maskGraph(n, mask), fmt.Sprintf("n=%d mask=%d", n, mask))
					}
				}()
			}
			wg.Wait()
		})
	}
}

// TestBackendOracleRandomMedium extends the exhaustive sweep with random
// G(n,p) graphs at n = 7 and 8, where full enumeration is still cheap but
// the separator structure is meaningfully richer than at n ≤ 6.
func TestBackendOracleRandomMedium(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 3
	}
	rng := rand.New(rand.NewSource(63))
	for _, n := range []int{7, 8} {
		for _, p := range []float64{0.3, 0.5} {
			for trial := 0; trial < trials; trial++ {
				g := gen.GNP(rng, n, p)
				checkBackendsAgree(t, g, fmt.Sprintf("gnp n=%d p=%v trial=%d", n, p, trial))
			}
		}
	}
}
