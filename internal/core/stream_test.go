package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/gen"
)

// drainEnumerator collects the full enumeration of a fresh enumerator —
// the oracle sequence the shared stream must reproduce.
func drainEnumerator(s *Solver) []*Result {
	var out []*Result
	e := s.Enumerate()
	for {
		r, ok := e.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// resultSig is a comparable rendering of one result (cost + sorted bags),
// strict enough to detect any rank-order divergence.
func resultSig(r *Result) string {
	return fmt.Sprintf("%g|%v|%v", r.Cost, r.Bags, r.Seps)
}

func newStreamSolver(t testing.TB) (*Solver, []*Result) {
	t.Helper()
	s := NewSolver(gen.Cycle(7), cost.FillIn{})
	oracle := drainEnumerator(s)
	if len(oracle) != 42 { // Catalan(5) = 42 polygon triangulations
		t.Fatalf("C7 oracle: want 42 results, got %d", len(oracle))
	}
	return s, oracle
}

// TestSharedStreamMatchesEnumerator reads the stream sequentially and
// expects the exact private-enumerator sequence.
func TestSharedStreamMatchesEnumerator(t *testing.T) {
	s, oracle := newStreamSolver(t)
	st := NewSharedStream(s.Enumerate)
	ctx := context.Background()
	for i := 0; ; i++ {
		r, ok, err := st.At(ctx, i)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			if i != len(oracle) {
				t.Fatalf("stream exhausted at rank %d, oracle has %d", i, len(oracle))
			}
			break
		}
		if resultSig(r) != resultSig(oracle[i]) {
			t.Fatalf("rank %d differs from oracle", i)
		}
	}
	if !st.Exhausted() || st.Buffered() != len(oracle) {
		t.Fatalf("exhausted stream should buffer everything: exhausted=%v buffered=%d", st.Exhausted(), st.Buffered())
	}
	if st.Bytes() <= 0 {
		t.Fatal("buffered stream reports no bytes")
	}
	// Random access into the buffer, including past the end.
	if r, ok, _ := st.At(ctx, 0); !ok || resultSig(r) != resultSig(oracle[0]) {
		t.Fatal("re-reading rank 0 failed")
	}
	if _, ok, err := st.At(ctx, len(oracle)+5); ok || err != nil {
		t.Fatalf("rank past exhaustion: ok=%v err=%v", ok, err)
	}
}

// TestSharedStreamConcurrentCursors fans many goroutines over one stream,
// each walking every rank, and expects byte-identical sequences — the
// per-rank singleflight must never tear or reorder the buffer.
func TestSharedStreamConcurrentCursors(t *testing.T) {
	s, oracle := newStreamSolver(t)
	st := NewSharedStream(s.Enumerate)
	const cursors = 16
	var wg sync.WaitGroup
	errs := make(chan error, cursors)
	for c := 0; c < cursors; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; ; i++ {
				r, ok, err := st.At(ctx, i)
				if err != nil {
					errs <- err
					return
				}
				if !ok {
					if i != len(oracle) {
						errs <- fmt.Errorf("cursor exhausted at %d, want %d", i, len(oracle))
					}
					return
				}
				if resultSig(r) != resultSig(oracle[i]) {
					errs <- fmt.Errorf("rank %d differs from oracle", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSharedStreamResetReplaysDeterministically truncates the buffer
// mid-enumeration (and again after exhaustion) and expects the rebuild to
// replay the identical prefix — the property byte-budget eviction relies
// on.
func TestSharedStreamResetReplaysDeterministically(t *testing.T) {
	s, oracle := newStreamSolver(t)
	st := NewSharedStream(s.Enumerate)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, ok, err := st.At(ctx, i); !ok || err != nil {
			t.Fatalf("prefix read %d: ok=%v err=%v", i, ok, err)
		}
	}
	st.Reset()
	if st.Buffered() != 0 || st.Exhausted() || st.Bytes() != 0 {
		t.Fatalf("reset left state behind: buffered=%d bytes=%d", st.Buffered(), st.Bytes())
	}
	// A cursor parked at rank 25 forces a rebuild that replays 0..25.
	r, ok, err := st.At(ctx, 25)
	if !ok || err != nil {
		t.Fatalf("post-reset read: ok=%v err=%v", ok, err)
	}
	if resultSig(r) != resultSig(oracle[25]) {
		t.Fatal("rebuilt stream diverged from the oracle at rank 25")
	}
	if st.Rebuilds() != 1 {
		t.Fatalf("want 1 rebuild, got %d", st.Rebuilds())
	}
	for i := 0; i < len(oracle); i++ {
		r, ok, err := st.At(ctx, i)
		if !ok || err != nil {
			t.Fatalf("rank %d after rebuild: ok=%v err=%v", i, ok, err)
		}
		if resultSig(r) != resultSig(oracle[i]) {
			t.Fatalf("rank %d differs after rebuild", i)
		}
	}
	// Reset after exhaustion clears the exhausted flag too.
	st.Reset()
	if _, ok, _ := st.At(ctx, len(oracle)-1); !ok {
		t.Fatal("second rebuild did not reach the last rank")
	}
	if st.Rebuilds() != 2 {
		t.Fatalf("want 2 rebuilds, got %d", st.Rebuilds())
	}
}

// TestSharedStreamResetUnderConcurrency hammers At from many goroutines
// while another goroutine repeatedly resets; every successfully read rank
// must match the oracle (generation checks must drop stale in-flight
// results rather than splicing them at the wrong index).
func TestSharedStreamResetUnderConcurrency(t *testing.T) {
	s, oracle := newStreamSolver(t)
	st := NewSharedStream(s.Enumerate)
	const cursors = 8
	var wg sync.WaitGroup
	errs := make(chan error, cursors)
	var resetter sync.WaitGroup
	resetter.Add(1)
	go func() {
		// Bounded churn: 30 resets spaced out enough for production to be
		// in flight, then quiesce so the cursors can finish.
		defer resetter.Done()
		for i := 0; i < 30; i++ {
			time.Sleep(300 * time.Microsecond)
			st.Reset()
		}
	}()
	for c := 0; c < cursors; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < len(oracle); i++ {
				r, ok, err := st.At(ctx, i)
				if err != nil {
					errs <- err
					return
				}
				if !ok {
					errs <- fmt.Errorf("spurious exhaustion at rank %d", i)
					return
				}
				if resultSig(r) != resultSig(oracle[i]) {
					errs <- fmt.Errorf("rank %d differs under reset churn", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	resetter.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSharedStreamTrimOverWindow slides the buffer window forward and
// checks that reads above the window are free, reads below it trigger a
// deterministic rebuild, and byte accounting follows the window.
func TestSharedStreamTrimOverWindow(t *testing.T) {
	s, oracle := newStreamSolver(t)
	st := NewSharedStream(s.Enumerate)
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if _, ok, err := st.At(ctx, i); !ok || err != nil {
			t.Fatalf("prefix read %d: ok=%v err=%v", i, ok, err)
		}
	}
	full := st.Bytes()
	st.TrimOver(full/2, 15) // drop oldest ranks below 15 until under half
	if st.Bytes() > full/2 {
		t.Fatalf("trim left %d bytes, want <= %d", st.Bytes(), full/2)
	}
	if st.Produced() != 20 {
		t.Fatalf("trim must not move the production mark: %d", st.Produced())
	}
	if st.Buffered() >= 20 {
		t.Fatalf("trim dropped nothing: buffered=%d", st.Buffered())
	}
	// Ranks inside and above the window read without a rebuild.
	if r, ok, err := st.At(ctx, 19); !ok || err != nil || resultSig(r) != resultSig(oracle[19]) {
		t.Fatalf("windowed read: ok=%v err=%v", ok, err)
	}
	if r, ok, err := st.At(ctx, 21); !ok || err != nil || resultSig(r) != resultSig(oracle[21]) {
		t.Fatalf("read past the window end: ok=%v err=%v", ok, err)
	}
	if st.Rebuilds() != 0 {
		t.Fatalf("no rebuild expected yet, got %d", st.Rebuilds())
	}
	// A rank below the window forces the rebuild-and-replay path.
	if r, ok, err := st.At(ctx, 0); !ok || err != nil || resultSig(r) != resultSig(oracle[0]) {
		t.Fatalf("read below the window: ok=%v err=%v", ok, err)
	}
	if st.Rebuilds() != 1 {
		t.Fatalf("want 1 rebuild after reading below the window, got %d", st.Rebuilds())
	}
}

// TestSharedStreamContextCancellation: a cancelled waiter returns the
// context error without corrupting the stream for others.
func TestSharedStreamContextCancellation(t *testing.T) {
	s, oracle := newStreamSolver(t)
	st := NewSharedStream(s.Enumerate)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := st.At(cancelled, 0); err == nil {
		t.Fatal("cancelled context should surface an error")
	}
	if r, ok, err := st.At(context.Background(), 0); !ok || err != nil || resultSig(r) != resultSig(oracle[0]) {
		t.Fatalf("stream unusable after a cancelled read: ok=%v err=%v", ok, err)
	}
}

// waitFor polls cond for up to two seconds — for asserting that the
// asynchronous speculative producer eventually reaches a state.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// settled returns a production count that has stopped changing: two
// consecutive observations a pause apart agree. Needed before asserting
// "the producer does NOT go further" — a pause/stop call can still have
// one in-flight solve that legitimately commits.
func settled(st *SharedStream) int {
	for {
		p := st.Produced()
		time.Sleep(20 * time.Millisecond)
		if st.Produced() == p {
			return p
		}
	}
}

// TestSharedStreamPrefetchRunsAhead: after one demanded rank the
// speculative producer fills the buffer exactly to demand + lookahead and
// stops there; the prefetched sequence is byte-identical to the oracle.
func TestSharedStreamPrefetchRunsAhead(t *testing.T) {
	s, oracle := newStreamSolver(t)
	st := NewSharedStream(s.Enumerate)
	const ahead = 10
	st.ConfigurePrefetch(ahead, 0)
	ctx := context.Background()
	if st.Produced() != 0 {
		t.Fatal("prefetch must not run before first demand")
	}
	r, ok, err := st.At(ctx, 0)
	if !ok || err != nil || resultSig(r) != resultSig(oracle[0]) {
		t.Fatalf("rank 0: ok=%v err=%v", ok, err)
	}
	// Demand mark is 1, so the producer should reach exactly 1 + ahead.
	waitFor(t, "lookahead to fill", func() bool { return st.Produced() >= 1+ahead })
	if p := settled(st); p != 1+ahead {
		t.Fatalf("producer overran the lookahead budget: produced %d, want %d", p, 1+ahead)
	}
	ps := st.PrefetchStats()
	if ps.PrefetchSolves < ahead {
		t.Fatalf("want >= %d prefetch solves, got %+v", ahead, ps)
	}
	if ps.LookaheadHighWater != ahead {
		t.Fatalf("lookahead high water: want %d, got %d", ahead, ps.LookaheadHighWater)
	}
	// Ranks inside the lookahead are buffer hits; the full sequence is
	// byte-identical to the prefetch-off enumeration.
	hitsBefore := ps.Hits
	for i := 0; i < len(oracle); i++ {
		r, ok, err := st.At(ctx, i)
		if !ok || err != nil {
			t.Fatalf("rank %d: ok=%v err=%v", i, ok, err)
		}
		if resultSig(r) != resultSig(oracle[i]) {
			t.Fatalf("rank %d differs from the prefetch-off oracle", i)
		}
	}
	if _, ok, err := st.At(ctx, len(oracle)); ok || err != nil {
		t.Fatalf("past the end: ok=%v err=%v", ok, err)
	}
	if ps = st.PrefetchStats(); ps.Hits < hitsBefore+ahead {
		t.Fatalf("prefetched ranks should read as buffer hits: %+v", ps)
	}
}

// TestSharedStreamPrefetchPauseResume: pausing parks the producer (after
// at most one in-flight solve), resuming finishes the job.
func TestSharedStreamPrefetchPauseResume(t *testing.T) {
	s, oracle := newStreamSolver(t)
	st := NewSharedStream(s.Enumerate)
	st.ConfigurePrefetch(len(oracle)+10, 0) // budget beyond the stream end
	ctx := context.Background()
	if _, ok, err := st.At(ctx, 0); !ok || err != nil {
		t.Fatalf("rank 0: ok=%v err=%v", ok, err)
	}
	st.PausePrefetch()
	p := settled(st)
	if p == len(oracle) && st.Exhausted() {
		t.Skip("enumeration finished before the pause landed") // tiny-graph race, nothing to assert
	}
	time.Sleep(30 * time.Millisecond)
	if got := st.Produced(); got != p {
		t.Fatalf("paused producer kept producing: %d -> %d", p, got)
	}
	st.ResumePrefetch()
	waitFor(t, "resume to exhaust the stream", st.Exhausted)
	ps := st.PrefetchStats()
	if ps.Pauses != 1 || ps.Resumes != 1 {
		t.Fatalf("want 1 pause and 1 resume, got %+v", ps)
	}
	// The buffer the producer built is still the oracle sequence.
	for i := range oracle {
		if r, ok, _ := st.At(ctx, i); !ok || resultSig(r) != resultSig(oracle[i]) {
			t.Fatalf("rank %d differs after pause/resume", i)
		}
	}
}

// TestSharedStreamPrefetchStopTerminates: StopPrefetch ends speculation
// for good, while demand-driven At keeps working.
func TestSharedStreamPrefetchStopTerminates(t *testing.T) {
	s, oracle := newStreamSolver(t)
	st := NewSharedStream(s.Enumerate)
	st.ConfigurePrefetch(len(oracle)+10, 0)
	ctx := context.Background()
	if _, ok, err := st.At(ctx, 0); !ok || err != nil {
		t.Fatalf("rank 0: ok=%v err=%v", ok, err)
	}
	st.StopPrefetch()
	p := settled(st)
	time.Sleep(30 * time.Millisecond)
	if got := st.Produced(); got != p {
		t.Fatalf("stopped producer kept producing: %d -> %d", p, got)
	}
	// Demand production is unaffected — the whole stream is still readable.
	for i := 0; i < len(oracle); i++ {
		if r, ok, err := st.At(ctx, i); !ok || err != nil || resultSig(r) != resultSig(oracle[i]) {
			t.Fatalf("rank %d after stop: ok=%v err=%v", i, ok, err)
		}
	}
}

// TestSharedStreamPrefetchByteCeiling: speculation stops at the byte
// ceiling; demand production is not limited by it.
func TestSharedStreamPrefetchByteCeiling(t *testing.T) {
	s, oracle := newStreamSolver(t)
	st := NewSharedStream(s.Enumerate)
	per := oracle[0].SizeEstimate()
	st.ConfigurePrefetch(len(oracle)+10, 5*per)
	ctx := context.Background()
	if _, ok, err := st.At(ctx, 0); !ok || err != nil {
		t.Fatalf("rank 0: ok=%v err=%v", ok, err)
	}
	waitFor(t, "speculation to reach the ceiling", func() bool { return st.Produced() >= 5 })
	if p := settled(st); p >= len(oracle)/2 {
		t.Fatalf("byte ceiling ignored: produced %d of %d", p, len(oracle))
	}
	// A demand read deep past the ceiling still works.
	if r, ok, err := st.At(ctx, 30); !ok || err != nil || resultSig(r) != resultSig(oracle[30]) {
		t.Fatalf("demand read past ceiling: ok=%v err=%v", ok, err)
	}
}

// TestSharedStreamPrefetchLifecycleChurn is the satellite race test:
// concurrent cursors drive the stream while Reset, TrimOver and
// pause/resume churn against the speculative producer. Every read must
// match the oracle, and a final sequential pass must too — byte-identical
// rank order with prefetch on vs. off. Run with -race in CI.
func TestSharedStreamPrefetchLifecycleChurn(t *testing.T) {
	s, oracle := newStreamSolver(t)
	st := NewSharedStream(s.Enumerate)
	st.ConfigurePrefetch(8, 0)
	const cursors = 6
	var wg sync.WaitGroup
	errs := make(chan error, cursors)
	stop := make(chan struct{})

	// Churners: truncation, window slides, pause/resume flapping.
	var churn sync.WaitGroup
	churn.Add(3)
	go func() {
		defer churn.Done()
		for i := 0; i < 25; i++ {
			time.Sleep(400 * time.Microsecond)
			st.Reset()
		}
	}()
	go func() {
		defer churn.Done()
		for i := 0; i < 25; i++ {
			time.Sleep(300 * time.Microsecond)
			st.TrimOver(0, 10+i%10)
		}
	}()
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st.PausePrefetch()
			time.Sleep(200 * time.Microsecond)
			st.ResumePrefetch()
			time.Sleep(200 * time.Microsecond)
		}
	}()

	for c := 0; c < cursors; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < len(oracle); i++ {
				r, ok, err := st.At(ctx, i)
				if err != nil {
					errs <- err
					return
				}
				if !ok {
					errs <- fmt.Errorf("spurious exhaustion at rank %d", i)
					return
				}
				if resultSig(r) != resultSig(oracle[i]) {
					errs <- fmt.Errorf("rank %d differs under lifecycle churn", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	churn.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Final sequential pass over a quiesced stream.
	st.ResumePrefetch()
	ctx := context.Background()
	for i := 0; i < len(oracle); i++ {
		r, ok, err := st.At(ctx, i)
		if !ok || err != nil || resultSig(r) != resultSig(oracle[i]) {
			t.Fatalf("final pass rank %d: ok=%v err=%v", i, ok, err)
		}
	}
	st.StopPrefetch()
}

// TestResultSizeEstimate sanity-checks the footprint estimator used by
// the byte-budget stream cache: positive and monotone in result size.
func TestResultSizeEstimate(t *testing.T) {
	small := NewSolver(gen.Cycle(5), cost.Width{}).TopK(1)[0]
	large := NewSolver(gen.Cycle(12), cost.Width{}).TopK(1)[0]
	if small.SizeEstimate() <= 0 {
		t.Fatal("size estimate must be positive")
	}
	if large.SizeEstimate() <= small.SizeEstimate() {
		t.Fatalf("C12 result (%d bytes) should outweigh C5 result (%d bytes)",
			large.SizeEstimate(), small.SizeEstimate())
	}
}
