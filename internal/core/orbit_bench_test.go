package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/graph"
)

// disjointUnion embeds two graphs side by side — the single-graph form of
// a gen.IsoCopies family, whose automorphism group is the wreath-style
// product of the copies' groups with the copy swap.
func disjointUnion(a, b *graph.Graph) *graph.Graph {
	na, nb := a.Universe(), b.Universe()
	g := graph.New(na + nb)
	for u := 0; u < na; u++ {
		for v := u + 1; v < na; v++ {
			if a.HasEdge(u, v) {
				g.AddEdge(u, v)
			}
		}
	}
	for u := 0; u < nb; u++ {
		for v := u + 1; v < nb; v++ {
			if b.HasEdge(u, v) {
				g.AddEdge(na+u, na+v)
			}
		}
	}
	return g
}

// BenchmarkOrbitStream measures orbit-reduced enumeration against the
// unreduced stream on symmetric families (the ISSUE's |Aut(G)| ≥ 8
// targets: a circulant with |Aut| = 18, a two-copy gen.IsoCopies union
// with |Aut| = 288, the 3×3 grid with |Aut| = 8) and on an asymmetric
// G(n,p) control where orbit mode must be near-free (trivial group →
// one automorphism search, then passthrough). Each iteration drains a
// fresh enumeration — including the orbit backend's group computation,
// since the serving tier pays that per stream. Reported metrics:
// results/op (stream length; the reduction factor is plain/orbit),
// solves/op (constrained Lawler–Murty solves), prunedbranches/op
// (branch solves skipped by constraint-orbit pruning), and orbitsum/op
// (Σ OrbitSize — must equal the plain stream length). Real numbers live
// in BENCH_orbits.json.
func BenchmarkOrbitStream(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	copies := gen.IsoCopies(rng, gen.CirculantGraph(6, []int{1}), 2)
	const uncapped = 1 << 30
	families := []struct {
		name string
		g    *graph.Graph
		cap  int // drain bound; the control caps both modes at equal work
	}{
		{"circulant9", gen.CirculantGraph(9, []int{1}), uncapped},
		{"isocopies-2xC6", disjointUnion(copies[0], copies[1]), uncapped},
		{"grid3x3", gen.Grid(3, 3), uncapped},
		{"gnp12-control", gen.ConnectedGNP(rand.New(rand.NewSource(11)), 12, 0.3), 200},
	}
	for _, fam := range families {
		for _, mode := range []string{"plain", "orbit"} {
			mode := mode
			fam := fam
			b.Run(fmt.Sprintf("family=%s/mode=%s", fam.name, mode), func(b *testing.B) {
				s, err := New(context.Background(), fam.g, cost.FillIn{}, Options{NoDecompose: true})
				if err != nil {
					b.Fatal(err)
				}
				before := s.ReuseStats().ConstrainedSolves
				counters := &OrbitCounters{}
				var results, orbitSum int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var back Backend = s
					if mode == "orbit" {
						back = NewOrbitBackend(s, counters)
					}
					e := back.EnumerateContext(context.Background())
					n := 0
					for n < fam.cap {
						r, ok := e.Next()
						if !ok {
							break
						}
						n++
						if mode == "orbit" {
							orbitSum += r.OrbitSize
						}
					}
					results += int64(n)
				}
				b.StopTimer()
				solves := s.ReuseStats().ConstrainedSolves - before
				b.ReportMetric(float64(results)/float64(b.N), "results/op")
				b.ReportMetric(float64(solves)/float64(b.N), "solves/op")
				if mode == "orbit" {
					st := counters.Snapshot()
					b.ReportMetric(float64(st.SkippedBranches)/float64(b.N), "prunedbranches/op")
					b.ReportMetric(float64(orbitSum)/float64(b.N), "orbitsum/op")
				}
			})
		}
	}
}
