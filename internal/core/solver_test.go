package core

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/chordal"
	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/vset"
)

// oracleBest returns the optimal cost over all minimal triangulations of g
// according to the brute-force enumerator.
func oracleBest(g *graph.Graph, c cost.Cost) float64 {
	best := math.Inf(1)
	for _, h := range bruteforce.AllMinimalTriangulations(g) {
		cliques, err := chordal.MaximalCliques(h)
		if err != nil {
			panic(err)
		}
		if v := c.Eval(g, cliques); v < best {
			best = v
		}
	}
	return best
}

func checkResult(t *testing.T, g *graph.Graph, r *Result) {
	t.Helper()
	if !chordal.IsTriangulationOf(r.H, g) {
		t.Fatalf("result is not a triangulation of g")
	}
	if err := r.Tree.Validate(r.H); err != nil {
		t.Fatalf("result tree invalid for H: %v", err)
	}
	if err := r.Tree.Validate(g); err != nil {
		t.Fatalf("result tree invalid for G: %v", err)
	}
	cliques, err := chordal.MaximalCliques(r.H)
	if err != nil {
		t.Fatalf("H not chordal: %v", err)
	}
	if !r.Tree.IsCliqueTreeOf(r.H, cliques) {
		t.Fatalf("result tree is not a clique tree of H (bags=%v cliques=%v)", r.Bags, cliques)
	}
	// Seps must be MinSep(H).
	want, err := chordal.MinimalSeparators(r.H)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(r.Seps) {
		t.Fatalf("Seps = %v, want %v", r.Seps, want)
	}
	for i := range want {
		if !want[i].Equal(r.Seps[i]) {
			t.Fatalf("Seps mismatch: %v vs %v", r.Seps[i], want[i])
		}
	}
}

func TestMinTriangPaperExample(t *testing.T) {
	g := gen.PaperExample()
	// Width: H2 (saturate {u,v}) has cliques of size 3 → width 2.
	// H1 (saturate {w1,w2,w3}) has width 3. Optimal width = 2.
	s := NewSolver(g, cost.Width{})
	r, err := s.MinTriang(nil)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, g, r)
	if r.Cost != 2 {
		t.Fatalf("optimal width = %v, want 2", r.Cost)
	}
	// Fill: H2 adds 1 edge, H1 adds 3. Optimal fill = 1.
	s = NewSolver(g, cost.FillIn{})
	r, err = s.MinTriang(nil)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, g, r)
	if r.Cost != 1 {
		t.Fatalf("optimal fill = %v, want 1", r.Cost)
	}
	if !r.H.HasEdge(0, 1) {
		t.Fatalf("min-fill triangulation should saturate {u,v}")
	}
}

func TestMinTriangTrivialGraphs(t *testing.T) {
	// Empty graph.
	s := NewSolver(graph.New(0), cost.Width{})
	if _, err := s.MinTriang(nil); err != nil {
		t.Fatalf("empty graph: %v", err)
	}
	// Single vertex.
	s = NewSolver(graph.New(1), cost.Width{})
	r, err := s.MinTriang(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 0 {
		t.Fatalf("single vertex width = %v", r.Cost)
	}
	// Complete graph: itself, width n-1, fill 0.
	s = NewSolver(gen.Complete(5), cost.FillIn{})
	r, err = s.MinTriang(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 0 || len(r.Bags) != 1 {
		t.Fatalf("K5: cost=%v bags=%d", r.Cost, len(r.Bags))
	}
	// Already-chordal graph: zero fill.
	s = NewSolver(gen.Path(6), cost.FillIn{})
	r, err = s.MinTriang(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 0 {
		t.Fatalf("path fill = %v", r.Cost)
	}
}

func TestMinTriangDisconnected(t *testing.T) {
	g := graph.New(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0) // triangle
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 6)
	g.AddEdge(6, 3) // C4 in the other component
	for _, c := range []cost.Cost{cost.Width{}, cost.FillIn{}} {
		s := NewSolver(g, c)
		r, err := s.MinTriang(nil)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		checkResult(t, g, r)
		if want := oracleBest(g, c); r.Cost != want {
			t.Fatalf("%s: cost %v, oracle %v", c.Name(), r.Cost, want)
		}
	}
}

func TestMinTriangMatchesOracleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	costs := []cost.Cost{
		cost.Width{},
		cost.FillIn{},
		cost.LexWidthFill{},
		cost.TotalStateSpace{},
	}
	for trial := 0; trial < 70; trial++ {
		n := 2 + rng.Intn(6)
		g := gen.GNP(rng, n, 0.2+rng.Float64()*0.6)
		for _, c := range costs {
			s := NewSolver(g, c)
			r, err := s.MinTriang(nil)
			if err != nil {
				t.Fatalf("trial %d %s: %v (edges=%v)", trial, c.Name(), err, g.Edges())
			}
			checkResult(t, g, r)
			if want := oracleBest(g, c); r.Cost != want {
				t.Fatalf("trial %d %s: cost %v, oracle %v (edges=%v)",
					trial, c.Name(), r.Cost, want, g.Edges())
			}
			if !bruteforce.IsMinimalTriangulation(r.H, g) {
				t.Fatalf("trial %d %s: result not a minimal triangulation", trial, c.Name())
			}
		}
	}
}

// genericOnly wraps a cost to hide its Combinable fast path, forcing the
// DP down the generic Eval route.
type genericOnly struct{ c cost.Cost }

func (g genericOnly) Name() string { return g.c.Name() + "-generic" }
func (g genericOnly) Eval(gr *graph.Graph, bags []vset.Set) float64 {
	return g.c.Eval(gr, bags)
}

func TestGenericPathMatchesCombinable(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 25; trial++ {
		g := gen.GNP(rng, 2+rng.Intn(6), 0.4)
		for _, base := range []cost.Cost{cost.Width{}, cost.FillIn{}} {
			fast, err1 := NewSolver(g, base).MinTriang(nil)
			slow, err2 := NewSolver(g, genericOnly{base}).MinTriang(nil)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("path disagreement on feasibility")
			}
			if err1 != nil {
				continue
			}
			if fast.Cost != slow.Cost {
				t.Fatalf("%s: fast %v vs generic %v", base.Name(), fast.Cost, slow.Cost)
			}
		}
	}
}

func TestMinTriangWithConstraints(t *testing.T) {
	g := gen.PaperExample()
	s := NewSolver(g, cost.Width{})
	s1 := vset.Of(6, 3, 4, 5) // S1 = {w1,w2,w3}
	s2 := vset.Of(6, 0, 1)    // S2 = {u,v}

	// Force S1 in: only H1 remains (width 3).
	r, err := s.MinTriang(&cost.Constraints{Include: []vset.Set{s1}})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, g, r)
	if r.Cost != 3 || !r.H.IsClique(s1) {
		t.Fatalf("include-S1: cost=%v", r.Cost)
	}
	// Exclude S2 as a clique: again only H1.
	r, err = s.MinTriang(&cost.Constraints{Exclude: []vset.Set{s2}})
	if err != nil {
		t.Fatal(err)
	}
	if r.H.IsClique(s2) || r.Cost != 3 {
		t.Fatalf("exclude-S2: cost=%v clique=%v", r.Cost, r.H.IsClique(s2))
	}
	// Include both S1 and S2: they cross — impossible.
	if _, err := s.MinTriang(&cost.Constraints{Include: []vset.Set{s1, s2}}); err == nil {
		t.Fatalf("crossing inclusions should be infeasible")
	}
	// Exclude both: some separator must be saturated — impossible
	// (every maximal parallel family contains S1 or S2).
	if _, err := s.MinTriang(&cost.Constraints{Exclude: []vset.Set{s1, s2}}); err == nil {
		t.Fatalf("excluding both S1 and S2 should be infeasible")
	}
}

func TestConstraintsMatchOracle(t *testing.T) {
	// For random graphs and random single constraints, the constrained
	// optimum must equal the oracle optimum over satisfying triangulations.
	rng := rand.New(rand.NewSource(31337))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(5)
		g := gen.GNP(rng, n, 0.25+rng.Float64()*0.5)
		all := bruteforce.AllMinimalSeparators(g)
		if len(all) == 0 {
			continue
		}
		sep := all[rng.Intn(len(all))]
		var cons *cost.Constraints
		if rng.Intn(2) == 0 {
			cons = &cost.Constraints{Include: []vset.Set{sep}}
		} else {
			cons = &cost.Constraints{Exclude: []vset.Set{sep}}
		}
		s := NewSolver(g, cost.FillIn{})
		r, err := s.MinTriang(cons)

		best := math.Inf(1)
		for _, h := range bruteforce.AllMinimalTriangulations(g) {
			if !cons.Satisfied(h) {
				continue
			}
			cliques, _ := chordal.MaximalCliques(h)
			if v := (cost.FillIn{}).Eval(g, cliques); v < best {
				best = v
			}
		}
		if math.IsInf(best, 1) {
			if err == nil {
				t.Fatalf("trial %d: solver found %v but oracle says infeasible", trial, r.Cost)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: solver infeasible but oracle best %v (edges=%v, cons=%+v)",
				trial, best, g.Edges(), cons)
		}
		if r.Cost != best {
			t.Fatalf("trial %d: constrained cost %v, oracle %v", trial, r.Cost, best)
		}
		if !cons.Satisfied(r.H) {
			t.Fatalf("trial %d: result violates constraints", trial)
		}
	}
}

func TestBoundedWidthSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(5)
		g := gen.GNP(rng, n, 0.3+rng.Float64()*0.4)
		for b := 1; b < n; b++ {
			s := NewBoundedSolver(g, cost.FillIn{}, b)
			r, err := s.MinTriang(nil)

			best := math.Inf(1)
			for _, h := range bruteforce.AllMinimalTriangulations(g) {
				cliques, _ := chordal.MaximalCliques(h)
				if (cost.Width{}).Eval(g, cliques) > float64(b) {
					continue
				}
				if v := (cost.FillIn{}).Eval(g, cliques); v < best {
					best = v
				}
			}
			if math.IsInf(best, 1) {
				if err == nil {
					t.Fatalf("bound %d: solver found result but oracle infeasible", b)
				}
				continue
			}
			if err != nil {
				t.Fatalf("bound %d: solver infeasible, oracle best %v (edges=%v)", b, best, g.Edges())
			}
			if r.Tree.Width() > b {
				t.Fatalf("bound %d violated: width %d", b, r.Tree.Width())
			}
			if r.Cost != best {
				t.Fatalf("bound %d: cost %v, oracle %v", b, r.Cost, best)
			}
		}
	}
}

func TestSolverAccessors(t *testing.T) {
	g := gen.PaperExample()
	// The paper example has a cut vertex (v), so the default solver routes
	// through the atom decomposition; its separator and PMC aggregates
	// must still be exactly MinSep(G) and PMC(G).
	s := NewSolver(g, cost.Width{})
	if !s.Decomposed() {
		t.Fatalf("paper example should decompose (v is a cut vertex)")
	}
	if len(s.MinimalSeparators()) != 3 {
		t.Fatalf("seps = %d", len(s.MinimalSeparators()))
	}
	if len(s.PMCs()) != 6 {
		t.Fatalf("pmcs = %d", len(s.PMCs()))
	}
	if s.Graph() != g || s.Cost().Name() != "width" {
		t.Fatalf("accessors broken")
	}
	if s.InitDuration <= 0 {
		t.Fatalf("init duration not recorded")
	}
	// The decomposed block count sums the atoms' DPs: the atoms
	// {u,v,w1..w3} and {v,v'} have 4 and 1 full blocks respectively, plus
	// one virtual top block each.
	if s.NumFullBlocks() != 5 {
		t.Fatalf("decomposed full blocks = %d, want 5", s.NumFullBlocks())
	}
	infos := s.AtomInfos()
	sum := 0
	for _, ai := range infos {
		if !ai.Ready {
			t.Fatalf("sub-solver not built after NumFullBlocks: %+v", ai)
		}
		sum += ai.FullBlocks
	}
	if sum != s.NumFullBlocks() {
		t.Fatalf("AtomInfos blocks sum %d != NumFullBlocks %d", sum, s.NumFullBlocks())
	}

	mono, err := New(context.Background(), g, cost.Width{}, Options{NoDecompose: true})
	if err != nil {
		t.Fatal(err)
	}
	if mono.Decomposed() {
		t.Fatalf("NoDecompose solver still decomposed")
	}
	if len(mono.MinimalSeparators()) != 3 {
		t.Fatalf("mono seps = %d", len(mono.MinimalSeparators()))
	}
	if len(mono.PMCs()) != 6 {
		t.Fatalf("mono pmcs = %d", len(mono.PMCs()))
	}
	if mono.NumFullBlocks() != 7 {
		t.Fatalf("mono full blocks = %d", mono.NumFullBlocks())
	}
}

func enumerateAll(t *testing.T, s *Solver, limit int) []*Result {
	t.Helper()
	e := s.Enumerate()
	var out []*Result
	for {
		r, ok := e.Next()
		if !ok {
			return out
		}
		out = append(out, r)
		if len(out) > limit {
			t.Fatalf("enumeration exceeded %d results — runaway or duplicates", limit)
		}
	}
}

func TestEnumeratePaperExample(t *testing.T) {
	// The paper example has exactly two minimal triangulations: H1, H2.
	g := gen.PaperExample()
	s := NewSolver(g, cost.Width{})
	results := enumerateAll(t, s, 10)
	if len(results) != 2 {
		t.Fatalf("enumerated %d triangulations, want 2", len(results))
	}
	if results[0].Cost != 2 || results[1].Cost != 3 {
		t.Fatalf("costs = %v, %v; want 2, 3", results[0].Cost, results[1].Cost)
	}
	for _, r := range results {
		checkResult(t, g, r)
	}
}

func TestEnumerateCompleteAndOrderedRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	costs := []cost.Cost{cost.Width{}, cost.FillIn{}, cost.LexWidthFill{}}
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(6)
		g := gen.GNP(rng, n, 0.2+rng.Float64()*0.6)
		want := bruteforce.AllMinimalTriangulations(g)
		c := costs[trial%len(costs)]
		s := NewSolver(g, c)
		results := enumerateAll(t, s, len(want)+5)
		if len(results) != len(want) {
			t.Fatalf("trial %d (%s, n=%d): enumerated %d, oracle %d (edges=%v)",
				trial, c.Name(), n, len(results), len(want), g.Edges())
		}
		// Completeness + distinctness.
		seen := map[string]bool{}
		for _, r := range results {
			key := r.H.EdgeSetKey()
			if seen[key] {
				t.Fatalf("trial %d: duplicate triangulation emitted", trial)
			}
			seen[key] = true
		}
		for _, h := range want {
			if !seen[h.EdgeSetKey()] {
				t.Fatalf("trial %d: oracle triangulation missed", trial)
			}
		}
		// Ranked order.
		for i := 1; i < len(results); i++ {
			if results[i].Cost < results[i-1].Cost {
				t.Fatalf("trial %d: order violated: %v after %v",
					trial, results[i].Cost, results[i-1].Cost)
			}
		}
		// Every result internally consistent.
		for _, r := range results {
			checkResult(t, g, r)
		}
	}
}

func TestEnumerateBoundedWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(5)
		g := gen.GNP(rng, n, 0.3+rng.Float64()*0.4)
		b := 1 + rng.Intn(n-1)
		s := NewBoundedSolver(g, cost.FillIn{}, b)
		results := enumerateAll(t, s, 1000)

		var want []string
		for _, h := range bruteforce.AllMinimalTriangulations(g) {
			cliques, _ := chordal.MaximalCliques(h)
			if (cost.Width{}).Eval(g, cliques) <= float64(b) {
				want = append(want, h.EdgeSetKey())
			}
		}
		if len(results) != len(want) {
			t.Fatalf("trial %d b=%d: got %d results, oracle %d (edges=%v)",
				trial, b, len(results), len(want), g.Edges())
		}
		got := map[string]bool{}
		for _, r := range results {
			if r.Tree.Width() > b {
				t.Fatalf("width bound violated")
			}
			got[r.H.EdgeSetKey()] = true
		}
		for _, k := range want {
			if !got[k] {
				t.Fatalf("bounded enumeration missed a triangulation")
			}
		}
	}
}

func TestTopK(t *testing.T) {
	g := gen.Cycle(6)
	s := NewSolver(g, cost.FillIn{})
	top := s.TopK(3)
	if len(top) != 3 {
		t.Fatalf("TopK returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Cost < top[i-1].Cost {
			t.Fatalf("TopK not sorted")
		}
	}
	// C6: every minimal triangulation adds exactly 3 chords.
	for _, r := range top {
		if r.Cost != 3 {
			t.Fatalf("C6 minimal fill = %v, want 3", r.Cost)
		}
	}
	// Huge k just exhausts.
	if n := len(s.TopK(100000)); n != 14 {
		// C6 has Catalan(4) = 14 minimal triangulations.
		t.Fatalf("C6 has %d minimal triangulations, want 14", n)
	}
}

func TestEnumeratorRemaining(t *testing.T) {
	s := NewSolver(gen.Cycle(5), cost.Width{})
	e := s.Enumerate()
	if e.Remaining() != 1 {
		t.Fatalf("fresh enumerator should hold exactly the root partition")
	}
	if _, ok := e.Next(); !ok {
		t.Fatalf("C5 has triangulations")
	}
	if e.Remaining() == 0 {
		t.Fatalf("C5 has more than one minimal triangulation")
	}
}

func sortedCosts(rs []*Result) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.Cost
	}
	sort.Float64s(out)
	return out
}

func TestEnumerateEmitsAllCostsOracle(t *testing.T) {
	// The multiset of emitted costs must match the oracle's multiset.
	rng := rand.New(rand.NewSource(9090))
	for trial := 0; trial < 25; trial++ {
		g := gen.GNP(rng, 3+rng.Intn(4), 0.4)
		c := cost.FillIn{}
		s := NewSolver(g, c)
		results := enumerateAll(t, s, 4000)
		var want []float64
		for _, h := range bruteforce.AllMinimalTriangulations(g) {
			cliques, _ := chordal.MaximalCliques(h)
			want = append(want, c.Eval(g, cliques))
		}
		sort.Float64s(want)
		got := sortedCosts(results)
		if len(got) != len(want) {
			t.Fatalf("count mismatch: %d vs %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("cost multiset mismatch at %d: %v vs %v", i, got, want)
			}
		}
	}
}
