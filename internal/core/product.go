package core

import (
	"container/heap"
	"context"
	"sort"

	"repro/internal/cost"
	"repro/internal/td"
	"repro/internal/vset"
)

// This file implements the decomposed solver's enumeration: per-atom
// ranked streams combined into a globally cost-ordered stream by a
// product-space frontier search (see DESIGN.md, "Atom decomposition").
//
// Correctness rests on two facts. First, Leimer's factorization: H is a
// minimal triangulation of G iff H = H_1 ∪ … ∪ H_k for minimal
// triangulations H_i of the atoms, and the map is a bijection, so the
// product of the atom streams enumerates every minimal triangulation of G
// exactly once. Second, for a mergeable cost the combined cost is the
// max/sum fold of the per-atom costs, which is monotone in each
// coordinate of the product: advancing one atom to its next (costlier)
// triangulation never cheapens the combination. A min-heap over index
// vectors therefore pops combinations in non-decreasing global cost.

// combineResults glues per-atom results (aligned with s.dec.Atoms) into
// one Result for the whole graph: the union triangulation, a clique tree
// obtained by linking each atom's tree to its parent's through a bag
// containing the shared clique separator, and the canonical separator
// list (atom separators plus the non-empty clique minimal separators,
// which every minimal triangulation of G contains).
func (s *Solver) combineResults(parts []*Result) *Result {
	tree := td.New()
	base := make([]int, len(parts))
	for i, p := range parts {
		base[i] = tree.NumNodes()
		for _, bag := range p.Tree.Bags {
			tree.AddNode(bag)
		}
		for a, nbrs := range p.Tree.Adj {
			for _, b := range nbrs {
				if a < b {
					tree.AddEdge(base[i]+a, base[i]+b)
				}
			}
		}
	}
	// nodeWith finds the first bag of part i containing set — guaranteed
	// to exist for a clique of the atom's graph.
	nodeWith := func(i int, set vset.Set) int {
		for n, bag := range parts[i].Tree.Bags {
			if set.SubsetOf(bag) {
				return base[i] + n
			}
		}
		panic("core: clique separator not contained in any bag of its atom")
	}
	firstRoot := -1
	for i, a := range s.dec.Atoms {
		if a.Parent >= 0 {
			tree.AddEdge(nodeWith(i, a.Sep), nodeWith(a.Parent, a.Sep))
		} else if firstRoot < 0 {
			firstRoot = i
		} else {
			// Chain the per-component roots so the tree stays connected;
			// the empty adhesion is exactly what a tree decomposition of
			// a disconnected graph carries between components.
			tree.AddEdge(base[firstRoot], base[i])
		}
	}

	h := s.g.Clone()
	for _, b := range tree.Bags {
		h.SaturateInPlace(b)
	}

	nseps := 0
	for _, p := range parts {
		nseps += len(p.Seps)
	}
	seps := make([]vset.Set, 0, nseps+len(s.dec.CliqueSeps))
	for _, p := range parts {
		seps = append(seps, p.Seps...)
	}
	for _, cs := range s.dec.CliqueSeps {
		if !cs.IsEmpty() {
			seps = append(seps, cs)
		}
	}
	sort.Slice(seps, func(i, j int) bool { return seps[i].Compare(seps[j]) < 0 })

	return &Result{
		H:    h,
		Tree: tree,
		Bags: append([]vset.Set(nil), tree.Bags...),
		Seps: seps,
		Cost: s.evalBags(s.g, tree.Bags),
	}
}

// atomStream is one atom's ranked stream with the prefix pulled so far
// memoized, so a product combination can address any already-explored
// rank and extend the stream on demand.
type atomStream struct {
	e    *Enumerator
	buf  []*Result
	done bool
}

// get returns the atom's rank-i result, pulling the stream forward as
// needed; ok=false once the atom's enumeration is exhausted before i.
func (as *atomStream) get(i int) (*Result, bool) {
	for len(as.buf) <= i && !as.done {
		r, ok := as.e.Next()
		if !ok {
			as.done = true
			break
		}
		as.buf = append(as.buf, r)
	}
	if i < len(as.buf) {
		return as.buf[i], true
	}
	return nil, false
}

// combo is one point of the product space: idx[a] selects the rank of
// atom a's stream. The heap orders by (cost, seq) with seq the push
// sequence — the same deterministic tie rule as the Lawler–Murty
// partition queue.
type combo struct {
	idx  []int
	cost float64
	seq  int
}

type comboQueue []*combo

func (q comboQueue) Len() int { return len(q) }
func (q comboQueue) Less(i, j int) bool {
	if q[i].cost != q[j].cost {
		return q[i].cost < q[j].cost
	}
	return q[i].seq < q[j].seq
}
func (q comboQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *comboQueue) Push(x any)   { *q = append(*q, x.(*combo)) }
func (q *comboQueue) Pop() any {
	old := *q
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return item
}

// productEnumerator merges the per-atom ranked streams into one globally
// cost-ordered stream. Each popped combination generates at most one
// successor per atom under the standard prefix rule — atom a's index may
// only be advanced when every later atom still sits at rank 0 — which
// reaches every index vector exactly once, so no visited set is needed
// and the frontier stays O(emitted · #atoms).
type productEnumerator struct {
	s       *Solver
	ctx     context.Context
	streams []*atomStream
	queue   comboQueue
	seq     int
}

// newProductEnumerator starts the decomposed enumeration: sub-solvers are
// (lazily) initialized, per-atom streams opened, and the all-zeros
// combination — the global optimum — seeded. A cancelled context or an
// infeasible atom (possible under a width bound) yields an exhausted
// enumerator, mirroring the monolithic constructor.
func (s *Solver) newProductEnumerator(ctx context.Context, workers int) *productEnumerator {
	pe := &productEnumerator{s: s, ctx: ctx}
	if err := s.ensureSubs(ctx); err != nil {
		return pe
	}
	subs := s.subSolvers()
	pe.streams = make([]*atomStream, len(subs))
	for i, sub := range subs {
		pe.streams[i] = &atomStream{e: sub.EnumerateParallelContext(ctx, workers)}
	}
	root := &combo{idx: make([]int, len(subs))}
	for i := range pe.streams {
		if _, ok := pe.streams[i].get(0); !ok {
			return pe // some atom has no admissible triangulation
		}
	}
	root.cost = pe.foldCost(root.idx)
	pe.push(root)
	return pe
}

// foldCost combines the selected per-atom costs under the cost's merge
// rule. Used only to order the queue; emitted results re-evaluate the
// cost on the combined bags, exactly like the monolithic buildResult.
func (pe *productEnumerator) foldCost(idx []int) float64 {
	out := pe.streams[0].buf[idx[0]].Cost
	for a := 1; a < len(idx); a++ {
		v := pe.streams[a].buf[idx[a]].Cost
		switch pe.s.mergeKind {
		case cost.MergeMax:
			if v > out {
				out = v
			}
		default:
			out += v
		}
	}
	return out
}

func (pe *productEnumerator) push(c *combo) {
	pe.seq++
	c.seq = pe.seq
	heap.Push(&pe.queue, c)
}

// Next pops the cheapest unexplored combination, expands its successors,
// and emits the glued Result.
func (pe *productEnumerator) Next() (*Result, bool) {
	if len(pe.queue) == 0 || pe.ctx.Err() != nil {
		return nil, false
	}
	c := heap.Pop(&pe.queue).(*combo)
	for a := len(c.idx) - 1; a >= 0; a-- {
		if r, ok := pe.streams[a].get(c.idx[a] + 1); ok && r != nil {
			child := &combo{idx: append([]int(nil), c.idx...)}
			child.idx[a]++
			child.cost = pe.foldCost(child.idx)
			pe.push(child)
		}
		if c.idx[a] != 0 {
			break // the prefix rule: only trailing zeros may advance past here
		}
	}
	parts := make([]*Result, len(c.idx))
	for a, i := range c.idx {
		parts[a] = pe.streams[a].buf[i]
	}
	return pe.s.combineResults(parts), true
}

// Remaining reports the queued frontier size (instrumentation, mirroring
// the Lawler–Murty queue).
func (pe *productEnumerator) Remaining() int { return len(pe.queue) }
