package core

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/cost"
	"repro/internal/gen"
)

func TestNewSolverContextBackground(t *testing.T) {
	g := gen.PaperExample()
	s, err := NewSolverContext(context.Background(), g, cost.Width{})
	if err != nil {
		t.Fatalf("NewSolverContext: %v", err)
	}
	ref := NewSolver(g, cost.Width{})
	if len(s.MinimalSeparators()) != len(ref.MinimalSeparators()) || len(s.PMCs()) != len(ref.PMCs()) {
		t.Fatalf("context solver differs from plain solver: %d/%d seps, %d/%d pmcs",
			len(s.MinimalSeparators()), len(ref.MinimalSeparators()), len(s.PMCs()), len(ref.PMCs()))
	}
}

func TestNewSolverContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := gen.PaperExample()
	if s, err := NewSolverContext(ctx, g, cost.Width{}); err == nil {
		t.Fatalf("want error from cancelled init, got solver %v", s)
	} else if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, err := NewBoundedSolverContext(ctx, g, cost.Width{}, 3); err == nil {
		t.Fatal("want error from cancelled bounded init")
	}
}

func TestEnumerateContextCancelStopsStream(t *testing.T) {
	g := gen.PaperExample()
	s := NewSolver(g, cost.Width{})
	ctx, cancel := context.WithCancel(context.Background())
	e := s.EnumerateContext(ctx)
	if _, ok := e.Next(); !ok {
		t.Fatal("first Next should succeed before cancellation")
	}
	cancel()
	if r, ok := e.Next(); ok {
		t.Fatalf("Next after cancel should report exhaustion, got %v", r)
	}
}

func TestEnumerateContextMatchesPlainEnumeration(t *testing.T) {
	g := gen.PaperExample()
	s := NewSolver(g, cost.FillIn{})
	plain := s.Enumerate()
	ctxed := s.EnumerateContext(context.Background())
	for {
		a, aok := plain.Next()
		b, bok := ctxed.Next()
		if aok != bok {
			t.Fatalf("stream length mismatch: plain ok=%v ctx ok=%v", aok, bok)
		}
		if !aok {
			break
		}
		if a.Cost != b.Cost {
			t.Fatalf("cost mismatch: %g vs %g", a.Cost, b.Cost)
		}
	}
}

// TestTopKContextWorkersDefault is the regression test for the silent-
// serial bug: a worker count of zero (or negative) must mean "use
// GOMAXPROCS", not "run sequentially", and the emitted prefix must be
// identical to the sequential run for every normalized count.
func TestTopKContextWorkersDefault(t *testing.T) {
	if got := effectiveWorkers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("effectiveWorkers(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := effectiveWorkers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("effectiveWorkers(-3) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := effectiveWorkers(1); got != 1 {
		t.Fatalf("effectiveWorkers(1) = %d, want 1 (sequential stays opt-in)", got)
	}
	if got := effectiveWorkers(5); got != 5 {
		t.Fatalf("effectiveWorkers(5) = %d, want 5", got)
	}

	rng := rand.New(rand.NewSource(31))
	g := gen.GNP(rng, 9, 0.4)
	s := NewSolver(g, cost.FillIn{})
	seq := s.TopKContext(context.Background(), 25, 1)
	def := s.TopKContext(context.Background(), 25, 0)
	if len(seq) != len(def) {
		t.Fatalf("workers=0 emitted %d results, sequential %d", len(def), len(seq))
	}
	for i := range seq {
		if seq[i].Cost != def[i].Cost || seq[i].H.EdgeSetKey() != def[i].H.EdgeSetKey() {
			t.Fatalf("rank %d: workers=0 deviates from the sequential enumeration", i)
		}
	}
}
