package core

import (
	"context"
	"testing"

	"repro/internal/cost"
	"repro/internal/gen"
)

func TestNewSolverContextBackground(t *testing.T) {
	g := gen.PaperExample()
	s, err := NewSolverContext(context.Background(), g, cost.Width{})
	if err != nil {
		t.Fatalf("NewSolverContext: %v", err)
	}
	ref := NewSolver(g, cost.Width{})
	if len(s.MinimalSeparators()) != len(ref.MinimalSeparators()) || len(s.PMCs()) != len(ref.PMCs()) {
		t.Fatalf("context solver differs from plain solver: %d/%d seps, %d/%d pmcs",
			len(s.MinimalSeparators()), len(ref.MinimalSeparators()), len(s.PMCs()), len(ref.PMCs()))
	}
}

func TestNewSolverContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := gen.PaperExample()
	if s, err := NewSolverContext(ctx, g, cost.Width{}); err == nil {
		t.Fatalf("want error from cancelled init, got solver %v", s)
	} else if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, err := NewBoundedSolverContext(ctx, g, cost.Width{}, 3); err == nil {
		t.Fatal("want error from cancelled bounded init")
	}
}

func TestEnumerateContextCancelStopsStream(t *testing.T) {
	g := gen.PaperExample()
	s := NewSolver(g, cost.Width{})
	ctx, cancel := context.WithCancel(context.Background())
	e := s.EnumerateContext(ctx)
	if _, ok := e.Next(); !ok {
		t.Fatal("first Next should succeed before cancellation")
	}
	cancel()
	if r, ok := e.Next(); ok {
		t.Fatalf("Next after cancel should report exhaustion, got %v", r)
	}
}

func TestEnumerateContextMatchesPlainEnumeration(t *testing.T) {
	g := gen.PaperExample()
	s := NewSolver(g, cost.FillIn{})
	plain := s.Enumerate()
	ctxed := s.EnumerateContext(context.Background())
	for {
		a, aok := plain.Next()
		b, bok := ctxed.Next()
		if aok != bok {
			t.Fatalf("stream length mismatch: plain ok=%v ctx ok=%v", aok, bok)
		}
		if !aok {
			break
		}
		if a.Cost != b.Cost {
			t.Fatalf("cost mismatch: %g vs %g", a.Cost, b.Cost)
		}
	}
}
