package core

import (
	"context"
	"sync"
)

// SharedStream is a thread-safe, position-addressable view over an
// Enumerator: an append-only buffer of results indexed by rank, filled
// lazily by whichever caller first asks for a rank past the buffered
// prefix. The enumeration order of a Solver is deterministic, so the
// buffer's prefix is a pure function of the solver — many consumers at
// different positions can share one stream, and the total enumeration
// work is that of a single enumerator regardless of the consumer count.
//
// Production is singleflighted per rank: the first caller to request an
// unbuffered rank drives the underlying Enumerator's Next for exactly one
// result while every other caller waits on the buffer; nobody ever drives
// the enumerator concurrently, and no background goroutine exists — an
// abandoned stream burns no CPU by construction.
//
// Reset discards the buffer and the enumerator. The next At rebuilds both
// from the factory and replays the identical prefix (determinism is
// asserted in tests), which is what lets a byte-budget cache evict a
// stream's buffer without invalidating the cursors reading it.
type SharedStream struct {
	factory func() *Enumerator

	mu        sync.Mutex
	enum      *Enumerator // nil until first demand and after Reset
	gen       uint64      // bumped by Reset; stale producers discard their result
	buf       []*Result   // buffered window; buf[0] is rank base
	base      int         // rank of buf[0]; > 0 once TrimOver slid the window
	bytes     int64
	exhausted bool
	producing bool
	rebuilds  uint64
	advanced  chan struct{} // closed and replaced whenever buf/exhausted change
}

// NewSharedStream returns a stream over the enumerator the factory builds.
// The factory is invoked lazily on first demand and again after each
// Reset; it must return a fresh enumerator producing the same sequence
// every time (any Solver enumeration does — the order is deterministic).
// The enumerator should be built on a background context: one consumer's
// cancellation must not poison the shared buffer, and At already observes
// the caller's context while waiting.
func NewSharedStream(factory func() *Enumerator) *SharedStream {
	return &SharedStream{factory: factory, advanced: make(chan struct{})}
}

// At returns the result of rank i (0-based), producing and buffering
// every rank up to i on demand. ok=false reports that the enumeration is
// exhausted before rank i. A caller that waits — for another producer, or
// while driving production itself across multiple ranks — observes ctx;
// note one in-flight Next is never abandoned mid-solve, so cancellation
// latency is bounded by the enumeration delay, and the completed result
// still lands in the buffer for other consumers.
func (st *SharedStream) At(ctx context.Context, i int) (*Result, bool, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		st.mu.Lock()
		if i < st.base {
			// The trim window slid past rank i; rebuild from rank 0 and
			// replay (deterministically) up to it.
			ch := st.resetLocked()
			st.mu.Unlock()
			close(ch)
			continue
		}
		if i-st.base < len(st.buf) {
			r := st.buf[i-st.base]
			st.mu.Unlock()
			return r, true, nil
		}
		if st.exhausted {
			st.mu.Unlock()
			return nil, false, nil
		}
		if st.producing {
			ch := st.advanced
			st.mu.Unlock()
			select {
			case <-ch:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			continue
		}
		if st.enum == nil {
			if st.gen > 0 {
				st.rebuilds++
			}
			st.enum = st.factory()
		}
		st.producing = true
		gen, enum := st.gen, st.enum
		st.mu.Unlock()

		r, ok := enum.Next()

		st.mu.Lock()
		if st.gen == gen {
			st.producing = false
			if ok {
				st.buf = append(st.buf, r)
				st.bytes += r.SizeEstimate()
			} else {
				st.exhausted = true
			}
		}
		// On a stale generation the result is simply dropped: Reset already
		// cleared the producing flag, and a new producer may be mid-flight
		// on the rebuilt enumerator.
		ch := st.advanced
		st.advanced = make(chan struct{})
		st.mu.Unlock()
		close(ch)
	}
}

// Reset discards the buffer and the underlying enumerator; the next At
// rebuilds from the factory and replays the identical prefix. Safe to
// call concurrently with At: an in-flight Next from before the reset
// discards its result when it completes.
func (st *SharedStream) Reset() {
	st.mu.Lock()
	ch := st.resetLocked()
	st.mu.Unlock()
	close(ch)
}

// resetLocked clears all production state under st.mu and returns the
// advanced channel for the caller to close after unlocking.
func (st *SharedStream) resetLocked() chan struct{} {
	st.gen++
	st.enum = nil
	st.buf = nil
	st.base = 0
	st.bytes = 0
	st.exhausted = false
	st.producing = false
	ch := st.advanced
	st.advanced = make(chan struct{})
	return ch
}

// TrimOver slides the buffer window forward: it drops buffered ranks
// below the given rank, oldest first, until the window's estimated
// footprint is at most maxBytes. Production state (enumerator position,
// exhaustion) is untouched, so consumers ahead of the window continue
// for free; a consumer later asking for a dropped rank triggers a full
// deterministic rebuild. This is how a byte-budget cache bounds a single
// stream that is itself larger than the budget.
func (st *SharedStream) TrimOver(maxBytes int64, below int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	limit := below - st.base
	if limit > len(st.buf) {
		limit = len(st.buf)
	}
	k := 0
	for k < limit && st.bytes > maxBytes {
		st.bytes -= st.buf[k].SizeEstimate()
		k++
	}
	if k > 0 {
		st.buf = append([]*Result(nil), st.buf[k:]...)
		st.base += k
	}
}

// Buffered returns how many ranks are currently materialized (the
// window size — after a TrimOver this is less than Produced).
func (st *SharedStream) Buffered() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.buf)
}

// Produced returns the production high-water mark: ranks [0, Produced)
// have been enumerated, though ranks below the trim window would need a
// rebuild to read again.
func (st *SharedStream) Produced() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.base + len(st.buf)
}

// Exhausted reports whether the enumeration has been driven to its end
// (every result is in the buffer). False after a Reset until the rebuild
// reaches the end again.
func (st *SharedStream) Exhausted() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.exhausted
}

// Bytes returns the estimated in-memory footprint of the buffer (the sum
// of the buffered results' SizeEstimates).
func (st *SharedStream) Bytes() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.bytes
}

// Rebuilds returns how many times a Reset stream has been rebuilt from
// its factory.
func (st *SharedStream) Rebuilds() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.rebuilds
}

// SizeEstimate returns a rough, deterministic estimate of the result's
// in-memory footprint in bytes, for byte-budget caches of buffered
// results. It counts the dominant word-slice storage of the vertex sets
// (bags, separators, the triangulated graph's adjacency rows) plus fixed
// per-object overheads; pointer sharing between the clique tree's bags
// and Bags is assumed (buildResult aliases them), so the tree contributes
// only its adjacency lists.
func (r *Result) SizeEstimate() int64 {
	const (
		setOverhead = 32 // slice header + universe field + allocator slack
		objOverhead = 256
	)
	n := 0
	if r.H != nil {
		n = r.H.Universe()
	} else if len(r.Bags) > 0 {
		n = r.Bags[0].Universe()
	}
	wordsPer := int64((n+63)/64*8) + setOverhead
	size := int64(objOverhead)
	size += int64(len(r.Bags)+len(r.Seps)) * wordsPer
	size += int64(len(r.sepIDs)) * 8
	if r.H != nil {
		size += int64(n+1) * wordsPer // adjacency rows + active vertex set
	}
	if r.Tree != nil {
		for _, adj := range r.Tree.Adj {
			size += int64(len(adj)) * 8
		}
	}
	return size
}
