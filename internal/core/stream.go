package core

import (
	"context"
	"sync"
)

// SharedStream is a thread-safe, position-addressable view over an
// Enumerator: an append-only buffer of results indexed by rank, filled
// lazily by whichever caller first asks for a rank past the buffered
// prefix. The enumeration order of a Solver is deterministic, so the
// buffer's prefix is a pure function of the solver — many consumers at
// different positions can share one stream, and the total enumeration
// work is that of a single enumerator regardless of the consumer count.
//
// Production is singleflighted per rank: the first caller to request an
// unbuffered rank drives the underlying Enumerator's Next for exactly one
// result while every other caller waits on the buffer; nobody ever drives
// the enumerator concurrently, and no demand-independent goroutine exists
// by default — an abandoned stream burns no CPU by construction.
//
// ConfigurePrefetch arms an optional speculative producer: a background
// goroutine, started lazily by the first At, that keeps the buffer ahead
// of the fastest consumer up to a lookahead budget in ranks and bytes. It
// joins the same per-rank singleflight (so demand and speculation never
// drive the enumerator concurrently) and works only while demand exists
// and PausePrefetch has not parked it — the owner is expected to pause it
// whenever the stream has no live consumers, preserving the no-CPU
// invariant for abandoned streams.
//
// Reset discards the buffer and the enumerator. The next At rebuilds both
// from the factory and replays the identical prefix (determinism is
// asserted in tests), which is what lets a byte-budget cache evict a
// stream's buffer without invalidating the cursors reading it. Reset also
// clears the demand mark, so an evicted stream stays cold — the
// prefetcher never re-materializes a buffer nobody asked for again.
type SharedStream struct {
	factory func() *Enumerator

	mu        sync.Mutex
	enum      *Enumerator // nil until first demand and after Reset
	gen       uint64      // bumped by Reset; stale producers discard their result
	buf       []*Result   // buffered window; buf[0] is rank base
	base      int         // rank of buf[0]; > 0 once TrimOver slid the window
	bytes     int64
	exhausted bool
	producing bool
	rebuilds  uint64
	advanced  chan struct{} // closed and replaced whenever buf/exhausted change

	// Speculative prefetch state (all under mu except pfWake's buffer).
	pfAhead   int           // lookahead budget in ranks; 0 = prefetch disabled
	pfBytes   int64         // buffer-footprint ceiling for speculation; <= 0 = none
	pfDemand  int           // demand high-water mark: max requested rank + 1, this generation
	pfPaused  bool          // no live consumers; the producer parks
	pfStopped bool          // terminal: the prefetch goroutine exits and never restarts
	pfRunning bool          // the prefetch goroutine is live
	pfWake    chan struct{} // capacity 1; nudges the prefetcher to re-check its condition
	pfStats   PrefetchStats
}

// PrefetchStats is a snapshot of one stream's demand-vs-speculation
// counters (see SharedStream.PrefetchStats).
type PrefetchStats struct {
	// Hits counts At calls whose rank was already materialized when they
	// arrived — pure buffer reads, no solving on the caller's latency path.
	Hits uint64 `json:"hits"`
	// DemandSolves counts enumerator Next calls driven by a waiting At
	// caller; PrefetchSolves counts those driven by the speculative
	// producer. Their sum is the total production work.
	DemandSolves   uint64 `json:"demand_solves"`
	PrefetchSolves uint64 `json:"prefetch_solves"`
	// Pauses and Resumes count PausePrefetch/ResumePrefetch transitions.
	Pauses  uint64 `json:"pauses"`
	Resumes uint64 `json:"resumes"`
	// LookaheadHighWater is the most ranks the producer has ever been
	// ahead of the demand mark.
	LookaheadHighWater int `json:"lookahead_high_water"`
}

// NewSharedStream returns a stream over the enumerator the factory builds.
// The factory is invoked lazily on first demand and again after each
// Reset; it must return a fresh enumerator producing the same sequence
// every time (any Solver enumeration does — the order is deterministic).
// The enumerator should be built on a background context: one consumer's
// cancellation must not poison the shared buffer, and At already observes
// the caller's context while waiting.
func NewSharedStream(factory func() *Enumerator) *SharedStream {
	return &SharedStream{
		factory:  factory,
		advanced: make(chan struct{}),
		pfWake:   make(chan struct{}, 1),
	}
}

// ConfigurePrefetch arms the speculative producer: once a consumer has
// demanded a rank, a background goroutine keeps producing until the
// buffer reaches ahead ranks past the fastest consumer's demand mark or
// its footprint reaches maxBytes (<= 0 for no byte ceiling). ahead <= 0
// leaves prefetching disabled. Configure before the first At; the
// goroutine itself starts lazily on first demand and joins the per-rank
// singleflight, so enabling prefetch never changes the emitted sequence —
// only who pays the solve latency.
func (st *SharedStream) ConfigurePrefetch(ahead int, maxBytes int64) {
	st.mu.Lock()
	st.pfAhead = ahead
	st.pfBytes = maxBytes
	st.mu.Unlock()
	st.wakePrefetch()
}

// PausePrefetch parks the speculative producer (an in-flight solve
// completes and commits first). The stream's owner calls this when the
// last live consumer goes away, so abandoned streams burn no CPU.
// Demand-driven production through At is unaffected.
func (st *SharedStream) PausePrefetch() {
	st.mu.Lock()
	if !st.pfPaused {
		st.pfPaused = true
		if st.pfAhead > 0 {
			st.pfStats.Pauses++
		}
	}
	st.mu.Unlock()
	st.wakePrefetch()
}

// ResumePrefetch reverses PausePrefetch when a consumer re-attaches.
func (st *SharedStream) ResumePrefetch() {
	st.mu.Lock()
	if st.pfPaused {
		st.pfPaused = false
		if st.pfAhead > 0 {
			st.pfStats.Resumes++
		}
	}
	st.mu.Unlock()
	st.wakePrefetch()
}

// StopPrefetch terminates the speculative producer for good — the
// goroutine (if any) exits after at most one in-flight solve and never
// restarts. For streams leaving their owner's table entirely; a merely
// idle stream wants PausePrefetch. Idempotent, and At keeps working
// (demand-driven) afterwards.
func (st *SharedStream) StopPrefetch() {
	st.mu.Lock()
	st.pfStopped = true
	st.mu.Unlock()
	st.wakePrefetch()
}

// PrefetchStats snapshots the demand-vs-speculation counters.
func (st *SharedStream) PrefetchStats() PrefetchStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.pfStats
}

// wakePrefetch nudges the prefetch goroutine to re-examine its condition.
// The channel holds one pending wake; further signals coalesce.
func (st *SharedStream) wakePrefetch() {
	select {
	case st.pfWake <- struct{}{}:
	default:
	}
}

// noteDemandLocked raises the demand high-water mark to cover rank i and
// lazily starts the prefetch goroutine ("started on first demand"). The
// caller holds st.mu.
func (st *SharedStream) noteDemandLocked(i int) {
	if i+1 > st.pfDemand {
		st.pfDemand = i + 1
		st.wakePrefetch()
	}
	if st.pfAhead > 0 && !st.pfRunning && !st.pfStopped {
		st.pfRunning = true
		go st.prefetchLoop()
	}
}

// prefetchWantLocked reports whether the speculative producer should
// produce the next rank. The caller holds st.mu.
func (st *SharedStream) prefetchWantLocked() bool {
	if st.pfAhead <= 0 || st.pfPaused || st.pfStopped || st.exhausted {
		return false
	}
	if st.pfDemand == 0 {
		// No demand this generation: stay cold. After an eviction Reset
		// this is what keeps the reclaimed bytes reclaimed.
		return false
	}
	if st.base+len(st.buf) >= st.pfDemand+st.pfAhead {
		return false
	}
	return st.pfBytes <= 0 || st.bytes < st.pfBytes
}

// prefetchLoop is the speculative producer. It acquires production
// through the same producing/gen protocol as At — one Next in flight
// stream-wide, stale generations dropped — so speculation is invisible in
// the emitted sequence and safe against concurrent Reset, TrimOver and
// eviction-rebuild.
func (st *SharedStream) prefetchLoop() {
	for {
		st.mu.Lock()
		for {
			if st.pfStopped {
				st.pfRunning = false
				st.mu.Unlock()
				return
			}
			if st.prefetchWantLocked() {
				if !st.producing {
					break
				}
				// A demand caller is mid-solve; wake when it commits so the
				// producer role can be taken over without a demand gap.
				ch := st.advanced
				st.mu.Unlock()
				select {
				case <-ch:
				case <-st.pfWake:
				}
			} else {
				st.mu.Unlock()
				<-st.pfWake
			}
			st.mu.Lock()
		}
		if st.enum == nil {
			if st.gen > 0 {
				st.rebuilds++
			}
			st.enum = st.factory()
		}
		st.producing = true
		gen, enum := st.gen, st.enum
		st.mu.Unlock()

		r, ok := enum.Next()

		st.mu.Lock()
		if st.gen == gen {
			st.producing = false
			if ok {
				st.buf = append(st.buf, r)
				st.bytes += r.SizeEstimate()
				st.pfStats.PrefetchSolves++
				if lead := st.base + len(st.buf) - st.pfDemand; lead > st.pfStats.LookaheadHighWater {
					st.pfStats.LookaheadHighWater = lead
				}
			} else {
				st.exhausted = true
			}
		}
		ch := st.advanced
		st.advanced = make(chan struct{})
		st.mu.Unlock()
		close(ch)
	}
}

// At returns the result of rank i (0-based), producing and buffering
// every rank up to i on demand. ok=false reports that the enumeration is
// exhausted before rank i. A caller that waits — for another producer, or
// while driving production itself across multiple ranks — observes ctx;
// note one in-flight Next is never abandoned mid-solve, so cancellation
// latency is bounded by the enumeration delay, and the completed result
// still lands in the buffer for other consumers.
func (st *SharedStream) At(ctx context.Context, i int) (*Result, bool, error) {
	first := true
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		st.mu.Lock()
		// Every pass re-raises the demand mark: a rebuild (below) clears
		// it, and the prefetcher should help replay the prefix too.
		st.noteDemandLocked(i)
		if first {
			first = false
			if i >= st.base && i-st.base < len(st.buf) {
				st.pfStats.Hits++
			}
		}
		if i < st.base {
			// The trim window slid past rank i; rebuild from rank 0 and
			// replay (deterministically) up to it.
			ch := st.resetLocked()
			st.mu.Unlock()
			close(ch)
			continue
		}
		if i-st.base < len(st.buf) {
			r := st.buf[i-st.base]
			st.mu.Unlock()
			return r, true, nil
		}
		if st.exhausted {
			st.mu.Unlock()
			return nil, false, nil
		}
		if st.producing {
			ch := st.advanced
			st.mu.Unlock()
			select {
			case <-ch:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			continue
		}
		if st.enum == nil {
			if st.gen > 0 {
				st.rebuilds++
			}
			st.enum = st.factory()
		}
		st.producing = true
		gen, enum := st.gen, st.enum
		st.mu.Unlock()

		r, ok := enum.Next()

		st.mu.Lock()
		if st.gen == gen {
			st.producing = false
			if ok {
				st.buf = append(st.buf, r)
				st.bytes += r.SizeEstimate()
				st.pfStats.DemandSolves++
			} else {
				st.exhausted = true
			}
		}
		// On a stale generation the result is simply dropped: Reset already
		// cleared the producing flag, and a new producer may be mid-flight
		// on the rebuilt enumerator.
		ch := st.advanced
		st.advanced = make(chan struct{})
		st.mu.Unlock()
		close(ch)
	}
}

// Reset discards the buffer and the underlying enumerator; the next At
// rebuilds from the factory and replays the identical prefix. Safe to
// call concurrently with At: an in-flight Next from before the reset
// discards its result when it completes.
func (st *SharedStream) Reset() {
	st.mu.Lock()
	ch := st.resetLocked()
	st.mu.Unlock()
	close(ch)
}

// resetLocked clears all production state under st.mu and returns the
// advanced channel for the caller to close after unlocking.
func (st *SharedStream) resetLocked() chan struct{} {
	st.gen++
	st.enum = nil
	st.buf = nil
	st.base = 0
	st.bytes = 0
	st.exhausted = false
	st.producing = false
	// The demand mark dies with the buffer: an evicted stream must stay
	// cold until a cursor actually asks again, or eviction would reclaim
	// nothing. At re-raises it on every pass, so live readers re-arm the
	// prefetcher for the replay automatically.
	st.pfDemand = 0
	ch := st.advanced
	st.advanced = make(chan struct{})
	return ch
}

// TrimOver slides the buffer window forward: it drops buffered ranks
// below the given rank, oldest first, until the window's estimated
// footprint is at most maxBytes. Production state (enumerator position,
// exhaustion) is untouched, so consumers ahead of the window continue
// for free; a consumer later asking for a dropped rank triggers a full
// deterministic rebuild. This is how a byte-budget cache bounds a single
// stream that is itself larger than the budget.
func (st *SharedStream) TrimOver(maxBytes int64, below int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	limit := below - st.base
	if limit > len(st.buf) {
		limit = len(st.buf)
	}
	k := 0
	for k < limit && st.bytes > maxBytes {
		st.bytes -= st.buf[k].SizeEstimate()
		k++
	}
	if k > 0 {
		st.buf = append([]*Result(nil), st.buf[k:]...)
		st.base += k
		// Dropping bytes may reopen the speculative byte budget.
		st.wakePrefetch()
	}
}

// Buffered returns how many ranks are currently materialized (the
// window size — after a TrimOver this is less than Produced).
func (st *SharedStream) Buffered() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.buf)
}

// Produced returns the production high-water mark: ranks [0, Produced)
// have been enumerated, though ranks below the trim window would need a
// rebuild to read again.
func (st *SharedStream) Produced() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.base + len(st.buf)
}

// Exhausted reports whether the enumeration has been driven to its end
// (every result is in the buffer). False after a Reset until the rebuild
// reaches the end again.
func (st *SharedStream) Exhausted() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.exhausted
}

// Bytes returns the estimated in-memory footprint of the buffer (the sum
// of the buffered results' SizeEstimates).
func (st *SharedStream) Bytes() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.bytes
}

// Rebuilds returns how many times a Reset stream has been rebuilt from
// its factory.
func (st *SharedStream) Rebuilds() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.rebuilds
}

// SizeEstimate returns a rough, deterministic estimate of the result's
// in-memory footprint in bytes, for byte-budget caches of buffered
// results. It counts the dominant word-slice storage of the vertex sets
// (bags, separators, the triangulated graph's adjacency rows) plus fixed
// per-object overheads; pointer sharing between the clique tree's bags
// and Bags is assumed (buildResult aliases them), so the tree contributes
// only its adjacency lists.
func (r *Result) SizeEstimate() int64 {
	const (
		setOverhead = 32 // slice header + universe field + allocator slack
		objOverhead = 256
	)
	n := 0
	if r.H != nil {
		n = r.H.Universe()
	} else if len(r.Bags) > 0 {
		n = r.Bags[0].Universe()
	}
	wordsPer := int64((n+63)/64*8) + setOverhead
	size := int64(objOverhead)
	size += int64(len(r.Bags)+len(r.Seps)) * wordsPer
	size += int64(len(r.sepIDs)) * 8
	if r.H != nil {
		size += int64(n+1) * wordsPer // adjacency rows + active vertex set
	}
	if r.Tree != nil {
		for _, adj := range r.Tree.Adj {
			size += int64(len(adj)) * 8
		}
	}
	return size
}
