// Package intern assigns dense integer IDs to vertex sets.
//
// The enumeration machinery manipulates the same separators, potential
// maximal cliques and blocks over and over: every Lawler–Murty branch of
// RankedTriang re-touches separators of the one fixed input graph. A
// Table interns each distinct set once — paying the string-key hash a
// single time — and hands back a dense ID, so every later hot-path
// membership test, dedup or per-set table becomes a slice index or a
// Bitset probe instead of a map[string] lookup on vset.Key() strings.
package intern

import (
	"math/bits"

	"repro/internal/vset"
)

// Table interns vertex sets, assigning IDs 0, 1, 2, ... in first-insertion
// order. The zero value is not ready; use New. A Table is not safe for
// concurrent mutation; read-only use (Lookup, Set, Len) after the last
// Intern is safe from any number of goroutines.
type Table struct {
	ids  map[string]int
	sets []vset.Set
}

// New returns an empty table with capacity for about n sets.
func New(n int) *Table {
	return &Table{ids: make(map[string]int, n)}
}

// FromSets builds a table whose IDs are the positions of the given sets.
// Duplicate sets keep their first position.
func FromSets(sets []vset.Set) *Table {
	t := New(len(sets))
	for _, s := range sets {
		t.Intern(s)
	}
	return t
}

// Intern returns the ID of s, inserting it if absent. fresh reports
// whether this call inserted it. The table retains s itself (sets are
// immutable by convention); callers must not mutate it afterwards.
func (t *Table) Intern(s vset.Set) (id int, fresh bool) {
	k := s.Key()
	if id, ok := t.ids[k]; ok {
		return id, false
	}
	id = len(t.sets)
	t.ids[k] = id
	t.sets = append(t.sets, s)
	return id, true
}

// Lookup returns the ID of s without inserting.
func (t *Table) Lookup(s vset.Set) (int, bool) {
	id, ok := t.ids[s.Key()]
	return id, ok
}

// Contains reports whether s has been interned.
func (t *Table) Contains(s vset.Set) bool {
	_, ok := t.ids[s.Key()]
	return ok
}

// Len returns the number of interned sets — one past the largest ID.
func (t *Table) Len() int { return len(t.sets) }

// Set returns the set with the given ID.
func (t *Table) Set(id int) vset.Set { return t.sets[id] }

// Sets returns the interned sets indexed by ID. The caller must not
// mutate the slice.
func (t *Table) Sets() []vset.Set { return t.sets }

// Bitset is a fixed-capacity bitmask over a dense ID space (block
// indices, separator IDs). Unlike vset.Set it carries no universe size —
// callers size it once with NewBitset and combine masks of equal length.
type Bitset []uint64

// NewBitset returns an all-zero mask able to hold IDs 0..n-1.
func NewBitset(n int) Bitset {
	return make(Bitset, (n+63)/64)
}

// Set marks ID i.
func (b Bitset) Set(i int) { b[i/64] |= 1 << uint(i%64) }

// Has reports whether ID i is marked.
func (b Bitset) Has(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }

// Or folds o into b (b |= o). The masks must have equal length.
func (b Bitset) Or(o Bitset) {
	for i, w := range o {
		b[i] |= w
	}
}

// Count returns the number of marked IDs.
func (b Bitset) Count() int {
	total := 0
	for _, w := range b {
		total += bits.OnesCount64(w)
	}
	return total
}

// Clone returns an independent copy of b.
func (b Bitset) Clone() Bitset {
	c := make(Bitset, len(b))
	copy(c, b)
	return c
}

// ForEach calls fn for every marked ID in ascending order.
func (b Bitset) ForEach(fn func(i int)) {
	for wi, w := range b {
		base := wi * 64
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}
