package intern

import (
	"testing"

	"repro/internal/vset"
)

func TestTableInternLookup(t *testing.T) {
	tab := New(4)
	a := vset.Of(8, 1, 3)
	b := vset.Of(8, 2)
	id, fresh := tab.Intern(a)
	if id != 0 || !fresh {
		t.Fatalf("Intern(a) = %d, %v; want 0, true", id, fresh)
	}
	id, fresh = tab.Intern(b)
	if id != 1 || !fresh {
		t.Fatalf("Intern(b) = %d, %v; want 1, true", id, fresh)
	}
	// Re-interning an equal set (different instance) is a no-op.
	id, fresh = tab.Intern(vset.Of(8, 3, 1))
	if id != 0 || fresh {
		t.Fatalf("Intern(a') = %d, %v; want 0, false", id, fresh)
	}
	if got, ok := tab.Lookup(b); !ok || got != 1 {
		t.Fatalf("Lookup(b) = %d, %v; want 1, true", got, ok)
	}
	if _, ok := tab.Lookup(vset.Of(8, 7)); ok {
		t.Fatal("Lookup of absent set reported present")
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d; want 2", tab.Len())
	}
	if !tab.Set(0).Equal(a) || !tab.Set(1).Equal(b) {
		t.Fatal("Set(id) does not round-trip")
	}
	if !tab.Contains(a) || tab.Contains(vset.Of(8, 7)) {
		t.Fatal("Contains is wrong")
	}
}

func TestFromSets(t *testing.T) {
	sets := []vset.Set{vset.Of(4, 0), vset.Of(4, 1), vset.Of(4, 0)}
	tab := FromSets(sets)
	if tab.Len() != 2 {
		t.Fatalf("Len = %d; want 2 (duplicate collapsed)", tab.Len())
	}
	if id, _ := tab.Lookup(vset.Of(4, 0)); id != 0 {
		t.Fatalf("duplicate did not keep first position: id %d", id)
	}
}

func TestBitset(t *testing.T) {
	b := NewBitset(130)
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
	}
	for _, i := range []int{0, 63, 64, 129} {
		if !b.Has(i) {
			t.Fatalf("Has(%d) = false", i)
		}
	}
	if b.Has(1) || b.Has(128) {
		t.Fatal("unset bit reported set")
	}
	if b.Count() != 4 {
		t.Fatalf("Count = %d; want 4", b.Count())
	}
	o := NewBitset(130)
	o.Set(5)
	b.Or(o)
	if !b.Has(5) || b.Count() != 5 {
		t.Fatal("Or failed")
	}
	c := b.Clone()
	c.Set(6)
	if b.Has(6) {
		t.Fatal("Clone aliases the original")
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	want := []int{0, 5, 63, 64, 129}
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v; want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v; want %v", got, want)
		}
	}
}
