package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/gen"
)

func TestDatasetsShape(t *testing.T) {
	ds := Datasets(1)
	if len(ds) < 10 {
		t.Fatalf("only %d datasets", len(ds))
	}
	names := map[string]bool{}
	for _, d := range ds {
		if names[d.Name] {
			t.Fatalf("duplicate dataset %s", d.Name)
		}
		names[d.Name] = true
		if len(d.Graphs) == 0 {
			t.Fatalf("dataset %s empty", d.Name)
		}
		for _, g := range d.Graphs {
			if g.Graph.NumVertices() == 0 {
				t.Fatalf("%s/%s empty graph", d.Name, g.Name)
			}
		}
	}
	for _, want := range []string{"CSP", "TPC-H", "PACE2016-100s", "Promedas", "Grids"} {
		if !names[want] {
			t.Fatalf("missing dataset %s", want)
		}
	}
	// Deterministic per seed.
	ds2 := Datasets(1)
	if ds[0].Graphs[0].Graph.EdgeSetKey() != ds2[0].Graphs[0].Graph.EdgeSetKey() {
		t.Fatalf("datasets not deterministic")
	}
}

func TestClassifyGraph(t *testing.T) {
	// A small graph terminates instantly.
	r := ClassifyGraph(gen.Cycle(6), time.Second, time.Second)
	if r.Outcome != Terminated {
		t.Fatalf("C6 outcome = %v", r.Outcome)
	}
	if r.MinSeps != 9 {
		t.Fatalf("C6 minseps = %d", r.MinSeps)
	}
	if r.PMCs == 0 || r.Edges != 6 {
		t.Fatalf("C6 record: %+v", r)
	}
	// A zero budget forces NotTerminated on any nontrivial graph.
	r = ClassifyGraph(gen.Grid(5, 5), 0, 0)
	if r.Outcome != NotTerminated {
		t.Fatalf("zero budget outcome = %v", r.Outcome)
	}
	// MinSep budget generous, PMC budget zero → MSTerminated.
	r = ClassifyGraph(gen.Grid(3, 3), time.Second, 0)
	if r.Outcome != MSTerminated {
		t.Fatalf("ms-only outcome = %v", r.Outcome)
	}
	if Terminated.String() == "" || MSTerminated.String() == "" || NotTerminated.String() == "" {
		t.Fatalf("outcome strings empty")
	}
}

func TestFigure5And6(t *testing.T) {
	small := []Dataset{
		{Name: "tiny", Graphs: []NamedGraph{
			{Name: "c5", Graph: gen.Cycle(5)},
			{Name: "p4", Graph: gen.Path(4)},
		}},
	}
	rows, results := Figure5(small, time.Second, time.Second)
	if len(rows) != 1 || rows[0].Terminated != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	pts := Figure6(results)
	if len(pts) != 2 {
		t.Fatalf("figure 6 points = %d", len(pts))
	}
	var buf bytes.Buffer
	RenderFigure5(&buf, rows)
	RenderFigure6(&buf, pts)
	if !strings.Contains(buf.String(), "tiny") {
		t.Fatalf("render missing dataset name")
	}
}

func TestFigure7(t *testing.T) {
	pts := Figure7(7, []int{10}, []float64{0.1, 0.5}, 2, time.Second)
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.TimedOut {
			t.Fatalf("tiny graphs should not time out")
		}
	}
	var buf bytes.Buffer
	RenderFigure7(&buf, pts)
	if !strings.Contains(buf.String(), "avg-minseps") {
		t.Fatalf("render header missing")
	}
}

func TestRunRankedAndMetrics(t *testing.T) {
	g := gen.Cycle(6)
	run := RunRanked(g, cost.Width{}, 5*time.Second)
	if !run.Exhausted {
		t.Fatalf("C6 enumeration should exhaust within 5s")
	}
	if len(run.Records) != 14 {
		t.Fatalf("C6: %d records, want 14", len(run.Records))
	}
	m := ComputeMetrics(run)
	if m.MinWidth != 2 || m.NumMinWidth != 14 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.MinFill != 3 || m.NumMinFill != 14 {
		t.Fatalf("fill metrics: %+v", m)
	}
	if m.AvgDelay <= 0 {
		t.Fatalf("delay not measured")
	}
	// Ranked order: widths never decrease below an earlier minimum...
	// with the width cost they must be non-decreasing outright.
	for i := 1; i < len(run.Records); i++ {
		if run.Records[i].Width < run.Records[i-1].Width {
			t.Fatalf("ranked run out of order")
		}
	}
}

func TestRunCKKMatchesCount(t *testing.T) {
	g := gen.Cycle(6)
	run := RunCKK(g, 5*time.Second)
	if !run.Exhausted || len(run.Records) != 14 {
		t.Fatalf("CKK run: exhausted=%v records=%d", run.Exhausted, len(run.Records))
	}
	m := ComputeMetrics(run)
	if m.MinWidth != 2 || m.MinFill != 3 {
		t.Fatalf("CKK metrics: %+v", m)
	}
}

func TestComputeMetricsEmpty(t *testing.T) {
	m := ComputeMetrics(EnumRun{})
	if m.Results != 0 || m.MinWidth != -1 {
		t.Fatalf("empty metrics: %+v", m)
	}
}

func TestTable2SmallCorpus(t *testing.T) {
	ds := []Dataset{
		{Name: "cycles", Graphs: []NamedGraph{
			{Name: "c5", Graph: gen.Cycle(5)},
			{Name: "c6", Graph: gen.Cycle(6)},
		}},
	}
	_, tract := Figure5(ds, time.Second, time.Second)
	rows := Table2(ds, tract, 2*time.Second)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Graphs != 2 {
		t.Fatalf("graphs = %d", r.Graphs)
	}
	// Both algorithms must find all triangulations: (5 + 14)/2 ≈ 9 each.
	if r.RankedWidth.Results != r.CKK.Results {
		t.Fatalf("ranked %d vs ckk %d results", r.RankedWidth.Results, r.CKK.Results)
	}
	// RankedTriang's width-run emits only optimal widths on cycles (all
	// minimal triangulations of a cycle have width 2).
	if r.RankedWidth.MinWidth != 2 || r.CKK.MinWidth != 2 {
		t.Fatalf("min widths: %d %d", r.RankedWidth.MinWidth, r.CKK.MinWidth)
	}
	var buf bytes.Buffer
	RenderTable2(&buf, rows)
	out := buf.String()
	if !strings.Contains(out, "cycles(2)") || !strings.Contains(out, "ckk") {
		t.Fatalf("table rendering: %s", out)
	}
}

func TestFigure8(t *testing.T) {
	pts := Figure8(11, []int{8}, []float64{0.3, 0.6}, 2, 2*time.Second)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.RankedDelay < 0 || p.CKKDelay < 0 {
			t.Fatalf("negative delay")
		}
		// On fully-exhausted tiny graphs, CKK finds every optimum that
		// RankedTriang finds: ratios should be 1 where defined.
		if !isNaN(p.PctMinWidth) && (p.PctMinWidth < 0.99 || p.PctMinWidth > 1.01) {
			t.Fatalf("exhausted run pct = %v", p.PctMinWidth)
		}
	}
	var buf bytes.Buffer
	RenderFigure8(&buf, pts)
	if !strings.Contains(buf.String(), "%min-w") {
		t.Fatalf("render header missing")
	}
}

func isNaN(f float64) bool { return f != f }

func TestFigure9Buckets(t *testing.T) {
	run := EnumRun{Records: []RunRecord{
		{When: 1 * time.Millisecond, Width: 5},
		{When: 2 * time.Millisecond, Width: 3},
		{When: 12 * time.Millisecond, Width: 4},
		{When: 99 * time.Millisecond, Width: 7}, // clamped into last bucket
	}}
	buckets := Figure9(run, 10*time.Millisecond, 3)
	if len(buckets) != 3 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	if buckets[0].Results != 2 || buckets[0].MinWidth != 3 || buckets[0].MedWidth != 5 {
		t.Fatalf("bucket 0: %+v", buckets[0])
	}
	if buckets[1].Results != 1 || buckets[1].MinWidth != 4 {
		t.Fatalf("bucket 1: %+v", buckets[1])
	}
	if buckets[2].Results != 1 || buckets[2].MinWidth != 7 {
		t.Fatalf("bucket 2: %+v", buckets[2])
	}
	var buf bytes.Buffer
	RenderFigure9(&buf, "test", buckets, buckets)
	if !strings.Contains(buf.String(), "case study") {
		t.Fatalf("render missing title")
	}
}
