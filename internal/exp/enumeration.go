package exp

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/chordal"
	"repro/internal/ckk"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/graph"
)

// RunRecord is one produced triangulation: when it appeared (measured from
// the start of the run, initialization included) and its width and fill.
type RunRecord struct {
	When  time.Duration
	Width int
	Fill  int
}

// EnumRun is one algorithm execution under a time budget.
type EnumRun struct {
	Algorithm string
	Init      time.Duration
	Total     time.Duration
	Records   []RunRecord
	Exhausted bool // the algorithm finished before the budget ran out
}

// RunRanked executes RankedTriang⟨κ⟩ on g until the budget elapses or the
// enumeration completes. The budget covers initialization, matching the
// paper's accounting ("this time is counted into the 30 minutes").
func RunRanked(g *graph.Graph, c cost.Cost, budget time.Duration) EnumRun {
	start := time.Now()
	deadline := start.Add(budget)
	run := EnumRun{Algorithm: "ranked-" + c.Name()}
	solver := core.NewSolver(g, c)
	run.Init = solver.InitDuration
	if time.Now().After(deadline) {
		run.Total = time.Since(start)
		return run
	}
	e := solver.Enumerate()
	for time.Now().Before(deadline) {
		r, ok := e.Next()
		if !ok {
			run.Exhausted = true
			break
		}
		run.Records = append(run.Records, RunRecord{
			When:  time.Since(start),
			Width: r.Tree.Width(),
			Fill:  r.H.NumEdges() - g.NumEdges(),
		})
	}
	run.Total = time.Since(start)
	return run
}

// RunCKK executes the baseline on g until the budget elapses or the
// enumeration completes.
func RunCKK(g *graph.Graph, budget time.Duration) EnumRun {
	start := time.Now()
	deadline := start.Add(budget)
	run := EnumRun{Algorithm: "ckk"}
	e := ckk.New(g, nil)
	for time.Now().Before(deadline) {
		r, ok := e.Next()
		if !ok {
			run.Exhausted = true
			break
		}
		w := -1
		if cliques, err := chordal.MaximalCliques(r.H); err == nil {
			for _, c := range cliques {
				if c.Len()-1 > w {
					w = c.Len() - 1
				}
			}
		}
		run.Records = append(run.Records, RunRecord{
			When:  time.Since(start),
			Width: w,
			Fill:  r.H.NumEdges() - g.NumEdges(),
		})
	}
	run.Total = time.Since(start)
	return run
}

// Metrics are the Table 2 columns computed from a run.
type Metrics struct {
	Results        int
	Init           time.Duration
	AvgDelay       time.Duration
	AvgDelayNoInit time.Duration
	MinWidth       int
	NumMinWidth    int
	NumNearWidth   int // within 10% of the minimum width
	MinFill        int
	NumMinFill     int
	NumNearFill    int // within 10% of the minimum fill
}

// ComputeMetrics folds a run into Table 2 columns. Optimal counts are
// computed against the run's own best (the paper compares the two
// algorithms' numbers side by side).
func ComputeMetrics(run EnumRun) Metrics {
	m := Metrics{Results: len(run.Records), Init: run.Init, MinWidth: -1, MinFill: -1}
	if len(run.Records) == 0 {
		return m
	}
	m.AvgDelay = run.Total / time.Duration(len(run.Records))
	noInit := run.Total - run.Init
	if noInit < 0 {
		noInit = 0
	}
	m.AvgDelayNoInit = noInit / time.Duration(len(run.Records))
	m.MinWidth = math.MaxInt32
	m.MinFill = math.MaxInt32
	for _, r := range run.Records {
		if r.Width < m.MinWidth {
			m.MinWidth = r.Width
		}
		if r.Fill < m.MinFill {
			m.MinFill = r.Fill
		}
	}
	for _, r := range run.Records {
		if r.Width == m.MinWidth {
			m.NumMinWidth++
		}
		if float64(r.Width) <= 1.1*float64(m.MinWidth) {
			m.NumNearWidth++
		}
		if r.Fill == m.MinFill {
			m.NumMinFill++
		}
		if float64(r.Fill) <= 1.1*float64(m.MinFill) {
			m.NumNearFill++
		}
	}
	return m
}

// Table2Row is one dataset's comparison: RankedTriang optimizing width,
// RankedTriang optimizing fill, and CKK, aggregated over the dataset's
// tractable graphs.
type Table2Row struct {
	Dataset     string
	Graphs      int
	RankedWidth Metrics
	RankedFill  Metrics
	CKK         Metrics
}

// Table2 reproduces the paper's Table 2: for every dataset, run
// RankedTriang twice (width and fill costs) and CKK once on each graph
// classified Terminated by the Figure 5 pass, under the given budget, and
// aggregate. Like the paper, datasets where every algorithm exhausts the
// space almost immediately are still reported (TPC-H is excluded from the
// paper's table for that reason; callers may filter on Exhausted).
func Table2(datasets []Dataset, tract []TractabilityResult, budget time.Duration) []Table2Row {
	tractable := map[string]bool{}
	for _, r := range tract {
		if r.Outcome == Terminated {
			tractable[r.Dataset+"/"+r.Graph] = true
		}
	}
	var rows []Table2Row
	for _, ds := range datasets {
		row := Table2Row{Dataset: ds.Name}
		var rw, rf, ck []Metrics
		for _, ng := range ds.Graphs {
			if !tractable[ds.Name+"/"+ng.Name] {
				continue
			}
			row.Graphs++
			rw = append(rw, ComputeMetrics(RunRanked(ng.Graph, cost.Width{}, budget)))
			rf = append(rf, ComputeMetrics(RunRanked(ng.Graph, cost.FillIn{}, budget)))
			ck = append(ck, ComputeMetrics(RunCKK(ng.Graph, budget)))
		}
		if row.Graphs == 0 {
			continue
		}
		row.RankedWidth = averageMetrics(rw)
		row.RankedFill = averageMetrics(rf)
		row.CKK = averageMetrics(ck)
		rows = append(rows, row)
	}
	return rows
}

func averageMetrics(ms []Metrics) Metrics {
	if len(ms) == 0 {
		return Metrics{MinWidth: -1, MinFill: -1}
	}
	var out Metrics
	n := time.Duration(len(ms))
	for _, m := range ms {
		out.Results += m.Results
		out.Init += m.Init
		out.AvgDelay += m.AvgDelay
		out.AvgDelayNoInit += m.AvgDelayNoInit
		out.MinWidth += m.MinWidth
		out.NumMinWidth += m.NumMinWidth
		out.NumNearWidth += m.NumNearWidth
		out.MinFill += m.MinFill
		out.NumMinFill += m.NumMinFill
		out.NumNearFill += m.NumNearFill
	}
	out.Results /= len(ms)
	out.Init /= n
	out.AvgDelay /= n
	out.AvgDelayNoInit /= n
	out.MinWidth /= len(ms)
	out.NumMinWidth /= len(ms)
	out.NumNearWidth /= len(ms)
	out.MinFill /= len(ms)
	out.NumMinFill /= len(ms)
	out.NumNearFill /= len(ms)
	return out
}

// RenderTable2 prints the dataset comparison in the paper's two-line
// format: the top line of each dataset is RankedTriang (width columns
// from the width-optimizing run, fill columns from the fill run), the
// bottom line is CKK.
func RenderTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "%-20s %-7s %7s %9s %9s %9s %6s %7s %9s %6s %7s %9s\n",
		"dataset(graphs)", "algo", "#trng", "init", "delay", "del-noin",
		"min-w", "#min-w", "#<1.1w", "min-f", "#min-f", "#<1.1f")
	for _, r := range rows {
		name := fmt.Sprintf("%s(%d)", r.Dataset, r.Graphs)
		fmt.Fprintf(w, "%-20s %-7s %7d %9s %9s %9s %6d %7d %9d %6d %7d %9d\n",
			name, "ranked",
			r.RankedWidth.Results, fmtDur(r.RankedWidth.Init), fmtDur(r.RankedWidth.AvgDelay),
			fmtDur(r.RankedWidth.AvgDelayNoInit),
			r.RankedWidth.MinWidth, r.RankedWidth.NumMinWidth, r.RankedWidth.NumNearWidth,
			r.RankedFill.MinFill, r.RankedFill.NumMinFill, r.RankedFill.NumNearFill)
		fmt.Fprintf(w, "%-20s %-7s %7d %9s %9s %9s %6d %7d %9d %6d %7d %9d\n",
			"", "ckk",
			r.CKK.Results, fmtDur(0), fmtDur(r.CKK.AvgDelay), fmtDur(r.CKK.AvgDelay),
			r.CKK.MinWidth, r.CKK.NumMinWidth, r.CKK.NumNearWidth,
			r.CKK.MinFill, r.CKK.NumMinFill, r.CKK.NumNearFill)
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// Figure8Point is one (n, p) cell of Figure 8: delays and the fraction of
// optimal-cost results CKK returns relative to RankedTriang.
type Figure8Point struct {
	N                 int
	P                 float64
	RankedDelay       time.Duration
	RankedDelayNoInit time.Duration
	CKKDelay          time.Duration
	// Quality ratios (CKK count / RankedTriang count); NaN when the
	// denominator is zero.
	PctMinWidth  float64
	PctNearWidth float64
	PctMinFill   float64
	PctNearFill  float64
}

// Figure8 runs both algorithms on G(n, p) draws and reports the delay and
// quality comparison of Figures 8(a)–(d).
func Figure8(seed int64, ns []int, ps []float64, draws int, budget time.Duration) []Figure8Point {
	rng := rand.New(rand.NewSource(seed))
	var pts []Figure8Point
	for _, n := range ns {
		for _, p := range ps {
			var cell []Figure8Point
			for d := 0; d < draws; d++ {
				g := gen.GNP(rng, n, p)
				rw := ComputeMetrics(RunRanked(g, cost.Width{}, budget))
				rf := ComputeMetrics(RunRanked(g, cost.FillIn{}, budget))
				ck := ComputeMetrics(RunCKK(g, budget))
				cell = append(cell, Figure8Point{
					N: n, P: p,
					RankedDelay:       rw.AvgDelay,
					RankedDelayNoInit: rw.AvgDelayNoInit,
					CKKDelay:          ck.AvgDelay,
					PctMinWidth:       ratio(ck.NumMinWidth, rw.NumMinWidth),
					PctNearWidth:      ratio(ck.NumNearWidth, rw.NumNearWidth),
					PctMinFill:        ratio(ck.NumMinFill, rf.NumMinFill),
					PctNearFill:       ratio(ck.NumNearFill, rf.NumNearFill),
				})
			}
			pts = append(pts, averageFig8(cell))
		}
	}
	return pts
}

func ratio(a, b int) float64 {
	if b == 0 {
		return math.NaN()
	}
	return float64(a) / float64(b)
}

func averageFig8(cell []Figure8Point) Figure8Point {
	out := cell[0]
	if len(cell) == 1 {
		return out
	}
	var rd, rdn, cd time.Duration
	var pw, pnw, pf, pnf float64
	var cw, cnw, cf, cnf int
	for _, p := range cell {
		rd += p.RankedDelay
		rdn += p.RankedDelayNoInit
		cd += p.CKKDelay
		if !math.IsNaN(p.PctMinWidth) {
			pw += p.PctMinWidth
			cw++
		}
		if !math.IsNaN(p.PctNearWidth) {
			pnw += p.PctNearWidth
			cnw++
		}
		if !math.IsNaN(p.PctMinFill) {
			pf += p.PctMinFill
			cf++
		}
		if !math.IsNaN(p.PctNearFill) {
			pnf += p.PctNearFill
			cnf++
		}
	}
	n := time.Duration(len(cell))
	out.RankedDelay = rd / n
	out.RankedDelayNoInit = rdn / n
	out.CKKDelay = cd / n
	out.PctMinWidth = avgOrNaN(pw, cw)
	out.PctNearWidth = avgOrNaN(pnw, cnw)
	out.PctMinFill = avgOrNaN(pf, cf)
	out.PctNearFill = avgOrNaN(pnf, cnf)
	return out
}

func avgOrNaN(sum float64, n int) float64 {
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// RenderFigure8 prints the per-(n, p) delay and quality comparison.
func RenderFigure8(w io.Writer, pts []Figure8Point) {
	fmt.Fprintf(w, "%4s %6s %12s %12s %12s %8s %8s %8s %8s\n",
		"n", "p", "ranked", "ranked-noin", "ckk", "%min-w", "%1.1w", "%min-f", "%1.1f")
	for _, p := range pts {
		fmt.Fprintf(w, "%4d %6.2f %12s %12s %12s %8s %8s %8s %8s\n",
			p.N, p.P, fmtDur(p.RankedDelay), fmtDur(p.RankedDelayNoInit), fmtDur(p.CKKDelay),
			fmtPct(p.PctMinWidth), fmtPct(p.PctNearWidth), fmtPct(p.PctMinFill), fmtPct(p.PctNearFill))
	}
}

func fmtPct(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*v)
}

// Figure9Bucket is one time interval of the case study: results produced
// in the interval with their minimum and median widths.
type Figure9Bucket struct {
	End      time.Duration
	Results  int
	MinWidth int // -1 when the bucket is empty
	MedWidth int
}

// Figure9 buckets a run's records into equal time intervals, reproducing
// the case-study charts.
func Figure9(run EnumRun, interval time.Duration, buckets int) []Figure9Bucket {
	out := make([]Figure9Bucket, buckets)
	widths := make([][]int, buckets)
	for i := range out {
		out[i].End = time.Duration(i+1) * interval
		out[i].MinWidth = -1
	}
	for _, r := range run.Records {
		idx := int(r.When / interval)
		if idx >= buckets {
			idx = buckets - 1
		}
		widths[idx] = append(widths[idx], r.Width)
	}
	for i := range out {
		ws := widths[i]
		out[i].Results = len(ws)
		if len(ws) == 0 {
			continue
		}
		sort.Ints(ws)
		out[i].MinWidth = ws[0]
		out[i].MedWidth = ws[len(ws)/2]
	}
	return out
}

// RenderFigure9 prints the side-by-side case-study series.
func RenderFigure9(w io.Writer, name string, ranked, baseline []Figure9Bucket) {
	fmt.Fprintf(w, "case study: %s\n", name)
	fmt.Fprintf(w, "%10s | %8s %6s %6s | %8s %6s %6s\n",
		"t", "rk-#res", "rk-min", "rk-med", "ckk-#res", "ck-min", "ck-med")
	for i := range ranked {
		r := ranked[i]
		var c Figure9Bucket
		if i < len(baseline) {
			c = baseline[i]
		}
		fmt.Fprintf(w, "%10s | %8d %6d %6d | %8d %6d %6d\n",
			fmtDur(r.End), r.Results, r.MinWidth, r.MedWidth, c.Results, c.MinWidth, c.MedWidth)
	}
}
