// Package exp is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section 7) on synthetic stand-ins for
// the original datasets (see DESIGN.md for the substitution rationale).
// Budgets are configurable: the paper used 60 s / 30 min / 30 min budgets
// on a 48-core server; the defaults here are seconds-scale so the whole
// suite reruns in CI, and every metric that matters — who wins, by what
// factor, where the tractability boundary falls — is budget-relative.
package exp

import (
	"math/rand"

	"repro/internal/gen"
	"repro/internal/graph"
)

// NamedGraph is one experiment instance.
type NamedGraph struct {
	Name  string
	Graph *graph.Graph
}

// Dataset is a named family of graphs, mirroring one row of Figure 5.
type Dataset struct {
	Name   string
	Graphs []NamedGraph
}

// Datasets instantiates the evaluation corpus from a seed. Families mirror
// the paper's: PIC2011-style graphical models (CSP, grids, DBN, object
// detection, image alignment, segmentation, Promedas, pedigree, Alchemy),
// TPC-H-style query Gaifman graphs, and PACE2016-style named graphs. Sizes
// are scaled so that — like in the paper — some families are fully
// tractable, some are borderline, and some blow past any budget.
func Datasets(seed int64) []Dataset {
	rng := rand.New(rand.NewSource(seed))
	named := func(names ...string) []NamedGraph {
		var out []NamedGraph
		for _, n := range names {
			g, err := gen.Named(n)
			if err != nil {
				panic(err)
			}
			out = append(out, NamedGraph{Name: n, Graph: g})
		}
		return out
	}
	var ds []Dataset

	// CSP: grid constraint graphs with extra long-range constraints.
	var csp []NamedGraph
	for i := 0; i < 4; i++ {
		csp = append(csp, NamedGraph{
			Name:  "csp-" + itoa(i),
			Graph: gen.CSPGrid(rng, 4, 4, 4+i),
		})
	}
	ds = append(ds, Dataset{Name: "CSP", Graphs: csp})

	// Grids: pure grid models.
	ds = append(ds, Dataset{Name: "Grids", Graphs: []NamedGraph{
		{Name: "grid-3x4", Graph: gen.Grid(3, 4)},
		{Name: "grid-4x4", Graph: gen.Grid(4, 4)},
		{Name: "grid-4x5", Graph: gen.Grid(4, 5)},
	}})

	// DBN: moralized layered networks with few parents.
	var dbn []NamedGraph
	for i := 0; i < 4; i++ {
		dbn = append(dbn, NamedGraph{
			Name:  "dbn-" + itoa(i),
			Graph: gen.MoralizedDAG(rng, 18+4*i, 2),
		})
	}
	ds = append(ds, Dataset{Name: "DBN", Graphs: dbn})

	// Object detection: small, fairly dense models — the family with the
	// tiny init and delay in Table 2.
	var obj []NamedGraph
	for i := 0; i < 5; i++ {
		obj = append(obj, NamedGraph{
			Name:  "objdet-" + itoa(i),
			Graph: gen.ConnectedGNP(rng, 11+i, 0.4),
		})
	}
	ds = append(ds, Dataset{Name: "ObjectDetection", Graphs: obj})

	// Image alignment: mid-size, mid-density.
	var img []NamedGraph
	for i := 0; i < 3; i++ {
		img = append(img, NamedGraph{
			Name:  "align-" + itoa(i),
			Graph: gen.ConnectedGNP(rng, 15+2*i, 0.3),
		})
	}
	ds = append(ds, Dataset{Name: "ImageAlignment", Graphs: img})

	// Segmentation: grids with extra couplings.
	ds = append(ds, Dataset{Name: "Segmentation", Graphs: []NamedGraph{
		{Name: "seg-0", Graph: gen.CSPGrid(rng, 5, 4, 6)},
		{Name: "seg-1", Graph: gen.CSPGrid(rng, 5, 5, 8)},
	}})

	// Promedas: larger sparse moralized networks — separators manageable,
	// PMCs borderline (the paper's "too slow due to a high number of
	// PMCs" family).
	var pro []NamedGraph
	for i := 0; i < 3; i++ {
		pro = append(pro, NamedGraph{
			Name:  "promedas-" + itoa(i),
			Graph: gen.MoralizedDAG(rng, 34+4*i, 2),
		})
	}
	ds = append(ds, Dataset{Name: "Promedas", Graphs: pro})

	// Pedigree: big moralized networks with more parents — mostly
	// intractable, as in the paper.
	var ped []NamedGraph
	for i := 0; i < 3; i++ {
		ped = append(ped, NamedGraph{
			Name:  "pedigree-" + itoa(i),
			Graph: gen.MoralizedDAG(rng, 55+5*i, 3),
		})
	}
	ds = append(ds, Dataset{Name: "Pedigree", Graphs: ped})

	// Alchemy: large dense Markov-logic-style graphs — all intractable in
	// the paper.
	var alc []NamedGraph
	for i := 0; i < 2; i++ {
		alc = append(alc, NamedGraph{
			Name:  "alchemy-" + itoa(i),
			Graph: gen.ConnectedGNP(rng, 45+5*i, 0.3),
		})
	}
	ds = append(ds, Dataset{Name: "Alchemy", Graphs: alc})

	// TPC-H: conjunctive-query Gaifman graphs — tiny, always easy.
	ds = append(ds, Dataset{Name: "TPC-H", Graphs: []NamedGraph{
		{Name: "q-chain", Graph: gen.QueryGaifman(rng, gen.ChainQuery, 7, 3)},
		{Name: "q-star", Graph: gen.QueryGaifman(rng, gen.StarQuery, 6, 3)},
		{Name: "q-cycle", Graph: gen.QueryGaifman(rng, gen.CycleQuery, 6, 2)},
		{Name: "q-snowflake", Graph: gen.QueryGaifman(rng, gen.SnowflakeQuery, 8, 3)},
	}})

	// PACE2016 100s: small named/competition graphs.
	ds = append(ds, Dataset{Name: "PACE2016-100s",
		Graphs: named("petersen", "grotzsch", "cube", "wagner", "octahedron", "bull", "house")})

	// PACE2016 1000s: the larger competition-style graphs.
	pace1000 := named("moebius-kantor", "queen4")
	pace1000 = append(pace1000, NamedGraph{Name: "ktree-20-3", Graph: gen.KTree(rng, 20, 3, 6)})
	ds = append(ds, Dataset{Name: "PACE2016-1000s", Graphs: pace1000})

	return ds
}

func itoa(i int) string {
	if i < 0 || i > 9 {
		return "x"
	}
	return string(rune('0' + i))
}
