package exp

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/minsep"
	"repro/internal/pmc"
	"repro/internal/vset"
)

// TractabilityOutcome classifies one graph under the Figure 5 budgets.
type TractabilityOutcome int

// Figure 5 classes.
const (
	// Terminated: both MinSep(G) and PMC(G) finished within budget.
	Terminated TractabilityOutcome = iota
	// MSTerminated: MinSep(G) finished but PMC(G) did not.
	MSTerminated
	// NotTerminated: MinSep(G) itself exceeded its budget.
	NotTerminated
)

func (o TractabilityOutcome) String() string {
	switch o {
	case Terminated:
		return "terminated"
	case MSTerminated:
		return "ms-terminated"
	default:
		return "not-terminated"
	}
}

// TractabilityResult is one graph's Figure 5/6 record.
type TractabilityResult struct {
	Dataset string
	Graph   string
	Outcome TractabilityOutcome
	Edges   int
	MinSeps int // valid when Outcome != NotTerminated
	PMCs    int // valid when Outcome == Terminated
	Seps    []vset.Set
	PMCSets []vset.Set
}

// Figure5Row aggregates one dataset row of Figure 5.
type Figure5Row struct {
	Dataset       string
	Terminated    int
	MSTerminated  int
	NotTerminated int
}

// ClassifyGraph runs the Figure 5 protocol on a single graph: generate the
// minimal separators under msBudget, then the PMCs under pmcBudget.
func ClassifyGraph(g *graph.Graph, msBudget, pmcBudget time.Duration) TractabilityResult {
	res := TractabilityResult{Edges: g.NumEdges()}
	seps, ok := minsep.AllWithDeadline(g, time.Now().Add(msBudget))
	if !ok {
		res.Outcome = NotTerminated
		return res
	}
	res.MinSeps = len(seps)
	res.Seps = seps
	pmcs, err := pmc.AllWithDeadline(g, time.Now().Add(pmcBudget))
	if err != nil {
		res.Outcome = MSTerminated
		return res
	}
	res.Outcome = Terminated
	res.PMCs = len(pmcs)
	res.PMCSets = pmcs
	return res
}

// Figure5 runs the tractability study over all datasets and returns per-
// dataset rows plus the raw per-graph records (which Figure 6 and Table 2
// reuse).
func Figure5(datasets []Dataset, msBudget, pmcBudget time.Duration) ([]Figure5Row, []TractabilityResult) {
	var rows []Figure5Row
	var all []TractabilityResult
	for _, ds := range datasets {
		row := Figure5Row{Dataset: ds.Name}
		for _, ng := range ds.Graphs {
			r := ClassifyGraph(ng.Graph, msBudget, pmcBudget)
			r.Dataset = ds.Name
			r.Graph = ng.Name
			all = append(all, r)
			switch r.Outcome {
			case Terminated:
				row.Terminated++
			case MSTerminated:
				row.MSTerminated++
			default:
				row.NotTerminated++
			}
		}
		rows = append(rows, row)
	}
	return rows, all
}

// RenderFigure5 prints the dataset × outcome table.
func RenderFigure5(w io.Writer, rows []Figure5Row) {
	fmt.Fprintf(w, "%-18s %12s %14s %15s\n", "dataset", "terminated", "ms-terminated", "not-terminated")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %12d %14d %15d\n", r.Dataset, r.Terminated, r.MSTerminated, r.NotTerminated)
	}
}

// Figure6Point is one point of the #min-seps vs #edges distribution.
type Figure6Point struct {
	Dataset string
	Graph   string
	Edges   int
	MinSeps int
}

// Figure6 extracts the separator-count distribution over the MS-tractable
// graphs of a Figure 5 run.
func Figure6(results []TractabilityResult) []Figure6Point {
	var pts []Figure6Point
	for _, r := range results {
		if r.Outcome == NotTerminated {
			continue
		}
		pts = append(pts, Figure6Point{Dataset: r.Dataset, Graph: r.Graph, Edges: r.Edges, MinSeps: r.MinSeps})
	}
	return pts
}

// RenderFigure6 prints the log-log scatter data.
func RenderFigure6(w io.Writer, pts []Figure6Point) {
	fmt.Fprintf(w, "%-18s %-16s %8s %9s %14s\n", "dataset", "graph", "edges", "minseps", "minseps/edges")
	for _, p := range pts {
		ratio := float64(p.MinSeps) / float64(max(1, p.Edges))
		fmt.Fprintf(w, "%-18s %-16s %8d %9d %14.2f\n", p.Dataset, p.Graph, p.Edges, p.MinSeps, ratio)
	}
}

// Figure7Point is one random-graph measurement of Figure 7.
type Figure7Point struct {
	N        int
	P        float64
	MinSeps  int
	TimedOut bool
}

// Figure7 measures the number of minimal separators of G(n, p) for each
// n in ns and p in ps, draws samples per cell, with a per-graph budget
// (red marks in the paper's charts are the timeouts).
func Figure7(seed int64, ns []int, ps []float64, draws int, budget time.Duration) []Figure7Point {
	rng := rand.New(rand.NewSource(seed))
	var pts []Figure7Point
	for _, n := range ns {
		for _, p := range ps {
			for d := 0; d < draws; d++ {
				g := gen.GNP(rng, n, p)
				seps, ok := minsep.AllWithDeadline(g, time.Now().Add(budget))
				pts = append(pts, Figure7Point{N: n, P: p, MinSeps: len(seps), TimedOut: !ok})
			}
		}
	}
	return pts
}

// RenderFigure7 prints the per-(n, p) average separator counts.
func RenderFigure7(w io.Writer, pts []Figure7Point) {
	type key struct {
		n int
		p float64
	}
	sum := map[key]int{}
	cnt := map[key]int{}
	timeouts := map[key]int{}
	var order []key
	for _, pt := range pts {
		k := key{pt.N, pt.P}
		if cnt[k] == 0 {
			order = append(order, k)
		}
		cnt[k]++
		if pt.TimedOut {
			timeouts[k]++
		} else {
			sum[k] += pt.MinSeps
		}
	}
	fmt.Fprintf(w, "%4s %6s %12s %9s\n", "n", "p", "avg-minseps", "timeouts")
	for _, k := range order {
		done := cnt[k] - timeouts[k]
		avg := 0.0
		if done > 0 {
			avg = float64(sum[k]) / float64(done)
		}
		fmt.Fprintf(w, "%4d %6.2f %12.1f %9d\n", k.n, k.p, avg, timeouts[k])
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
