package minsep

import (
	"math/rand"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/chordal"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/vset"
)

func TestPaperExampleSeparators(t *testing.T) {
	// MinSep(G) = {S1, S2, S3} = {{w1,w2,w3}, {u,v}, {v}} (Example 2.4).
	g := gen.PaperExample()
	seps := All(g)
	want := map[string]bool{
		vset.Of(6, 3, 4, 5).Key(): true,
		vset.Of(6, 0, 1).Key():    true,
		vset.Of(6, 1).Key():       true,
	}
	if len(seps) != 3 {
		t.Fatalf("got %d separators: %v", len(seps), seps)
	}
	for _, s := range seps {
		if !want[s.Key()] {
			t.Errorf("unexpected separator %v", s)
		}
	}
}

func TestPaperExampleCrossing(t *testing.T) {
	g := gen.PaperExample()
	s1 := vset.Of(6, 3, 4, 5)
	s2 := vset.Of(6, 0, 1)
	s3 := vset.Of(6, 1)
	if !Crosses(g, s1, s2) || !Crosses(g, s2, s1) {
		t.Errorf("S1 and S2 should cross (Example 2.4)")
	}
	if Crosses(g, s1, s3) || Crosses(g, s3, s1) {
		t.Errorf("S1 and S3 should be parallel")
	}
	if Crosses(g, s2, s3) || Crosses(g, s3, s2) {
		t.Errorf("S2 and S3 should be parallel")
	}
	if !PairwiseParallel(g, []vset.Set{s1, s3}) {
		t.Errorf("PairwiseParallel({S1,S3}) = false")
	}
	if PairwiseParallel(g, []vset.Set{s1, s2, s3}) {
		t.Errorf("PairwiseParallel should detect the S1/S2 crossing")
	}
	all := All(g)
	if !IsMaximalParallel(g, []vset.Set{s1, s3}, all) {
		t.Errorf("{S1,S3} should be maximal parallel")
	}
	if IsMaximalParallel(g, []vset.Set{s3}, all) {
		t.Errorf("{S3} is not maximal (S1 and S2 are both parallel to it)")
	}
}

func TestSimpleFamilies(t *testing.T) {
	if got := len(All(gen.Complete(5))); got != 0 {
		t.Errorf("K5 has %d separators, want 0", got)
	}
	if got := len(All(gen.Path(5))); got != 3 {
		t.Errorf("P5 has %d separators, want 3 (internal vertices)", got)
	}
	// Cn has n(n-3)/2 minimal separators (all non-adjacent pairs).
	if got := len(All(gen.Cycle(6))); got != 9 {
		t.Errorf("C6 has %d separators, want 9", got)
	}
	// Disconnected graph: empty separator included.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	seps := All(g)
	foundEmpty := false
	for _, s := range seps {
		if s.IsEmpty() {
			foundEmpty = true
		}
	}
	if !foundEmpty {
		t.Errorf("disconnected graph should report the empty separator")
	}
}

func TestAllMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(9)
		g := gen.GNP(rng, n, 0.15+rng.Float64()*0.6)
		got := All(g)
		want := bruteforce.AllMinimalSeparators(g)
		if len(got) != len(want) {
			t.Fatalf("n=%d trial=%d: got %d separators, oracle %d\ngot=%v\nwant=%v",
				n, trial, len(got), len(want), got, want)
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("separator mismatch at %d: %v vs %v", i, got[i], want[i])
			}
		}
	}
}

func TestCrossingSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		g := gen.ConnectedGNP(rng, 4+rng.Intn(8), 0.4)
		seps := All(g)
		for i := range seps {
			for j := range seps {
				if Crosses(g, seps[i], seps[j]) != Crosses(g, seps[j], seps[i]) {
					t.Fatalf("crossing not symmetric for %v, %v", seps[i], seps[j])
				}
			}
			if Crosses(g, seps[i], seps[i]) {
				t.Fatalf("separator crosses itself: %v", seps[i])
			}
		}
	}
}

func TestParraSchefflerRoundTrip(t *testing.T) {
	// Saturating a maximal pairwise-parallel family yields a minimal
	// triangulation whose minimal separators are exactly the family
	// (Theorem 2.5). We grow maximal families greedily.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		g := gen.ConnectedGNP(rng, 4+rng.Intn(5), 0.45)
		all := All(g)
		var family []vset.Set
		perm := rng.Perm(len(all))
		for _, idx := range perm {
			cand := all[idx]
			ok := true
			for _, s := range family {
				if Crosses(g, s, cand) {
					ok = false
					break
				}
			}
			if ok {
				family = append(family, cand)
			}
		}
		if !IsMaximalParallel(g, family, all) {
			t.Fatalf("greedy family not maximal")
		}
		h := Saturate(g, family)
		if !chordal.IsTriangulationOf(h, g) {
			t.Fatalf("saturated family not a triangulation")
		}
		if !bruteforce.IsMinimalTriangulation(h, g) {
			t.Fatalf("saturated family not a *minimal* triangulation")
		}
		hseps, err := chordal.MinimalSeparators(h)
		if err != nil {
			t.Fatal(err)
		}
		wantKeys := map[string]bool{}
		for _, s := range family {
			wantKeys[s.Key()] = true
		}
		if len(hseps) != len(family) {
			t.Fatalf("MinSep(H) has %d members, family has %d", len(hseps), len(family))
		}
		for _, s := range hseps {
			if !wantKeys[s.Key()] {
				t.Fatalf("MinSep(H) contains %v outside the family", s)
			}
		}
	}
}

func TestAtMost(t *testing.T) {
	g := gen.PaperExample()
	small := AtMost(g, 2)
	if len(small) != 2 {
		t.Fatalf("AtMost(2) = %d separators, want 2 (S2, S3)", len(small))
	}
	for _, s := range small {
		if s.Len() > 2 {
			t.Fatalf("AtMost returned oversized separator %v", s)
		}
	}
}
