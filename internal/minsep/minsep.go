// Package minsep enumerates the minimal separators of a graph with the
// Berry–Bordat–Cogis algorithm and provides the crossing/parallel relation
// of Parra–Scheffler that underpins the whole triangulation theory.
package minsep

import (
	"context"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/intern"
	"repro/internal/vset"
)

// All returns MinSep(G), the minimal separators of g, in canonical order.
// If g is disconnected the empty separator is included (it is the unique
// minimal (u,v)-separator for u, v in different components).
//
// The algorithm is Berry, Bordat and Cogis (WG 1999): seed with the
// neighborhoods of the components of G \ N[v] for every vertex v, then
// close under the expansion step S ↦ N(C) for components C of
// G \ (S ∪ N(x)), x ∈ S.
func All(g *graph.Graph) []vset.Set {
	out, _ := all(g, nil)
	return out
}

// AllWithDeadline is All with a wall-clock deadline: it returns ok=false
// (and a partial list) when the deadline passes before the closure
// completes. A zero deadline disables the check. This powers the paper's
// tractability experiments (Figure 5), which classify graphs by whether
// the separators can be generated within a time budget.
func AllWithDeadline(g *graph.Graph, deadline time.Time) ([]vset.Set, bool) {
	if deadline.IsZero() {
		return all(g, nil)
	}
	return all(g, func() bool { return time.Now().After(deadline) })
}

// AllCtx is All with cancellation: it returns ok=false (and a partial
// list) when ctx is cancelled or its deadline passes before the closure
// completes. This is the entry point long-lived services use to abandon
// initialization work for disconnected clients.
func AllCtx(ctx context.Context, g *graph.Graph) ([]vset.Set, bool) {
	if ctx.Done() == nil {
		return all(g, nil)
	}
	return all(g, func() bool { return ctx.Err() != nil })
}

// all runs the closure, aborting early when the (possibly nil) expired
// predicate reports true.
func all(g *graph.Graph, expired func() bool) ([]vset.Set, bool) {
	seen := intern.New(g.NumVertices())
	var queue []vset.Set
	add := func(s vset.Set) {
		if _, fresh := seen.Intern(s); fresh {
			queue = append(queue, s)
		}
	}
	if expired == nil {
		expired = func() bool { return false }
	}
	g.Vertices().ForEach(func(v int) bool {
		for _, c := range g.ComponentsAvoiding(g.ClosedNeighborhood(v)) {
			add(g.NeighborsOfSet(c))
		}
		return true
	})
	for len(queue) > 0 {
		if expired() {
			return collect(g, seen), false
		}
		s := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		s.ForEach(func(x int) bool {
			avoid := s.Union(g.Neighbors(x))
			avoid.AddInPlace(x)
			for _, c := range g.ComponentsAvoiding(avoid) {
				add(g.NeighborsOfSet(c))
			}
			return true
		})
	}
	return collect(g, seen), true
}

func collect(g *graph.Graph, seen *intern.Table) []vset.Set {
	out := make([]vset.Set, 0, seen.Len())
	for _, s := range seen.Sets() {
		if s.IsEmpty() && g.IsConnected() {
			continue
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// AtMost returns the minimal separators of g of size at most k, by
// filtering All. This preserves the semantics MinTriangB needs; the
// fixed-parameter pruning the paper alludes to is a complexity-only
// optimization and is intentionally not replicated (see DESIGN.md).
func AtMost(g *graph.Graph, k int) []vset.Set {
	out, _ := AtMostCtx(context.Background(), g, k)
	return out
}

// AtMostCtx is AtMost with cancellation (see AllCtx).
func AtMostCtx(ctx context.Context, g *graph.Graph, k int) ([]vset.Set, bool) {
	seps, ok := AllCtx(ctx, g)
	if !ok {
		return nil, false
	}
	var out []vset.Set
	for _, s := range seps {
		if s.Len() <= k {
			out = append(out, s)
		}
	}
	return out, true
}

// Crosses reports whether s crosses t in g: some two vertices of t are
// separated by s, i.e. t meets at least two components of G \ s.
// The relation is symmetric (Parra–Scheffler). Separators are parallel
// when they do not cross.
func Crosses(g *graph.Graph, s, t vset.Set) bool {
	rest := t.Diff(s)
	if rest.IsEmpty() {
		return false
	}
	touched := 0
	for _, c := range g.ComponentsAvoiding(s) {
		if c.Intersects(rest) {
			touched++
			if touched >= 2 {
				return true
			}
		}
	}
	return false
}

// Parallel reports whether s and t are parallel (non-crossing) in g.
func Parallel(g *graph.Graph, s, t vset.Set) bool {
	return !Crosses(g, s, t)
}

// PairwiseParallel reports whether every two members of seps are parallel.
func PairwiseParallel(g *graph.Graph, seps []vset.Set) bool {
	for i := range seps {
		for j := i + 1; j < len(seps); j++ {
			if Crosses(g, seps[i], seps[j]) {
				return false
			}
		}
	}
	return true
}

// IsMaximalParallel reports whether seps is a maximal set of pairwise
// parallel minimal separators with respect to the universe all.
func IsMaximalParallel(g *graph.Graph, seps, all []vset.Set) bool {
	if !PairwiseParallel(g, seps) {
		return false
	}
	inSet := intern.FromSets(seps)
	for _, t := range all {
		if inSet.Contains(t) {
			continue
		}
		crossesSome := false
		for _, s := range seps {
			if Crosses(g, s, t) {
				crossesSome = true
				break
			}
		}
		if !crossesSome {
			return false
		}
	}
	return true
}

// Saturate returns g with every separator in seps saturated. When seps is
// a maximal set of pairwise-parallel minimal separators, the result is a
// minimal triangulation of g (Theorem 2.5, Parra–Scheffler).
func Saturate(g *graph.Graph, seps []vset.Set) *graph.Graph {
	h := g.Clone()
	for _, s := range seps {
		h.SaturateInPlace(s)
	}
	return h
}
