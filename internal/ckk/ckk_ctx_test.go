package ckk

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/chordal"
	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/minsep"
)

func TestNextContextCancelled(t *testing.T) {
	g := gen.Cycle(8)
	ctx, cancel := context.WithCancel(context.Background())
	e := New(g, nil)
	if _, ok := e.NextContext(ctx); !ok {
		t.Fatal("first result should be available before cancellation")
	}
	cancel()
	if r, ok := e.NextContext(ctx); ok {
		t.Fatalf("cancelled NextContext returned a result: %v", r)
	}
	if got := e.AllContext(ctx); len(got) != 0 {
		t.Fatalf("cancelled AllContext returned %d results", len(got))
	}
}

func TestAllContextTruncates(t *testing.T) {
	// A context cancelled midway yields a strict prefix of the C6
	// enumeration (14 results total), never a wrong or duplicated set.
	g := gen.Cycle(6)
	for stop := 0; stop <= 14; stop++ {
		ctx, cancel := context.WithCancel(context.Background())
		e := New(g, nil)
		var got []*Result
		for i := 0; i < stop; i++ {
			r, ok := e.NextContext(ctx)
			if !ok {
				t.Fatalf("stop=%d: exhausted early at %d", stop, i)
			}
			got = append(got, r)
		}
		cancel()
		got = append(got, e.AllContext(ctx)...)
		if len(got) != stop {
			t.Fatalf("stop=%d: drained %d results after cancel", stop, len(got))
		}
	}
}

func TestScoredCompleteness(t *testing.T) {
	// Scoring permutes the order only: the scored enumeration emits
	// exactly the set of all minimal triangulations.
	rng := rand.New(rand.NewSource(909))
	score := func(r *Result) float64 {
		bags, err := chordal.MaximalCliques(r.H)
		if err != nil {
			t.Fatal(err)
		}
		return cost.FillIn{}.Eval(r.H, bags)
	}
	for trial := 0; trial < 60; trial++ {
		g := gen.GNP(rng, 2+rng.Intn(6), 0.2+rng.Float64()*0.6)
		want := bruteforce.AllMinimalTriangulations(g)
		got := NewScored(g, nil, score).All()
		if len(got) != len(want) {
			t.Fatalf("trial %d: scored CKK found %d, oracle %d (edges=%v)",
				trial, len(got), len(want), g.Edges())
		}
		keys := map[string]bool{}
		for _, r := range got {
			k := r.H.EdgeSetKey()
			if keys[k] {
				t.Fatalf("trial %d: scored CKK emitted a duplicate", trial)
			}
			keys[k] = true
		}
		for _, h := range want {
			if !keys[h.EdgeSetKey()] {
				t.Fatalf("trial %d: scored CKK missed a triangulation", trial)
			}
		}
	}
}

func TestScoredDeterministic(t *testing.T) {
	// The scored walk must replay identically across runs — the shared
	// ranked-stream cache rebuilds streams from scratch and expects the
	// same sequence (core.SharedStream's evict-and-replay contract).
	g := gen.Cycle(7)
	score := func(r *Result) float64 { return float64(r.H.NumEdges()) }
	var first []string
	for run := 0; run < 3; run++ {
		var seq []string
		e := NewScored(g, nil, score)
		for {
			r, ok := e.Next()
			if !ok {
				break
			}
			seq = append(seq, r.H.EdgeSetKey())
		}
		if run == 0 {
			first = seq
			continue
		}
		if len(seq) != len(first) {
			t.Fatalf("run %d: %d results vs %d", run, len(seq), len(first))
		}
		for i := range seq {
			if seq[i] != first[i] {
				t.Fatalf("run %d: order diverged at rank %d", run, i)
			}
		}
	}
}

func TestSepStreamMatchesMinsepAll(t *testing.T) {
	// The exported probe stream must produce exactly MinSep(G), each
	// separator once — SelectBackend's count is meaningless otherwise.
	rng := rand.New(rand.NewSource(1010))
	for trial := 0; trial < 60; trial++ {
		g := gen.GNP(rng, 2+rng.Intn(7), 0.2+rng.Float64()*0.6)
		want := map[string]bool{}
		for _, s := range minsep.All(g) {
			// The stream skips the empty separator a disconnected graph
			// has: it admits no fill, so no enumeration move needs it.
			if !s.IsEmpty() {
				want[s.Key()] = true
			}
		}
		got := map[string]bool{}
		ss := NewSepStream(g)
		for {
			s, ok := ss.Next(context.Background())
			if !ok {
				break
			}
			k := s.Key()
			if got[k] {
				t.Fatalf("trial %d: separator emitted twice", trial)
			}
			got[k] = true
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: stream produced %d separators, minsep.All %d",
				trial, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: stream missed a separator", trial)
			}
		}
	}
}

func TestSepStreamCancelled(t *testing.T) {
	g := gen.GNP(rand.New(rand.NewSource(7)), 10, 0.4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ss := NewSepStream(g)
	// The neighborhood-seeded prefix is computed at construction, so a few
	// draws may still succeed; the stream must stop at the first expansion
	// step after cancellation instead of producing the full closure.
	n := 0
	for {
		if _, ok := ss.Next(ctx); !ok {
			break
		}
		n++
		if n > 10*g.NumVertices() {
			t.Fatal("cancelled separator stream keeps producing")
		}
	}
}

// TestInternedDedupMatchesEdgeKeys pins the dense-ID dedup to the old
// edge-set-key dedup it replaced: on random graphs the enumeration sizes
// match the brute-force oracle (completeness) AND no two emitted results
// share a separator family (the Parra–Scheffler injectivity the ID key
// relies on).
func TestInternedDedupMatchesEdgeKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(1111))
	for trial := 0; trial < 40; trial++ {
		g := gen.GNP(rng, 3+rng.Intn(5), 0.5)
		famSeen := map[string]bool{}
		for _, r := range New(g, nil).All() {
			keys := make([]string, len(r.Seps))
			for i, s := range r.Seps {
				keys[i] = s.Key()
			}
			fam := canonicalFamilyKey(keys)
			if famSeen[fam] {
				t.Fatalf("trial %d: two triangulations share a separator family", trial)
			}
			famSeen[fam] = true
		}
	}
}

func canonicalFamilyKey(keys []string) string {
	out := ""
	for {
		best := ""
		for _, k := range keys {
			if k != "" && (best == "" || k < best) {
				best = k
			}
		}
		if best == "" {
			return out
		}
		out += best + "|"
		for i, k := range keys {
			if k == best {
				keys[i] = ""
				break
			}
		}
	}
}

// TestMoveFamilyPreDedup exercises the tried-family fast path: K4 plus a
// pendant forces repeated saturations of identical families; the
// enumeration must still match the oracle exactly.
func TestMoveFamilyPreDedup(t *testing.T) {
	g := graph.New(5)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			g.AddEdge(u, v)
		}
	}
	g.AddEdge(0, 4)
	want := bruteforce.AllMinimalTriangulations(g)
	got := New(g, nil).All()
	if len(got) != len(want) {
		t.Fatalf("K4+pendant: %d vs oracle %d", len(got), len(want))
	}
}
