// Package ckk reimplements the paper's baseline: the Carmeli–Kenig–
// Kimelfeld (PODS 2017) enumeration of all minimal triangulations in
// incremental polynomial time, with no guarantee on the order.
//
// The algorithm enumerates the maximal independent sets of the
// Parra–Scheffler separator graph (vertices: minimal separators, edges:
// crossing pairs) without materializing it. The extension oracle saturates
// a pairwise-parallel family of minimal separators and hands the result to
// a black-box minimal triangulator (LB-Triang by default, the choice of
// the paper's experiments). The separator universe is produced lazily by a
// streaming Berry–Bordat–Cogis generator interleaved with the
// independent-set moves, so there is no expensive upfront initialization —
// the practical difference from RankedTriang that the paper's Table 2
// measures.
package ckk

import (
	"repro/internal/chordal"
	"repro/internal/graph"
	"repro/internal/minsep"
	"repro/internal/triang"
	"repro/internal/vset"
)

// Triangulator is the black-box minimal triangulation routine the
// enumeration relies on.
type Triangulator func(*graph.Graph) *graph.Graph

// Result is one enumerated minimal triangulation.
type Result struct {
	H    *graph.Graph
	Seps []vset.Set
}

// Enumerator streams all minimal triangulations of a graph, unordered.
// Create one with New, then call Next until exhaustion.
type Enumerator struct {
	g    *graph.Graph
	tri  Triangulator
	out  []*Result
	seen map[string]bool

	stream *sepStream
	seps   []vset.Set // separators drawn from the stream so far

	results []*Result
	cursor  []int // per result: moves with seps[0:cursor] are done
	next    int   // round-robin pointer
}

// New starts the CKK enumeration of the minimal triangulations of g,
// using tri as the black box (nil selects LB-Triang).
func New(g *graph.Graph, tri Triangulator) *Enumerator {
	if tri == nil {
		tri = triang.Minimal
	}
	e := &Enumerator{
		g:      g,
		tri:    tri,
		seen:   map[string]bool{},
		stream: newSepStream(g),
	}
	e.produce(nil)
	return e
}

// produce extends the pairwise-parallel family p to a minimal
// triangulation and registers it if new.
func (e *Enumerator) produce(p []vset.Set) {
	h := e.tri(minsep.Saturate(e.g, p))
	key := h.EdgeSetKey()
	if e.seen[key] {
		return
	}
	e.seen[key] = true
	seps, err := chordal.MinimalSeparators(h)
	if err != nil {
		panic("ckk: black-box triangulator returned a non-chordal graph: " + err.Error())
	}
	r := &Result{H: h, Seps: seps}
	e.out = append(e.out, r)
	e.results = append(e.results, r)
	e.cursor = append(e.cursor, 0)
}

// step performs one unit of pending work: either a (result, separator)
// move, or pulling one more separator from the lazy generator. It reports
// whether anything remained to do.
func (e *Enumerator) step() bool {
	// Apply a pending move if any result has one.
	for scanned := 0; scanned < len(e.results); scanned++ {
		i := (e.next + scanned) % len(e.results)
		if e.cursor[i] >= len(e.seps) {
			continue
		}
		r := e.results[i]
		s := e.seps[e.cursor[i]]
		e.cursor[i]++
		e.next = i
		e.move(r, s)
		return true
	}
	// All moves done; grow the separator universe.
	if s, ok := e.stream.next(); ok {
		e.seps = append(e.seps, s)
		return true
	}
	return false
}

// move generates the child of r with respect to separator s: keep the
// members of r parallel to s, force s in, and re-extend (the standard
// maximal-independent-set exchange step).
func (e *Enumerator) move(r *Result, s vset.Set) {
	for _, t := range r.Seps {
		if t.Equal(s) {
			return
		}
	}
	p := []vset.Set{s}
	for _, t := range r.Seps {
		if minsep.Parallel(e.g, t, s) {
			p = append(p, t)
		}
	}
	e.produce(p)
}

// Next returns the next minimal triangulation, or ok=false when the
// enumeration is complete. Results appear in no particular order.
func (e *Enumerator) Next() (*Result, bool) {
	for len(e.out) == 0 {
		if !e.step() {
			return nil, false
		}
	}
	r := e.out[0]
	e.out = e.out[1:]
	return r, true
}

// All drains the enumeration (testing convenience; real clients stream).
func (e *Enumerator) All() []*Result {
	var out []*Result
	for {
		r, ok := e.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// sepStream produces the minimal separators of a graph lazily, in
// Berry–Bordat–Cogis order: the neighborhood-seeded separators first, then
// the closure under the S ↦ N(component of G \ (S ∪ N(x))) expansion.
type sepStream struct {
	g        *graph.Graph
	all      []vset.Set
	seen     map[string]bool
	produced int // prefix of all already handed out
	expanded int // prefix of all already expanded
}

func newSepStream(g *graph.Graph) *sepStream {
	ss := &sepStream{g: g, seen: map[string]bool{}}
	g.Vertices().ForEach(func(v int) bool {
		for _, c := range g.ComponentsAvoiding(g.ClosedNeighborhood(v)) {
			ss.add(g.NeighborsOfSet(c))
		}
		return true
	})
	return ss
}

func (ss *sepStream) add(s vset.Set) {
	if s.IsEmpty() {
		return
	}
	k := s.Key()
	if !ss.seen[k] {
		ss.seen[k] = true
		ss.all = append(ss.all, s)
	}
}

// next returns one more minimal separator, expanding known separators on
// demand, or ok=false when the closure is exhausted.
func (ss *sepStream) next() (vset.Set, bool) {
	for ss.produced >= len(ss.all) && ss.expanded < len(ss.all) {
		s := ss.all[ss.expanded]
		ss.expanded++
		s.ForEach(func(x int) bool {
			avoid := s.Union(ss.g.Neighbors(x))
			avoid.AddInPlace(x)
			for _, c := range ss.g.ComponentsAvoiding(avoid) {
				ss.add(ss.g.NeighborsOfSet(c))
			}
			return true
		})
	}
	if ss.produced < len(ss.all) {
		s := ss.all[ss.produced]
		ss.produced++
		return s, true
	}
	return vset.Set{}, false
}
