// Package ckk reimplements the paper's baseline: the Carmeli–Kenig–
// Kimelfeld (PODS 2017) enumeration of all minimal triangulations in
// incremental polynomial time, with no guarantee on the order.
//
// The algorithm enumerates the maximal independent sets of the
// Parra–Scheffler separator graph (vertices: minimal separators, edges:
// crossing pairs) without materializing it. The extension oracle saturates
// a pairwise-parallel family of minimal separators and hands the result to
// a black-box minimal triangulator (LB-Triang by default, the choice of
// the paper's experiments). The separator universe is produced lazily by a
// streaming Berry–Bordat–Cogis generator interleaved with the
// independent-set moves, so there is no expensive upfront initialization —
// the practical difference from RankedTriang that the paper's Table 2
// measures, and the reason the service's MIS backend can answer on graphs
// whose |MinSep|-exponential PMC-table init blows the ranked DP's budget.
//
// Separators are interned into dense integer IDs (internal/intern) as they
// are discovered: result deduplication keys on the sorted ID set of the
// triangulation's minimal separators (Parra–Scheffler — the family
// determines H), and repeated move families are skipped before the
// triangulator ever runs, so the per-move cost carries no O(n²) edge-set
// key hashing.
package ckk

import (
	"container/heap"
	"context"
	"encoding/binary"
	"sort"

	"repro/internal/chordal"
	"repro/internal/graph"
	"repro/internal/intern"
	"repro/internal/minsep"
	"repro/internal/triang"
	"repro/internal/vset"
)

// Triangulator is the black-box minimal triangulation routine the
// enumeration relies on.
type Triangulator func(*graph.Graph) *graph.Graph

// Score ranks a pending result for the best-first (scored) enumeration:
// lower scores are emitted and expanded earlier. A Score is a cheap
// heuristic — it orders the maximal-independent-set move frontier without
// any exactness claim on the global output order. It is called exactly
// once per produced result.
type Score func(*Result) float64

// Result is one enumerated minimal triangulation.
type Result struct {
	H    *graph.Graph
	Seps []vset.Set

	ids   []int   // enumerator-interned IDs aligned with Seps
	score float64 // Score value (scored enumerations only)
	seq   int     // production order; the deterministic tie-break
}

// scoredQueue is a min-heap on (score, seq) for best-first emission.
type scoredQueue []*Result

func (q scoredQueue) Len() int { return len(q) }
func (q scoredQueue) Less(i, j int) bool {
	if q[i].score != q[j].score {
		return q[i].score < q[j].score
	}
	return q[i].seq < q[j].seq
}
func (q scoredQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *scoredQueue) Push(x any)   { *q = append(*q, x.(*Result)) }
func (q *scoredQueue) Pop() any {
	old := *q
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return item
}

// Enumerator streams all minimal triangulations of a graph, unordered (or
// heuristically best-first when constructed with NewScored). Create one
// with New or NewScored, then call Next/NextContext until exhaustion.
type Enumerator struct {
	g     *graph.Graph
	tri   Triangulator
	score Score

	// tab interns every separator the enumeration touches — stream draws
	// and the minimal separators of produced triangulations — so moves and
	// dedup work on dense IDs instead of hashed set keys.
	tab    *intern.Table
	seen   map[string]bool // produced triangulations, keyed by sorted sep-ID set
	tried  map[string]bool // attempted move families, keyed the same way
	keyBuf []byte          // scratch for ID-key construction

	out []*Result   // pending results, FIFO (unscored mode)
	pq  scoredQueue // pending results, best-first (scored mode)

	stream *sepStream
	seps   []vset.Set // separators drawn from the stream so far
	sepIDs []int      // tab IDs aligned with seps

	results []*Result
	cursor  []int // per result: moves with seps[0:cursor] are done
	next    int   // round-robin pointer (unscored mode)
	seq     int
}

// New starts the CKK enumeration of the minimal triangulations of g,
// using tri as the black box (nil selects LB-Triang).
func New(g *graph.Graph, tri Triangulator) *Enumerator {
	return newEnumerator(g, tri, nil)
}

// NewScored is New with a best-first twist: pending results are emitted in
// increasing score order, and the move frontier always expands the
// best-scored known result next. The enumeration still produces exactly
// the set of all minimal triangulations (the score only permutes the
// order), still in incremental polynomial time per result.
func NewScored(g *graph.Graph, tri Triangulator, score Score) *Enumerator {
	if score == nil {
		panic("ckk: NewScored requires a score function")
	}
	return newEnumerator(g, tri, score)
}

func newEnumerator(g *graph.Graph, tri Triangulator, score Score) *Enumerator {
	if tri == nil {
		tri = triang.Minimal
	}
	e := &Enumerator{
		g:      g,
		tri:    tri,
		score:  score,
		tab:    intern.New(16),
		seen:   map[string]bool{},
		tried:  map[string]bool{},
		stream: newSepStream(g),
	}
	e.produce(nil)
	return e
}

// idKey appends the canonical byte encoding of a sorted ID slice to buf
// and returns the extended buffer. Dense IDs are tiny, so the key is a few
// varint bytes per member — far smaller than hashing the sets themselves.
func idKey(buf []byte, sorted []int) []byte {
	for _, id := range sorted {
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	return buf
}

// produce extends the pairwise-parallel family p to a minimal
// triangulation and registers it if new. By Parra–Scheffler the minimal
// separators of the result form a maximal pairwise-parallel family of
// MinSep(G) that determines the triangulation uniquely, so the sorted set
// of their interned IDs is the dedup key.
func (e *Enumerator) produce(p []vset.Set) {
	h := e.tri(minsep.Saturate(e.g, p))
	seps, err := chordal.MinimalSeparators(h)
	if err != nil {
		panic("ckk: black-box triangulator returned a non-chordal graph: " + err.Error())
	}
	ids := make([]int, len(seps))
	for i, s := range seps {
		ids[i], _ = e.tab.Intern(s)
	}
	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)
	e.keyBuf = idKey(e.keyBuf[:0], sorted)
	key := string(e.keyBuf)
	if e.seen[key] {
		return
	}
	e.seen[key] = true
	r := &Result{H: h, Seps: seps, ids: ids, seq: e.seq}
	e.seq++
	if e.score != nil {
		r.score = e.score(r)
		heap.Push(&e.pq, r)
	} else {
		e.out = append(e.out, r)
	}
	e.results = append(e.results, r)
	e.cursor = append(e.cursor, 0)
}

// pending reports how many produced results await emission.
func (e *Enumerator) pending() int {
	if e.score != nil {
		return len(e.pq)
	}
	return len(e.out)
}

// pop removes and returns the next result to emit.
func (e *Enumerator) pop() *Result {
	if e.score != nil {
		return heap.Pop(&e.pq).(*Result)
	}
	r := e.out[0]
	e.out = e.out[1:]
	return r
}

// step performs one unit of pending work: either a (result, separator)
// move, or pulling one more separator from the lazy generator. It reports
// whether anything remained to do.
func (e *Enumerator) step(ctx context.Context) bool {
	if e.score == nil {
		// Round-robin over the results with pending moves.
		for scanned := 0; scanned < len(e.results); scanned++ {
			i := (e.next + scanned) % len(e.results)
			if e.cursor[i] >= len(e.seps) {
				continue
			}
			e.next = i
			e.applyMove(i)
			return true
		}
	} else {
		// Best-first: the cheapest-scored result with pending moves
		// expands next (ties broken by production order, so the walk is
		// deterministic).
		best := -1
		for i := range e.results {
			if e.cursor[i] >= len(e.seps) {
				continue
			}
			if best == -1 || scoredBefore(e.results[i], e.results[best]) {
				best = i
			}
		}
		if best >= 0 {
			e.applyMove(best)
			return true
		}
	}
	// All moves done; grow the separator universe.
	if s, ok := e.stream.next(ctx); ok {
		id, _ := e.tab.Intern(s)
		e.seps = append(e.seps, s)
		e.sepIDs = append(e.sepIDs, id)
		return true
	}
	return false
}

func scoredBefore(a, b *Result) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return a.seq < b.seq
}

// applyMove consumes result i's next pending separator move.
func (e *Enumerator) applyMove(i int) {
	s := e.seps[e.cursor[i]]
	sid := e.sepIDs[e.cursor[i]]
	e.cursor[i]++
	e.move(e.results[i], s, sid)
}

// move generates the child of r with respect to separator s: keep the
// members of r parallel to s, force s in, and re-extend (the standard
// maximal-independent-set exchange step). Membership is decided on
// interned IDs, and a family already attempted by an earlier move is
// skipped before the black-box triangulator runs.
func (e *Enumerator) move(r *Result, s vset.Set, sid int) {
	for _, id := range r.ids {
		if id == sid {
			return
		}
	}
	p := []vset.Set{s}
	pids := []int{sid}
	for i, t := range r.Seps {
		if minsep.Parallel(e.g, t, s) {
			p = append(p, t)
			pids = append(pids, r.ids[i])
		}
	}
	sort.Ints(pids)
	e.keyBuf = idKey(e.keyBuf[:0], pids)
	key := string(e.keyBuf)
	if e.tried[key] {
		return
	}
	e.tried[key] = true
	e.produce(p)
}

// Next returns the next minimal triangulation, or ok=false when the
// enumeration is complete. Results appear in no particular order (in
// heuristic best-first order for a NewScored enumerator).
func (e *Enumerator) Next() (*Result, bool) {
	return e.NextContext(context.Background())
}

// NextContext is Next bound to a context: once ctx is cancelled the MIS
// move loop and the separator stream stop, and the call reports
// exhaustion — an abandoned enumeration (e.g. a disconnected service
// client) stops burning CPU. Cancellation truncates the enumeration;
// results already produced but not yet emitted are discarded.
func (e *Enumerator) NextContext(ctx context.Context) (*Result, bool) {
	for e.pending() == 0 {
		if ctx.Err() != nil {
			return nil, false
		}
		if !e.step(ctx) {
			return nil, false
		}
	}
	if ctx.Err() != nil {
		return nil, false
	}
	return e.pop(), true
}

// All drains the enumeration (testing convenience; real clients stream).
func (e *Enumerator) All() []*Result {
	return e.AllContext(context.Background())
}

// AllContext drains the enumeration until exhaustion or ctx cancellation,
// returning the (possibly truncated) prefix collected so far.
func (e *Enumerator) AllContext(ctx context.Context) []*Result {
	var out []*Result
	for {
		r, ok := e.NextContext(ctx)
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// SepStream streams the minimal separators of a graph lazily, in
// Berry–Bordat–Cogis order, without the MIS machinery on top. It is the
// probe the backend auto-selection policy uses: drawing separators until a
// budget overflows bounds the cost of deciding "too separator-rich to
// rank" without ever materializing MinSep(G).
type SepStream struct {
	inner *sepStream
}

// NewSepStream starts the lazy separator generator for g.
func NewSepStream(g *graph.Graph) *SepStream {
	return &SepStream{inner: newSepStream(g)}
}

// Next returns one more minimal separator, or ok=false when the closure is
// exhausted or ctx is cancelled (distinguish via ctx.Err()).
func (ss *SepStream) Next(ctx context.Context) (vset.Set, bool) {
	return ss.inner.next(ctx)
}

// sepStream produces the minimal separators of a graph lazily, in
// Berry–Bordat–Cogis order: the neighborhood-seeded separators first, then
// the closure under the S ↦ N(component of G \ (S ∪ N(x))) expansion.
// The intern table doubles as the dedup set and the ordered universe:
// produced/expanded are prefix counters over its ID space.
type sepStream struct {
	g        *graph.Graph
	tab      *intern.Table
	produced int // prefix of tab already handed out
	expanded int // prefix of tab already expanded
}

func newSepStream(g *graph.Graph) *sepStream {
	ss := &sepStream{g: g, tab: intern.New(16)}
	g.Vertices().ForEach(func(v int) bool {
		for _, c := range g.ComponentsAvoiding(g.ClosedNeighborhood(v)) {
			ss.add(g.NeighborsOfSet(c))
		}
		return true
	})
	return ss
}

func (ss *sepStream) add(s vset.Set) {
	if s.IsEmpty() {
		return
	}
	ss.tab.Intern(s)
}

// next returns one more minimal separator, expanding known separators on
// demand, or ok=false when the closure is exhausted or ctx is cancelled.
func (ss *sepStream) next(ctx context.Context) (vset.Set, bool) {
	for ss.produced >= ss.tab.Len() && ss.expanded < ss.tab.Len() {
		if ctx.Err() != nil {
			return vset.Set{}, false
		}
		s := ss.tab.Set(ss.expanded)
		ss.expanded++
		s.ForEach(func(x int) bool {
			avoid := s.Union(ss.g.Neighbors(x))
			avoid.AddInPlace(x)
			for _, c := range ss.g.ComponentsAvoiding(avoid) {
				ss.add(ss.g.NeighborsOfSet(c))
			}
			return true
		})
	}
	if ss.produced < ss.tab.Len() {
		s := ss.tab.Set(ss.produced)
		ss.produced++
		return s, true
	}
	return vset.Set{}, false
}
