package ckk

import (
	"math/rand"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/chordal"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/triang"
)

func TestPaperExample(t *testing.T) {
	g := gen.PaperExample()
	results := New(g, nil).All()
	if len(results) != 2 {
		t.Fatalf("CKK found %d triangulations, want 2", len(results))
	}
	for _, r := range results {
		if !chordal.IsTriangulationOf(r.H, g) {
			t.Fatalf("CKK emitted a non-triangulation")
		}
	}
}

func TestCompletenessAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(6)
		g := gen.GNP(rng, n, 0.2+rng.Float64()*0.6)
		want := bruteforce.AllMinimalTriangulations(g)
		got := New(g, nil).All()
		if len(got) != len(want) {
			t.Fatalf("trial %d (n=%d): CKK found %d, oracle %d (edges=%v)",
				trial, n, len(got), len(want), g.Edges())
		}
		keys := map[string]bool{}
		for _, r := range got {
			k := r.H.EdgeSetKey()
			if keys[k] {
				t.Fatalf("trial %d: duplicate emitted", trial)
			}
			keys[k] = true
		}
		for _, h := range want {
			if !keys[h.EdgeSetKey()] {
				t.Fatalf("trial %d: oracle triangulation missed", trial)
			}
		}
	}
}

func TestCompletenessWithMCSM(t *testing.T) {
	// The enumeration must be complete regardless of the black box.
	rng := rand.New(rand.NewSource(707))
	for trial := 0; trial < 60; trial++ {
		g := gen.GNP(rng, 2+rng.Intn(6), 0.4)
		want := bruteforce.AllMinimalTriangulations(g)
		got := New(g, func(x *graph.Graph) *graph.Graph { return triang.MCSM(x) }).All()
		if len(got) != len(want) {
			t.Fatalf("trial %d: MCS-M black box: %d vs oracle %d (edges=%v)",
				trial, len(got), len(want), g.Edges())
		}
	}
}

func TestResultsAreMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	for trial := 0; trial < 40; trial++ {
		g := gen.GNP(rng, 3+rng.Intn(5), 0.4)
		for _, r := range New(g, nil).All() {
			if !bruteforce.IsMinimalTriangulation(r.H, g) {
				t.Fatalf("non-minimal triangulation emitted")
			}
			seps, err := chordal.MinimalSeparators(r.H)
			if err != nil {
				t.Fatal(err)
			}
			if len(seps) != len(r.Seps) {
				t.Fatalf("Seps field inconsistent")
			}
		}
	}
}

func TestTrivialInputs(t *testing.T) {
	if got := New(graph.New(1), nil).All(); len(got) != 1 {
		t.Fatalf("single vertex: %d results", len(got))
	}
	if got := New(gen.Complete(4), nil).All(); len(got) != 1 {
		t.Fatalf("K4: %d results", len(got))
	}
	if got := New(gen.Path(5), nil).All(); len(got) != 1 {
		t.Fatalf("chordal graph: %d results, want 1 (itself)", len(got))
	}
}

func TestStreamingMatchesAll(t *testing.T) {
	g := gen.Cycle(6)
	e := New(g, nil)
	count := 0
	for {
		_, ok := e.Next()
		if !ok {
			break
		}
		count++
	}
	if count != 14 {
		t.Fatalf("C6: CKK streamed %d, want 14", count)
	}
}

func TestDisconnected(t *testing.T) {
	g := graph.New(8)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0) // C4: 2 minimal triangulations
	g.AddEdge(4, 5)
	g.AddEdge(5, 6)
	g.AddEdge(6, 7)
	g.AddEdge(7, 4) // another C4
	want := bruteforce.AllMinimalTriangulations(g)
	got := New(g, nil).All()
	if len(got) != len(want) {
		t.Fatalf("disconnected: %d vs oracle %d", len(got), len(want))
	}
}
