// Package jt implements exact probabilistic inference over junction
// trees (Lauritzen–Spiegelhalter), the application domain the paper's
// introduction cites for tree decompositions. Given a discrete factor
// graph and a tree decomposition of its moral graph, it assigns factors to
// bags, runs two-pass message passing (sum-product), and answers marginal
// and partition-function queries. Its cost is exactly the total
// state-space bag cost the solver can rank by, which makes the two
// packages a complete motivation-to-execution pipeline.
package jt

import (
	"errors"
	"fmt"

	"repro/internal/td"
	"repro/internal/vset"
)

// Factor is a nonnegative table over a set of discrete variables.
// Values are laid out in row-major order of Vars (first variable slowest).
type Factor struct {
	Vars   []int
	Card   []int // cardinality of each variable in Vars
	Values []float64
}

// NewFactor allocates a zero factor over the given variables.
func NewFactor(vars []int, card []int) *Factor {
	size := 1
	for _, c := range card {
		size *= c
	}
	return &Factor{
		Vars:   append([]int(nil), vars...),
		Card:   append([]int(nil), card...),
		Values: make([]float64, size),
	}
}

// index converts an assignment (aligned with f.Vars) to a flat index.
func (f *Factor) index(assign []int) int {
	idx := 0
	for i, v := range assign {
		idx = idx*f.Card[i] + v
	}
	return idx
}

// Set stores a value for the assignment.
func (f *Factor) Set(assign []int, value float64) {
	f.Values[f.index(assign)] = value
}

// At reads the value of the assignment.
func (f *Factor) At(assign []int) float64 {
	return f.Values[f.index(assign)]
}

// assignments iterates over all assignments of the factor's variables.
func (f *Factor) assignments(fn func(assign []int, idx int)) {
	assign := make([]int, len(f.Vars))
	for idx := range f.Values {
		fn(assign, idx)
		for i := len(assign) - 1; i >= 0; i-- {
			assign[i]++
			if assign[i] < f.Card[i] {
				break
			}
			assign[i] = 0
		}
	}
}

// Model is a discrete factor model: variable cardinalities plus factors.
type Model struct {
	Card    []int
	Factors []*Factor
}

// NewModel creates a model over n variables with the given cardinalities
// (pass nil for all-binary).
func NewModel(card []int) *Model {
	return &Model{Card: card}
}

// AddFactor appends a factor over vars with the model's cardinalities and
// the given row-major values.
func (m *Model) AddFactor(vars []int, values []float64) (*Factor, error) {
	card := make([]int, len(vars))
	size := 1
	for i, v := range vars {
		card[i] = m.Card[v]
		size *= card[i]
	}
	if len(values) != size {
		return nil, fmt.Errorf("jt: factor over %v needs %d values, got %d", vars, size, len(values))
	}
	f := NewFactor(vars, card)
	copy(f.Values, values)
	m.Factors = append(m.Factors, f)
	return f, nil
}

// errors for junction tree construction.
var (
	ErrFactorNotCovered = errors.New("jt: some factor fits in no bag")
	ErrEmptyTree        = errors.New("jt: decomposition has no nodes")
)

// JunctionTree is a calibrated junction tree ready for queries.
type JunctionTree struct {
	model   *Model
	d       *td.Decomposition
	beliefs []*Factor          // per tree node, after calibration
	sepsets map[[2]int]*Factor // per directed-normalized edge {min,max}
	z       float64            // partition function
}

// Build assigns each factor of the model to a bag containing its scope,
// multiplies per-bag potentials, and calibrates the tree with two-pass
// sum-product message passing. The decomposition must be a tree
// decomposition of the model's moral graph (every factor scope inside
// some bag) — exactly what the triangulation machinery produces.
func Build(m *Model, d *td.Decomposition) (*JunctionTree, error) {
	if d.NumNodes() == 0 {
		return nil, ErrEmptyTree
	}
	universe := len(m.Card)
	// Initial potentials: the bag's identity factor times assigned factors.
	potentials := make([]*Factor, d.NumNodes())
	for i, bag := range d.Bags {
		vars := bag.Slice()
		card := make([]int, len(vars))
		for j, v := range vars {
			card[j] = m.Card[v]
		}
		p := NewFactor(vars, card)
		for j := range p.Values {
			p.Values[j] = 1
		}
		potentials[i] = p
	}
	for _, f := range m.Factors {
		scope := vset.FromSlice(universe, f.Vars)
		home := -1
		for i, bag := range d.Bags {
			if scope.SubsetOf(bag) {
				home = i
				break
			}
		}
		if home == -1 {
			return nil, ErrFactorNotCovered
		}
		potentials[home] = multiply(potentials[home], f, m.Card)
	}
	jt := &JunctionTree{model: m, d: d, beliefs: potentials, sepsets: map[[2]int]*Factor{}}
	// Sepset potentials start as all-ones tables over the adhesions
	// (Hugin initialization).
	for x, nb := range d.Adj {
		for _, y := range nb {
			if x < y {
				vars := d.Bags[x].Intersect(d.Bags[y]).Slice()
				card := make([]int, len(vars))
				for i, v := range vars {
					card[i] = m.Card[v]
				}
				s := NewFactor(vars, card)
				for i := range s.Values {
					s.Values[i] = 1
				}
				jt.sepsets[[2]int{x, y}] = s
			}
		}
	}
	jt.calibrate()
	return jt, nil
}

// calibrate runs collect (leaves→root) then distribute (root→leaves)
// sum-product message passing per connected component of the tree.
func (j *JunctionTree) calibrate() {
	n := j.d.NumNodes()
	visited := make([]bool, n)
	for root := 0; root < n; root++ {
		if visited[root] {
			continue
		}
		order := j.bfsOrder(root, visited)
		// Collect: children send messages to parents in reverse BFS order.
		parent := order.parent
		for i := len(order.nodes) - 1; i > 0; i-- {
			x := order.nodes[i]
			j.sendMessage(x, parent[x])
		}
		// Distribute: parents send to children in BFS order.
		for _, x := range order.nodes[1:] {
			j.sendMessage(parent[x], x)
		}
	}
	// Partition function: sum of the root belief of each component —
	// but every calibrated belief of one component sums to the same Z,
	// and components multiply.
	j.z = 1
	seen := make([]bool, n)
	for root := 0; root < n; root++ {
		if seen[root] {
			continue
		}
		comp := j.component(root)
		for _, x := range comp {
			seen[x] = true
		}
		sum := 0.0
		for _, v := range j.beliefs[comp[0]].Values {
			sum += v
		}
		j.z *= sum
	}
}

type bfs struct {
	nodes  []int
	parent []int
}

func (j *JunctionTree) bfsOrder(root int, visited []bool) bfs {
	out := bfs{parent: make([]int, j.d.NumNodes())}
	visited[root] = true
	out.nodes = append(out.nodes, root)
	out.parent[root] = -1
	for head := 0; head < len(out.nodes); head++ {
		x := out.nodes[head]
		for _, y := range j.d.Adj[x] {
			if !visited[y] {
				visited[y] = true
				out.parent[y] = x
				out.nodes = append(out.nodes, y)
			}
		}
	}
	return out
}

func (j *JunctionTree) component(root int) []int {
	seen := map[int]bool{root: true}
	nodes := []int{root}
	for head := 0; head < len(nodes); head++ {
		for _, y := range j.d.Adj[nodes[head]] {
			if !seen[y] {
				seen[y] = true
				nodes = append(nodes, y)
			}
		}
	}
	return nodes
}

// sendMessage performs one Hugin absorption over the edge {from, to}:
// the sender's belief is marginalized onto the sepset, the receiver is
// multiplied by new/old, and the sepset potential is updated. After the
// collect and distribute passes every belief is the (unnormalized) joint
// marginal of its bag.
func (j *JunctionTree) sendMessage(from, to int) {
	key := [2]int{from, to}
	if from > to {
		key = [2]int{to, from}
	}
	old := j.sepsets[key]
	msg := marginalize(j.beliefs[from], old.Vars, j.model.Card)
	j.beliefs[to] = multiplyWithDivision(j.beliefs[to], msg, old, j.model.Card)
	j.sepsets[key] = msg
}

// Z returns the partition function (for a Bayesian network with CPT
// factors this is 1; for general factor models it is the normalizer).
func (j *JunctionTree) Z() float64 { return j.z }

// Marginal returns the normalized marginal distribution of one variable.
func (j *JunctionTree) Marginal(v int) ([]float64, error) {
	for i, bag := range j.d.Bags {
		if bag.Contains(v) {
			m := marginalize(j.beliefs[i], []int{v}, j.model.Card)
			total := 0.0
			for _, x := range m.Values {
				total += x
			}
			out := make([]float64, len(m.Values))
			for k, x := range m.Values {
				if total > 0 {
					out[k] = x / total
				}
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("jt: variable %d in no bag", v)
}

// TotalTableSize returns Σ over bags of their table sizes — the inference
// cost that cost.TotalStateSpace ranks decompositions by.
func (j *JunctionTree) TotalTableSize() int {
	total := 0
	for _, b := range j.beliefs {
		total += len(b.Values)
	}
	return total
}

// multiply returns the product of two factors over the union of their
// scopes.
func multiply(a, b *Factor, card []int) *Factor {
	return combine(a, b, card)
}

// multiplyWithDivision returns a × num ÷ den where num and den share a
// scope (the sepset). Zero denominators with zero numerators contribute
// factor 0 (standard Hugin convention: 0/0 = 0).
func multiplyWithDivision(a, num, den *Factor, card []int) *Factor {
	ratio := NewFactor(num.Vars, num.Card)
	for i := range num.Values {
		d := den.Values[i]
		if d == 0 {
			ratio.Values[i] = 0
		} else {
			ratio.Values[i] = num.Values[i] / d
		}
	}
	return combine(a, ratio, card)
}

// combine multiplies two factors over the union of their scopes.
func combine(a, b *Factor, card []int) *Factor {
	pos := map[int]int{}
	var vars []int
	for _, v := range a.Vars {
		pos[v] = len(vars)
		vars = append(vars, v)
	}
	for _, v := range b.Vars {
		if _, ok := pos[v]; !ok {
			pos[v] = len(vars)
			vars = append(vars, v)
		}
	}
	cards := make([]int, len(vars))
	for i, v := range vars {
		cards[i] = card[v]
	}
	out := NewFactor(vars, cards)
	assignOf := func(f *Factor, assign []int) []int {
		sub := make([]int, len(f.Vars))
		for i, v := range f.Vars {
			sub[i] = assign[pos[v]]
		}
		return sub
	}
	out.assignments(func(assign []int, idx int) {
		out.Values[idx] = a.At(assignOf(a, assign)) * b.At(assignOf(b, assign))
	})
	return out
}

// marginalize sums a factor down to the given variable subset.
func marginalize(f *Factor, vars []int, card []int) *Factor {
	cards := make([]int, len(vars))
	for i, v := range vars {
		cards[i] = card[v]
	}
	out := NewFactor(vars, cards)
	pos := map[int]int{}
	for i, v := range f.Vars {
		pos[v] = i
	}
	f.assignments(func(assign []int, idx int) {
		sub := make([]int, len(vars))
		for i, v := range vars {
			sub[i] = assign[pos[v]]
		}
		out.Values[out.index(sub)] += f.Values[idx]
	})
	return out
}
