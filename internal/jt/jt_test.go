package jt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/td"
	"repro/internal/vset"
)

// bruteJoint computes the exact joint over all variables by enumeration.
func bruteJoint(m *Model) (z float64, marginals [][]float64) {
	n := len(m.Card)
	marginals = make([][]float64, n)
	for v := range marginals {
		marginals[v] = make([]float64, m.Card[v])
	}
	assign := make([]int, n)
	var rec func(v int)
	rec = func(v int) {
		if v == n {
			p := 1.0
			for _, f := range m.Factors {
				sub := make([]int, len(f.Vars))
				for i, fv := range f.Vars {
					sub[i] = assign[fv]
				}
				p *= f.At(sub)
			}
			z += p
			for u := 0; u < n; u++ {
				marginals[u][assign[u]] += p
			}
			return
		}
		for x := 0; x < m.Card[v]; x++ {
			assign[v] = x
			rec(v + 1)
		}
	}
	rec(0)
	for v := range marginals {
		for x := range marginals[v] {
			if z > 0 {
				marginals[v][x] /= z
			}
		}
	}
	return z, marginals
}

// moralGraph builds the moral graph of the model: factor scopes saturated.
func moralGraph(m *Model) *graph.Graph {
	g := graph.New(len(m.Card))
	for _, f := range m.Factors {
		for i := 0; i < len(f.Vars); i++ {
			for j := i + 1; j < len(f.Vars); j++ {
				if !g.HasEdge(f.Vars[i], f.Vars[j]) {
					g.AddEdge(f.Vars[i], f.Vars[j])
				}
			}
		}
	}
	return g
}

func TestChainInference(t *testing.T) {
	// A 3-variable chain A→B→C with hand-computable marginals.
	m := NewModel([]int{2, 2, 2})
	// P(A): [0.6, 0.4]
	mustAdd(t, m, []int{0}, []float64{0.6, 0.4})
	// P(B|A): rows A, cols B.
	mustAdd(t, m, []int{0, 1}, []float64{0.9, 0.1, 0.2, 0.8})
	// P(C|B).
	mustAdd(t, m, []int{1, 2}, []float64{0.7, 0.3, 0.5, 0.5})

	g := moralGraph(m)
	r, err := core.NewSolver(g, cost.TotalStateSpace{Domain: m.Card}).MinTriang(nil)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Build(m, r.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tree.Z()-1) > 1e-9 {
		t.Fatalf("Bayes net Z = %v, want 1", tree.Z())
	}
	wantZ, wantMarg := bruteJoint(m)
	if math.Abs(tree.Z()-wantZ) > 1e-9 {
		t.Fatalf("Z = %v, brute %v", tree.Z(), wantZ)
	}
	for v := 0; v < 3; v++ {
		got, err := tree.Marginal(v)
		if err != nil {
			t.Fatal(err)
		}
		for x := range got {
			if math.Abs(got[x]-wantMarg[v][x]) > 1e-9 {
				t.Fatalf("marginal[%d] = %v, brute %v", v, got, wantMarg[v])
			}
		}
	}
}

func TestRandomModelsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(6)
		card := make([]int, n)
		for i := range card {
			card[i] = 2 + rng.Intn(2)
		}
		m := NewModel(card)
		factors := 1 + rng.Intn(2*n)
		for i := 0; i < factors; i++ {
			k := 1 + rng.Intn(3)
			if k > n {
				k = n
			}
			perm := rng.Perm(n)[:k]
			size := 1
			for _, v := range perm {
				size *= card[v]
			}
			vals := make([]float64, size)
			for j := range vals {
				vals[j] = 0.05 + rng.Float64()
			}
			mustAdd(t, m, perm, vals)
		}
		g := moralGraph(m)
		r, err := core.NewSolver(g, cost.TotalStateSpace{Domain: card}).MinTriang(nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		tree, err := Build(m, r.Tree)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		wantZ, wantMarg := bruteJoint(m)
		if relDiff(tree.Z(), wantZ) > 1e-9 {
			t.Fatalf("trial %d: Z=%v brute=%v", trial, tree.Z(), wantZ)
		}
		for v := 0; v < n; v++ {
			got, err := tree.Marginal(v)
			if err != nil {
				t.Fatal(err)
			}
			for x := range got {
				if math.Abs(got[x]-wantMarg[v][x]) > 1e-9 {
					t.Fatalf("trial %d: marginal[%d]=%v brute=%v", trial, v, got, wantMarg[v])
				}
			}
		}
		if tree.TotalTableSize() <= 0 {
			t.Fatalf("table size broken")
		}
	}
}

func TestInferenceOverEveryRankedTree(t *testing.T) {
	// Every minimal triangulation's clique tree must give the same
	// answers — inference correctness is decomposition-independent.
	rng := rand.New(rand.NewSource(5))
	m := NewModel([]int{2, 2, 2, 2, 2})
	scopes := [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	for _, s := range scopes {
		vals := make([]float64, 4)
		for j := range vals {
			vals[j] = 0.1 + rng.Float64()
		}
		mustAdd(t, m, s, vals)
	}
	g := moralGraph(m)
	wantZ, _ := bruteJoint(m)
	s := core.NewSolver(g, cost.TotalStateSpace{Domain: m.Card})
	e := s.Enumerate()
	count := 0
	for {
		r, ok := e.Next()
		if !ok {
			break
		}
		count++
		tree, err := Build(m, r.Tree)
		if err != nil {
			t.Fatal(err)
		}
		if relDiff(tree.Z(), wantZ) > 1e-9 {
			t.Fatalf("tree %d: Z=%v want %v", count, tree.Z(), wantZ)
		}
	}
	if count < 2 {
		t.Fatalf("C5 moral graph should have several triangulations, got %d", count)
	}
}

func TestBuildErrors(t *testing.T) {
	m := NewModel([]int{2, 2})
	mustAdd(t, m, []int{0, 1}, []float64{1, 1, 1, 1})
	// Empty decomposition.
	if _, err := Build(m, td.New()); err != ErrEmptyTree {
		t.Fatalf("want ErrEmptyTree, got %v", err)
	}
	// Decomposition that does not cover the factor.
	d := td.New()
	d.AddNode(vset.Of(2, 0))
	d.AddNode(vset.Of(2, 1))
	d.AddEdge(0, 1)
	if _, err := Build(m, d); err != ErrFactorNotCovered {
		t.Fatalf("want ErrFactorNotCovered, got %v", err)
	}
	// Wrong value count.
	if _, err := m.AddFactor([]int{0}, []float64{1, 2, 3}); err == nil {
		t.Fatalf("bad factor size accepted")
	}
}

func TestDisconnectedModel(t *testing.T) {
	// Two independent pairs: Z must multiply across components.
	m := NewModel([]int{2, 2, 2, 2})
	mustAdd(t, m, []int{0, 1}, []float64{1, 2, 3, 4}) // sums to 10
	mustAdd(t, m, []int{2, 3}, []float64{2, 2, 2, 2}) // sums to 8
	g := moralGraph(m)
	r, err := core.NewSolver(g, cost.Width{}).MinTriang(nil)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Build(m, r.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tree.Z()-80) > 1e-9 {
		t.Fatalf("disconnected Z = %v, want 80", tree.Z())
	}
}

func TestPipelineWithGeneratedNetwork(t *testing.T) {
	// End-to-end: moralized DAG → ranked junction trees → the cheapest
	// tree's actual table size equals the cost the solver reported.
	rng := rand.New(rand.NewSource(8))
	g := gen.MoralizedDAG(rng, 9, 2)
	card := make([]int, 9)
	for i := range card {
		card[i] = 2
	}
	m := NewModel(card)
	// One factor per maximal...-ish: use each edge as a pairwise factor.
	for _, e := range g.Edges() {
		mustAdd(t, m, []int{e[0], e[1]}, []float64{1, 2, 3, 4})
	}
	for v := 0; v < 9; v++ {
		mustAdd(t, m, []int{v}, []float64{1, 1})
	}
	r, err := core.NewSolver(g, cost.TotalStateSpace{Domain: card}).MinTriang(nil)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Build(m, r.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if float64(tree.TotalTableSize()) != r.Cost {
		t.Fatalf("table size %d != solver cost %v", tree.TotalTableSize(), r.Cost)
	}
	wantZ, _ := bruteJoint(m)
	if relDiff(tree.Z(), wantZ) > 1e-9 {
		t.Fatalf("Z=%v want %v", tree.Z(), wantZ)
	}
}

func mustAdd(t *testing.T, m *Model, vars []int, vals []float64) {
	t.Helper()
	if _, err := m.AddFactor(vars, vals); err != nil {
		t.Fatal(err)
	}
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}
