package td

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/vset"
)

// paperGraph is the running example of Figure 1(a).
func paperGraph() *graph.Graph {
	g := graph.New(6)
	for _, w := range []int{3, 4, 5} {
		g.AddEdge(0, w)
		g.AddEdge(1, w)
	}
	g.AddEdge(1, 2)
	return g
}

// paperT2 builds tree decomposition T2 of Figure 1(c):
// {u,v,w1} - {u,v,w2} - {u,v,w3} as a path, with {v,v'} hanging off.
func paperT2() *Decomposition {
	d := New()
	a := d.AddNode(vset.Of(6, 0, 1, 3))
	b := d.AddNode(vset.Of(6, 0, 1, 4))
	c := d.AddNode(vset.Of(6, 0, 1, 5))
	e := d.AddNode(vset.Of(6, 1, 2))
	d.AddEdge(a, b)
	d.AddEdge(b, c)
	d.AddEdge(c, e)
	return d
}

func TestValidate(t *testing.T) {
	g := paperGraph()
	d := paperT2()
	if err := d.Validate(g); err != nil {
		t.Fatalf("T2 should be valid: %v", err)
	}
	if d.Width() != 2 {
		t.Fatalf("T2 width = %d", d.Width())
	}
	if d.NumNodes() != 4 {
		t.Fatalf("T2 nodes = %d", d.NumNodes())
	}
}

func TestValidateCatchesMissingVertex(t *testing.T) {
	g := paperGraph()
	d := New()
	d.AddNode(vset.Of(6, 0, 1, 3, 4, 5))
	// v'=2 missing.
	if err := d.Validate(g); err == nil || !strings.Contains(err.Error(), "not covered") {
		t.Fatalf("expected vertex-cover error, got %v", err)
	}
}

func TestValidateCatchesMissingEdge(t *testing.T) {
	g := paperGraph()
	d := New()
	a := d.AddNode(vset.Of(6, 0, 3, 4, 5))
	b := d.AddNode(vset.Of(6, 1, 2))
	d.AddEdge(a, b)
	// edges v-w1 etc. uncovered.
	if err := d.Validate(g); err == nil || !strings.Contains(err.Error(), "edge") {
		t.Fatalf("expected edge-cover error, got %v", err)
	}
}

func TestValidateCatchesJunctionViolation(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	d := New()
	a := d.AddNode(vset.Of(3, 0, 1))
	b := d.AddNode(vset.Of(3, 0, 2)) // 0 reappears after being dropped
	c := d.AddNode(vset.Of(3, 1, 2))
	d.AddEdge(a, c)
	d.AddEdge(c, b)
	if err := d.Validate(g); err == nil || !strings.Contains(err.Error(), "junction") {
		t.Fatalf("expected junction error, got %v", err)
	}
}

func TestValidateCatchesNonTree(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	d := New()
	a := d.AddNode(vset.Of(2, 0, 1))
	b := d.AddNode(vset.Of(2, 0))
	c := d.AddNode(vset.Of(2, 1))
	d.AddEdge(a, b)
	d.AddEdge(b, c)
	d.AddEdge(c, a) // cycle
	if err := d.Validate(g); err == nil {
		t.Fatalf("cycle accepted")
	}
	// Disconnected forest.
	d2 := New()
	d2.AddNode(vset.Of(2, 0, 1))
	d2.AddNode(vset.Of(2, 0))
	if err := d2.Validate(g); err == nil {
		t.Fatalf("forest accepted")
	}
	// Empty decomposition of nonempty graph.
	if err := New().Validate(g); err == nil {
		t.Fatalf("empty decomposition accepted")
	}
	if err := New().Validate(graph.New(0)); err != nil {
		t.Fatalf("empty/empty should validate: %v", err)
	}
}

func TestFillInAndSaturation(t *testing.T) {
	g := paperGraph()
	d := paperT2()
	if got := d.FillIn(g); got != 1 {
		t.Fatalf("T2 fill = %d, want 1", got)
	}
	h := d.Saturation(g)
	if !h.HasEdge(0, 1) {
		t.Fatalf("saturation missing fill edge")
	}
	if h.NumEdges() != g.NumEdges()+1 {
		t.Fatalf("saturation edges = %d", h.NumEdges())
	}
	if g.HasEdge(0, 1) {
		t.Fatalf("Saturation mutated g")
	}
}

func TestBagEquivalence(t *testing.T) {
	d := paperT2()
	// T2'' connects the same bags differently (Figure 1(c)): still
	// bag-equivalent.
	d2 := New()
	a := d2.AddNode(vset.Of(6, 0, 1, 4))
	b := d2.AddNode(vset.Of(6, 0, 1, 3))
	c := d2.AddNode(vset.Of(6, 0, 1, 5))
	e := d2.AddNode(vset.Of(6, 1, 2))
	d2.AddEdge(a, b)
	d2.AddEdge(a, c)
	d2.AddEdge(a, e)
	if !d.BagEquivalent(d2) || !d2.BagEquivalent(d) {
		t.Fatalf("T2 and T2'' should be bag equivalent")
	}
	d3 := New()
	d3.AddNode(vset.Of(6, 0, 1, 3))
	if d.BagEquivalent(d3) {
		t.Fatalf("different bag sets reported equivalent")
	}
}

func TestAdhesions(t *testing.T) {
	d := paperT2()
	adh := d.Adhesions(6)
	// Edges: {u,v},{u,v},{v} → distinct adhesions {u,v} and {v}.
	if len(adh) != 2 {
		t.Fatalf("adhesions = %v", adh)
	}
	keys := map[string]bool{}
	for _, a := range adh {
		keys[a.Key()] = true
	}
	if !keys[vset.Of(6, 0, 1).Key()] || !keys[vset.Of(6, 1).Key()] {
		t.Fatalf("wrong adhesions: %v", adh)
	}
}

func TestCloneIndependence(t *testing.T) {
	d := paperT2()
	c := d.Clone()
	c.Bags[0].AddInPlace(2)
	c.AddNode(vset.Of(6, 2))
	if d.Bags[0].Contains(2) || d.NumNodes() != 4 {
		t.Fatalf("Clone shares storage")
	}
}

func TestCoveredVerticesAndString(t *testing.T) {
	d := paperT2()
	if !d.CoveredVertices(6).Equal(vset.Full(6)) {
		t.Fatalf("covered = %v", d.CoveredVertices(6))
	}
	if s := d.String(); !strings.Contains(s, "width 2") {
		t.Fatalf("String: %s", s)
	}
}

func TestAddEdgeSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	d := New()
	a := d.AddNode(vset.New(1))
	d.AddEdge(a, a)
}
