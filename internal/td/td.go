// Package td defines tree decompositions: trees of bags together with the
// validity checks from the paper's preliminaries (vertex cover, edge cover,
// junction-tree property), widths and fill, bag equivalence, and the
// clique-tree test that characterizes proper tree decompositions.
package td

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/vset"
)

// Decomposition is a tree decomposition: node i carries bag Bags[i], and
// Adj is the tree adjacency (undirected, by node index). A decomposition
// with zero nodes is valid only for the empty graph.
type Decomposition struct {
	Bags []vset.Set
	Adj  [][]int
}

// New returns an empty decomposition ready for AddNode/AddEdge.
func New() *Decomposition {
	return &Decomposition{}
}

// AddNode appends a node with the given bag and returns its index.
func (d *Decomposition) AddNode(bag vset.Set) int {
	d.Bags = append(d.Bags, bag)
	d.Adj = append(d.Adj, nil)
	return len(d.Bags) - 1
}

// AddEdge connects tree nodes a and b.
func (d *Decomposition) AddEdge(a, b int) {
	if a == b {
		panic("td: self loop in decomposition tree")
	}
	d.Adj[a] = append(d.Adj[a], b)
	d.Adj[b] = append(d.Adj[b], a)
}

// NumNodes returns the number of tree nodes.
func (d *Decomposition) NumNodes() int { return len(d.Bags) }

// Width returns the width of the decomposition: max bag size minus one.
// The empty decomposition has width -1.
func (d *Decomposition) Width() int {
	w := -1
	for _, b := range d.Bags {
		if b.Len()-1 > w {
			w = b.Len() - 1
		}
	}
	return w
}

// FillIn returns the number of distinct vertex pairs that co-occur in some
// bag but are not edges of g — the edges added by saturating all bags.
func (d *Decomposition) FillIn(g *graph.Graph) int {
	seen := map[[2]int]bool{}
	fill := 0
	for _, b := range d.Bags {
		vs := b.Slice()
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				p := [2]int{vs[i], vs[j]}
				if seen[p] {
					continue
				}
				seen[p] = true
				if !g.HasEdge(vs[i], vs[j]) {
					fill++
				}
			}
		}
	}
	return fill
}

// Saturation returns the graph H_T obtained from g by saturating every bag.
func (d *Decomposition) Saturation(g *graph.Graph) *graph.Graph {
	h := g.Clone()
	for _, b := range d.Bags {
		h.SaturateInPlace(b)
	}
	return h
}

// CoveredVertices returns the union of all bags.
func (d *Decomposition) CoveredVertices(universe int) vset.Set {
	all := vset.New(universe)
	for _, b := range d.Bags {
		all.UnionInPlace(b)
	}
	return all
}

// Validate checks that d is a tree decomposition of g: the tree is in fact
// a tree (connected, acyclic), every vertex and edge of g is covered, and
// the junction-tree property holds.
func (d *Decomposition) Validate(g *graph.Graph) error {
	n := len(d.Bags)
	if n == 0 {
		if g.NumVertices() == 0 {
			return nil
		}
		return errors.New("td: empty decomposition for nonempty graph")
	}
	// Tree shape: connected with n-1 edges.
	edgeCount := 0
	for _, nb := range d.Adj {
		edgeCount += len(nb)
	}
	edgeCount /= 2
	if edgeCount != n-1 {
		return fmt.Errorf("td: tree has %d edges, want %d", edgeCount, n-1)
	}
	visited := make([]bool, n)
	stack := []int{0}
	visited[0] = true
	count := 1
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, y := range d.Adj[x] {
			if !visited[y] {
				visited[y] = true
				count++
				stack = append(stack, y)
			}
		}
	}
	if count != n {
		return errors.New("td: decomposition tree is disconnected")
	}
	// Vertex and edge cover.
	covered := d.CoveredVertices(g.Universe())
	if !g.Vertices().SubsetOf(covered) {
		return fmt.Errorf("td: vertices %v not covered", g.Vertices().Diff(covered))
	}
	for _, e := range g.Edges() {
		ok := false
		for _, b := range d.Bags {
			if b.Contains(e[0]) && b.Contains(e[1]) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("td: edge {%d,%d} not covered", e[0], e[1])
		}
	}
	// Junction-tree property: nodes containing each vertex form a subtree.
	var junctionErr error
	g.Vertices().ForEach(func(v int) bool {
		var nodes []int
		for i, b := range d.Bags {
			if b.Contains(v) {
				nodes = append(nodes, i)
			}
		}
		if len(nodes) == 0 {
			return true
		}
		inSet := make(map[int]bool, len(nodes))
		for _, x := range nodes {
			inSet[x] = true
		}
		seen := map[int]bool{nodes[0]: true}
		stack := []int{nodes[0]}
		reach := 1
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range d.Adj[x] {
				if inSet[y] && !seen[y] {
					seen[y] = true
					reach++
					stack = append(stack, y)
				}
			}
		}
		if reach != len(nodes) {
			junctionErr = fmt.Errorf("td: junction property violated for vertex %d", v)
			return false
		}
		return true
	})
	return junctionErr
}

// BagSets returns the set of distinct bags as a map from canonical key to bag.
func (d *Decomposition) BagSets() map[string]vset.Set {
	out := make(map[string]vset.Set, len(d.Bags))
	for _, b := range d.Bags {
		out[b.Key()] = b
	}
	return out
}

// BagEquivalent reports whether d and other have exactly the same bags
// (possibly connected differently), the paper's bag equivalence.
func (d *Decomposition) BagEquivalent(other *Decomposition) bool {
	a, b := d.BagSets(), other.BagSets()
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// IsCliqueTreeOf reports whether d is a clique tree of h: its bags are
// exactly the maximal cliques of h, pairwise distinct, and d is a valid
// tree decomposition of h.
func (d *Decomposition) IsCliqueTreeOf(h *graph.Graph, maxCliques []vset.Set) bool {
	if d.Validate(h) != nil {
		return false
	}
	if len(d.Bags) != len(maxCliques) {
		return false
	}
	want := map[string]bool{}
	for _, c := range maxCliques {
		want[c.Key()] = true
	}
	seen := map[string]bool{}
	for _, b := range d.Bags {
		k := b.Key()
		if !want[k] || seen[k] {
			return false
		}
		seen[k] = true
	}
	return true
}

// Adhesions returns the multiset of edge labels β(x) ∩ β(y) over tree
// edges, deduplicated — for a clique tree these are exactly the minimal
// separators of the underlying chordal graph.
func (d *Decomposition) Adhesions(universe int) []vset.Set {
	seen := map[string]vset.Set{}
	for x, nb := range d.Adj {
		for _, y := range nb {
			if x < y {
				s := d.Bags[x].Intersect(d.Bags[y])
				seen[s.Key()] = s
			}
		}
	}
	out := make([]vset.Set, 0, len(seen))
	for _, s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Clone returns a deep copy of d.
func (d *Decomposition) Clone() *Decomposition {
	c := &Decomposition{
		Bags: make([]vset.Set, len(d.Bags)),
		Adj:  make([][]int, len(d.Adj)),
	}
	for i, b := range d.Bags {
		c.Bags[i] = b.Clone()
	}
	for i, nb := range d.Adj {
		c.Adj[i] = append([]int(nil), nb...)
	}
	return c
}

// String renders the decomposition as a list of bags and tree edges.
func (d *Decomposition) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "td[%d nodes, width %d]", len(d.Bags), d.Width())
	for i, bag := range d.Bags {
		fmt.Fprintf(&b, " %d:%s", i, bag)
	}
	return b.String()
}
