package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Fingerprint returns a canonical hash of the labeled graph: two graphs
// have equal fingerprints iff they share the universe size, the active
// vertex set, and the edge set. It is the cache key the serving layer uses
// to deduplicate solver initializations across requests, so it must be
// stable across processes — it hashes the adjacency structure itself, not
// any in-memory representation detail.
//
// The fingerprint is label-sensitive by design: isomorphic graphs with
// different vertex numberings hash differently (canonical labeling à la
// nauty is out of scope; clients that want isomorphism-level dedup can
// canonicalize before submitting).
func (g *Graph) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(g.n))
	h.Write(buf[:])
	writeSet := func(words []uint64) {
		for _, w := range words {
			binary.LittleEndian.PutUint64(buf[:], w)
			h.Write(buf[:])
		}
	}
	writeSet(g.verts.Words())
	g.verts.ForEach(func(v int) bool {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
		writeSet(g.adj[v].Words())
		return true
	})
	return hex.EncodeToString(h.Sum(nil))
}
