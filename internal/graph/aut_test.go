package graph_test

// External test package, like canon_test.go: the oracle needs
// internal/bruteforce and internal/gen, both of which import
// internal/graph.

import (
	"fmt"
	"math/big"
	"runtime"
	"sync"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/gen"
	"repro/internal/graph"
)

// checkAutOracle compares graph.Automorphisms against the brute-force
// permutation sweep: exact search, exact group order, identical vertex
// orbits, and every reported generator a genuine automorphism.
func checkAutOracle(t *testing.T, g *graph.Graph, label string) {
	t.Helper()
	aut := g.Automorphisms()
	if !aut.Exact() {
		t.Fatalf("%s: automorphism search fell back (budget exhausted on a tiny graph)", label)
	}
	all := bruteforce.Automorphisms(g)
	if want := big.NewInt(int64(len(all))); aut.Order().Cmp(want) != 0 {
		t.Fatalf("%s: group order %v, brute force found %d automorphisms", label, aut.Order(), len(all))
	}
	// Vertex orbits: the brute-force orbit of v is the set of images of v
	// over all automorphisms.
	n := g.Universe()
	for v := 0; v < n; v++ {
		for _, p := range all {
			if aut.OrbitRep(p[v]) != aut.OrbitRep(v) {
				t.Fatalf("%s: brute force maps %d to %d but OrbitRep splits them (%d vs %d)",
					label, v, p[v], aut.OrbitRep(v), aut.OrbitRep(p[v]))
			}
		}
	}
	// The union-find orbits must not be coarser than the true orbits
	// either: rebuild the true orbit partition from the full permutation
	// list and compare SameOrbit pairwise.
	parent := make([]int, n)
	for v := range parent {
		parent[v] = v
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, p := range all {
		for v, pv := range p {
			if ra, rb := find(v), find(pv); ra != rb {
				parent[ra] = rb
			}
		}
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if (find(u) == find(v)) != aut.SameOrbit(u, v) {
				t.Fatalf("%s: SameOrbit(%d,%d)=%v disagrees with brute force", label, u, v, aut.SameOrbit(u, v))
			}
		}
	}
	for gi, p := range aut.Generators() {
		checkIsAutomorphism(t, g, p, fmt.Sprintf("%s generator %d", label, gi))
	}
}

func checkIsAutomorphism(t *testing.T, g *graph.Graph, p []int, label string) {
	t.Helper()
	n := g.Universe()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if g.HasEdge(u, v) != g.HasEdge(p[u], p[v]) {
				t.Fatalf("%s: not an automorphism (edge %d-%d vs %d-%d)", label, u, v, p[u], p[v])
			}
		}
	}
	if g.Vertices().Relabel(p).Equal(g.Vertices()) == false {
		t.Fatalf("%s: permutation does not preserve the active set", label)
	}
}

// TestAutomorphismsOracleAllSmallGraphs proves graph.Automorphisms
// exhaustively: on EVERY graph with up to 6 vertices, the search's
// discovered generators generate exactly the brute-force automorphism
// group — same order, same vertex orbits. This is the guarantee the
// orbit-reduced enumeration mode rests on (core's orbit sizes come from
// the group order via orbit-stabilizer).
func TestAutomorphismsOracleAllSmallGraphs(t *testing.T) {
	maxN := 6
	if testing.Short() {
		maxN = 5
	}
	for n := 1; n <= maxN; n++ {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			t.Parallel()
			pairs := n * (n - 1) / 2
			total := 1 << pairs
			workers := runtime.GOMAXPROCS(0)
			if workers > total {
				workers = total
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for mask := w; mask < total; mask += workers {
						if t.Failed() {
							return
						}
						checkAutOracle(t, maskGraph(n, mask), fmt.Sprintf("n=%d mask=%d", n, mask))
					}
				}()
			}
			wg.Wait()
		})
	}
}

// TestAutomorphismsKnownGroups pins the group order on families where it
// is known in closed form: Aut(K_n) = S_n, Aut(C_n) = D_n (order 2n),
// Aut(P_n) = Z_2, Aut(Petersen) = S_5 (order 120), Aut(3×3 grid) = D_4.
func TestAutomorphismsKnownGroups(t *testing.T) {
	petersen, err := gen.Named("petersen")
	if err != nil {
		t.Fatalf("petersen: %v", err)
	}
	cases := []struct {
		name  string
		g     *graph.Graph
		order int64
	}{
		{"K5", gen.Complete(5), 120},
		{"K7", gen.Complete(7), 5040},
		{"C6", gen.Cycle(6), 12},
		{"C12", gen.Cycle(12), 24},
		{"P5", gen.Path(5), 2},
		{"Grid3x3", gen.Grid(3, 3), 8},
		{"Grid2x4", gen.Grid(2, 4), 4},
		{"Petersen", petersen, 120},
	}
	for _, tc := range cases {
		aut := tc.g.Automorphisms()
		if !aut.Exact() {
			t.Errorf("%s: search fell back", tc.name)
			continue
		}
		if aut.Order().Cmp(big.NewInt(tc.order)) != 0 {
			t.Errorf("%s: group order %v, want %d", tc.name, aut.Order(), tc.order)
		}
	}
}

// TestAutomorphismsInactiveVertices checks that generators fix inactive
// vertices and orbits never cross the active boundary.
func TestAutomorphismsInactiveVertices(t *testing.T) {
	g := gen.Cycle(8)
	sub := g.InducedSubgraph(g.Vertices().Remove(7))
	aut := sub.Automorphisms()
	// C8 minus a vertex is P7: Aut = Z_2.
	if aut.Order().Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("P7 group order %v, want 2", aut.Order())
	}
	for _, p := range aut.Generators() {
		if p[7] != 7 {
			t.Fatalf("generator moves inactive vertex 7 to %d", p[7])
		}
	}
	for v := 0; v < 7; v++ {
		if aut.SameOrbit(v, 7) {
			t.Fatalf("orbit of active vertex %d crosses to inactive 7", v)
		}
	}
}

// TestCanonicalFormAutBudgetPartial is the regression test for the
// budget-exhaustion bugfix: a budget-starved search on a highly symmetric
// graph must still surface the automorphisms it found before the stop —
// previously they were discarded along with the partial orbit structure.
// The returned group must be marked inexact, non-trivial, and consist of
// genuine automorphisms.
func TestCanonicalFormAutBudgetPartial(t *testing.T) {
	g := gen.Cycle(24)
	// Find a budget that exhausts mid-search but after at least two
	// leaves; scanning upward keeps the test robust to search-shape
	// changes (a fixed budget would silently turn vacuous).
	for budget := 3; budget < 1<<16; budget *= 2 {
		_, _, aut, exact := g.CanonicalFormAutBudget(budget)
		if exact {
			t.Fatalf("budget %d completed the search before any partial-group budget was found", budget)
		}
		if aut.Exact() {
			t.Fatalf("budget %d: exhausted search returned an Exact group", budget)
		}
		if aut.IsTrivial() {
			continue // too starved to reach two equal leaves yet
		}
		for gi, p := range aut.Generators() {
			checkIsAutomorphism(t, g, p, fmt.Sprintf("budget=%d generator %d", budget, gi))
		}
		if aut.Order().Cmp(big.NewInt(48)) > 0 {
			t.Fatalf("budget %d: partial group order %v exceeds |Aut(C24)| = 48", budget, aut.Order())
		}
		return // found a budget that surfaces a partial, non-trivial group
	}
	t.Fatalf("no budget produced a partial non-trivial group on C24")
}

// TestCanonicalKeyCellsPairInvariance drives the colored-pair encoding the
// core orbit mode uses: the key of the layered structure (G, H) must be
// invariant under simultaneous relabeling, and must separate pairs that
// are not cell-isomorphic.
func TestCanonicalKeyCellsPairInvariance(t *testing.T) {
	layered := func(g, h *graph.Graph) (*graph.Graph, [][]int) {
		verts := g.Vertices().Slice()
		k := len(verts)
		l := graph.New(2 * k)
		a := make([]int, k)
		b := make([]int, k)
		for i := 0; i < k; i++ {
			a[i], b[i] = i, k+i
			l.AddEdge(i, k+i)
			for j := i + 1; j < k; j++ {
				if g.HasEdge(verts[i], verts[j]) {
					l.AddEdge(i, j)
				}
				if h.HasEdge(verts[i], verts[j]) {
					l.AddEdge(k+i, k+j)
				}
			}
		}
		return l, [][]int{a, b}
	}
	key := func(g, h *graph.Graph) string {
		l, cells := layered(g, h)
		k, _, exact := l.CanonicalKeyCells(cells, 0)
		if !exact {
			t.Fatalf("layered search fell back")
		}
		return k
	}

	g := gen.Cycle(6)
	// Two triangulations of C6 in the same rotation orbit: fill {0-2,0-3,0-4}
	// rotated by two is {2-4,2-5,0-2}.
	h1 := g.Clone()
	h1.AddEdge(0, 2)
	h1.AddEdge(0, 3)
	h1.AddEdge(0, 4)
	h2 := g.Clone()
	h2.AddEdge(2, 4)
	h2.AddEdge(2, 5)
	h2.AddEdge(0, 2)
	if key(g, h1) != key(g, h2) {
		t.Fatalf("rotation-equivalent triangulations of C6 got distinct keys")
	}
	// The "fan" h1 vs the "triforce" (inner triangle 0-2-4) are NOT in
	// the same dihedral orbit (the fan has a degree-5 apex, the triforce's
	// maximum degree is 4); their pair keys must differ.
	h3 := g.Clone()
	h3.AddEdge(0, 2)
	h3.AddEdge(2, 4)
	h3.AddEdge(0, 4)
	if key(g, h1) == key(g, h3) {
		t.Fatalf("fan and triforce triangulations of C6 collided")
	}
	// Stabilizer sanity: the fan is fixed only by the reflection through
	// its apex (order 2).
	l1, cells1 := layered(g, h1)
	_, stab, exact := l1.CanonicalKeyCells(cells1, 0)
	if !exact {
		t.Fatalf("stabilizer search fell back")
	}
	if stab.Order().Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("fan stabilizer order %v, want 2", stab.Order())
	}
}
