package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// maxParseVertices caps the vertex count a parsed header (or an edge
// list's distinct-token count) may claim. The adjacency representation is
// a dense bitset per vertex — n²/8 bytes total — so a forged header
// claiming millions of vertices would buy gigabytes of allocation from a
// few input bytes; anything near this cap is already far beyond what the
// solver can process.
const maxParseVertices = 1 << 15

// checkParsedN validates a header-claimed vertex count.
func checkParsedN(format string, n int) error {
	if n < 0 {
		return fmt.Errorf("%s: negative vertex count %d", format, n)
	}
	if n > maxParseVertices {
		return fmt.Errorf("%s: %d vertices exceeds the parser limit %d", format, n, maxParseVertices)
	}
	return nil
}

// ReadEdgeList parses a plain edge list: one "u v" pair per line, with
// vertices named by arbitrary tokens. Lines starting with '#' and blank
// lines are skipped. Vertex numbers are assigned in order of first
// appearance; original tokens are kept as names.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	type edge struct{ u, v string }
	var edges []edge
	index := map[string]int{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("edge list line %d: want 2 tokens, got %d", line, len(fields))
		}
		for _, tok := range fields {
			if _, ok := index[tok]; !ok {
				if len(order) >= maxParseVertices {
					return nil, fmt.Errorf("edge list line %d: more than %d distinct vertices", line, maxParseVertices)
				}
				index[tok] = len(order)
				order = append(order, tok)
			}
		}
		edges = append(edges, edge{fields[0], fields[1]})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g := New(len(order))
	for v, name := range order {
		g.SetName(v, name)
	}
	for _, e := range edges {
		if e.u == e.v {
			continue
		}
		g.AddEdge(index[e.u], index[e.v])
	}
	return g, nil
}

// ReadDIMACS parses the DIMACS graph-coloring format used by the PACE and
// DIMACS benchmarks: "p edge n m" header, "e u v" edge lines, 1-based
// vertices, "c" comment lines.
func ReadDIMACS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "c") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "p":
			if len(fields) < 4 {
				return nil, fmt.Errorf("dimacs line %d: malformed problem line", line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("dimacs line %d: %v", line, err)
			}
			if err := checkParsedN("dimacs", n); err != nil {
				return nil, err
			}
			g = New(n)
		case "e":
			if g == nil {
				return nil, fmt.Errorf("dimacs line %d: edge before problem line", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("dimacs line %d: malformed edge", line)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("dimacs line %d: bad vertex numbers", line)
			}
			if u < 1 || v < 1 || u > g.Universe() || v > g.Universe() {
				return nil, fmt.Errorf("dimacs line %d: vertex out of range", line)
			}
			if u != v {
				g.AddEdge(u-1, v-1)
			}
		default:
			return nil, fmt.Errorf("dimacs line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("dimacs: missing problem line")
	}
	return g, nil
}

// ReadPACE parses the PACE ".gr" treewidth format: "p tw n m" header,
// bare "u v" edge lines, 1-based vertices, "c" comment lines.
func ReadPACE(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "c") {
			continue
		}
		fields := strings.Fields(text)
		if fields[0] == "p" {
			if len(fields) < 4 {
				return nil, fmt.Errorf("pace line %d: malformed problem line", line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("pace line %d: %v", line, err)
			}
			if err := checkParsedN("pace", n); err != nil {
				return nil, err
			}
			g = New(n)
			continue
		}
		if g == nil {
			return nil, fmt.Errorf("pace line %d: edge before problem line", line)
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("pace line %d: malformed edge", line)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("pace line %d: bad vertex numbers", line)
		}
		if u < 1 || v < 1 || u > g.Universe() || v > g.Universe() {
			return nil, fmt.Errorf("pace line %d: vertex out of range", line)
		}
		if u != v {
			g.AddEdge(u-1, v-1)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("pace: missing problem line")
	}
	return g, nil
}

// WritePACE writes g in the PACE ".gr" format over its active vertices.
// Inactive universe slots are still counted in the header so the file
// round-trips to an isomorphic graph when all vertices are active.
func WritePACE(w io.Writer, g *Graph) error {
	if _, err := fmt.Fprintf(w, "p tw %d %d\n", g.Universe(), g.NumEdges()); err != nil {
		return err
	}
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	for _, e := range edges {
		if _, err := fmt.Fprintf(w, "%d %d\n", e[0]+1, e[1]+1); err != nil {
			return err
		}
	}
	return nil
}

// WriteDOT writes g in Graphviz DOT format, mainly for debugging and docs.
func WriteDOT(w io.Writer, g *Graph) error {
	if _, err := fmt.Fprintln(w, "graph G {"); err != nil {
		return err
	}
	var firstErr error
	g.Vertices().ForEach(func(v int) bool {
		if _, err := fmt.Fprintf(w, "  %q;\n", g.Name(v)); err != nil {
			firstErr = err
			return false
		}
		return true
	})
	if firstErr != nil {
		return firstErr
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(w, "  %q -- %q;\n", g.Name(e[0]), g.Name(e[1])); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
