package graph

import (
	"sort"

	"repro/internal/vset"
)

// This file implements canonical labeling: a relabeling of the graph that
// is (budget permitting) invariant under isomorphism, so that the
// Fingerprint of the relabeled graph can key caches up to isomorphism.
//
// The algorithm is the classic individualization–refinement search
// (McKay's nauty family, scaled down): iterate color refinement to an
// equitable partition, branch on the vertices of the first smallest
// non-singleton cell, and take the lexicographically smallest adjacency
// encoding over the leaves of the search tree. Discovered automorphisms
// (two leaves with equal encodings) prune branches that a known symmetry
// maps onto an already-explored sibling, which keeps highly symmetric
// graphs (cliques, grids, circulants) polynomial in practice. A node
// budget bounds the search on adversarial inputs: past it the best leaf
// found so far is returned, which is still a deterministic valid
// relabeling of the input — merely not isomorphism-invariant — so cache
// keys built from it degrade to label-sensitive, never to incorrect.

// DefaultCanonBudget is the search-tree node budget of CanonicalForm.
// Individualization–refinement on the templated workloads a serving tier
// sees (grids, chains, replicated schemas) explores a few dozen nodes;
// the budget exists to bound pathological strongly-regular-like inputs.
const DefaultCanonBudget = 1 << 16

// canonMaxGens caps the stored automorphism generators; pruning power
// saturates long before this, and each generator costs O(k) per branch.
const canonMaxGens = 256

// CanonicalForm returns a canonical relabeling of g: a copy canon of g
// relabeled by perm (vertex v of g is vertex perm[v] of canon), such that
// — whenever exact is true — isomorphic graphs over equal universes yield
// byte-identical canon graphs. canon.Fingerprint() is therefore an
// isomorphism-class cache key. Active vertices map to labels
// 0..NumVertices()-1; inactive vertices keep their relative order on the
// remaining labels. exact is false when the search budget was exhausted
// first; perm is then still a valid, deterministic relabeling of this
// labeled graph (equal inputs get equal outputs), so keys built from it
// merely lose isomorphism-level deduplication, never correctness.
func (g *Graph) CanonicalForm() (canon *Graph, perm []int, exact bool) {
	return g.CanonicalFormBudget(DefaultCanonBudget)
}

// CanonicalFormBudget is CanonicalForm under an explicit search-tree node
// budget (<= 0 selects DefaultCanonBudget).
func (g *Graph) CanonicalFormBudget(maxNodes int) (canon *Graph, perm []int, exact bool) {
	canon, perm, _, exact = g.CanonicalFormAutBudget(maxNodes)
	return canon, perm, exact
}

// CanonicalFormAutBudget is CanonicalFormBudget surfacing, in addition,
// the automorphism group assembled from the generators the search
// discovered (two leaves with equal encodings yield one). On budget
// exhaustion the generators found before the stop are NOT discarded: aut
// then holds the (possibly proper) subgroup they generate, with
// aut.Exact() false — still genuine automorphisms, still usable for
// orbit reduction, merely without the guarantee that they generate all
// of Aut(G).
func (g *Graph) CanonicalFormAutBudget(maxNodes int) (canon *Graph, perm []int, aut *AutGroup, exact bool) {
	if maxNodes <= 0 {
		maxNodes = DefaultCanonBudget
	}
	verts := g.verts.Slice()
	cs := newCanonSearch(g, verts, maxNodes)
	k := cs.k
	if k > 0 {
		all := make([]int, k)
		for i := range all {
			all[i] = i
		}
		cs.explore([][]int{all}, nil)
	} else {
		cs.haveBest = true
		cs.bestPos = nil
	}

	perm = make([]int, g.n)
	if !cs.haveBest {
		// Budget exhausted before the first leaf: identity on the actives.
		for i, v := range verts {
			perm[v] = i
		}
	} else {
		for i, v := range verts {
			perm[v] = cs.bestPos[i]
		}
	}
	next := k
	for v := 0; v < g.n; v++ {
		if !g.verts.Contains(v) {
			perm[v] = next
			next++
		}
	}
	return g.Relabel(perm), perm, cs.autGroup(g.n), !cs.stopped
}

// newCanonSearch builds the search state over g's active vertices listed
// in verts (the active-index space of the whole search).
func newCanonSearch(g *Graph, verts []int, maxNodes int) *canonSearch {
	k := len(verts)
	cs := &canonSearch{g: g, verts: verts, k: k, budget: maxNodes}
	cs.adj = make([][]bool, k)
	for i, u := range verts {
		cs.adj[i] = make([]bool, k)
		for j, v := range verts {
			cs.adj[i][j] = g.HasEdge(u, v)
		}
	}
	return cs
}

// autGroup translates the discovered generators from active indices to
// universe labels (identity on inactive vertices) and packages them.
func (cs *canonSearch) autGroup(n int) *AutGroup {
	gens := make([][]int, 0, len(cs.gens))
	for _, gamma := range cs.gens {
		p := make([]int, n)
		for v := range p {
			p[v] = v
		}
		for i, j := range gamma {
			p[cs.verts[i]] = cs.verts[j]
		}
		gens = append(gens, p)
	}
	return newAutGroup(n, gens, !cs.stopped)
}

// canonSearch is the state of one individualization–refinement search.
// Vertices are addressed by active index (position in verts) throughout;
// only the final permutation translates back to graph labels.
type canonSearch struct {
	g     *Graph
	verts []int
	k     int
	adj   [][]bool

	budget  int
	nodes   int
	stopped bool

	haveBest  bool
	best      []uint64 // row-major adjacency bit matrix of the best leaf
	bestPos   []int    // active index -> canonical position at the best leaf
	bestOrder []int    // canonical position -> active index at the best leaf
	gens      [][]int  // discovered automorphisms over active indices

	// The first leaf is kept alongside the best one purely for
	// automorphism discovery (McKay's dual-target scheme): the best leaf
	// moves as smaller encodings are found, so automorphisms relating
	// early equal-encoding leaves to a superseded best would be lost —
	// and with them, potentially, generators of Aut(G). Comparing every
	// leaf against the immovable first leaf as well closes that gap.
	haveFirst  bool
	first      []uint64
	firstOrder []int
}

// explore refines cells to an equitable partition, then either records the
// leaf (discrete partition) or branches on the target cell.
func (cs *canonSearch) explore(cells [][]int, prefix []int) {
	if cs.stopped {
		return
	}
	cs.nodes++
	if cs.nodes > cs.budget {
		cs.stopped = true
		return
	}
	cells = cs.refine(cells)
	// Target cell: the first smallest non-singleton — a function of the
	// (isomorphism-invariant) equitable partition, as canonicity requires.
	target := -1
	for i, c := range cells {
		if len(c) > 1 && (target < 0 || len(c) < len(cells[target])) {
			target = i
		}
	}
	if target < 0 {
		cs.leaf(cells)
		return
	}
	var tried []int
	for _, v := range cells[target] {
		// Skip v when a known automorphism fixing the individualized
		// prefix pointwise maps an already-explored sibling onto it: the
		// two subtrees produce identical leaf-encoding sets.
		if cs.prunable(v, tried, prefix) {
			continue
		}
		child := make([][]int, 0, len(cells)+1)
		for i, c := range cells {
			if i != target {
				child = append(child, c)
				continue
			}
			rest := make([]int, 0, len(c)-1)
			for _, u := range c {
				if u != v {
					rest = append(rest, u)
				}
			}
			child = append(child, []int{v}, rest)
		}
		cs.explore(child, append(prefix, v))
		if cs.stopped {
			return
		}
		tried = append(tried, v)
	}
}

// refine drives cells to the coarsest equitable partition refining them:
// every vertex of a cell has the same number of neighbors in every cell.
// Splitters are snapshots, so a cell that later splits still counts
// correctly (its parts' counts sum to the snapshot's). Sub-cells are
// ordered by ascending neighbor count, which keeps the refinement an
// isomorphism-invariant function of the input partition.
func (cs *canonSearch) refine(cells [][]int) [][]int {
	queue := make([][]int, len(cells))
	copy(queue, cells)
	cnt := make([]int, cs.k)
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		for i := range cnt {
			cnt[i] = 0
		}
		for _, u := range w {
			row := cs.adj[u]
			for v := 0; v < cs.k; v++ {
				if row[v] {
					cnt[v]++
				}
			}
		}
		out := make([][]int, 0, len(cells))
		for _, c := range cells {
			if len(c) == 1 {
				out = append(out, c)
				continue
			}
			uniform := true
			for _, v := range c[1:] {
				if cnt[v] != cnt[c[0]] {
					uniform = false
					break
				}
			}
			if uniform {
				out = append(out, c)
				continue
			}
			groups := make(map[int][]int)
			var keys []int
			for _, v := range c {
				if _, ok := groups[cnt[v]]; !ok {
					keys = append(keys, cnt[v])
				}
				groups[cnt[v]] = append(groups[cnt[v]], v)
			}
			sort.Ints(keys)
			for _, key := range keys {
				out = append(out, groups[key])
				queue = append(queue, groups[key])
			}
		}
		cells = out
	}
	return cells
}

// leaf scores a discrete partition against the best one seen. A tie
// yields an automorphism (the permutation mapping this leaf's labeling
// onto the best leaf's), which feeds the branch pruning.
func (cs *canonSearch) leaf(cells [][]int) {
	pos := make([]int, cs.k)
	order := make([]int, cs.k)
	for i, c := range cells {
		pos[c[0]] = i
		order[i] = c[0]
	}
	w := (cs.k + 63) / 64
	enc := make([]uint64, cs.k*w)
	for i := 0; i < cs.k; i++ {
		row := cs.adj[order[i]]
		base := i * w
		for j := 0; j < cs.k; j++ {
			if row[order[j]] {
				enc[base+j/64] |= 1 << uint(j%64)
			}
		}
	}
	if !cs.haveFirst {
		cs.haveFirst = true
		cs.first = enc
		cs.firstOrder = order
	} else if len(cs.gens) < canonMaxGens && equalWords(enc, cs.first) {
		// Equal encodings mean the two labelings present the same matrix:
		// γ(v) = firstOrder[pos(v)] satisfies adj[γu][γv] = adj[u][v].
		gamma := make([]int, cs.k)
		for v := 0; v < cs.k; v++ {
			gamma[v] = cs.firstOrder[pos[v]]
		}
		cs.gens = append(cs.gens, gamma)
	}
	if !cs.haveBest || lessWords(enc, cs.best) {
		cs.haveBest = true
		cs.best = enc
		cs.bestPos = pos
		cs.bestOrder = order
		return
	}
	if len(cs.gens) < canonMaxGens && equalWords(enc, cs.best) && !equalWords(enc, cs.first) {
		// Ties against a best leaf that is not the first leaf contribute
		// their own automorphisms (the first-leaf comparison above missed
		// them), which feed the branch pruning.
		gamma := make([]int, cs.k)
		for v := 0; v < cs.k; v++ {
			gamma[v] = cs.bestOrder[pos[v]]
		}
		cs.gens = append(cs.gens, gamma)
	}
}

// prunable reports whether some known automorphism that fixes prefix
// pointwise maps an already-tried sibling onto v. Only prefix-fixing
// generators may prune: they generate a subgroup of the stabilizer of
// the current search node, so the identification is sound.
func (cs *canonSearch) prunable(v int, tried, prefix []int) bool {
	if len(tried) == 0 || len(cs.gens) == 0 {
		return false
	}
	parent := make([]int, cs.k)
	for i := range parent {
		parent[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, gamma := range cs.gens {
		fixes := true
		for _, p := range prefix {
			if gamma[p] != p {
				fixes = false
				break
			}
		}
		if !fixes {
			continue
		}
		for x := 0; x < cs.k; x++ {
			union(x, gamma[x])
		}
	}
	rv := find(v)
	for _, u := range tried {
		if find(u) == rv {
			return true
		}
	}
	return false
}

func lessWords(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func equalWords(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Relabel returns the graph with every vertex v renamed to perm[v]. perm
// must be a bijection on the universe {0..n-1}; the active set, adjacency
// and display names map through it.
func (g *Graph) Relabel(perm []int) *Graph {
	if len(perm) != g.n {
		panic("graph: Relabel permutation has wrong length")
	}
	seen := make([]bool, g.n)
	for _, p := range perm {
		if p < 0 || p >= g.n || seen[p] {
			panic("graph: Relabel permutation is not a bijection")
		}
		seen[p] = true
	}
	c := &Graph{n: g.n, verts: g.verts.Relabel(perm), adj: make([]vset.Set, g.n)}
	for v := range c.adj {
		c.adj[v] = vset.New(g.n)
	}
	g.verts.ForEach(func(u int) bool {
		c.adj[perm[u]] = g.adj[u].Relabel(perm)
		return true
	})
	if g.names != nil {
		c.names = make([]string, g.n)
		for v, name := range g.names {
			c.names[perm[v]] = name
		}
	}
	return c
}
