package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets for the text parsers: any input must either parse into a
// well-formed graph or return an error — never panic, and never allocate
// adjacency structures for a vertex count the input cannot justify
// (CVE-class "small request, huge allocation" behaviour). Round-trip
// checks run on the accepting paths so the fuzzer also exercises the
// writers.
//
// CI runs each target briefly (see .github/workflows/ci.yml); longer
// local sessions: go test ./internal/graph -run='^$' -fuzz=FuzzReadGraph6

func checkParsed(t *testing.T, g *Graph) {
	t.Helper()
	if g == nil {
		t.Fatal("nil graph without error")
	}
	if g.Universe() < 0 || g.Universe() > maxParseVertices {
		t.Fatalf("parsed universe %d out of bounds", g.Universe())
	}
	// Exercise the basic invariants the rest of the code base assumes.
	_ = g.NumEdges()
	_ = g.Vertices().Len()
}

func FuzzReadGraph6(f *testing.F) {
	f.Add("DqK")                  // C5
	f.Add(">>graph6<<DqK\nD?{\n") // header + two graphs
	f.Add("~??~?????")            // 4-byte N(n) form
	f.Add("~~~~~~")               // unsupported large-n prefix
	f.Add("C")                    // truncated payload
	f.Add(string([]byte{62, 63})) // invalid character
	f.Fuzz(func(t *testing.T, data string) {
		gs, err := ReadGraph6(strings.NewReader(data))
		if err != nil {
			return
		}
		for _, g := range gs {
			checkParsed(t, g)
			// Round-trip: re-encode and re-parse to the same edge set.
			var buf bytes.Buffer
			if err := WriteGraph6(&buf, g); err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
			back, err := ReadGraph6(&buf)
			if err != nil || len(back) != 1 {
				t.Fatalf("round trip failed: %v (%d graphs)", err, len(back))
			}
			if back[0].EdgeSetKey() != g.EdgeSetKey() {
				t.Fatal("round trip changed the edge set")
			}
		}
	})
}

func FuzzReadDIMACS(f *testing.F) {
	f.Add("p edge 3 2\ne 1 2\ne 2 3\n")
	f.Add("c comment\np edge 2 1\ne 1 2\n")
	f.Add("p edge -5 0\n")
	f.Add("p edge 999999999 0\n")
	f.Add("e 1 2\np edge 2 1\n")
	f.Add("p edge 2 1\ne 1 1\ne 1 2\ne 1 2\n")
	f.Fuzz(func(t *testing.T, data string) {
		g, err := ReadDIMACS(strings.NewReader(data))
		if err != nil {
			return
		}
		checkParsed(t, g)
	})
}

func FuzzReadPACE(f *testing.F) {
	f.Add("p tw 3 2\n1 2\n2 3\n")
	f.Add("c header\np tw 4 1\n1 4\n")
	f.Add("p tw -1 0\n")
	f.Add("p tw 100000000 0\n")
	f.Add("1 2\n")
	f.Fuzz(func(t *testing.T, data string) {
		g, err := ReadPACE(strings.NewReader(data))
		if err != nil {
			return
		}
		checkParsed(t, g)
		var buf bytes.Buffer
		if err := WritePACE(&buf, g); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadPACE(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed the edge count")
		}
	})
}

func FuzzReadEdgeList(f *testing.F) {
	f.Add("a b\nb c\n")
	f.Add("# comment\n1 2\n2 1\n1 1\n")
	f.Add("x y z\n")
	f.Fuzz(func(t *testing.T, data string) {
		g, err := ReadEdgeList(strings.NewReader(data))
		if err != nil {
			return
		}
		checkParsed(t, g)
	})
}
