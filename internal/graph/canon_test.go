package graph_test

// External test package: the oracle needs internal/bruteforce and
// internal/gen, both of which import internal/graph.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/vset"
)

// maskGraph builds the graph on n vertices whose edge set is the given
// bitmask over the n(n-1)/2 vertex pairs in lexicographic order.
func maskGraph(n int, mask int) *graph.Graph {
	g := graph.New(n)
	bit := 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if mask&(1<<bit) != 0 {
				g.AddEdge(u, v)
			}
			bit++
		}
	}
	return g
}

// checkCanonical verifies the structural contract of one CanonicalForm
// call: perm is a bijection, canon is exactly g relabeled by it, and the
// search completed within budget.
func checkCanonical(t *testing.T, g *graph.Graph, label string) (hash string) {
	t.Helper()
	canon, perm, exact := g.CanonicalForm()
	if !exact {
		t.Fatalf("%s: canonical search blew the default budget", label)
	}
	seen := make([]bool, g.Universe())
	for _, p := range perm {
		if p < 0 || p >= g.Universe() || seen[p] {
			t.Fatalf("%s: perm %v is not a bijection", label, perm)
		}
		seen[p] = true
	}
	if want := g.Relabel(perm).Fingerprint(); canon.Fingerprint() != want {
		t.Fatalf("%s: canon is not g relabeled by perm", label)
	}
	if canon.NumEdges() != g.NumEdges() || canon.NumVertices() != g.NumVertices() {
		t.Fatalf("%s: canon changed the graph: %v vs %v", label, canon, g)
	}
	for _, e := range g.Edges() {
		if !canon.HasEdge(perm[e[0]], perm[e[1]]) {
			t.Fatalf("%s: edge {%d,%d} lost under relabeling", label, e[0], e[1])
		}
	}
	return canon.Fingerprint()
}

// TestCanonicalFormOracleAllSmallGraphs proves, exhaustively on EVERY
// graph with up to 6 vertices, that the canonical fingerprint is exactly
// an isomorphism-class key: two graphs share a canonical fingerprint iff
// they share the exhaustive-permutation bruteforce code (which tries all
// n! relabelings). Sharded across GOMAXPROCS goroutines.
func TestCanonicalFormOracleAllSmallGraphs(t *testing.T) {
	maxN := 6
	if testing.Short() {
		maxN = 5
	}
	for n := 1; n <= maxN; n++ {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			t.Parallel()
			pairs := n * (n - 1) / 2
			total := 1 << pairs
			workers := runtime.GOMAXPROCS(0)
			if workers > total {
				workers = total
			}
			// code→hash and hash→code must both be functions: together
			// that is "equal hash ⟺ isomorphic".
			var mu sync.Mutex
			codeToHash := make(map[uint64]string)
			hashToCode := make(map[string]uint64)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for mask := w; mask < total; mask += workers {
						if t.Failed() {
							return
						}
						g := maskGraph(n, mask)
						hash := checkCanonical(t, g, fmt.Sprintf("n=%d mask=%d", n, mask))
						code := bruteforce.CanonicalCode(g)
						mu.Lock()
						if prev, ok := codeToHash[code]; ok && prev != hash {
							mu.Unlock()
							t.Errorf("n=%d mask=%d: isomorphic graphs (code %d) got different canonical hashes", n, mask, code)
							return
						} else if !ok {
							codeToHash[code] = hash
						}
						if prev, ok := hashToCode[hash]; ok && prev != code {
							mu.Unlock()
							t.Errorf("n=%d mask=%d: non-isomorphic graphs share canonical hash %s", n, mask, hash)
							return
						} else if !ok {
							hashToCode[hash] = code
						}
						mu.Unlock()
					}
				}()
			}
			wg.Wait()
		})
	}
}

// TestCanonicalFormRandomMedium extends the oracle to n = 7 and 8: for
// random graphs, every random relabeling must produce the same canonical
// hash as the original, and the bruteforce code must agree on the class.
func TestCanonicalFormRandomMedium(t *testing.T) {
	trials := 10
	if testing.Short() {
		trials = 3
	}
	rng := rand.New(rand.NewSource(81))
	for _, n := range []int{7, 8} {
		for _, p := range []float64{0.2, 0.5, 0.8} {
			for trial := 0; trial < trials; trial++ {
				g := gen.GNP(rng, n, p)
				label := fmt.Sprintf("gnp n=%d p=%v trial=%d", n, p, trial)
				hash := checkCanonical(t, g, label)
				code := bruteforce.CanonicalCode(g)
				for r := 0; r < 4; r++ {
					h := gen.Relabel(rng, g)
					rhash := checkCanonical(t, h, label+" relabeled")
					if rhash != hash {
						t.Fatalf("%s: relabeling changed the canonical hash", label)
					}
					if bruteforce.CanonicalCode(h) != code {
						t.Fatalf("%s: relabeling changed the bruteforce code (relabel bug)", label)
					}
				}
			}
		}
	}
}

// TestCanonicalFormSymmetricFamilies spot-checks families with large
// automorphism groups — where branch pruning is what keeps the search
// from going factorial — at sizes well past the exhaustive sweep.
func TestCanonicalFormSymmetricFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"K12", gen.Complete(12)},
		{"C16", gen.Cycle(16)},
		{"grid5x5", gen.Grid(5, 5)},
		{"path20", gen.Path(20)},
		{"petersen", mustNamed(t, "petersen")},
		{"queen5", mustNamed(t, "queen5")},
	}
	for _, tc := range cases {
		hash := checkCanonical(t, tc.g, tc.name)
		for r := 0; r < 6; r++ {
			if got := checkCanonical(t, gen.Relabel(rng, tc.g), tc.name+" relabeled"); got != hash {
				t.Fatalf("%s: relabeling changed the canonical hash", tc.name)
			}
		}
	}
}

func mustNamed(t *testing.T, name string) *graph.Graph {
	t.Helper()
	g, err := gen.Named(name)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestCanonicalFormInactiveVertices checks that graphs whose active sets
// differ only by labeling canonicalize together, and that inactive
// vertices land on the tail labels.
func TestCanonicalFormInactiveVertices(t *testing.T) {
	a := graph.New(6).InducedSubgraph(vset.Of(6, 0, 1, 2))
	b := graph.New(6).InducedSubgraph(vset.Of(6, 3, 4, 5))
	// Both are three isolated active vertices over universe 6.
	ca, pa, _ := a.CanonicalForm()
	cb, _, _ := b.CanonicalForm()
	if ca.Fingerprint() != cb.Fingerprint() {
		t.Fatalf("isomorphic active structures hash differently")
	}
	for v := 0; v < 6; v++ {
		active := a.Vertices().Contains(v)
		if active && pa[v] >= a.NumVertices() {
			t.Fatalf("active vertex %d mapped to tail label %d", v, pa[v])
		}
		if !active && pa[v] < a.NumVertices() {
			t.Fatalf("inactive vertex %d mapped to active label %d", v, pa[v])
		}
	}
}

// TestCanonicalFormBudgetFallback: with a budget too small to finish, the
// result must still be a deterministic valid relabeling and exact=false.
func TestCanonicalFormBudgetFallback(t *testing.T) {
	g := gen.Grid(4, 4)
	c1, p1, exact := g.CanonicalFormBudget(2)
	if exact {
		t.Fatalf("a 2-node budget cannot canonicalize a 4x4 grid exactly")
	}
	c2, p2, _ := g.CanonicalFormBudget(2)
	if c1.Fingerprint() != c2.Fingerprint() {
		t.Fatalf("budget fallback is not deterministic")
	}
	for v := range p1 {
		if p1[v] != p2[v] {
			t.Fatalf("budget fallback permutation is not deterministic")
		}
	}
	if got := g.Relabel(p1).Fingerprint(); got != c1.Fingerprint() {
		t.Fatalf("fallback canon is not g relabeled by perm")
	}
}

// TestRelabelRoundTrip: relabeling by a permutation and then by its
// inverse is the identity, including names.
func TestRelabelRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	g := gen.GNP(rng, 9, 0.4)
	g.SetName(3, "three")
	perm := rng.Perm(9)
	inv := make([]int, 9)
	for v, p := range perm {
		inv[p] = v
	}
	back := g.Relabel(perm).Relabel(inv)
	if back.Fingerprint() != g.Fingerprint() {
		t.Fatalf("relabel round trip changed the graph")
	}
	if back.Name(3) != "three" {
		t.Fatalf("relabel round trip lost names: %q", back.Name(3))
	}
}
