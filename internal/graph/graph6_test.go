package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestGraph6KnownEncodings(t *testing.T) {
	// "D?{" is a standard example: 5 vertices. More robust: round-trip
	// canonical small graphs and check a hand-computed case.
	// K3 = "Bw": N(3)='B'(66→3); bits for pairs (0,1),(0,2),(1,2) = 111
	// → 111000 = 56 + 63 = 'w'.
	gs, err := ReadGraph6(strings.NewReader("Bw\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 1 {
		t.Fatalf("parsed %d graphs", len(gs))
	}
	g := gs[0]
	if g.Universe() != 3 || g.NumEdges() != 3 {
		t.Fatalf("K3 parse: n=%d m=%d", g.Universe(), g.NumEdges())
	}
	// Empty graph on 5 vertices: "D????"... encoding: n=5 → 'D', 10 bits
	// of zeros → two chars '?' '?'.
	gs, err = ReadGraph6(strings.NewReader("D??\n"))
	if err != nil {
		t.Fatal(err)
	}
	if gs[0].Universe() != 5 || gs[0].NumEdges() != 0 {
		t.Fatalf("empty-5 parse: %v", gs[0])
	}
}

func TestGraph6RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(40)
		g := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(3) == 0 {
					g.AddEdge(u, v)
				}
			}
		}
		var buf bytes.Buffer
		if err := WriteGraph6(&buf, g); err != nil {
			t.Fatal(err)
		}
		back, err := ReadGraph6(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(back) != 1 || back[0].EdgeSetKey() != g.EdgeSetKey() {
			t.Fatalf("round trip changed graph (n=%d)", n)
		}
	}
}

func TestGraph6MultipleAndHeader(t *testing.T) {
	src := ">>graph6<<Bw\n\nD??\n"
	gs, err := ReadGraph6(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 2 {
		t.Fatalf("parsed %d graphs, want 2", len(gs))
	}
}

func TestGraph6Malformed(t *testing.T) {
	for _, bad := range []string{"B", "\x01w\n", "~~????\n"} {
		if _, err := ReadGraph6(strings.NewReader(bad)); err == nil {
			t.Errorf("malformed %q accepted", bad)
		}
	}
}

func TestGraph6LargeN(t *testing.T) {
	// The 4-byte N(n) form for n > 62.
	g := New(70)
	g.AddEdge(0, 69)
	g.AddEdge(30, 31)
	var buf bytes.Buffer
	if err := WriteGraph6(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph6(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back[0].Universe() != 70 || back[0].EdgeSetKey() != g.EdgeSetKey() {
		t.Fatalf("large-n round trip failed")
	}
}

func TestParseGraph6HugeClaimedN(t *testing.T) {
	// A 4-byte large-n header claiming ~258k vertices with no payload
	// must be rejected before the O(n²) adjacency allocation.
	if _, err := ReadGraph6(strings.NewReader("~}}}")); err == nil {
		t.Fatal("want truncation error for huge claimed n with empty payload")
	}
}

func TestGraph6HeaderN(t *testing.T) {
	// Header-only decode must report the claimed n without parsing the
	// payload (which may be absent or huge).
	if n, err := Graph6HeaderN("~}}}"); err != nil || n != 257982 {
		t.Fatalf("large-n header: n=%d err=%v", n, err)
	}
	if n, err := Graph6HeaderN("Dhc"); err != nil || n != 5 {
		t.Fatalf("small header: n=%d err=%v", n, err)
	}
	if _, err := Graph6HeaderN(""); err == nil {
		t.Fatal("empty line should error")
	}
}
