package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/vset"
)

// paperExample builds the running-example graph G of Figure 1(a):
// vertices u=0, v=1, v'=2, w1=3, w2=4, w3=5; u and v each adjacent to all
// wi, and v adjacent to v'.
func paperExample() *Graph {
	g := New(6)
	for _, w := range []int{3, 4, 5} {
		g.AddEdge(0, w)
		g.AddEdge(1, w)
	}
	g.AddEdge(1, 2)
	return g
}

func TestBasicGraph(t *testing.T) {
	g := paperExample()
	if g.NumVertices() != 6 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 7 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if !g.HasEdge(0, 3) || g.HasEdge(0, 1) || g.HasEdge(3, 3) {
		t.Fatalf("edge membership wrong")
	}
	if got := g.Neighbors(1).Slice(); !reflect.DeepEqual(got, []int{2, 3, 4, 5}) {
		t.Fatalf("Neighbors(v) = %v", got)
	}
	if got := g.ClosedNeighborhood(2).Slice(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("N[v'] = %v", got)
	}
	g.RemoveEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatalf("RemoveEdge failed")
	}
}

func TestNeighborsOfSet(t *testing.T) {
	g := paperExample()
	ws := vset.Of(6, 3, 4, 5)
	if got := g.NeighborsOfSet(ws).Slice(); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("N(W) = %v", got)
	}
	if got := g.NeighborsOfSet(vset.Of(6, 2)).Slice(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("N({v'}) = %v", got)
	}
}

func TestComponents(t *testing.T) {
	g := paperExample()
	// Removing S1 = {w1,w2,w3} separates {u} from {v, v'}.
	comps := g.ComponentsAvoiding(vset.Of(6, 3, 4, 5))
	if len(comps) != 2 {
		t.Fatalf("components avoiding S1: got %d, want 2", len(comps))
	}
	sizes := []int{comps[0].Len(), comps[1].Len()}
	sort.Ints(sizes)
	if !reflect.DeepEqual(sizes, []int{1, 2}) {
		t.Fatalf("component sizes = %v", sizes)
	}
	// Removing S2 = {u,v} separates each wi and v'.
	comps = g.ComponentsAvoiding(vset.Of(6, 0, 1))
	if len(comps) != 4 {
		t.Fatalf("components avoiding S2: got %d, want 4", len(comps))
	}
	if !g.IsConnected() {
		t.Fatalf("paper graph should be connected")
	}
	if New(0).IsConnected() != true {
		t.Fatalf("empty graph should count as connected")
	}
}

func TestInducedSubgraphAndRealization(t *testing.T) {
	g := paperExample()
	sub := g.InducedSubgraph(vset.Of(6, 0, 3, 4))
	if sub.NumVertices() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("induced subgraph wrong: %v", sub)
	}
	if sub.Universe() != 6 {
		t.Fatalf("universe changed: %d", sub.Universe())
	}
	// Realization of block (S1, {u}): S1 saturated.
	r := g.Realization(vset.Of(6, 3, 4, 5), vset.Of(6, 0))
	if r.NumVertices() != 4 {
		t.Fatalf("realization vertices = %d", r.NumVertices())
	}
	if !r.HasEdge(3, 4) || !r.HasEdge(3, 5) || !r.HasEdge(4, 5) {
		t.Fatalf("realization separator not saturated")
	}
	if !r.HasEdge(0, 3) {
		t.Fatalf("realization lost original edge")
	}
	if r.HasEdge(1, 3) {
		t.Fatalf("realization kept out-of-block edge")
	}
	// The original graph must be untouched.
	if g.HasEdge(3, 4) {
		t.Fatalf("realization mutated the source graph")
	}
}

func TestSaturateAndClique(t *testing.T) {
	g := paperExample()
	u := vset.Of(6, 0, 1)
	if g.IsClique(u) {
		t.Fatalf("{u,v} should not be a clique yet")
	}
	h := g.Saturate(u)
	if !h.IsClique(u) {
		t.Fatalf("saturated set is not a clique")
	}
	if g.HasEdge(0, 1) {
		t.Fatalf("Saturate mutated receiver")
	}
	if !g.IsClique(vset.Of(6, 0, 3)) || !g.IsClique(vset.Of(6, 2)) || !g.IsClique(vset.New(6)) {
		t.Fatalf("clique checks on edges/singletons/empty failed")
	}
}

func TestMissingPairsWithin(t *testing.T) {
	g := paperExample()
	if got := g.MissingPairsWithin(vset.Of(6, 3, 4, 5)); got != 3 {
		t.Fatalf("missing pairs in W = %d, want 3", got)
	}
	if got := g.MissingPairsWithin(vset.Of(6, 0, 3)); got != 0 {
		t.Fatalf("missing pairs on an edge = %d, want 0", got)
	}
	if got := g.MissingPairsWithin(vset.Of(6, 0, 1, 3)); got != 1 {
		t.Fatalf("missing pairs in {u,v,w1} = %d, want 1", got)
	}
}

func TestUnionAndClone(t *testing.T) {
	g := paperExample()
	h := New(6)
	h.AddEdge(0, 1)
	u := g.Union(h)
	if !u.HasEdge(0, 1) || !u.HasEdge(0, 3) {
		t.Fatalf("union missing edges")
	}
	if g.HasEdge(0, 1) {
		t.Fatalf("union mutated receiver")
	}
	c := g.Clone()
	c.AddEdge(0, 1)
	if g.HasEdge(0, 1) {
		t.Fatalf("clone shares storage")
	}
}

func TestEdgesAndKey(t *testing.T) {
	g := paperExample()
	edges := g.Edges()
	if len(edges) != 7 {
		t.Fatalf("Edges len = %d", len(edges))
	}
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Fatalf("edge not normalized: %v", e)
		}
	}
	if g.EdgeSetKey() != paperExample().EdgeSetKey() {
		t.Fatalf("identical graphs have different keys")
	}
	if g.EdgeSetKey() == g.Saturate(vset.Of(6, 0, 1)).EdgeSetKey() {
		t.Fatalf("different graphs share a key")
	}
}

func TestReadEdgeList(t *testing.T) {
	src := "# comment\na b\nb c\n\nc a\n"
	g, err := ReadEdgeList(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("parsed %v", g)
	}
	if g.Name(0) != "a" || g.Name(2) != "c" {
		t.Fatalf("names not preserved: %q %q", g.Name(0), g.Name(2))
	}
	if _, err := ReadEdgeList(strings.NewReader("a b c\n")); err == nil {
		t.Fatalf("malformed line accepted")
	}
}

func TestReadDIMACS(t *testing.T) {
	src := "c a comment\np edge 4 3\ne 1 2\ne 2 3\ne 3 4\n"
	g, err := ReadDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 3 || !g.HasEdge(0, 1) {
		t.Fatalf("parsed %v", g)
	}
	for _, bad := range []string{"e 1 2\n", "p edge 2 1\ne 1 5\n", "p edge x 1\n", "q what\n"} {
		if _, err := ReadDIMACS(strings.NewReader(bad)); err == nil {
			t.Errorf("bad input %q accepted", bad)
		}
	}
}

func TestPACERoundTrip(t *testing.T) {
	src := "c treewidth instance\np tw 5 4\n1 2\n2 3\n3 4\n4 5\n"
	g, err := ReadPACE(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 5 || g.NumEdges() != 4 {
		t.Fatalf("parsed %v", g)
	}
	var buf bytes.Buffer
	if err := WritePACE(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadPACE(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeSetKey() != g2.EdgeSetKey() {
		t.Fatalf("PACE round trip changed the graph")
	}
}

func TestWriteDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDOT(&buf, paperExample()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "graph G {") || !strings.Contains(out, "--") {
		t.Fatalf("unexpected DOT output: %s", out)
	}
}

// randomGraph draws G(n, p)-style graphs for property tests.
func randomGraph(rng *rand.Rand, maxN int) *Graph {
	n := 1 + rng.Intn(maxN)
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Intn(3) == 0 {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestQuickComponentsPartition(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 30)
		n := g.Universe()
		u := vset.New(n)
		for v := 0; v < n; v++ {
			if rng.Intn(4) == 0 {
				u.AddInPlace(v)
			}
		}
		comps := g.ComponentsAvoiding(u)
		// Components partition V \ U.
		covered := vset.New(n)
		for _, c := range comps {
			if c.Intersects(covered) || c.Intersects(u) || c.IsEmpty() {
				return false
			}
			covered.UnionInPlace(c)
			// No edges leave the component except into U.
			out := g.NeighborsOfSet(c)
			if !out.SubsetOf(u) {
				return false
			}
		}
		return covered.Equal(g.Vertices().Diff(u))
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuickRealizationInvariants(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 20)
		n := g.Universe()
		s := vset.New(n)
		for v := 0; v < n; v++ {
			if rng.Intn(4) == 0 {
				s.AddInPlace(v)
			}
		}
		comps := g.ComponentsAvoiding(s)
		if len(comps) == 0 {
			return true
		}
		c := comps[rng.Intn(len(comps))]
		r := g.Realization(s, c)
		if !r.Vertices().Equal(s.Union(c)) {
			return false
		}
		if !r.IsClique(s) {
			return false
		}
		// Every original edge inside S∪C survives.
		for _, e := range g.InducedSubgraph(s.Union(c)).Edges() {
			if !r.HasEdge(e[0], e[1]) {
				return false
			}
		}
		// Only S-internal pairs may be added.
		for _, e := range r.Edges() {
			if !g.HasEdge(e[0], e[1]) && !(s.Contains(e[0]) && s.Contains(e[1])) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Fatal(err)
	}
}
