// Package graph implements the undirected-graph substrate that every
// algorithm in this repository builds on: adjacency-set graphs over a fixed
// vertex universe, connected components, induced subgraphs, saturation, and
// block realizations (Bouchitté–Todinca's R(S,C)).
//
// A key design choice is that induced subgraphs and realizations keep the
// universe of the original graph: a subgraph of a graph over {0..n-1} is
// again a graph over {0..n-1} whose active vertex set is smaller. Vertex
// sets therefore remain directly comparable across a graph, its blocks and
// its realizations, which is what the MinTriang dynamic program needs.
package graph

import (
	"fmt"
	"strings"

	"repro/internal/vset"
)

// Graph is an undirected graph over the universe {0..n-1} with an active
// vertex set. Self loops are not representable; parallel edges collapse.
type Graph struct {
	n     int
	verts vset.Set
	adj   []vset.Set
	names []string
}

// New returns a graph whose active vertices are {0..n-1} and with no edges.
func New(n int) *Graph {
	g := &Graph{
		n:     n,
		verts: vset.Full(n),
		adj:   make([]vset.Set, n),
	}
	for v := range g.adj {
		g.adj[v] = vset.New(n)
	}
	return g
}

// Universe returns the universe size n (not the number of active vertices).
func (g *Graph) Universe() int { return g.n }

// Vertices returns the active vertex set. The caller must not mutate it.
func (g *Graph) Vertices() vset.Set { return g.verts }

// NumVertices returns the number of active vertices.
func (g *Graph) NumVertices() int { return g.verts.Len() }

// NumEdges returns the number of edges between active vertices.
func (g *Graph) NumEdges() int {
	total := 0
	g.verts.ForEach(func(v int) bool {
		total += g.adj[v].Len()
		return true
	})
	return total / 2
}

// SetName assigns a display name to vertex v (used by the file readers).
func (g *Graph) SetName(v int, name string) {
	if g.names == nil {
		g.names = make([]string, g.n)
	}
	g.names[v] = name
}

// Name returns the display name of v, defaulting to its number.
func (g *Graph) Name(v int) string {
	if g.names != nil && g.names[v] != "" {
		return g.names[v]
	}
	return fmt.Sprintf("v%d", v)
}

// AddEdge inserts the undirected edge {u, v}. Adding a self loop or an edge
// touching an inactive vertex panics, as both indicate a logic error.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		panic("graph: self loop")
	}
	if !g.verts.Contains(u) || !g.verts.Contains(v) {
		panic("graph: edge endpoint not active")
	}
	g.adj[u].AddInPlace(v)
	g.adj[v].AddInPlace(u)
}

// RemoveEdge deletes the undirected edge {u, v} if present.
func (g *Graph) RemoveEdge(u, v int) {
	g.adj[u].RemoveInPlace(v)
	g.adj[v].RemoveInPlace(u)
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	return u != v && g.adj[u].Contains(v)
}

// Neighbors returns the open neighborhood N(v). The caller must not mutate it.
func (g *Graph) Neighbors(v int) vset.Set { return g.adj[v] }

// Degree returns |N(v)|.
func (g *Graph) Degree(v int) int { return g.adj[v].Len() }

// ClosedNeighborhood returns N[v] = N(v) ∪ {v}.
func (g *Graph) ClosedNeighborhood(v int) vset.Set {
	return g.adj[v].Add(v)
}

// NeighborsOfSet returns N(C) = (∪_{v∈C} N(v)) \ C over active vertices.
func (g *Graph) NeighborsOfSet(c vset.Set) vset.Set {
	out := vset.New(g.n)
	c.ForEach(func(v int) bool {
		out.UnionInPlace(g.adj[v])
		return true
	})
	out.DiffInPlace(c)
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{n: g.n, verts: g.verts.Clone(), adj: make([]vset.Set, g.n), names: g.names}
	for v := range g.adj {
		c.adj[v] = g.adj[v].Clone()
	}
	return c
}

// InducedSubgraph returns G[U], the subgraph induced by U ∩ V(G),
// over the same universe.
func (g *Graph) InducedSubgraph(u vset.Set) *Graph {
	active := g.verts.Intersect(u)
	c := &Graph{n: g.n, verts: active, adj: make([]vset.Set, g.n), names: g.names}
	for v := 0; v < g.n; v++ {
		if active.Contains(v) {
			c.adj[v] = g.adj[v].Intersect(active)
		} else {
			c.adj[v] = vset.New(g.n)
		}
	}
	return c
}

// RemoveVertices returns G \ U, the graph induced by V(G) \ U.
func (g *Graph) RemoveVertices(u vset.Set) *Graph {
	return g.InducedSubgraph(g.verts.Diff(u))
}

// Saturate returns a copy of g in which U has been made a clique
// (G ∪ K_U in the paper's notation).
func (g *Graph) Saturate(u vset.Set) *Graph {
	c := g.Clone()
	c.SaturateInPlace(u)
	return c
}

// SaturateInPlace makes U a clique of g.
func (g *Graph) SaturateInPlace(u vset.Set) {
	members := u.Intersect(g.verts)
	members.ForEach(func(v int) bool {
		g.adj[v].UnionInPlace(members)
		g.adj[v].RemoveInPlace(v)
		return true
	})
}

// Realization returns R(S, C) = G[S ∪ C] ∪ K_S, the realization of the
// block (S, C).
func (g *Graph) Realization(s, c vset.Set) *Graph {
	r := g.InducedSubgraph(s.Union(c))
	r.SaturateInPlace(s)
	return r
}

// IsClique reports whether U is a clique of g (every two active members
// adjacent).
func (g *Graph) IsClique(u vset.Set) bool {
	ok := true
	u.ForEach(func(v int) bool {
		rest := u.Diff(g.adj[v])
		rest.RemoveInPlace(v)
		if !rest.IsEmpty() {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// ComponentContaining returns the connected component of within that
// contains start, as a vertex set. within must contain start.
func (g *Graph) ComponentContaining(start int, within vset.Set) vset.Set {
	comp := vset.New(g.n)
	comp.AddInPlace(start)
	stack := []int{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		next := g.adj[v].Intersect(within)
		next.DiffInPlace(comp)
		next.ForEach(func(w int) bool {
			comp.AddInPlace(w)
			stack = append(stack, w)
			return true
		})
	}
	return comp
}

// ComponentsWithin returns the connected components of G[within ∩ V(G)].
func (g *Graph) ComponentsWithin(within vset.Set) []vset.Set {
	remaining := within.Intersect(g.verts)
	var comps []vset.Set
	for !remaining.IsEmpty() {
		comp := g.ComponentContaining(remaining.First(), remaining)
		comps = append(comps, comp)
		remaining.DiffInPlace(comp)
	}
	return comps
}

// ComponentsAvoiding returns the U-components of g: the connected
// components of G \ U.
func (g *Graph) ComponentsAvoiding(u vset.Set) []vset.Set {
	return g.ComponentsWithin(g.verts.Diff(u))
}

// IsConnected reports whether the active graph is connected.
// The empty graph counts as connected.
func (g *Graph) IsConnected() bool {
	return len(g.ComponentsWithin(g.verts)) <= 1
}

// Edges returns all edges {u, v} with u < v as pairs.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	g.verts.ForEach(func(u int) bool {
		g.adj[u].ForEach(func(v int) bool {
			if u < v {
				out = append(out, [2]int{u, v})
			}
			return true
		})
		return true
	})
	return out
}

// EdgeSetKey returns a canonical key identifying the edge set of g,
// suitable for deduplicating graphs over the same universe.
func (g *Graph) EdgeSetKey() string {
	var b strings.Builder
	for v := 0; v < g.n; v++ {
		b.WriteString(g.adj[v].Key())
	}
	return b.String()
}

// MissingPairsWithin returns the number of non-adjacent pairs inside U.
func (g *Graph) MissingPairsWithin(u vset.Set) int {
	members := u.Intersect(g.verts)
	k := members.Len()
	pairs := k * (k - 1) / 2
	present := 0
	members.ForEach(func(v int) bool {
		present += g.adj[v].IntersectionLen(members)
		return true
	})
	return pairs - present/2
}

// Union returns the graph with the union of vertices and edges of g and h,
// which must share a universe.
func (g *Graph) Union(h *Graph) *Graph {
	if g.n != h.n {
		panic("graph: universe mismatch in Union")
	}
	c := g.Clone()
	c.verts.UnionInPlace(h.verts)
	for v := 0; v < g.n; v++ {
		c.adj[v].UnionInPlace(h.adj[v])
	}
	return c
}

// String renders a compact description of the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d over universe %d)", g.NumVertices(), g.NumEdges(), g.n)
}
