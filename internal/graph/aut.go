package graph

import (
	"encoding/binary"
	"math/big"
	"sort"
)

// This file promotes the automorphisms the canonical-labeling search
// discovers as a by-product (canon.go) into a first-class group object:
// generators, the vertex-orbit partition they induce, and the exact group
// order computed by a textbook Schreier–Sims stabilizer chain (the
// orbit-stabilizer theorem applied level by level: |G| is the product of
// the base-point orbit sizes). The group powers orbit-reduced enumeration
// in internal/core: collapsing a ranked result stream modulo Aut(G) needs
// the generators (to decide orbit equivalence) and the order (to report
// orbit sizes via |orbit| = |Aut(G)| / |stabilizer|).

// AutGroup is (a subgroup of) the automorphism group of a graph, given by
// generators over the graph's universe {0..n-1}. When Exact is true the
// generators provably generate all of Aut(G); when false (the canonical
// search blew its node budget) they generate some subgroup — every
// reported automorphism is still genuine, so consumers degrade to less
// reduction, never to wrong answers.
type AutGroup struct {
	n          int
	generators [][]int
	exact      bool
	orbitRep   []int // vertex -> smallest vertex in its orbit
	order      *big.Int
}

// Automorphisms returns the automorphism group of g under the default
// canonical-search budget. Inactive vertices are fixed by every generator.
func (g *Graph) Automorphisms() *AutGroup {
	return g.AutomorphismsBudget(DefaultCanonBudget)
}

// AutomorphismsBudget is Automorphisms under an explicit search-tree node
// budget (<= 0 selects DefaultCanonBudget). On budget exhaustion the
// generators found so far are returned with Exact() false.
func (g *Graph) AutomorphismsBudget(maxNodes int) *AutGroup {
	_, _, aut, _ := g.CanonicalFormAutBudget(maxNodes)
	return aut
}

// newAutGroup packages generators over {0..n-1}: it builds the vertex
// orbit partition by union-find over the generator images and computes
// the group order with a Schreier–Sims stabilizer chain.
func newAutGroup(n int, gens [][]int, exact bool) *AutGroup {
	a := &AutGroup{n: n, generators: gens, exact: exact}

	parent := make([]int, n)
	for v := range parent {
		parent[v] = v
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, p := range gens {
		for v, pv := range p {
			ra, rb := find(v), find(pv)
			if ra != rb {
				parent[ra] = rb
			}
		}
	}
	// Normalize each orbit's representative to its smallest member, so
	// OrbitRep is a deterministic function of the group, not of the
	// union-find's merge order.
	minOf := make([]int, n)
	for v := range minOf {
		minOf[v] = n
	}
	for v := 0; v < n; v++ {
		r := find(v)
		if v < minOf[r] {
			minOf[r] = v
		}
	}
	a.orbitRep = make([]int, n)
	for v := 0; v < n; v++ {
		a.orbitRep[v] = minOf[find(v)]
	}

	chain := newStabChain(n)
	for _, p := range gens {
		chain.extend(0, p)
	}
	a.order = chain.order()
	return a
}

// Generators returns the generator permutations (not to be mutated).
func (a *AutGroup) Generators() [][]int { return a.generators }

// Exact reports whether the generators provably generate the full
// automorphism group (false after a canonical-search budget exhaustion).
func (a *AutGroup) Exact() bool { return a.exact }

// Order returns the order of the generated group.
func (a *AutGroup) Order() *big.Int { return new(big.Int).Set(a.order) }

// IsTrivial reports whether the generated group is the identity group.
func (a *AutGroup) IsTrivial() bool { return a.order.Cmp(big.NewInt(1)) == 0 }

// OrbitRep returns the smallest vertex in v's orbit under the group.
func (a *AutGroup) OrbitRep(v int) int { return a.orbitRep[v] }

// SameOrbit reports whether some group element maps u to v.
func (a *AutGroup) SameOrbit(u, v int) bool { return a.orbitRep[u] == a.orbitRep[v] }

// Orbits returns the vertex orbits, each sorted ascending, ordered by
// their smallest member.
func (a *AutGroup) Orbits() [][]int {
	byRep := make(map[int][]int)
	for v := 0; v < a.n; v++ {
		r := a.orbitRep[v]
		byRep[r] = append(byRep[r], v)
	}
	reps := make([]int, 0, len(byRep))
	for r := range byRep {
		reps = append(reps, r)
	}
	sort.Ints(reps)
	out := make([][]int, len(reps))
	for i, r := range reps {
		out[i] = byRep[r]
	}
	return out
}

// stabChain is a Schreier–Sims stabilizer chain: level i holds a base
// point, the orbit of that point under the generators of the i-th
// pointwise stabilizer, and a transversal (one coset representative per
// orbit point). The group order is the product of the orbit sizes —
// orbit-stabilizer, applied down the chain.
type stabChain struct {
	n      int
	levels []*stabLevel
}

type stabLevel struct {
	point int
	trans map[int][]int // orbit point -> rep u with u[point] = that point
	gens  [][]int
}

func newStabChain(n int) *stabChain { return &stabChain{n: n} }

func (c *stabChain) order() *big.Int {
	out := big.NewInt(1)
	for _, lvl := range c.levels {
		out.Mul(out, big.NewInt(int64(len(lvl.trans))))
	}
	return out
}

// extend adds p as a generator of the level-th stabilizer subgroup (and,
// transitively, sifts the resulting Schreier generators further down),
// keeping the chain strong: after every extend, order() is exact for the
// group generated by everything added so far.
func (c *stabChain) extend(level int, p []int) {
	if c.sifts(level, p) {
		return
	}
	if level == len(c.levels) {
		beta := -1
		for v, pv := range p {
			if pv != v {
				beta = v
				break
			}
		}
		id := make([]int, c.n)
		for v := range id {
			id[v] = v
		}
		c.levels = append(c.levels, &stabLevel{
			point: beta,
			trans: map[int][]int{beta: id},
		})
	}
	lvl := c.levels[level]
	lvl.gens = append(lvl.gens, p)

	// Re-close the orbit of the base point under all of this level's
	// generators, then sift every Schreier generator into the next level
	// (Schreier's lemma: they generate the point stabilizer).
	id := make([]int, c.n)
	for v := range id {
		id[v] = v
	}
	trans := map[int][]int{lvl.point: id}
	queue := []int{lvl.point}
	for len(queue) > 0 {
		gamma := queue[0]
		queue = queue[1:]
		tg := trans[gamma]
		for _, s := range lvl.gens {
			delta := s[gamma]
			if _, ok := trans[delta]; !ok {
				trans[delta] = permProduct(s, tg)
				queue = append(queue, delta)
			}
		}
	}
	lvl.trans = trans
	for gamma, tg := range trans {
		for _, s := range lvl.gens {
			u := permProduct(permInverse(trans[s[gamma]]), permProduct(s, tg))
			c.extend(level+1, u)
		}
	}
}

// sifts reports whether p is already a member of the group at the given
// chain level (it strips to the identity through the transversals).
func (c *stabChain) sifts(level int, p []int) bool {
	for i := level; i < len(c.levels); i++ {
		if permIsIdentity(p) {
			return true
		}
		lvl := c.levels[i]
		t, ok := lvl.trans[p[lvl.point]]
		if !ok {
			return false
		}
		p = permProduct(permInverse(t), p)
	}
	return permIsIdentity(p)
}

// permProduct returns a∘b (apply b, then a).
func permProduct(a, b []int) []int {
	out := make([]int, len(a))
	for v := range out {
		out[v] = a[b[v]]
	}
	return out
}

func permInverse(p []int) []int {
	out := make([]int, len(p))
	for v, pv := range p {
		out[pv] = v
	}
	return out
}

func permIsIdentity(p []int) bool {
	for v, pv := range p {
		if pv != v {
			return false
		}
	}
	return true
}

// CanonicalKeyCells computes an invariant key of g under the subgroup of
// vertex permutations that preserve the given ordered partition of the
// active vertices: two graphs (over equal universes, with cells of equal
// sizes in the same order) get equal keys iff some cell-preserving
// isomorphism maps one to the other. It also returns the group of
// cell-preserving automorphisms discovered by the search. This is the
// workhorse of orbit-reduced enumeration in internal/core, which encodes
// "same triangulation up to Aut(G)" and "same constraint set up to
// Aut(G)" questions as colored-graph canonical forms via gadget layers.
//
// Every active vertex must appear in exactly one cell; empty cells are
// permitted and ignored. When exact is false (budget exhaustion) the key
// is label-sensitive and must not be compared across labelings; aut still
// holds the genuine automorphisms found so far.
func (g *Graph) CanonicalKeyCells(cells [][]int, maxNodes int) (key string, aut *AutGroup, exact bool) {
	if maxNodes <= 0 {
		maxNodes = DefaultCanonBudget
	}
	verts := g.verts.Slice()
	idx := make(map[int]int, len(verts))
	for i, v := range verts {
		idx[v] = i
	}
	idxCells := make([][]int, 0, len(cells))
	sizes := make([]int, 0, len(cells))
	covered := 0
	for _, c := range cells {
		if len(c) == 0 {
			continue
		}
		ic := make([]int, len(c))
		for j, v := range c {
			i, ok := idx[v]
			if !ok {
				panic("graph: CanonicalKeyCells cell contains an inactive vertex")
			}
			ic[j] = i
		}
		covered += len(c)
		idxCells = append(idxCells, ic)
		sizes = append(sizes, len(c))
	}
	if covered != len(verts) {
		panic("graph: CanonicalKeyCells cells must partition the active vertices")
	}
	cs := newCanonSearch(g, verts, maxNodes)
	if len(verts) > 0 {
		cs.explore(idxCells, nil)
	} else {
		cs.haveBest = true
	}
	aut = cs.autGroup(g.n)
	if cs.stopped || !cs.haveBest {
		return "", aut, false
	}
	// The key embeds the cell-size signature: encodings are only
	// comparable between searches over the same partition shape.
	buf := make([]byte, 0, 8*(len(sizes)+len(cs.best))+8)
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], uint64(len(verts)))
	buf = append(buf, w[:]...)
	for _, s := range sizes {
		binary.LittleEndian.PutUint64(w[:], uint64(s))
		buf = append(buf, w[:]...)
	}
	for _, word := range cs.best {
		binary.LittleEndian.PutUint64(w[:], word)
		buf = append(buf, w[:]...)
	}
	return string(buf), aut, true
}
