package graph

import (
	"testing"

	"repro/internal/vset"
)

func TestFingerprintEqualGraphs(t *testing.T) {
	a := New(5)
	a.AddEdge(0, 1)
	a.AddEdge(1, 2)
	b := New(5)
	b.AddEdge(1, 2)
	b.AddEdge(0, 1)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same edge set, different fingerprints")
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	base := New(5)
	base.AddEdge(0, 1)

	edge := base.Clone()
	edge.AddEdge(2, 3)
	if base.Fingerprint() == edge.Fingerprint() {
		t.Fatal("extra edge not reflected in fingerprint")
	}

	bigger := New(6)
	bigger.AddEdge(0, 1)
	if base.Fingerprint() == bigger.Fingerprint() {
		t.Fatal("universe size not reflected in fingerprint")
	}

	sub := base.InducedSubgraph(vset.Of(5, 0, 1, 2))
	if base.Fingerprint() == sub.Fingerprint() {
		t.Fatal("active vertex set not reflected in fingerprint")
	}

	// Label sensitivity: the same path on shifted labels must differ.
	p1 := New(4)
	p1.AddEdge(0, 1)
	p1.AddEdge(1, 2)
	p2 := New(4)
	p2.AddEdge(1, 2)
	p2.AddEdge(2, 3)
	if p1.Fingerprint() == p2.Fingerprint() {
		t.Fatal("isomorphic but differently labeled graphs should differ")
	}
}

func TestFingerprintStable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 2)
	// Golden value: the fingerprint is a cross-process cache key, so it
	// must never change silently across refactors of Graph internals.
	const want = "9057a0155c8a428621930c3cc5df8118da27e060d6e1d4ccc53fe39802b8e298"
	if got := g.Fingerprint(); got != want {
		t.Fatalf("fingerprint drifted: got %s want %s", got, want)
	}
}
