package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ReadGraph6 parses one or more graphs in graph6 format (the compact
// ASCII encoding used by nauty, the House of Graphs and the PACE
// treewidth testbeds): N(n) followed by the upper triangle of the
// adjacency matrix in column order, six bits per printable character.
// One graph per line; blank lines and ">>graph6<<" headers are skipped.
func ReadGraph6(r io.Reader) ([]*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var out []*Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		text = strings.TrimPrefix(text, ">>graph6<<")
		if text == "" {
			continue
		}
		g, err := parseGraph6(text)
		if err != nil {
			return nil, fmt.Errorf("graph6 line %d: %v", line, err)
		}
		out = append(out, g)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteGraph6 writes g (over its full universe) as one graph6 line.
func WriteGraph6(w io.Writer, g *Graph) error {
	n := g.Universe()
	var b []byte
	switch {
	case n <= 62:
		b = append(b, byte(n+63))
	case n <= 258047:
		b = append(b, 126, byte((n>>12)&63)+63, byte((n>>6)&63)+63, byte(n&63)+63)
	default:
		return fmt.Errorf("graph6: %d vertices unsupported", n)
	}
	var bits []bool
	for v := 1; v < n; v++ {
		for u := 0; u < v; u++ {
			bits = append(bits, g.HasEdge(u, v))
		}
	}
	for i := 0; i < len(bits); i += 6 {
		var c byte
		for j := 0; j < 6; j++ {
			c <<= 1
			if i+j < len(bits) && bits[i+j] {
				c |= 1
			}
		}
		b = append(b, c+63)
	}
	b = append(b, '\n')
	_, err := w.Write(b)
	return err
}

// graph6Header decodes the N(n) vertex-count prefix of a graph6 line,
// returning n and the adjacency payload that follows it.
func graph6Header(data []byte) (int, []byte, error) {
	switch {
	case len(data) == 0:
		return 0, nil, fmt.Errorf("empty encoding")
	case data[0] != 126:
		return int(data[0] - 63), data[1:], nil
	case len(data) >= 4 && data[1] != 126:
		n := int(data[1]-63)<<12 | int(data[2]-63)<<6 | int(data[3]-63)
		return n, data[4:], nil
	default:
		return 0, nil, fmt.Errorf("unsupported large-n encoding")
	}
}

// Graph6HeaderN decodes just the claimed vertex count of one graph6 line,
// without touching the adjacency payload. Services use it to bound inputs
// before committing to the O(n²) decode.
func Graph6HeaderN(line string) (int, error) {
	line = strings.TrimSpace(line)
	line = strings.TrimPrefix(line, ">>graph6<<")
	n, _, err := graph6Header([]byte(line))
	return n, err
}

func parseGraph6(s string) (*Graph, error) {
	data := []byte(s)
	for _, c := range data {
		if c < 63 || c > 126 {
			return nil, fmt.Errorf("invalid character %q", c)
		}
	}
	n, data, err := graph6Header(data)
	if err != nil {
		return nil, err
	}
	// Validate the payload length before allocating the O(n²) adjacency
	// structure: the 4-byte large-n header can claim n in the hundreds of
	// thousands, and a service must not allocate gigabytes on the word of
	// a 20-byte request. 64-bit arithmetic so the product cannot wrap on
	// 32-bit platforms and skip the check.
	need := int64(n) * int64(n-1) / 2
	if int64(len(data))*6 < need {
		return nil, fmt.Errorf("truncated: need %d bits, have %d", need, len(data)*6)
	}
	g := New(n)
	bit := 0
	for v := 1; v < n; v++ {
		for u := 0; u < v; u++ {
			c := data[bit/6] - 63
			if c&(1<<uint(5-bit%6)) != 0 {
				g.AddEdge(u, v)
			}
			bit++
		}
	}
	return g, nil
}
