package mst

import (
	"math/rand"
	"sort"
	"testing"
)

func completeEdges(n int, w func(a, b int) int) []Edge {
	var edges []Edge
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			edges = append(edges, Edge{A: a, B: b, W: w(a, b)})
		}
	}
	return edges
}

func TestMaxBasic(t *testing.T) {
	// Triangle with weights 3, 2, 1: MST keeps 3 and 2.
	edges := []Edge{{0, 1, 3}, {1, 2, 2}, {0, 2, 1}}
	tree, w, ok := Max(3, edges, nil, nil)
	if !ok || w != 5 || len(tree) != 2 {
		t.Fatalf("tree=%v w=%d ok=%v", tree, w, ok)
	}
}

func TestMaxWithConstraints(t *testing.T) {
	edges := []Edge{{0, 1, 3}, {1, 2, 2}, {0, 2, 1}}
	// Force the weight-1 edge.
	tree, w, ok := Max(3, edges, []int{2}, nil)
	if !ok || w != 4 {
		t.Fatalf("include: tree=%v w=%d ok=%v", tree, w, ok)
	}
	// Exclude the two heavy edges: no spanning tree remains.
	if _, _, ok := Max(3, edges, nil, []int{0, 1}); ok {
		t.Fatalf("exclude should make it infeasible")
	}
	// Including a cycle fails.
	if _, _, ok := Max(3, edges, []int{0, 1, 2}, nil); ok {
		t.Fatalf("cyclic include should fail")
	}
	// Conflicting include+exclude fails.
	if _, _, ok := Max(3, edges, []int{0}, []int{0}); ok {
		t.Fatalf("include∩exclude should fail")
	}
}

func TestMaxDisconnected(t *testing.T) {
	if _, _, ok := Max(3, []Edge{{0, 1, 1}}, nil, nil); ok {
		t.Fatalf("disconnected graph has no spanning tree")
	}
	if _, _, ok := Max(0, nil, nil, nil); !ok {
		t.Fatalf("empty graph should trivially succeed")
	}
}

func TestEnumerateCayley(t *testing.T) {
	// Equal weights on K_n: all n^(n-2) spanning trees are maximum.
	for n, want := range map[int]int{2: 1, 3: 3, 4: 16, 5: 125} {
		got := CountAll(n, completeEdges(n, func(_, _ int) int { return 1 }))
		if got != want {
			t.Errorf("K%d: %d maximum spanning trees, want %d (Cayley)", n, got, want)
		}
	}
}

func TestEnumerateUnique(t *testing.T) {
	// Distinct weights: unique maximum spanning tree.
	edges := completeEdges(5, func(a, b int) int { return 10*a + b })
	if got := CountAll(5, edges); got != 1 {
		t.Fatalf("distinct weights: %d trees, want 1", got)
	}
}

// bruteForceMaxTrees counts maximum spanning trees by trying every subset
// of n-1 edges.
func bruteForceMaxTrees(n int, edges []Edge) int {
	if n <= 1 {
		return 1
	}
	best := -1
	count := 0
	var rec func(start int, chosen []int)
	rec = func(start int, chosen []int) {
		if len(chosen) == n-1 {
			uf := newUnionFind(n)
			w := 0
			for _, i := range chosen {
				if !uf.union(edges[i].A, edges[i].B) {
					return
				}
				w += edges[i].W
			}
			if w > best {
				best, count = w, 1
			} else if w == best {
				count++
			}
			return
		}
		for i := start; i < len(edges); i++ {
			rec(i+1, append(chosen, i))
		}
	}
	rec(0, nil)
	return count
}

func TestEnumerateMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(4)
		edges := completeEdges(n, func(_, _ int) int { return rng.Intn(3) })
		got := CountAll(n, edges)
		want := bruteForceMaxTrees(n, edges)
		if got != want {
			t.Fatalf("trial %d (n=%d): enumerated %d, brute force %d, edges=%v",
				trial, n, got, want, edges)
		}
	}
}

func TestEnumerateTreesAreValidAndDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	edges := completeEdges(6, func(_, _ int) int { return rng.Intn(2) })
	e := Enumerate(6, edges)
	seen := map[string]bool{}
	bestWeight := -1
	for {
		tree, ok := e.Next()
		if !ok {
			break
		}
		if len(tree) != 5 {
			t.Fatalf("tree has %d edges", len(tree))
		}
		uf := newUnionFind(6)
		w := 0
		for _, i := range tree {
			if !uf.union(edges[i].A, edges[i].B) {
				t.Fatalf("emitted edge set has a cycle")
			}
			w += edges[i].W
		}
		if bestWeight == -1 {
			bestWeight = w
		}
		if w != bestWeight {
			t.Fatalf("non-maximum tree emitted: %d vs %d", w, bestWeight)
		}
		key := treeKey(tree)
		if seen[key] {
			t.Fatalf("duplicate tree emitted")
		}
		seen[key] = true
	}
	if len(seen) == 0 {
		t.Fatalf("no trees emitted")
	}
}

func TestTreeKeyDistinct(t *testing.T) {
	a, b := []int{1, 2, 3}, []int{1, 2, 4}
	if treeKey(a) == treeKey(b) {
		t.Fatalf("key collision")
	}
	sort.Ints(a)
	if treeKey(a) != treeKey([]int{1, 2, 3}) {
		t.Fatalf("key not canonical")
	}
}
