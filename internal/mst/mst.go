// Package mst computes maximum-weight spanning trees and enumerates all
// of them (in the spirit of Yamada, Kataoka and Watanabe 2010, via
// Lawler-style include/exclude branching). The paper needs this because
// the clique trees of a chordal graph are exactly the maximum-weight
// spanning trees of its clique graph weighted by adhesion size (Jordan),
// which is how proper tree decompositions are enumerated from minimal
// triangulations (Proposition 6.1).
package mst

import (
	"sort"
)

// Edge is a weighted undirected edge between node indices A and B.
type Edge struct {
	A, B int
	W    int
}

// unionFind is a standard disjoint-set forest.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(x, y int) bool {
	rx, ry := uf.find(x), uf.find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	return true
}

// Max returns a maximum-weight spanning tree of the graph on n nodes with
// the given edges, honoring constraints: edges listed in include are
// forced into the tree and indices in exclude are forbidden. It reports
// ok=false when no spanning tree satisfies the constraints.
// include and exclude are indices into edges.
func Max(n int, edges []Edge, include, exclude []int) (tree []int, weight int, ok bool) {
	if n == 0 {
		return nil, 0, true
	}
	excluded := map[int]bool{}
	for _, i := range exclude {
		excluded[i] = true
	}
	uf := newUnionFind(n)
	var chosen []int
	for _, i := range include {
		if excluded[i] {
			return nil, 0, false
		}
		if !uf.union(edges[i].A, edges[i].B) {
			return nil, 0, false // included edges form a cycle
		}
		chosen = append(chosen, i)
		weight += edges[i].W
	}
	order := make([]int, 0, len(edges))
	for i := range edges {
		if !excluded[i] {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool { return edges[order[a]].W > edges[order[b]].W })
	for _, i := range order {
		if uf.union(edges[i].A, edges[i].B) {
			chosen = append(chosen, i)
			weight += edges[i].W
		}
	}
	if len(chosen) != n-1 {
		return nil, 0, false
	}
	sort.Ints(chosen)
	return chosen, weight, true
}

// Enumerator streams every maximum-weight spanning tree exactly once.
type Enumerator struct {
	n     int
	edges []Edge
	best  int
	queue []subproblem
	seen  map[string]bool
}

type subproblem struct {
	tree             []int
	weight           int
	include, exclude []int
}

// Enumerate prepares the enumeration of all maximum-weight spanning trees
// of the graph on n nodes. The graph may be disconnected only if n ≤ 1.
func Enumerate(n int, edges []Edge) *Enumerator {
	e := &Enumerator{n: n, edges: edges, seen: map[string]bool{}}
	if tree, w, ok := Max(n, edges, nil, nil); ok {
		e.best = w
		e.queue = append(e.queue, subproblem{tree: tree, weight: w})
	}
	return e
}

// Next returns the edge-index set of the next maximum spanning tree, or
// ok=false when all have been produced.
func (e *Enumerator) Next() ([]int, bool) {
	for len(e.queue) > 0 {
		sp := e.queue[len(e.queue)-1]
		e.queue = e.queue[:len(e.queue)-1]
		key := treeKey(sp.tree)
		if e.seen[key] {
			continue
		}
		e.seen[key] = true
		// Lawler split over the free edges of this tree.
		inSet := map[int]bool{}
		for _, i := range sp.include {
			inSet[i] = true
		}
		var free []int
		for _, i := range sp.tree {
			if !inSet[i] {
				free = append(free, i)
			}
		}
		include := append([]int(nil), sp.include...)
		for _, f := range free {
			exclude := append(append([]int(nil), sp.exclude...), f)
			if tree, w, ok := Max(e.n, e.edges, include, exclude); ok && w == e.best {
				e.queue = append(e.queue, subproblem{
					tree:    tree,
					weight:  w,
					include: append([]int(nil), include...),
					exclude: exclude,
				})
			}
			include = append(include, f)
		}
		return sp.tree, true
	}
	return nil, false
}

func treeKey(tree []int) string {
	b := make([]byte, 0, 4*len(tree))
	for _, i := range tree {
		b = append(b, byte(i), byte(i>>8), byte(i>>16), byte(i>>24))
	}
	return string(b)
}

// CountAll drains an enumeration and returns the number of maximum
// spanning trees (testing convenience).
func CountAll(n int, edges []Edge) int {
	e := Enumerate(n, edges)
	count := 0
	for {
		if _, ok := e.Next(); !ok {
			return count
		}
		count++
	}
}
