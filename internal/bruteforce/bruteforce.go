// Package bruteforce holds exponential-time reference implementations used
// as ground truth by the test suite: all minimal separators by subset
// enumeration, all minimal triangulations by exhausting elimination
// orderings, and all potential maximal cliques via the triangulations.
//
// None of these depend on the polynomial machinery they are used to verify:
// separators come straight from the definition, and triangulations come
// from the classical elimination-game fact that every minimal triangulation
// is the fill graph of each of its perfect elimination orderings.
package bruteforce

import (
	"sort"

	"repro/internal/chordal"
	"repro/internal/graph"
	"repro/internal/vset"
)

// AllMinimalSeparators enumerates MinSep(G) by checking every vertex
// subset against the full-component characterization: S is a minimal
// separator iff G \ S has at least two components whose neighborhood is
// exactly S. Exponential in |V|; intended for graphs with at most ~16
// active vertices. The empty separator is reported iff G is disconnected.
func AllMinimalSeparators(g *graph.Graph) []vset.Set {
	verts := g.Vertices().Slice()
	n := len(verts)
	var out []vset.Set
	for mask := 0; mask < 1<<uint(n); mask++ {
		s := vset.New(g.Universe())
		for i, v := range verts {
			if mask&(1<<uint(i)) != 0 {
				s.AddInPlace(v)
			}
		}
		if isMinimalSeparator(g, s) {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

func isMinimalSeparator(g *graph.Graph, s vset.Set) bool {
	full := 0
	for _, c := range g.ComponentsAvoiding(s) {
		if g.NeighborsOfSet(c).Equal(s) {
			full++
			if full >= 2 {
				return true
			}
		}
	}
	return false
}

// IsMinimalSeparator reports whether s is a minimal separator of g,
// via the two-full-components characterization.
func IsMinimalSeparator(g *graph.Graph, s vset.Set) bool {
	return isMinimalSeparator(g, s)
}

// EliminationFill plays the elimination game on g with the given order:
// vertices are removed in order and their current neighborhoods saturated.
// The returned graph is g plus all fill edges — always a triangulation.
func EliminationFill(g *graph.Graph, order []int) *graph.Graph {
	h := g.Clone()
	remaining := g.Vertices().Clone()
	for _, v := range order {
		nv := h.Neighbors(v).Intersect(remaining)
		h.SaturateInPlace(nv)
		remaining.RemoveInPlace(v)
	}
	return h
}

// AllMinimalTriangulations enumerates every minimal triangulation of g by
// running the elimination game over all permutations of the active
// vertices and keeping the fill-minimal outcomes. Correctness rests on the
// classical fact that each minimal triangulation H equals the elimination
// fill of g under any perfect elimination ordering of H, so the permutation
// sweep produces a superset of the minimal triangulations; non-minimal
// outcomes are then filtered by pairwise fill comparison. Factorial in |V|;
// intended for graphs with at most ~8 active vertices.
func AllMinimalTriangulations(g *graph.Graph) []*graph.Graph {
	verts := g.Vertices().Slice()
	results := map[string]*graph.Graph{}
	permute(verts, func(order []int) {
		h := EliminationFill(g, order)
		results[h.EdgeSetKey()] = h
	})
	// Filter to fill-minimal results.
	type cand struct {
		h    *graph.Graph
		fill map[[2]int]bool
	}
	cands := make([]cand, 0, len(results))
	for _, h := range results {
		f := map[[2]int]bool{}
		for _, e := range chordal.FillEdges(g, h) {
			f[e] = true
		}
		cands = append(cands, cand{h, f})
	}
	var out []*graph.Graph
	for i, ci := range cands {
		minimal := true
		for j, cj := range cands {
			if i == j || len(cj.fill) >= len(ci.fill) {
				continue
			}
			subset := true
			for e := range cj.fill {
				if !ci.fill[e] {
					subset = false
					break
				}
			}
			if subset {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, ci.h)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].EdgeSetKey() < out[j].EdgeSetKey() })
	return out
}

// AllPMCs enumerates the potential maximal cliques of g straight from the
// definition: the union of maximal-clique sets over all minimal
// triangulations.
func AllPMCs(g *graph.Graph) []vset.Set {
	seen := map[string]vset.Set{}
	for _, h := range AllMinimalTriangulations(g) {
		cliques, err := chordal.MaximalCliques(h)
		if err != nil {
			panic("bruteforce: minimal triangulation not chordal: " + err.Error())
		}
		for _, c := range cliques {
			seen[c.Key()] = c
		}
	}
	out := make([]vset.Set, 0, len(seen))
	for _, c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// CliqueMinimalSeparators returns the minimal separators of g that are
// cliques, straight from the two definitions. The empty separator is
// included exactly when g is disconnected.
func CliqueMinimalSeparators(g *graph.Graph) []vset.Set {
	var out []vset.Set
	for _, s := range AllMinimalSeparators(g) {
		if g.IsClique(s) {
			out = append(out, s)
		}
	}
	return out
}

// Atoms computes the atoms of g — the maximal connected induced subgraphs
// without a clique separator — by recursively splitting on clique minimal
// separators and keeping the maximal distinct outcomes. Leimer proved the
// atom set is independent of the splitting order, but the naive recursion
// can emit duplicates and subsumed fragments, so both are filtered. This
// is the ground truth internal/atoms is cross-checked against.
func Atoms(g *graph.Graph) []vset.Set {
	if g.NumVertices() == 0 {
		return nil
	}
	found := map[string]vset.Set{}
	var rec func(w vset.Set)
	rec = func(w vset.Set) {
		sub := g.InducedSubgraph(w)
		for _, s := range AllMinimalSeparators(sub) {
			if !sub.IsClique(s) {
				continue
			}
			for _, c := range sub.ComponentsAvoiding(s) {
				rec(c.Union(s))
			}
			return
		}
		found[w.Key()] = w
	}
	rec(g.Vertices())
	var out []vset.Set
	for _, w := range found {
		maximal := true
		for _, other := range found {
			if !w.Equal(other) && w.SubsetOf(other) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// IsMinimalTriangulation reports whether h is a minimal triangulation of g
// by comparing its fill set against every minimal triangulation of g.
func IsMinimalTriangulation(h, g *graph.Graph) bool {
	if !chordal.IsTriangulationOf(h, g) {
		return false
	}
	key := h.EdgeSetKey()
	for _, m := range AllMinimalTriangulations(g) {
		if m.EdgeSetKey() == key {
			return true
		}
	}
	return false
}

// CanonicalCode returns the exhaustive-permutation canonical code of g:
// the numerically smallest packing of the adjacency matrix's upper
// triangle (pairs in lexicographic position order) over ALL orderings of
// the active vertices. Two graphs with equal active-vertex counts have
// equal codes iff they are isomorphic — the ground truth the polynomial
// canonical labeling (graph.CanonicalForm) is oracle-tested against.
// Factorial in the active count; panics beyond 11 active vertices (the
// largest k with k(k-1)/2 ≤ 64 code bits).
func CanonicalCode(g *graph.Graph) uint64 {
	verts := g.Vertices().Slice()
	k := len(verts)
	if k > 11 {
		panic("bruteforce: CanonicalCode needs ≤ 11 active vertices")
	}
	adj := make([][]bool, k)
	for i, u := range verts {
		adj[i] = make([]bool, k)
		for j, v := range verts {
			adj[i][j] = g.HasEdge(u, v)
		}
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	best := ^uint64(0)
	first := true
	permute(idx, func(order []int) {
		var code uint64
		bit := 0
		for a := 0; a < k; a++ {
			ra := adj[order[a]]
			for b := a + 1; b < k; b++ {
				if ra[order[b]] {
					code |= 1 << uint(bit)
				}
				bit++
			}
		}
		if first || code < best {
			best = code
			first = false
		}
	})
	return best
}

// permute calls fn with every permutation of vs (Heap's algorithm).
// fn must not retain the slice.
func permute(vs []int, fn func([]int)) {
	n := len(vs)
	if n == 0 {
		fn(vs)
		return
	}
	c := make([]int, n)
	fn(vs)
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				vs[0], vs[i] = vs[i], vs[0]
			} else {
				vs[c[i]], vs[i] = vs[i], vs[c[i]]
			}
			fn(vs)
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
}

// Automorphisms enumerates every automorphism of g by checking all
// permutations of the active vertices against the adjacency relation.
// Permutations are returned over the full universe, fixing inactive
// vertices. Factorial in |V|; intended for graphs with at most ~8 active
// vertices. This is the ground truth for graph.Automorphisms.
func Automorphisms(g *graph.Graph) [][]int {
	verts := g.Vertices().Slice()
	k := len(verts)
	adj := make([][]bool, k)
	for i, u := range verts {
		adj[i] = make([]bool, k)
		for j, v := range verts {
			adj[i][j] = g.HasEdge(u, v)
		}
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	var out [][]int
	permute(idx, func(order []int) {
		for a := 0; a < k; a++ {
			for b := a + 1; b < k; b++ {
				if adj[a][b] != adj[order[a]][order[b]] {
					return
				}
			}
		}
		p := make([]int, g.Universe())
		for v := range p {
			p[v] = v
		}
		for i, j := range order {
			p[verts[i]] = verts[j]
		}
		out = append(out, p)
	})
	return out
}
