package bruteforce

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/vset"
)

func TestAllMinimalSeparatorsPaper(t *testing.T) {
	seps := AllMinimalSeparators(gen.PaperExample())
	if len(seps) != 3 {
		t.Fatalf("paper example: %d separators, want 3", len(seps))
	}
}

func TestAllMinimalSeparatorsFamilies(t *testing.T) {
	if got := AllMinimalSeparators(gen.Complete(4)); len(got) != 0 {
		t.Fatalf("K4: %v", got)
	}
	if got := AllMinimalSeparators(gen.Path(4)); len(got) != 2 {
		t.Fatalf("P4: %v", got)
	}
	// C5: every non-adjacent pair, 5 of them.
	if got := AllMinimalSeparators(gen.Cycle(5)); len(got) != 5 {
		t.Fatalf("C5: %d", len(got))
	}
}

func TestEliminationFill(t *testing.T) {
	// Eliminating the middle of a path creates a fill edge.
	g := gen.Path(3)
	h := EliminationFill(g, []int{1, 0, 2})
	if !h.HasEdge(0, 2) {
		t.Fatalf("expected fill edge 0-2")
	}
	// Eliminating leaves first adds nothing.
	h = EliminationFill(g, []int{0, 2, 1})
	if h.NumEdges() != 2 {
		t.Fatalf("leaf-first elimination added fill")
	}
}

func TestAllMinimalTriangulationsCycle(t *testing.T) {
	// Cn has Catalan(n-2) minimal triangulations.
	catalan := map[int]int{4: 2, 5: 5, 6: 14}
	for n, want := range catalan {
		got := AllMinimalTriangulations(gen.Cycle(n))
		if len(got) != want {
			t.Fatalf("C%d: %d minimal triangulations, want %d", n, len(got), want)
		}
	}
}

func TestAllMinimalTriangulationsChordal(t *testing.T) {
	got := AllMinimalTriangulations(gen.Path(5))
	if len(got) != 1 || got[0].EdgeSetKey() != gen.Path(5).EdgeSetKey() {
		t.Fatalf("chordal graph should be its own unique minimal triangulation")
	}
}

func TestAllPMCsPaper(t *testing.T) {
	if got := AllPMCs(gen.PaperExample()); len(got) != 6 {
		t.Fatalf("paper example: %d PMCs, want 6", len(got))
	}
}

func TestIsMinimalTriangulation(t *testing.T) {
	g := gen.PaperExample()
	h2 := g.Saturate(vset.Of(6, 0, 1))
	if !IsMinimalTriangulation(h2, g) {
		t.Fatalf("H2 rejected")
	}
	// Saturating everything is a triangulation but not minimal.
	full := gen.Complete(6)
	if IsMinimalTriangulation(full, g) {
		t.Fatalf("K6 accepted as minimal")
	}
	// Non-chordal graphs are not triangulations at all.
	if IsMinimalTriangulation(g, g) {
		t.Fatalf("non-chordal accepted")
	}
}

func TestIsMinimalSeparatorDirect(t *testing.T) {
	g := gen.PaperExample()
	if !IsMinimalSeparator(g, vset.Of(6, 1)) {
		t.Fatalf("S3 rejected")
	}
	if IsMinimalSeparator(g, vset.Of(6, 1, 3)) {
		t.Fatalf("{v,w1} accepted (not minimal: contains S3-like split?)")
	}
	if IsMinimalSeparator(g, vset.New(6)) {
		t.Fatalf("empty separator of a connected graph accepted")
	}
}

func TestPermuteCoversAll(t *testing.T) {
	seen := map[[3]int]bool{}
	permute([]int{0, 1, 2}, func(p []int) {
		seen[[3]int{p[0], p[1], p[2]}] = true
	})
	if len(seen) != 6 {
		t.Fatalf("permute visited %d of 6 permutations", len(seen))
	}
	count := 0
	permute(nil, func([]int) { count++ })
	if count != 1 {
		t.Fatalf("empty permutation count = %d", count)
	}
}

func TestDisconnectedOracle(t *testing.T) {
	g := graph.New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(3, 4)
	seps := AllMinimalSeparators(g)
	hasEmpty := false
	for _, s := range seps {
		if s.IsEmpty() {
			hasEmpty = true
		}
	}
	if !hasEmpty {
		t.Fatalf("disconnected graph: empty separator missing")
	}
	if got := AllMinimalTriangulations(g); len(got) != 1 {
		t.Fatalf("chordal disconnected graph: %d triangulations", len(got))
	}
}
