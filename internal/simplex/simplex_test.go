package simplex

import (
	"math"
	"math/rand"
	"testing"
)

func TestSimpleCover(t *testing.T) {
	// min x1+x2 s.t. x1 ≥ 1, x2 ≥ 1 → 2.
	val, x, status, err := Minimize(
		[]float64{1, 1},
		[][]float64{{1, 0}, {0, 1}},
		[]float64{1, 1},
	)
	if err != nil || status != Optimal {
		t.Fatalf("status=%v err=%v", status, err)
	}
	if math.Abs(val-2) > 1e-6 || math.Abs(x[0]-1) > 1e-6 {
		t.Fatalf("val=%v x=%v", val, x)
	}
}

func TestFractionalTriangle(t *testing.T) {
	// The classic fractional-cover example: a triangle hypergraph with
	// edges {a,b}, {b,c}, {a,c}. Covering {a,b,c} costs 3/2 fractionally.
	val, _, status, err := Minimize(
		[]float64{1, 1, 1},
		[][]float64{
			{1, 0, 1}, // a in e1, e3
			{1, 1, 0}, // b in e1, e2
			{0, 1, 1}, // c in e2, e3
		},
		[]float64{1, 1, 1},
	)
	if err != nil || status != Optimal {
		t.Fatalf("status=%v err=%v", status, err)
	}
	if math.Abs(val-1.5) > 1e-6 {
		t.Fatalf("triangle cover = %v, want 1.5", val)
	}
}

func TestInfeasible(t *testing.T) {
	// x1 ≥ 1 and -x1 ≥ 0 with x1 ≥ 0 → infeasible.
	_, _, status, err := Minimize(
		[]float64{1},
		[][]float64{{1}, {-1}},
		[]float64{1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if status != Infeasible {
		t.Fatalf("status = %v, want Infeasible", status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x1 s.t. x1 ≥ 0 → unbounded below.
	_, _, status, err := Minimize(
		[]float64{-1},
		[][]float64{{1}},
		[]float64{0},
	)
	if err != nil {
		t.Fatal(err)
	}
	if status != Unbounded {
		t.Fatalf("status = %v, want Unbounded", status)
	}
}

func TestBadShape(t *testing.T) {
	if _, _, _, err := Minimize([]float64{1}, [][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatalf("bad shape accepted")
	}
	if _, _, _, err := Minimize([]float64{1}, [][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatalf("bad rhs accepted")
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. -x ≥ -5 (i.e. x ≤ 5), x ≥ 2 → optimum 2.
	val, _, status, err := Minimize(
		[]float64{1},
		[][]float64{{-1}, {1}},
		[]float64{-5, 2},
	)
	if err != nil || status != Optimal {
		t.Fatalf("status=%v err=%v", status, err)
	}
	if math.Abs(val-2) > 1e-6 {
		t.Fatalf("val = %v, want 2", val)
	}
}

// TestAgainstBruteForceVertexCovers compares LP optima of random set-cover
// LPs against an exhaustive search over a fine grid of vertex supports —
// specifically, we verify the LP value lower-bounds every integral cover
// and is at least half of the best integral cover (LP duality bound for
// covers with elements of frequency ≤ 2 gives factor 2; we use random
// instances where each element occurs ≥ 1 time and only check bounds).
func TestAgainstIntegralBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		elems := 1 + rng.Intn(5)
		sets := 1 + rng.Intn(6)
		a := make([][]float64, elems)
		covered := make([]bool, elems)
		for i := range a {
			a[i] = make([]float64, sets)
		}
		for j := 0; j < sets; j++ {
			for i := 0; i < elems; i++ {
				if rng.Intn(2) == 0 {
					a[i][j] = 1
					covered[i] = true
				}
			}
		}
		allCovered := true
		for _, c := range covered {
			allCovered = allCovered && c
		}
		c := make([]float64, sets)
		b := make([]float64, elems)
		for j := range c {
			c[j] = 1
		}
		for i := range b {
			b[i] = 1
		}
		val, x, status, err := Minimize(c, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !allCovered {
			if status == Optimal {
				t.Fatalf("uncoverable instance reported optimal")
			}
			continue
		}
		if status != Optimal {
			t.Fatalf("coverable instance not optimal: %v", status)
		}
		// Integral optimum by brute force.
		best := math.Inf(1)
		for mask := 0; mask < 1<<uint(sets); mask++ {
			ok := true
			for i := 0; i < elems; i++ {
				row := 0.0
				for j := 0; j < sets; j++ {
					if mask&(1<<uint(j)) != 0 {
						row += a[i][j]
					}
				}
				if row < 1 {
					ok = false
					break
				}
			}
			if ok {
				if cnt := float64(popcount(mask)); cnt < best {
					best = cnt
				}
			}
		}
		if val > best+1e-6 {
			t.Fatalf("LP value %v exceeds integral optimum %v", val, best)
		}
		// Solution must be feasible.
		for i := 0; i < elems; i++ {
			row := 0.0
			for j := 0; j < sets; j++ {
				row += a[i][j] * x[j]
			}
			if row < 1-1e-6 {
				t.Fatalf("LP solution infeasible at row %d: %v", i, row)
			}
		}
	}
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
