// Package simplex implements a small dense-simplex solver for linear
// programs in the form
//
//	minimize    cᵀx
//	subject to  Ax ≥ b, x ≥ 0,
//
// which is exactly the shape of the fractional edge-cover LPs behind
// fractional hypertree width (Grohe–Marx). The implementation is the
// standard two-phase primal simplex on a dense tableau with Bland's rule,
// which cannot cycle; problem sizes here are tiny (bags and hyperedges),
// so numerical sophistication is deliberately traded for clarity.
package simplex

import (
	"errors"
	"math"
)

// Status describes the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

// ErrBadShape reports inconsistent matrix dimensions.
var ErrBadShape = errors.New("simplex: inconsistent dimensions")

const eps = 1e-9

// Minimize solves min cᵀx s.t. Ax ≥ b, x ≥ 0 and returns the optimal
// value, an optimal x, and a status. A has one row per constraint.
func Minimize(c []float64, a [][]float64, b []float64) (float64, []float64, Status, error) {
	m, n := len(a), len(c)
	if len(b) != m {
		return 0, nil, Infeasible, ErrBadShape
	}
	for _, row := range a {
		if len(row) != n {
			return 0, nil, Infeasible, ErrBadShape
		}
	}
	// Convert Ax ≥ b into equalities with surplus variables s ≥ 0:
	// Ax - s = b. Rows with negative b are negated first so b ≥ 0,
	// then artificial variables give a starting basis for phase one.
	total := n + m // structural + surplus
	rows := make([][]float64, m)
	rhs := make([]float64, m)
	for i := 0; i < m; i++ {
		rows[i] = make([]float64, total)
		copy(rows[i], a[i])
		rows[i][n+i] = -1
		rhs[i] = b[i]
		if rhs[i] < 0 {
			for j := range rows[i] {
				rows[i][j] = -rows[i][j]
			}
			rhs[i] = -rhs[i]
		}
	}
	t := newTableau(rows, rhs, total)

	// Phase one: minimize the sum of artificial variables.
	phase1 := make([]float64, total+m)
	for j := total; j < total+m; j++ {
		phase1[j] = 1
	}
	t.setObjective(phase1)
	if status := t.iterate(); status == Unbounded {
		return 0, nil, Infeasible, nil // cannot happen: phase one is bounded below by 0
	}
	if t.objectiveValue() > eps {
		return 0, nil, Infeasible, nil
	}
	t.driveOutArtificials()
	t.active = total // phase two: artificial columns may not re-enter

	// Phase two: the real objective over structural + surplus variables.
	phase2 := make([]float64, total+m)
	copy(phase2, c)
	t.setObjective(phase2)
	if status := t.iterate(); status == Unbounded {
		return 0, nil, Unbounded, nil
	}
	x := make([]float64, n)
	sol := t.solution()
	copy(x, sol[:n])
	return t.objectiveValue(), x, Optimal, nil
}

// tableau is a dense simplex tableau with an explicit artificial block.
type tableau struct {
	m, vars int // constraints, non-artificial variables
	active  int // columns eligible to enter the basis
	a       [][]float64
	rhs     []float64
	obj     []float64
	objRHS  float64
	basis   []int
}

func newTableau(rows [][]float64, rhs []float64, vars int) *tableau {
	m := len(rows)
	t := &tableau{m: m, vars: vars, active: vars + m, rhs: rhs, basis: make([]int, m)}
	t.a = make([][]float64, m)
	for i := range rows {
		t.a[i] = make([]float64, vars+m)
		copy(t.a[i], rows[i])
		t.a[i][vars+i] = 1 // artificial
		t.basis[i] = vars + i
	}
	return t
}

// setObjective installs a fresh objective row and prices out the basis.
func (t *tableau) setObjective(c []float64) {
	t.obj = append([]float64(nil), c...)
	t.objRHS = 0
	for i, bi := range t.basis {
		if t.obj[bi] != 0 {
			t.pivotObjective(i, bi)
		}
	}
}

func (t *tableau) pivotObjective(row, col int) {
	factor := t.obj[col]
	for j := range t.obj {
		t.obj[j] -= factor * t.a[row][j]
	}
	t.objRHS -= factor * t.rhs[row]
}

// iterate runs simplex pivots with Bland's anti-cycling rule until
// optimality or unboundedness.
func (t *tableau) iterate() Status {
	for {
		// Entering variable: smallest eligible index with negative
		// reduced cost (Bland's rule). Artificial columns are eligible
		// only during phase one.
		col := -1
		for j := 0; j < t.active; j++ {
			if t.obj[j] < -eps {
				col = j
				break
			}
		}
		if col == -1 {
			return Optimal
		}
		// Leaving variable: minimum ratio, ties by smallest basis index.
		row := -1
		best := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i][col] > eps {
				ratio := t.rhs[i] / t.a[i][col]
				if ratio < best-eps || (ratio < best+eps && (row == -1 || t.basis[i] < t.basis[row])) {
					best = ratio
					row = i
				}
			}
		}
		if row == -1 {
			return Unbounded
		}
		t.pivot(row, col)
	}
}

func (t *tableau) pivot(row, col int) {
	p := t.a[row][col]
	for j := range t.a[row] {
		t.a[row][j] /= p
	}
	t.rhs[row] /= p
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		for j := range t.a[i] {
			t.a[i][j] -= f * t.a[row][j]
		}
		t.rhs[i] -= f * t.rhs[row]
	}
	f := t.obj[col]
	if f != 0 {
		for j := range t.obj {
			t.obj[j] -= f * t.a[row][j]
		}
		t.objRHS -= f * t.rhs[row]
	}
	t.basis[row] = col
}

// driveOutArtificials pivots any artificial variable still basic (at zero
// level after a successful phase one) out of the basis where possible.
func (t *tableau) driveOutArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.vars {
			continue
		}
		for j := 0; j < t.vars; j++ {
			if math.Abs(t.a[i][j]) > eps {
				t.pivot(i, j)
				break
			}
		}
	}
}

func (t *tableau) objectiveValue() float64 { return -t.objRHS }

func (t *tableau) solution() []float64 {
	x := make([]float64, t.vars+t.m)
	for i, bi := range t.basis {
		x[bi] = t.rhs[i]
	}
	return x
}
