package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"testing"
)

// TestOrbitModeEndToEnd drives orbit-reduced enumeration over the wire on
// C6 (|Aut| = 12, 14 minimal triangulations in 3 orbits: two of size 6 —
// the fans and the snakes — and the triforce pair of size 2) and checks
// the reduced and unreduced requests on the same graph neither alias a
// stream-cache entry nor leak each other's results.
func TestOrbitModeEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t, Config{PageSize: 50})
	g6 := cycleGraph6(t, 6)

	resp, _ := postEnumerate(t, ts, fmt.Sprintf(`{"graph6": %q, "cost": "fill", "orbits": true}`, g6))
	if !resp.Orbits {
		t.Fatal("orbit request not marked orbits on the wire")
	}
	if !resp.Done {
		t.Fatalf("3 orbit representatives must fit one page of 50 (got %d results, done=%v)", len(resp.Results), resp.Done)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("C6 orbit stream: got %d representatives, want 3", len(resp.Results))
	}
	var sizes []int64
	var sum int64
	for _, r := range resp.Results {
		if r.OrbitSize < 1 {
			t.Fatalf("orbit representative without orbit_size: %+v", r)
		}
		sizes = append(sizes, r.OrbitSize)
		sum += r.OrbitSize
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	if sum != 14 || fmt.Sprint(sizes) != "[2 6 6]" {
		t.Fatalf("C6 orbit sizes %v (Σ=%d), want [2 6 6] (Σ=14)", sizes, sum)
	}

	// The unreduced request on the same (graph, cost) must get its own
	// stream — 14 plain results, no orbit_size stamps.
	plain, _ := postEnumerate(t, ts, fmt.Sprintf(`{"graph6": %q, "cost": "fill"}`, g6))
	if plain.Orbits {
		t.Fatal("plain request marked orbits")
	}
	if !plain.Done || len(plain.Results) != 14 {
		t.Fatalf("plain C6 stream: got %d results (done=%v), want all 14", len(plain.Results), plain.Done)
	}
	for _, r := range plain.Results {
		if r.OrbitSize != 0 {
			t.Fatalf("plain result carries orbit_size %d", r.OrbitSize)
		}
	}
	if got := srv.Streams().Len(); got != 2 {
		t.Fatalf("want 2 distinct stream entries (orbit + plain), got %d", got)
	}

	stats := getStats(t, ts)
	if stats.Orbits.DefaultOn {
		t.Fatal("stats claim orbit mode is on by default")
	}
	if stats.Orbits.Requests != 1 {
		t.Fatalf("orbit request counter: want 1, got %d", stats.Orbits.Requests)
	}
	if stats.Orbits.Representatives != 3 || stats.Orbits.MaxGroupOrder != 12 {
		t.Fatalf("orbit core counters: %+v", stats.Orbits)
	}
}

// TestOrbitKnobResolutionAndNDJSON pins the resolution order (?orbits=
// beats the body field beats Config.DefaultOrbits) on a default-on server
// and the NDJSON path's orbit_size stamps. C5's 5 fan triangulations form
// a single orbit of size 5.
func TestOrbitKnobResolutionAndNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultOrbits: true, PageSize: 20})
	g6 := cycleGraph6(t, 5)

	// Server default applies when the request says nothing.
	resp, _ := postEnumerate(t, ts, fmt.Sprintf(`{"graph6": %q, "cost": "fill"}`, g6))
	if !resp.Orbits || len(resp.Results) != 1 || resp.Results[0].OrbitSize != 5 {
		t.Fatalf("default-on server: orbits=%v, %d results, first orbit_size=%d; want one size-5 representative",
			resp.Orbits, len(resp.Results), firstOrbitSize(resp))
	}

	// The body field overrides the default.
	plain, _ := postEnumerate(t, ts, fmt.Sprintf(`{"graph6": %q, "cost": "fill", "orbits": false}`, g6))
	if plain.Orbits || len(plain.Results) != 5 {
		t.Fatalf("body orbits=false: orbits=%v, %d results; want 5 unreduced", plain.Orbits, len(plain.Results))
	}

	// The query knob overrides the body field.
	httpResp, err := http.Post(ts.URL+"/v1/enumerate?orbits=1", "application/json",
		strings.NewReader(fmt.Sprintf(`{"graph6": %q, "cost": "fill", "orbits": false}`, g6)))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var knob EnumerateResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&knob); err != nil {
		t.Fatal(err)
	}
	if !knob.Orbits || len(knob.Results) != 1 {
		t.Fatalf("?orbits=1 over body false: orbits=%v, %d results; want 1 representative", knob.Orbits, len(knob.Results))
	}

	// A malformed knob is a client error.
	status, body := postRaw(t, ts.URL+"/v1/enumerate?orbits=sideways", fmt.Sprintf(`{"graph6": %q}`, g6))
	if status != http.StatusBadRequest {
		t.Fatalf("bad ?orbits=: want 400, got %d: %s", status, body)
	}

	// NDJSON streaming carries the same stamps line by line.
	streamResp, err := http.Post(ts.URL+"/v1/enumerate", "application/json",
		strings.NewReader(fmt.Sprintf(`{"graph6": %q, "cost": "fill", "stream": true}`, g6)))
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	data, err := io.ReadAll(streamResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 { // 1 representative + summary
		t.Fatalf("orbit NDJSON: want 2 lines, got %d: %s", len(lines), data)
	}
	var line TriangulationJSON
	if err := json.Unmarshal([]byte(lines[0]), &line); err != nil {
		t.Fatal(err)
	}
	if line.OrbitSize != 5 {
		t.Fatalf("NDJSON line orbit_size %d, want 5: %s", line.OrbitSize, lines[0])
	}
}

func firstOrbitSize(resp *EnumerateResponse) int64 {
	if len(resp.Results) == 0 {
		return -1
	}
	return resp.Results[0].OrbitSize
}

// TestOrbitCostGating pins the label-invariance gate: orbit mode with a
// label-sensitive cost is a 400, while uniform statespace domains pass.
func TestOrbitCostGating(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	status, body := postRaw(t, ts.URL+"/v1/enumerate",
		`{"hyperedges": [[0,1,2],[2,3],[3,4,0]], "cost": "hypertree", "orbits": true}`)
	if status != http.StatusBadRequest || !strings.Contains(body, "label-invariant") {
		t.Fatalf("orbits+hypertree: want 400 naming the invariance gate, got %d: %s", status, body)
	}

	status, body = postRaw(t, ts.URL+"/v1/enumerate",
		`{"edges": [[0,1],[1,2],[2,3],[3,4],[4,0]], "cost": "statespace", "domains": [2,2,3,2,2], "orbits": true}`)
	if status != http.StatusBadRequest || !strings.Contains(body, "label-invariant") {
		t.Fatalf("orbits+non-uniform domains: want 400, got %d: %s", status, body)
	}

	resp, _ := postEnumerate(t, ts,
		`{"edges": [[0,1],[1,2],[2,3],[3,4],[4,0]], "cost": "statespace", "domains": [3,3,3,3,3], "orbits": true, "page_size": 20}`)
	if !resp.Orbits || len(resp.Results) != 1 || resp.Results[0].OrbitSize != 5 {
		t.Fatalf("orbits+uniform domains: orbits=%v, %d results, orbit_size=%d; want one size-5 representative",
			resp.Orbits, len(resp.Results), firstOrbitSize(resp))
	}
}
