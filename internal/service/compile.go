package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/hyper"
)

// CompiledProblem is the output of the problem-compilation layer: one
// submitted problem — whatever endpoint it arrived on — normalized into
// the form every downstream stage consumes. Graph building, canonical
// relabeling, cost construction, knob resolution and cache keying all
// happen exactly once, in compileProblem, so /v1/enumerate, /v1/batch,
// /v1/hypergraph and /v1/csp cannot drift apart in how they admit,
// cache or serve a problem.
type CompiledProblem struct {
	// ClientGraph is the graph in the client's own labeling; every wire
	// result is expressed over it.
	ClientGraph *graph.Graph
	// Graph is the graph the engines solve: the canonical form when
	// canonical keying is on and the labeling search succeeded, otherwise
	// ClientGraph itself.
	Graph *graph.Graph
	// Hyper is the (canonically relabeled) hypergraph behind hyperedge
	// input; nil for plain-graph problems.
	Hyper *hyper.Hypergraph
	// Cost ranks the enumeration; CostKey is its contribution to the
	// solver/stream cache key (parameterized costs fold their parameters
	// in — see buildCost).
	Cost    cost.Cost
	CostKey string
	// Bound is the width bound (-1 = unbounded).
	Bound int
	// PageSize is the resolved page size for paged responses.
	PageSize int
	// Kind is the requested backend; BackendAuto until ResolveBackend runs
	// the separator probe (post-admission — the probe is real work).
	// AutoRouted records that the probe, not the client, made the choice.
	Kind       core.BackendKind
	AutoRouted bool
	// Orbits selects orbit-reduced enumeration (gated on label-invariant
	// costs at compile time).
	Orbits bool
	// Diverse selects the diverse-portfolio response mode: pick Diverse
	// results from the first Window ranks maximizing pairwise fill
	// distance (0 = normal paging). Window is resolved (never 0 when
	// Diverse > 0).
	Diverse int
	Window  int
	// FromCanon maps canonical labels back to the client's labeling on
	// egress; nil when no relabeling is needed.
	FromCanon []int
	// Key identifies the solver/stream serving this problem. The Backend
	// and Orbits fields are finalized by the server's buildBackend once
	// auto routing has resolved.
	Key SolverKey
}

// knob resolves one per-request serving knob with the uniform precedence
// every endpoint shares: query parameter > request body field > server
// default. body is nil when the request body left the knob unset; parse
// converts the query string form (its error is rewritten into the
// canonical "bad <name>" client error).
func knob[T any](q url.Values, name string, parse func(string) (T, error), body *T, def T) (T, error) {
	if raw := q.Get(name); raw != "" {
		v, err := parse(raw)
		if err != nil {
			var zero T
			return zero, fmt.Errorf("bad %s %q", name, raw)
		}
		return v, nil
	}
	if body != nil {
		return *body, nil
	}
	return def, nil
}

// optString adapts "empty means unset" string request fields to knob.
func optString(s string) *string {
	if s == "" {
		return nil
	}
	return &s
}

// optInt adapts "zero means unset" int request fields to knob.
func optInt(n int) *int {
	if n == 0 {
		return nil
	}
	return &n
}

// parseString is the identity parse for string knobs.
func parseString(s string) (string, error) { return s, nil }

// maxDiverseWindow caps the ?diverse= candidate window: the diverse
// response materializes (and holds) this many ranks, so it needs a hard
// ceiling just like page_size has.
const maxDiverseWindow = 4096

// compileProblem runs the whole pre-admission ingress pipeline for one
// problem: graph building and size limits, canonical relabeling of the
// graph and every label-carrying cost parameter, cost construction and
// cache-key derivation, and resolution of every serving knob (backend,
// orbits, diverse, page size, bound) under the query > body > default
// precedence. Every returned error is a client error (HTTP 400).
//
// The returned problem's Key carries the requested backend kind; when
// that is BackendAuto the server resolves it post-admission (see
// Server.buildBackend) and finalizes the key then.
func (s *Server) compileProblem(req *EnumerateRequest, q url.Values) (*CompiledProblem, error) {
	g, h, err := buildGraph(req, s.cfg.MaxVertices)
	if err != nil {
		return nil, err
	}
	// Canonical keying (the heart of the serving tier's caches): relabel
	// the graph — and every label-carrying cost parameter — into its
	// canonical form before the cost is built and the solver key is
	// derived, so that isomorphic submissions with different vertex
	// numberings share one solver and one materialized stream. FromCanon
	// is the per-request egress permutation mapping the shared stream's
	// canonical labels back to this client's labels; nil means no
	// relabeling is needed.
	cp := &CompiledProblem{ClientGraph: g, Graph: g, Hyper: h}
	if !s.cfg.NoCanon {
		cp.Graph, cp.Hyper, cp.FromCanon = s.canonicalize(req, g, h)
	}
	c, costKey, err := buildCost(req, cp.Graph, cp.Hyper)
	if err != nil {
		return nil, err
	}
	cp.Cost, cp.CostKey = c, costKey
	cp.Bound = -1
	if req.Bound != nil {
		if *req.Bound < 0 {
			return nil, errors.New("bound must be non-negative")
		}
		cp.Bound = *req.Bound
	}
	if cp.PageSize, err = clampPageSize(req.PageSize, s.cfg.PageSize); err != nil {
		return nil, err
	}
	backendName, err := knob(q, "backend", parseString, optString(req.Backend), s.cfg.DefaultBackend)
	if err != nil {
		return nil, err
	}
	kind, ok := core.ParseBackendKind(backendName)
	if !ok {
		return nil, fmt.Errorf("unknown backend %q (want auto, dp, mis or mis-scored)", backendName)
	}
	cp.Kind = kind
	if cp.Orbits, err = knob(q, "orbits", strconv.ParseBool, req.Orbits, s.cfg.DefaultOrbits); err != nil {
		return nil, err
	}
	if cp.Orbits {
		if err := orbitCostCheck(req); err != nil {
			return nil, err
		}
	}
	if cp.Diverse, err = knob(q, "diverse", strconv.Atoi, optInt(req.Diverse), 0); err != nil {
		return nil, err
	}
	if cp.Diverse < 0 {
		return nil, errors.New("diverse must be non-negative")
	}
	if cp.Window, err = knob(q, "window", strconv.Atoi, optInt(req.Window), 0); err != nil {
		return nil, err
	}
	if cp.Window != 0 && cp.Diverse == 0 {
		return nil, errors.New("window requires diverse mode (?diverse=k)")
	}
	if cp.Diverse > 0 {
		if req.Stream {
			return nil, errors.New("diverse is a one-shot paged response mode; it cannot be combined with stream")
		}
		if cp.Window <= 0 {
			cp.Window = 4 * cp.Diverse
		}
		if cp.Window < cp.Diverse {
			return nil, errors.New("window must be at least diverse")
		}
		if cp.Window > maxDiverseWindow {
			return nil, fmt.Errorf("window %d exceeds the cap %d", cp.Window, maxDiverseWindow)
		}
	}
	cp.Key = SolverKey{
		Fingerprint: cp.Graph.Fingerprint(),
		Cost:        cp.CostKey,
		Bound:       cp.Bound,
		Backend:     string(cp.Kind),
		Orbits:      cp.Orbits,
	}
	return cp, nil
}

// buildBackend is the post-admission half of the pipeline: it resolves
// auto backend routing (the separator probe is real work, so it runs
// under an admission slot), obtains the enumeration engine — the pooled,
// singleflighted DP solver or an O(1) MIS construction — wraps it for
// orbit reduction, finalizes the cache key, and attributes the
// canonical-keying cache hit. It returns the engine, the DP solver when
// one serves the request (for SolverInfo), and whether the engine was
// served without starting a new initialization. On error the returned
// status is the HTTP status to report (503 for cancelled or
// out-of-budget initialization, 500 for genuine server bugs).
func (s *Server) buildBackend(ctx context.Context, cp *CompiledProblem) (core.Backend, *core.Solver, bool, int, error) {
	if cp.AutoRouted = cp.Kind == core.BackendAuto; cp.AutoRouted {
		cp.Kind = core.SelectBackend(ctx, cp.Graph, cp.Kind, s.cfg.BackendProbeBudget)
	}

	var backend core.Backend
	var dpSolver *core.Solver
	var hit bool
	if cp.Kind == core.BackendDP {
		key := SolverKey{Fingerprint: cp.Graph.Fingerprint(), Cost: cp.CostKey, Bound: cp.Bound, Backend: string(core.BackendDP)}
		solver, poolHit, err := s.pool.Get(ctx, key, func(bctx context.Context) (*core.Solver, error) {
			bctx, cancel := context.WithTimeout(bctx, s.cfg.InitTimeout)
			defer cancel()
			opts := core.Options{NoDecompose: s.cfg.NoDecompose}
			if cp.Bound >= 0 {
				b := cp.Bound
				opts.WidthBound = &b
			}
			solver, err := core.New(bctx, cp.Graph, cp.Cost, opts)
			if err != nil {
				return nil, err
			}
			// Force the decomposed solver's lazy per-atom initialization here,
			// inside the timeout-bounded singleflight build, so a huge atom
			// cannot smuggle unbounded init work past InitTimeout into the
			// first paging call.
			if err := solver.Prepare(bctx); err != nil {
				return nil, err
			}
			// Applied inside the build, before the solver is published to any
			// other waiter.
			solver.SetFullResolve(s.cfg.FullResolve)
			return solver, nil
		})
		if err != nil {
			// Cancelled or out-of-budget initialization is a capacity signal
			// (503, as documented), not a server bug (500). The error names
			// the escape hatch: the MIS backend has no init to time out.
			status := http.StatusInternalServerError
			if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				status = http.StatusServiceUnavailable
			}
			return nil, nil, false, status, fmt.Errorf("solver initialization failed (consider ?backend=mis): %v", err)
		}
		backend, dpSolver, hit = solver, solver, poolHit
	} else {
		// The MIS backends are O(1) to construct — the separator stream and
		// the independent-set walk start lazily on the first result — so
		// there is nothing to pool and no init budget to enforce. The
		// shared-stream cache still dedups the enumeration work across
		// consumers by key.
		opts := core.MISOptions{Scored: cp.Kind == core.BackendMISScored}
		if cp.Bound >= 0 {
			b := cp.Bound
			opts.WidthBound = &b
		}
		backend = core.NewMISBackend(cp.Graph, cp.Cost, opts)
	}
	s.backends.count(cp.Kind, cp.AutoRouted)
	cp.Key = SolverKey{Fingerprint: cp.Graph.Fingerprint(), Cost: cp.CostKey, Bound: cp.Bound, Backend: string(cp.Kind)}
	if cp.Orbits {
		// The orbit wrapper goes around whatever engine was resolved, and
		// the key gains the Orbits bit so the shared stream cache never
		// serves a reduced sequence to an unreduced consumer or vice versa.
		// The pooled DP solver itself stays shared across both modes — all
		// orbit state lives in the wrapper (and its per-enumeration filter).
		s.orbits.requests.Add(1)
		backend = core.NewOrbitBackend(backend, &s.orbits.core)
		cp.Key.Orbits = true
	}
	// A canonical hit is a relabeled request served by a solver or
	// materialized stream that some *other* labeling built — counted
	// before this request acquires the stream itself.
	if cp.FromCanon != nil && (hit || s.streams.Contains(cp.Key)) {
		s.canon.hits.Add(1)
	}
	return backend, dpSolver, hit, 0, nil
}

// pagedResponse serves one compiled problem as a first page plus resume
// token — the classic /v1/enumerate response shape, reused verbatim by
// /v1/batch items and the /v1/hypergraph and /v1/csp endpoints. The
// returned results are the first page in the client's labeling (the
// /v1/csp payoff solver consumes them); on error the returned status is
// the HTTP status to report.
func (s *Server) pagedResponse(ctx context.Context, cp *CompiledProblem, backend core.Backend, dpSolver *core.Solver, hit bool) (*EnumerateResponse, []*core.Result, int, error) {
	sess, err := s.sessions.Create(backend, cp.Key, cp.ClientGraph, cp.FromCanon)
	if err != nil {
		return nil, nil, statusFor(err), err
	}
	_, results, done, pageErr := sess.NextPage(ctx, cp.PageSize)
	if done || pageErr != nil || ctx.Err() != nil {
		// Exhausted in the first page, evicted under us, or the client is
		// gone before it ever saw the token: either way no live session
		// must remain behind.
		s.sessions.Remove(sess.Token)
	}
	if pageErr != nil || ctx.Err() != nil {
		return nil, nil, http.StatusServiceUnavailable, errors.New("request cancelled")
	}
	client := sess.egress(results)
	resp := &EnumerateResponse{
		Done:     done,
		CacheHit: hit,
		Cost:     cp.Cost.Name(),
		Backend:  string(cp.Kind),
		Ranked:   backend.Ranked(),
		Orbits:   cp.Orbits,
		Graph:    &GraphInfo{N: cp.ClientGraph.Universe(), M: cp.ClientGraph.NumEdges(), Fingerprint: cp.Key.Fingerprint},
		Results:  pageJSON(cp.ClientGraph, 0, client),
	}
	if dpSolver != nil {
		resp.Solver = solverInfo(dpSolver)
	}
	if !done {
		resp.Session = sess.Token
	}
	return resp, client, 0, nil
}

// diverseResponse serves one compiled problem in the ?diverse=k response
// mode: materialize the first Window ranks of the shared stream (cached
// and deduplicated across clients like any other read), greedily select
// the k most structurally different ones (core.DiverseSelect, optimum
// always first), and return them in one session-less response. Each
// result keeps its rank in the underlying enumeration as its index. The
// returned results are the selection in the client's labeling; on error
// the returned status is the HTTP status to report.
func (s *Server) diverseResponse(ctx context.Context, cp *CompiledProblem, backend core.Backend, dpSolver *core.Solver, hit bool) (*EnumerateResponse, []*core.Result, int, error) {
	s.workloads.diverse.Add(1)
	h := s.streams.Acquire(cp.Key, backend)
	defer h.Release()
	pool := make([]*core.Result, 0, cp.Window)
	for len(pool) < cp.Window {
		r, ok, err := h.At(ctx, len(pool))
		if err != nil {
			return nil, nil, http.StatusServiceUnavailable, errors.New("request cancelled")
		}
		if !ok {
			break // window larger than the finite stream: select from what exists
		}
		pool = append(pool, r)
	}
	idx := core.DiverseSelect(cp.Graph, pool, cp.Diverse)
	client := make([]*core.Result, len(idx))
	page := make([]TriangulationJSON, len(idx))
	for i, j := range idx {
		r := pool[j]
		if cp.FromCanon != nil {
			r = core.RelabelResult(r, cp.FromCanon)
		}
		client[i] = r
		page[i] = resultJSON(cp.ClientGraph, j, r)
	}
	resp := &EnumerateResponse{
		Done:     true,
		CacheHit: hit,
		Cost:     cp.Cost.Name(),
		Backend:  string(cp.Kind),
		Ranked:   backend.Ranked(),
		Orbits:   cp.Orbits,
		Diverse:  cp.Diverse,
		Window:   len(pool),
		Graph:    &GraphInfo{N: cp.ClientGraph.Universe(), M: cp.ClientGraph.NumEdges(), Fingerprint: cp.Key.Fingerprint},
		Results:  page,
	}
	if dpSolver != nil {
		resp.Solver = solverInfo(dpSolver)
	}
	return resp, client, 0, nil
}
