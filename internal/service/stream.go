package service

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// defaultStreamBudget is the byte budget for materialized stream buffers
// when Config.StreamBudgetBytes is unset.
const defaultStreamBudget = 64 << 20

// defaultMaxStreams caps the number of stream entries when the caller
// does not choose one. Each entry pins its solver through the rebuild
// factory, so the byte budget alone (which only counts buffered results)
// would not bound the store's true footprint across many distinct
// graphs.
const defaultMaxStreams = 256

// StreamStats is a snapshot of StreamStore counters for /v1/stats.
type StreamStats struct {
	// Streams is the number of materialized streams currently held.
	Streams int `json:"streams"`
	// Cursors is the number of live references (sessions + NDJSON
	// streams) across those streams.
	Cursors int `json:"cursors"`
	// BufferedResults and Bytes describe the materialized buffers: total
	// ranks held and their estimated footprint against the byte budget.
	BufferedResults int   `json:"buffered_results"`
	Bytes           int64 `json:"bytes"`
	BudgetBytes     int64 `json:"budget_bytes"`
	// Hits and Misses count Acquire calls that found (vs created) a
	// stream for their key. A hit means the new consumer rides an
	// existing buffer instead of its own enumerator.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Evictions counts streams whose buffers were dropped by the byte
	// budget; Rebuilds counts evicted streams that were re-materialized
	// because a cursor still needed their ranks. Both are monotone:
	// rebuild counts of entries that have since been dropped are folded
	// into a retired aggregate rather than vanishing with the entry.
	Evictions uint64 `json:"evictions"`
	Rebuilds  uint64 `json:"rebuilds"`
}

// streamEntry is one materialized stream plus its cache bookkeeping.
type streamEntry struct {
	key     SolverKey
	stream  *core.SharedStream
	refs    int
	bytes   int64 // last footprint charged against the store total
	elem    *list.Element
	handles map[*StreamHandle]struct{} // live consumers; min position floors trims
}

// StreamStore holds one MaterializedStream per (graph fingerprint, cost,
// bound) key — the shared ranked-stream cache. All consumers of a key
// (paging sessions and NDJSON streams alike) read the same append-only
// buffer, so N concurrent clients on one graph cost one enumeration, not
// N. Buffers are kept under an LRU byte budget: when the total estimated
// footprint exceeds it, the least recently used buffers are dropped
// (truncation-aware — the stream rebuilds lazily and replays the same
// prefix if a cursor still needs it), and unreferenced dropped streams
// are removed entirely.
type StreamStore struct {
	mu         sync.Mutex
	budget     int64
	maxEntries int
	entries    map[SolverKey]*streamEntry
	lru        *list.List // of *streamEntry; front = most recently used
	total      int64
	hits       uint64
	misses     uint64
	evictions  uint64

	// Production tuning, applied to streams created after Tune (see Tune).
	solveWorkers  int
	prefetchAhead int
	prefetchBytes int64
	// Pause/resume bookkeeping for streams that no longer exist survives
	// here; live-stream counters are aggregated from the entries.
	pfRetired core.PrefetchStats
	// rbRetired folds dropped entries' rebuild counts the same way, so
	// the /v1/stats rebuilds counter is monotone across entry churn.
	rbRetired uint64
	// closed marks the store shut down: streams created afterwards stay
	// demand-driven and parked producers are never resumed, so no
	// speculative goroutine can outlive Close.
	closed bool
}

// NewStreamStore returns a store evicting buffers beyond budgetBytes
// (<= 0 selects the 64 MiB default) and dropping unreferenced entries
// beyond maxStreams (<= 0 selects 256) — entries pin their solver, so
// the entry count needs a bound of its own beyond the byte budget.
func NewStreamStore(budgetBytes int64, maxStreams int) *StreamStore {
	if budgetBytes <= 0 {
		budgetBytes = defaultStreamBudget
	}
	if maxStreams <= 0 {
		maxStreams = defaultMaxStreams
	}
	return &StreamStore{
		budget:     budgetBytes,
		maxEntries: maxStreams,
		entries:    make(map[SolverKey]*streamEntry),
		lru:        list.New(),
	}
}

// Tune configures how this store's streams produce. Each Next of a
// stream created after Tune fans its independent branch solves over
// solveWorkers goroutines (<= 1 means sequential; the emitted sequence is
// identical either way), and its speculative producer runs the
// enumeration up to prefetchAhead ranks past the fastest cursor, within
// prefetchBytes of buffered footprint (prefetchAhead <= 0 disables
// speculation, prefetchBytes <= 0 leaves it byte-unbounded). The zero
// store — no Tune — is the demand-driven sequential baseline.
func (st *StreamStore) Tune(solveWorkers, prefetchAhead int, prefetchBytes int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.solveWorkers = solveWorkers
	st.prefetchAhead = prefetchAhead
	st.prefetchBytes = prefetchBytes
}

// dropEntryLocked detaches e from the table and LRU, reclaims its byte
// accounting, folds its prefetch counters into the retired aggregate and
// terminates its speculative producer. The caller holds st.mu (lock
// order store.mu → stream.mu is safe: SharedStream never calls back into
// the store).
func (st *StreamStore) dropEntryLocked(e *streamEntry) {
	st.total -= e.bytes
	e.bytes = 0
	st.lru.Remove(e.elem)
	e.elem = nil
	delete(st.entries, e.key)
	st.pfRetired = sumPrefetchStats(st.pfRetired, e.stream.PrefetchStats())
	st.rbRetired += e.stream.Rebuilds()
	e.stream.StopPrefetch()
}

// sumPrefetchStats folds b into a (counters add; the high-water mark is
// the max).
func sumPrefetchStats(a, b core.PrefetchStats) core.PrefetchStats {
	a.Hits += b.Hits
	a.DemandSolves += b.DemandSolves
	a.PrefetchSolves += b.PrefetchSolves
	a.Pauses += b.Pauses
	a.Resumes += b.Resumes
	if b.LookaheadHighWater > a.LookaheadHighWater {
		a.LookaheadHighWater = b.LookaheadHighWater
	}
	return a
}

// PrefetchStats aggregates the demand-vs-speculation counters over every
// stream this store has ever held (dropped streams' counts are folded
// into a retired aggregate, so the numbers are monotone).
func (st *StreamStore) PrefetchStats() core.PrefetchStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := st.pfRetired
	for _, e := range st.entries {
		out = sumPrefetchStats(out, e.stream.PrefetchStats())
	}
	return out
}

// Close terminates every stream's speculative producer and marks the
// store closed. Buffers and cursors stay readable (demand-driven); for
// server shutdown, where parked prefetch goroutines should not outlive
// the service. Acquire keeps working after Close — late requests during
// the HTTP drain window still need their streams — but the entries it
// creates are never configured for speculation and parked producers are
// never resumed, so shutdown cannot be undone by a straggler.
func (st *StreamStore) Close() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.closed = true
	for _, e := range st.entries {
		e.stream.StopPrefetch()
	}
}

// StreamHandle is one consumer's reference to a materialized stream.
// Release it exactly once when the consumer is done; the buffer itself
// stays cached for future consumers until the byte budget evicts it.
type StreamHandle struct {
	store *StreamStore
	e     *streamEntry
	pos   atomic.Int64 // last rank read; the store trims no window past it
	once  sync.Once
}

// Acquire returns a handle on the materialized stream for key, creating
// it over backend's enumeration on a miss. The caller must ensure key
// uniquely identifies (graph, cost, options, backend) — two Acquires with
// equal keys share one buffer regardless of the backend passed (the
// server's SolverKey guarantees this; see pool.go). Any core.Backend
// works here because every backend's enumeration order is deterministic,
// which is what the evict-and-replay contract of SharedStream needs.
func (st *StreamStore) Acquire(key SolverKey, backend core.Backend) *StreamHandle {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[key]
	if ok {
		st.hits++
	} else {
		st.misses++
		workers := st.solveWorkers
		e = &streamEntry{
			key: key,
			// Background context: the producer must outlive any single
			// consumer, and consumer cancellation is observed in At. Each
			// Next fans its independent branch solves over the store's
			// worker pool size.
			stream: core.NewSharedStream(func() *core.Enumerator {
				return backend.EnumerateParallelContext(context.Background(), workers)
			}),
			handles: make(map[*StreamHandle]struct{}),
		}
		if !st.closed {
			e.stream.ConfigurePrefetch(st.prefetchAhead, st.prefetchBytes)
		}
		st.entries[key] = e
		e.elem = st.lru.PushFront(e)
		// Enforce the entry cap on the cold end: only unreferenced entries
		// can go (referenced ones are bounded by the session/stream
		// population), never the entry just inserted — its refs++ is still
		// pending below.
		for el := st.lru.Back(); el != nil && len(st.entries) > st.maxEntries; {
			prev := el.Prev()
			v := el.Value.(*streamEntry)
			if v != e && v.refs == 0 {
				st.dropEntryLocked(v)
				st.evictions++
			}
			el = prev
		}
	}
	e.refs++
	if e.refs == 1 && !st.closed {
		// First consumer (back): un-park the speculative producer. A no-op
		// on fresh streams, which start unpaused. After Close the resume is
		// skipped — shutdown just stopped these producers, and a post-Close
		// acquire must stay demand-driven.
		e.stream.ResumePrefetch()
	}
	st.lru.MoveToFront(e.elem)
	h := &StreamHandle{store: st, e: e}
	e.handles[h] = struct{}{}
	return h
}

// touchStride batches the store bookkeeping: a cursor refreshes byte
// accounting and LRU recency once every touchStride ranks (plus at
// stream end) instead of on every read, keeping the store mutex off the
// pure-memory fan-out hot path. The cost is bounded staleness — the
// budget can overshoot by up to touchStride results per active cursor
// between touches.
const touchStride = 16

// At returns the result of rank i from the shared buffer, producing it
// (and everything before it) on demand — see core.SharedStream.At.
func (h *StreamHandle) At(ctx context.Context, i int) (*core.Result, bool, error) {
	// Publish the position before reading so a concurrent trim never
	// slides the window past a rank someone is about to return.
	h.pos.Store(int64(i))
	r, ok, err := h.e.stream.At(ctx, i)
	if i%touchStride == 0 || !ok || err != nil {
		h.store.touch(h.e)
	}
	return r, ok, err
}

// BufferedAhead reports how many results past position pos have already
// been materialized — the ranks a consumer at pos can read without any
// solving work (ranks a budget trim dropped would need a rebuild, so
// this is the optimistic count). Under speculative prefetch the stream's
// producer actively keeps this positive for cursors inside the lookahead
// budget.
func (h *StreamHandle) BufferedAhead(pos int) int {
	if n := h.e.stream.Produced() - pos; n > 0 {
		return n
	}
	return 0
}

// Buffered returns the number of materialized ranks.
func (h *StreamHandle) Buffered() int { return h.e.stream.Buffered() }

// Release drops this consumer's reference. Idempotent.
func (h *StreamHandle) Release() {
	h.once.Do(func() { h.store.release(h) })
}

func (st *StreamStore) release(h *StreamHandle) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e := h.e
	delete(e.handles, h)
	e.refs--
	if e.refs == 0 {
		// No live consumers: park the speculative producer so an abandoned
		// stream burns no CPU — PR 4's invariant, now under prefetch too.
		e.stream.PausePrefetch()
	}
	// A dropped (or never-produced) buffer holds no bytes, so the byte
	// budget would never reclaim its entry; drop it here once unreferenced
	// to keep the table bounded. Buffers with content stay cached — they
	// are the fan-out asset — until the budget evicts them.
	if e.refs == 0 && e.stream.Buffered() == 0 && e.elem != nil {
		st.dropEntryLocked(e)
	}
}

// touch refreshes e's recency and byte accounting, then reclaims space
// in two steps. First, a stream that alone exceeds the whole budget is
// not allowed to grow without bound: its window is trimmed from the
// oldest rank up to the position of its *slowest* live cursor, so a
// lone NDJSON client over a huge enumeration holds ~budget bytes.
// Trimming past a live cursor would be worse than the memory it saves —
// the lagging cursor's next read would Reset the whole stream and the
// leading cursor would re-enumerate its full prefix, ping-ponging on
// every page — so the buffer is instead bounded by budget + the lag
// between slowest and fastest cursor, and idle-session eviction bounds
// that lag in time. Second, while the store total still exceeds the
// budget and other entries hold bytes, the least recently used buffers
// are dropped — never the entry being touched, so the hot stream cannot
// thrash itself.
func (st *StreamStore) touch(e *streamEntry) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if e.elem == nil {
		return // detached from the store; no accounting
	}
	st.lru.MoveToFront(e.elem)
	nb := e.stream.Bytes()
	if nb > st.budget {
		floor := -1
		for h := range e.handles {
			if p := int(h.pos.Load()); floor == -1 || p < floor {
				floor = p
			}
		}
		if floor > 0 {
			// Lock order store.mu → stream.mu is safe: SharedStream never
			// calls back into the store.
			e.stream.TrimOver(st.budget, floor)
			nb = e.stream.Bytes()
		}
	}
	st.total += nb - e.bytes
	e.bytes = nb
	// Walk the LRU only while some *other* entry holds reclaimable bytes;
	// once the overflow is entirely the touched entry's own (post-trim)
	// window, scanning the list would be O(streams) of useless work per
	// read.
	for el := st.lru.Back(); el != nil && st.total > st.budget && st.total > e.bytes; {
		prev := el.Prev()
		v := el.Value.(*streamEntry)
		if v != e && v.bytes > 0 {
			st.total -= v.bytes
			v.bytes = 0
			// Reset clears the stream's demand mark too, so its speculative
			// producer (if still referenced and running) idles instead of
			// re-materializing the buffer the eviction just reclaimed.
			v.stream.Reset()
			st.evictions++
			if v.refs == 0 {
				st.dropEntryLocked(v)
			}
		}
		el = prev
	}
}

// Stats returns a snapshot of the stream-cache counters.
func (st *StreamStore) Stats() StreamStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := StreamStats{
		Streams:     len(st.entries),
		Bytes:       st.total,
		BudgetBytes: st.budget,
		Hits:        st.hits,
		Misses:      st.misses,
		Evictions:   st.evictions,
	}
	out.Rebuilds = st.rbRetired
	for _, e := range st.entries {
		out.Cursors += e.refs
		out.BufferedResults += e.stream.Buffered()
		out.Rebuilds += e.stream.Rebuilds()
	}
	return out
}

// Len returns the number of materialized streams currently held.
func (st *StreamStore) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.entries)
}

// Contains reports whether a materialized stream for key is currently
// held — a pre-Acquire peek the server uses to attribute canonical-keying
// cache hits (racy by nature, which is fine for a counter).
func (st *StreamStore) Contains(key SolverKey) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	_, ok := st.entries[key]
	return ok
}
