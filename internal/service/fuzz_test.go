package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// Fuzz targets for the request decoders of the workload endpoints: any
// body must produce a well-formed JSON response with a sane status —
// never a panic, and never an enumeration the configured limits (vertex
// cap, batch cap, body cap, page cap) would not admit. The servers are
// built once per target with tiny limits so the accepting paths solve
// n≤8 problems and each exec stays microseconds.
//
// CI runs each target briefly (see .github/workflows/ci.yml); longer
// local sessions: go test ./internal/service -run='^$' -fuzz=FuzzBatchEndpoint

// fuzzServer is a shared tiny-limit server for the endpoint fuzzers.
func fuzzServer(f *testing.F) *Server {
	f.Helper()
	srv := New(Config{
		MaxVertices:   8,
		MaxBatchItems: 4,
		MaxBodyBytes:  1 << 16,
		PageSize:      3,
		MaxSessions:   16,
	})
	f.Cleanup(srv.Close)
	return srv
}

// fuzzPost drives one endpoint through the full handler stack and
// checks the response contract.
func fuzzPost(t *testing.T, srv *Server, path string, body []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(string(body)))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	switch rec.Code {
	case http.StatusOK, http.StatusBadRequest, http.StatusRequestEntityTooLarge,
		http.StatusTooManyRequests, http.StatusServiceUnavailable:
	default:
		t.Fatalf("%s: unexpected status %d: %s", path, rec.Code, rec.Body.Bytes())
	}
	// NDJSON streams are a sequence of JSON lines; everything else is one
	// JSON document. Either way the body must be well-formed.
	if ct := rec.Header().Get("Content-Type"); strings.Contains(ct, "ndjson") {
		dec := json.NewDecoder(rec.Body)
		for dec.More() {
			var line any
			if err := dec.Decode(&line); err != nil {
				t.Fatalf("%s: malformed NDJSON line: %v", path, err)
			}
		}
		return
	}
	var doc any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("%s: status %d with malformed JSON body %q: %v", path, rec.Code, rec.Body.Bytes(), err)
	}
}

func FuzzBatchEndpoint(f *testing.F) {
	f.Add(`{"problems": [{"graph6": "DqK", "cost": "fill"}, {"edges": [[0,1],[1,2]], "page_size": 2}]}`)
	f.Add(`{"problems": [{"n": 3}, {"graph6": "nope"}, {"edges": [[0,1]], "diverse": 2, "window": 5}]}`)
	f.Add(`{"problems": [{"hyperedges": [[0,1,2],[2,3]], "cost": "hypertree"}]}`)
	f.Add(`{"problems": []}`)
	f.Add(`{"problems": [{"graph6": "DqK"}, {"graph6": "DqK"}, {"graph6": "DqK"}, {"graph6": "DqK"}, {"graph6": "DqK"}]}`)
	f.Add(`{"problems"`)
	f.Add(`[]`)
	srv := fuzzServer(f)
	f.Fuzz(func(t *testing.T, body string) {
		fuzzPost(t, srv, "/v1/batch", []byte(body))
	})
}

func FuzzHypergraphEndpoint(f *testing.F) {
	f.Add(`{"hyperedges": [[0,1,2],[2,3],[3,0]]}`)
	f.Add(`{"hyperedges": [[0,1],[1,2]], "cost": "fractional-htw", "page_size": 2}`)
	f.Add(`{"hyperedges": [[0,1]], "cost": "lex", "diverse": 2}`)
	f.Add(`{"hyperedges": [[]], "cost": "hypertree"}`)
	f.Add(`{"hyperedges": [[0,99]]}`)
	f.Add(`{"graph6": "DqK"}`)
	f.Add(`{"hyperedges": [[0,1]], "stream": true, "max_results": 2}`)
	f.Add(`{"hyperedges": [[-1,0]]}`)
	srv := fuzzServer(f)
	f.Fuzz(func(t *testing.T, body string) {
		fuzzPost(t, srv, "/v1/hypergraph", []byte(body))
	})
}

func FuzzCSPEndpoint(f *testing.F) {
	f.Add(`{"domains": [2,2,2], "constraints": [{"scope": [0,1], "allowed": [[0,1],[1,0]]}], "solve": true, "count": true}`)
	f.Add(`{"domains": [3,3], "constraints": [{"scope": [0,1], "allowed": []}], "solve": true}`)
	f.Add(`{"domains": [2,2], "constraints": [{"scope": [0,5], "allowed": [[0,0]]}]}`)
	f.Add(`{"domains": [2,2], "constraints": [{"scope": [1,1]}]}`)
	f.Add(`{"domains": [0]}`)
	f.Add(`{"domains": [2,2,2,2], "cost": "width", "diverse": 2, "count": true}`)
	f.Add(`{"domains": [2,2], "constraints": [{"scope": [0,1], "allowed": [[0,9]]}]}`)
	f.Add(`{"domains":`)
	srv := fuzzServer(f)
	f.Fuzz(func(t *testing.T, body string) {
		fuzzPost(t, srv, "/v1/csp", []byte(body))
	})
}
