package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/csp"
)

// handleBatch serves POST /v1/batch: many enumeration problems in one
// request, sharing one admission slot. Every problem is compiled before
// admission — compilation is cheap (graph build + canonical labeling)
// and all client errors surface without burning the slot — then the
// admitted batch solves its problems sequentially. Sequencing is what
// makes the canonical dedup pay off inside a single batch: isomorphic
// members compile to one cache key, so the first builds the solver and
// every later one hits the pool or the materialized stream. A failing
// problem reports its error in its item and never fails the batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	var req BatchRequest
	if !s.decodeRequest(w, r, &req) {
		return
	}
	if len(req.Problems) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("batch needs at least one problem"))
		return
	}
	if len(req.Problems) > s.cfg.MaxBatchItems {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch has %d problems; the limit is %d", len(req.Problems), s.cfg.MaxBatchItems))
		return
	}
	s.workloads.batch.Add(1)
	s.workloads.batchProblems.Add(uint64(len(req.Problems)))

	q := r.URL.Query()
	items := make([]BatchItem, len(req.Problems))
	compiled := make([]*CompiledProblem, len(req.Problems))
	for i := range req.Problems {
		if req.Problems[i].Stream {
			items[i].Error = "stream mode is not available inside a batch; submit the problem to /v1/enumerate"
			continue
		}
		cp, err := s.compileProblem(&req.Problems[i], q)
		if err != nil {
			items[i].Error = err.Error()
			continue
		}
		compiled[i] = cp
	}

	release, err := s.admit(ctx)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("cancelled while waiting for admission"))
		return
	}
	defer release()

	for i, cp := range compiled {
		if cp == nil {
			continue // compile error already recorded
		}
		if ctx.Err() != nil {
			items[i].Error = "request cancelled"
			continue
		}
		items[i] = s.solveItem(ctx, cp)
	}

	errs := 0
	for i := range items {
		if items[i].Error != "" {
			errs++
		}
	}
	writeJSON(w, http.StatusOK, &BatchResponse{Items: items, Errors: errs})
}

// solveItem runs the post-admission half of the pipeline for one
// compiled problem and packages the outcome as a batch item. The caller
// holds the admission slot.
func (s *Server) solveItem(ctx context.Context, cp *CompiledProblem) BatchItem {
	backend, dpSolver, hit, _, err := s.buildBackend(ctx, cp)
	if err != nil {
		return BatchItem{Error: err.Error()}
	}
	var resp *EnumerateResponse
	if cp.Diverse > 0 {
		resp, _, _, err = s.diverseResponse(ctx, cp, backend, dpSolver, hit)
	} else {
		resp, _, _, err = s.pagedResponse(ctx, cp, backend, dpSolver, hit)
	}
	if err != nil {
		return BatchItem{Error: err.Error()}
	}
	return BatchItem{Response: resp}
}

// handleHypergraph serves POST /v1/hypergraph: a hypergraph submitted as
// hyperedges, enumerated over its server-built primal graph. The body is
// the same EnumerateRequest shape restricted to hyperedge input, the
// cost defaults to "hypertree" (the hypergraph cost a plain /v1/enumerate
// client would have to opt into), and the response carries the
// hypergraph/primal shape alongside the usual enumeration payload. All
// knobs — ?backend=, ?orbits= (rejected for hypergraph costs by the
// usual gate), ?diverse=, bounds, paging, streaming — behave exactly as
// on /v1/enumerate: the compilation layer underneath is the same.
func (s *Server) handleHypergraph(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	var req EnumerateRequest
	if !s.decodeRequest(w, r, &req) {
		return
	}
	if len(req.Hyperedges) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("hypergraph input requires hyperedges"))
		return
	}
	if req.Graph6 != "" || len(req.Edges) > 0 {
		writeError(w, http.StatusBadRequest, errors.New("hypergraph input takes hyperedges only; submit graph6 or edges to /v1/enumerate"))
		return
	}
	if req.Cost == "" {
		req.Cost = "hypertree"
	}
	s.workloads.hypergraph.Add(1)
	cp, err := s.compileProblem(&req, r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	release, err := s.admit(ctx)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("cancelled while waiting for admission"))
		return
	}
	defer release()

	backend, dpSolver, hit, status, err := s.buildBackend(ctx, cp)
	if err != nil {
		writeError(w, status, err)
		return
	}

	if req.Stream {
		s.streamResults(w, r, cp.ClientGraph, backend, cp.Key, cp.FromCanon, req.MaxResults)
		return
	}

	var resp *EnumerateResponse
	if cp.Diverse > 0 {
		resp, _, status, err = s.diverseResponse(ctx, cp, backend, dpSolver, hit)
	} else {
		resp, _, status, err = s.pagedResponse(ctx, cp, backend, dpSolver, hit)
	}
	if err != nil {
		writeError(w, status, err)
		return
	}
	resp.Hypergraph = &HypergraphInfo{
		Vertices:    cp.ClientGraph.Universe(),
		Hyperedges:  len(cp.Hyper.Edges()),
		PrimalEdges: cp.ClientGraph.NumEdges(),
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCSP serves POST /v1/csp: a binary constraint-satisfaction
// problem. The service builds the constraint graph, compiles it through
// the same layer as every other endpoint (cost defaults to "statespace"
// under the variable domains — the ranking that models the CSP DP's
// table work), enumerates ranked decompositions, and — when Solve/Count
// is asked — runs the DP of internal/csp over the top-ranked
// decomposition as the payoff: the paper's motivating pattern of picking
// the bag structure before paying for the inference.
func (s *Server) handleCSP(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	var req CSPRequest
	if !s.decodeRequest(w, r, &req) {
		return
	}
	p, err := buildCSP(&req, s.cfg.MaxVertices)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.workloads.csp.Add(1)
	if req.Cost == "" {
		req.Cost = "statespace"
	}
	// The synthesized enumerate request decouples the compilation layer
	// (which may relabel Domains in place during canonicalization) from
	// the CSP problem, whose client-labeled domains the payoff DP needs
	// intact.
	ereq := &EnumerateRequest{
		N:        len(p.Domains),
		Edges:    p.ConstraintGraph().Edges(),
		Cost:     req.Cost,
		Domains:  append([]int(nil), req.Domains...),
		Bound:    req.Bound,
		Backend:  req.Backend,
		Orbits:   req.Orbits,
		PageSize: req.PageSize,
		Diverse:  req.Diverse,
		Window:   req.Window,
	}
	cp, err := s.compileProblem(ereq, r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	release, err := s.admit(ctx)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("cancelled while waiting for admission"))
		return
	}
	defer release()

	backend, dpSolver, hit, status, err := s.buildBackend(ctx, cp)
	if err != nil {
		writeError(w, status, err)
		return
	}

	var resp *EnumerateResponse
	var results []*core.Result
	if cp.Diverse > 0 {
		resp, results, status, err = s.diverseResponse(ctx, cp, backend, dpSolver, hit)
	} else {
		resp, results, status, err = s.pagedResponse(ctx, cp, backend, dpSolver, hit)
	}
	if err != nil {
		writeError(w, status, err)
		return
	}

	if (req.Solve || req.Count) && len(results) > 0 {
		// The payoff runs over the top-ranked decomposition in the client's
		// labeling (results are already egress-relabeled), under the same
		// admission slot — it is real DP work, O(nodes · Π domain^bagsize).
		s.workloads.cspSolves.Add(1)
		sol := &CSPSolutionJSON{}
		top := results[0].Tree
		if req.Count {
			n, cerr := p.Count(top)
			if cerr != nil {
				writeError(w, http.StatusInternalServerError, fmt.Errorf("csp count over the top decomposition: %v", cerr))
				return
			}
			sol.Count = &n
			sol.Satisfiable = n > 0
		}
		if req.Solve {
			asg, ok, serr := p.Solve(top)
			if serr != nil {
				writeError(w, http.StatusInternalServerError, fmt.Errorf("csp solve over the top decomposition: %v", serr))
				return
			}
			sol.Satisfiable = ok
			sol.Assignment = asg
		}
		resp.CSP = sol
	}
	writeJSON(w, http.StatusOK, resp)
}

// buildCSP validates a wire CSP and materializes it as a csp.Problem.
// Errors are client errors (400). An empty Allowed list is honored as a
// real (unsatisfiable) constraint via csp.Constrain.
func buildCSP(req *CSPRequest, maxVertices int) (*csp.Problem, error) {
	if len(req.Domains) == 0 {
		return nil, errors.New("csp needs at least one variable (non-empty domains)")
	}
	if len(req.Domains) > maxVertices {
		return nil, fmt.Errorf("csp has %d variables; the limit is %d", len(req.Domains), maxVertices)
	}
	for v, d := range req.Domains {
		if d < 1 {
			return nil, fmt.Errorf("variable %d has non-positive domain size %d", v, d)
		}
	}
	p := csp.NewProblem(req.Domains)
	for i, c := range req.Constraints {
		x, y := c.Scope[0], c.Scope[1]
		if x < 0 || x >= len(req.Domains) || y < 0 || y >= len(req.Domains) {
			return nil, fmt.Errorf("constraint %d: scope [%d,%d] out of range for %d variables", i, x, y, len(req.Domains))
		}
		if x == y {
			return nil, fmt.Errorf("constraint %d: unary scope [%d,%d]; model unary constraints by shrinking the domain", i, x, y)
		}
		p.Constrain(x, y)
		for _, t := range c.Allowed {
			a, b := t[0], t[1]
			if a < 0 || a >= req.Domains[x] || b < 0 || b >= req.Domains[y] {
				return nil, fmt.Errorf("constraint %d: tuple [%d,%d] out of domain range [%d,%d]", i, a, b, req.Domains[x], req.Domains[y])
			}
			p.Allow(x, y, a, b)
		}
	}
	return p, nil
}
