package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hyper"
)

// Config tunes the Server. Zero values select the documented defaults.
type Config struct {
	// CacheSize caps the solver pool (default 64 solvers).
	CacheSize int
	// MaxSessions caps concurrently parked enumerations (default 256).
	MaxSessions int
	// IdleTimeout evicts sessions not paged for this long (default 5m).
	IdleTimeout time.Duration
	// PageSize is the default page size (default 10, hard cap 1000).
	PageSize int
	// MaxConcurrent bounds requests admitted into solver initialization
	// and paging at once; excess requests queue on the admission
	// semaphore until admitted or cancelled (default 8).
	MaxConcurrent int
	// MaxVertices rejects larger graphs with 400 — solver initialization
	// is exponential in the worst case, so a service must bound its
	// inputs (default 128).
	MaxVertices int
	// MaxBodyBytes caps request bodies (default 16 MiB; 413 past it).
	// Batch deployments raise it — a /v1/batch body carries many problems.
	MaxBodyBytes int64
	// MaxBatchItems caps the problems one /v1/batch request may carry
	// (default 256). The whole batch runs under a single admission slot,
	// so the cap bounds how much solving one slot can be made to do.
	MaxBatchItems int
	// InitTimeout bounds one solver initialization (default 60s).
	InitTimeout time.Duration
	// StreamTimeout bounds one NDJSON stream's total lifetime (default
	// 5m). A stream holds an admission slot from start to finish, so an
	// unbounded stream could park a slot forever.
	StreamTimeout time.Duration
	// StreamBudgetBytes caps the total estimated footprint of the
	// materialized result buffers shared by sessions and NDJSON streams
	// (default 64 MiB). Past the budget the least recently used buffers
	// are dropped; a dropped buffer rebuilds lazily and replays the
	// identical ranks if a live cursor still needs it.
	StreamBudgetBytes int64
	// SolveWorkers is the goroutine pool size each materialized stream's
	// Next fans its independent Lawler–Murty branch solves over — the
	// delay-reduction parallelization of the paper's §7.1. Zero selects
	// GOMAXPROCS; 1 pins the sequential enumeration. The emitted order is
	// identical for every setting (branches are re-ordered
	// deterministically before entering the queue).
	SolveWorkers int
	// PrefetchAhead is how many ranks past the fastest live cursor each
	// materialized stream's speculative producer runs the enumeration, so
	// an interactive client's next page is a buffer read instead of a
	// solve. Zero selects the default (64); negative disables speculation
	// (production becomes purely demand-driven, the pre-prefetch
	// behavior). The producer pauses whenever a stream has no live
	// cursors and an evicted buffer stays cold until re-demanded, so
	// speculation never burns CPU on abandoned or reclaimed streams.
	PrefetchAhead int
	// PrefetchBytes caps the buffered footprint speculation may grow one
	// stream to (demand-driven production is not limited by it — the
	// store's byte budget governs overall). Zero selects the default
	// (8 MiB); negative means no per-stream speculation ceiling.
	PrefetchBytes int64
	// FullResolve disables the incremental constraint-aware DP on every
	// solver this server builds: each Lawler–Murty branch re-runs the
	// whole block DP from scratch. This is a debugging/ablation knob —
	// the enumeration output is identical either way (property-tested in
	// core) — so production deployments leave it false.
	FullResolve bool
	// NoDecompose disables the clique-separator atom decomposition on
	// every solver this server builds: graphs are always solved
	// monolithically. Another ablation knob — the enumeration output is
	// identical up to cost ties (property-tested in core), but
	// initialization and per-result delay on clique-separated graphs are
	// exponentially worse — so production deployments leave it false.
	NoDecompose bool
	// NoCanon disables canonical cache keying: solver-pool and
	// stream-store keys fall back to the label-sensitive fingerprint, so
	// isomorphic submissions with different vertex numberings build
	// separate solvers and streams (the pre-PR-8 behavior). An escape
	// hatch for debugging the canonical labeling or for workloads of
	// pathological graphs where the labeling search always falls back
	// anyway; responses are identical either way (oracle-tested).
	NoCanon bool
	// DefaultBackend is the enumeration backend for requests that name
	// none: "dp" (the default — ranked-exact, cost order), "mis"
	// (unordered CKK separator-graph enumeration, no init cost),
	// "mis-scored" (MIS with a cheap best-first heuristic order) or
	// "auto" (probe the separator count and pick DP below the budget, MIS
	// above; see core.SelectBackend). A request's backend field or
	// ?backend= query knob overrides it per request.
	DefaultBackend string
	// BackendProbeBudget is the separator budget the auto policy probes
	// under (default core.DefaultProbeBudget).
	BackendProbeBudget int
	// DefaultOrbits turns on orbit-reduced enumeration for requests that
	// don't say: streams emit one representative per automorphism orbit of
	// minimal triangulations, stamped with orbit_size (core.NewOrbitBackend).
	// A request's orbits field or ?orbits= query knob overrides it per
	// request. The mode is gated on label-invariant costs — a request
	// pairing it with hypertree, fractional-htw or non-uniform statespace
	// domains is rejected with 400 regardless of this default.
	DefaultOrbits bool
}

func (c Config) withDefaults() Config {
	// Zero and negative both select the default: a negative field is
	// never meaningful here, and letting one through would panic (e.g.
	// make(chan, -1)) or wedge paging.
	if c.CacheSize <= 0 {
		c.CacheSize = 64
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.PageSize <= 0 {
		c.PageSize = 10
	}
	if c.PageSize > maxPageSize {
		c.PageSize = maxPageSize
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.MaxVertices <= 0 {
		c.MaxVertices = 128
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = defaultMaxBodyBytes
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = defaultMaxBatchItems
	}
	if c.InitTimeout <= 0 {
		c.InitTimeout = 60 * time.Second
	}
	if c.StreamTimeout <= 0 {
		c.StreamTimeout = 5 * time.Minute
	}
	if c.StreamBudgetBytes <= 0 {
		c.StreamBudgetBytes = defaultStreamBudget
	}
	// SolveWorkers, PrefetchAhead and PrefetchBytes distinguish "unset"
	// (zero → default) from "explicitly off" (negative), unlike the fields
	// above: sequential solving and demand-driven production are
	// legitimate configurations, not degenerate ones.
	if c.SolveWorkers == 0 {
		c.SolveWorkers = runtime.GOMAXPROCS(0)
	}
	if c.SolveWorkers < 0 {
		c.SolveWorkers = 1
	}
	if c.PrefetchAhead == 0 {
		c.PrefetchAhead = defaultPrefetchAhead
	}
	if c.PrefetchAhead < 0 {
		c.PrefetchAhead = 0 // disabled
	}
	if c.PrefetchBytes == 0 {
		c.PrefetchBytes = defaultPrefetchBytes
	}
	if c.PrefetchBytes < 0 {
		c.PrefetchBytes = 0 // no speculation byte ceiling
	}
	if c.DefaultBackend == "" {
		c.DefaultBackend = string(core.BackendDP)
	}
	if c.BackendProbeBudget <= 0 {
		c.BackendProbeBudget = core.DefaultProbeBudget
	}
	return c
}

// maxPageSize is the hard cap on page_size, protecting response sizes.
const maxPageSize = 1000

// defaultPrefetchAhead is the speculative lookahead in ranks when
// Config.PrefetchAhead is unset: a few interactive pages' worth, enough
// that a paging client never waits on a solve once the stream is warm,
// small enough that an early-abandoning client wastes little work.
const defaultPrefetchAhead = 64

// defaultPrefetchBytes bounds one stream's speculative footprint when
// Config.PrefetchBytes is unset — 1/8 of the default stream budget, so
// speculation alone cannot evict several demand-built buffers.
const defaultPrefetchBytes = defaultStreamBudget / 8

// defaultMaxBodyBytes caps request bodies when Config.MaxBodyBytes is
// unset.
const defaultMaxBodyBytes = 16 << 20

// defaultMaxBatchItems caps one /v1/batch request's problem count when
// Config.MaxBatchItems is unset.
const defaultMaxBatchItems = 256

// Server is the ranked-enumeration HTTP service (see the package doc for
// the API). It is an http.Handler; Close releases every live session.
type Server struct {
	cfg       Config
	pool      *SolverPool
	streams   *StreamStore
	sessions  *SessionManager
	sem       chan struct{}
	mux       *http.ServeMux
	start     time.Time
	requests  atomic.Uint64
	backends  backendCounters
	canon     canonCounters
	orbits    orbitModeCounters
	workloads workloadCounters
}

// workloadCounters counts served requests per ingress shape for the
// /v1/stats "workloads" block.
type workloadCounters struct {
	enumerate, batch, batchProblems, hypergraph, csp, cspSolves, diverse atomic.Uint64
}

func (c *workloadCounters) stats() WorkloadStats {
	return WorkloadStats{
		Enumerate:     c.enumerate.Load(),
		Batch:         c.batch.Load(),
		BatchProblems: c.batchProblems.Load(),
		Hypergraph:    c.hypergraph.Load(),
		CSP:           c.csp.Load(),
		CSPSolves:     c.cspSolves.Load(),
		Diverse:       c.diverse.Load(),
	}
}

// orbitModeCounters aggregates orbit-mode serving for /v1/stats: how many
// enumerate requests ran orbit-reduced, plus the shared core counters
// every orbit backend this server builds reports into.
type orbitModeCounters struct {
	requests atomic.Uint64
	core     core.OrbitCounters
}

func (o *orbitModeCounters) stats(defaultOn bool) OrbitModeStats {
	return OrbitModeStats{
		DefaultOn:  defaultOn,
		Requests:   o.requests.Load(),
		OrbitStats: o.core.Snapshot(),
	}
}

// canonCounters aggregates the canonical-keying funnel for /v1/stats:
// how many enumerate requests went through canonical labeling, how many
// arrived in a non-canonical labeling (i.e. were actually relabeled), how
// many blew the labeling search budget and fell back to label-sensitive
// keys, and how many relabeled requests hit a solver or stream some
// *other* labeling built — the cache hits label-sensitive keying would
// have missed.
type canonCounters struct {
	requests, relabeled, fallbacks, hits atomic.Uint64
}

func (c *canonCounters) stats(enabled bool) CanonStats {
	return CanonStats{
		Enabled:   enabled,
		Requests:  c.requests.Load(),
		Relabeled: c.relabeled.Load(),
		Fallbacks: c.fallbacks.Load(),
		Hits:      c.hits.Load(),
	}
}

// backendCounters aggregates served enumerate requests per backend kind,
// plus how many of them were routed by the auto probe rather than an
// explicit choice. Snapshotted into /v1/stats.
type backendCounters struct {
	dp, mis, misScored, auto atomic.Uint64
}

func (b *backendCounters) count(kind core.BackendKind, autoRouted bool) {
	switch kind {
	case core.BackendMIS:
		b.mis.Add(1)
	case core.BackendMISScored:
		b.misScored.Add(1)
	default:
		b.dp.Add(1)
	}
	if autoRouted {
		b.auto.Add(1)
	}
}

func (b *backendCounters) stats() BackendStats {
	return BackendStats{
		DP:           b.dp.Load(),
		MIS:          b.mis.Load(),
		MISScored:    b.misScored.Load(),
		AutoResolved: b.auto.Load(),
	}
}

// New returns a ready-to-serve Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	// Stream entries pin their solver via the rebuild factory, so the
	// entry cap tracks the solver pool's: a stream whose solver left the
	// pool does not linger much longer than the solver itself.
	streams := NewStreamStore(cfg.StreamBudgetBytes, cfg.CacheSize)
	streams.Tune(cfg.SolveWorkers, cfg.PrefetchAhead, cfg.PrefetchBytes)
	s := &Server{
		cfg:      cfg,
		pool:     NewSolverPool(cfg.CacheSize),
		streams:  streams,
		sessions: NewSessionManager(cfg.MaxSessions, cfg.IdleTimeout, streams),
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		mux:      http.NewServeMux(),
		start:    time.Now(),
	}
	s.mux.HandleFunc("POST /v1/enumerate", s.handleEnumerate)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/hypergraph", s.handleHypergraph)
	s.mux.HandleFunc("POST /v1/csp", s.handleCSP)
	s.mux.HandleFunc("GET /v1/sessions/{token}/next", s.handleNext)
	s.mux.HandleFunc("GET /v1/sessions/{token}", s.handleSessionInfo)
	s.mux.HandleFunc("DELETE /v1/sessions/{token}", s.handleSessionDelete)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// Close cancels every live enumeration and stops background work —
// including every stream's speculative producer. In-flight HTTP requests
// are the http.Server's to drain — call this after its Shutdown.
func (s *Server) Close() {
	s.sessions.Close()
	s.streams.Close()
}

// Pool exposes the solver pool (stats, tests).
func (s *Server) Pool() *SolverPool { return s.pool }

// Streams exposes the shared ranked-stream cache (stats, tests).
func (s *Server) Streams() *StreamStore { return s.streams }

// Sessions exposes the session manager (stats, tests).
func (s *Server) Sessions() *SessionManager { return s.sessions }

// admit blocks until a concurrency slot frees up or ctx is cancelled.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// decodeRequest decodes a JSON request body under the configured body
// cap, writing the client error itself (400 for malformed JSON, 413 for
// an over-long body) and reporting whether the handler should proceed.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes (raise -max-body)", tooBig.Limit))
		} else {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON body: %v", err))
		}
		return false
	}
	return true
}

// handleEnumerate is the single-problem ingress: compile, admit, build
// the engine, respond. Every stage is shared with /v1/batch,
// /v1/hypergraph and /v1/csp — this handler is just the thinnest
// composition of the compilation layer (see compile.go).
func (s *Server) handleEnumerate(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	var req EnumerateRequest
	if !s.decodeRequest(w, r, &req) {
		return
	}
	s.workloads.enumerate.Add(1)
	cp, err := s.compileProblem(&req, r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	release, err := s.admit(ctx)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("cancelled while waiting for admission"))
		return
	}
	defer release()

	backend, dpSolver, hit, status, err := s.buildBackend(ctx, cp)
	if err != nil {
		writeError(w, status, err)
		return
	}

	if req.Stream {
		s.streamResults(w, r, cp.ClientGraph, backend, cp.Key, cp.FromCanon, req.MaxResults)
		return
	}

	var resp *EnumerateResponse
	if cp.Diverse > 0 {
		resp, _, status, err = s.diverseResponse(ctx, cp, backend, dpSolver, hit)
	} else {
		resp, _, status, err = s.pagedResponse(ctx, cp, backend, dpSolver, hit)
	}
	if err != nil {
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// canonicalize relabels the request's graph into canonical form (see
// graph.CanonicalForm) along with every label-carrying cost parameter —
// hyperedges and per-vertex domains — so that buildCost and the solver
// key downstream see only canonical labels. It returns the graph and
// hypergraph to use plus the canonical→client permutation for egress
// relabeling; a nil permutation means the results need no relabeling
// (the client already submitted canonical labels, or the labeling search
// blew its budget and the key stays label-sensitive — correct, merely
// missing cross-labeling dedup).
func (s *Server) canonicalize(req *EnumerateRequest, g *graph.Graph, h *hyper.Hypergraph) (*graph.Graph, *hyper.Hypergraph, []int) {
	s.canon.requests.Add(1)
	canonG, perm, exact := g.CanonicalForm()
	if !exact {
		s.canon.fallbacks.Add(1)
		return g, h, nil
	}
	identity := true
	for v, p := range perm {
		if v != p {
			identity = false
			break
		}
	}
	if identity {
		return g, h, nil
	}
	s.canon.relabeled.Add(1)
	if h != nil {
		nh := hyper.New(h.NumVertices())
		for _, e := range h.Edges() {
			nh.AddEdgeSet(e.Relabel(perm))
		}
		h = nh
	}
	// Domains are per-vertex parameters, so they must follow the vertices;
	// a wrong-length slice is left alone for buildCost to reject.
	if len(req.Domains) == g.Universe() {
		doms := make([]int, len(req.Domains))
		for v, d := range req.Domains {
			doms[perm[v]] = d
		}
		req.Domains = doms
	}
	fromCanon := make([]int, len(perm))
	for v, p := range perm {
		fromCanon[p] = v
	}
	return canonG, h, fromCanon
}

// streamWriteTimeout bounds each NDJSON line write. The stream holds an
// admission slot for its whole lifetime, so a client that accepts bytes
// arbitrarily slowly must not be able to park that slot forever.
const streamWriteTimeout = 30 * time.Second

// streamResults writes the enumeration as NDJSON lines bound to the
// request context: a disconnect cancels the hot loop, a stalled reader
// hits the per-line write deadline, and the stream's total lifetime is
// capped by Config.StreamTimeout so a slow-but-steady reader cannot park
// an admission slot forever. No session is created; the stream is the
// whole lifecycle. The results come from the same shared materialized
// stream the paging sessions read: concurrent NDJSON streams and sessions
// on one (graph, cost, bound, backend) key split a single enumeration
// between them instead of each running their own.
// Results are stored canonically; fromCanon (when non-nil) relabels each
// line back into the client's labeling on the way out.
func (s *Server) streamResults(w http.ResponseWriter, r *http.Request, g *graph.Graph, backend core.Backend, key SolverKey, fromCanon []int, max int) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.StreamTimeout)
	defer cancel()
	h := s.streams.Acquire(key, backend)
	defer h.Release()
	count := 0
	for max <= 0 || count < max {
		res, ok, err := h.At(ctx, count)
		if err != nil || !ok {
			break
		}
		if fromCanon != nil {
			res = core.RelabelResult(res, fromCanon)
		}
		rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
		if enc.Encode(resultJSON(g, count, res)) != nil {
			return // client gone or stalled past the deadline
		}
		count++
		if flusher != nil {
			flusher.Flush()
		}
	}
	rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
	summary := map[string]any{"done": true, "count": count}
	if ctx.Err() != nil && (max <= 0 || count < max) {
		// The stream-lifetime budget expired before exhaustion: the
		// client got a prefix, not the full enumeration.
		summary["done"] = false
		summary["truncated"] = true
	}
	enc.Encode(summary)
}

func (s *Server) handleNext(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	sess, err := s.sessions.Get(r.PathValue("token"))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	pageSize := s.cfg.PageSize
	if q := r.URL.Query().Get("page_size"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad page_size %q", q))
			return
		}
		if pageSize, err = clampPageSize(n, s.cfg.PageSize); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	release, err := s.admit(ctx)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("cancelled while waiting for admission"))
		return
	}
	defer release()

	if q := r.URL.Query().Get("from"); q != "" {
		from, err := strconv.Atoi(q)
		if err != nil || from < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad from %q", q))
			return
		}
		// Replay is the recovery path for a page lost in flight: any rank
		// the session already committed re-serves from the shared stream
		// buffer. It runs under an admission slot because a buffer the
		// byte budget evicted rebuilds (deterministically) on demand.
		start, results, done, ok, rerr := sess.Replay(ctx, from, pageSize)
		if !ok {
			writeError(w, http.StatusConflict,
				fmt.Errorf("rank %d is not replayable: it lies beyond the session's cursor", from))
			return
		}
		if rerr != nil {
			switch {
			case errors.Is(rerr, ErrSessionNotFound):
				writeError(w, http.StatusNotFound, ErrSessionNotFound)
			case ctx.Err() != nil || errors.Is(rerr, context.Canceled) || errors.Is(rerr, context.DeadlineExceeded):
				writeError(w, http.StatusServiceUnavailable, errors.New("request cancelled"))
			default:
				// Anything else is a broken invariant (a committed rank that
				// failed to rematerialize) — report it as the server bug it
				// is, not as client cancellation.
				writeError(w, http.StatusInternalServerError, rerr)
			}
			return
		}
		if len(results) > 0 {
			resp := &EnumerateResponse{Done: done, Results: pageJSON(sess.graphOf(), start, sess.egress(results))}
			if !done {
				resp.Session = sess.Token
			}
			writeJSON(w, http.StatusOK, resp)
			return
		}
		// from equals the live cursor; fall through to normal paging.
	}

	start, results, done, pageErr := sess.NextPage(ctx, pageSize)
	if pageErr != nil {
		if errors.Is(pageErr, ErrSessionNotFound) {
			// Evicted or shut down between lookup and paging.
			writeError(w, http.StatusNotFound, ErrSessionNotFound)
			return
		}
		// The paging request died; the page is parked for redelivery and
		// the session stays resumable. The response likely goes nowhere.
		writeError(w, http.StatusServiceUnavailable, errors.New("request cancelled"))
		return
	}
	if done {
		s.sessions.Remove(sess.Token)
	}
	resp := &EnumerateResponse{Done: done, Results: pageJSON(sess.graphOf(), start, sess.egress(results))}
	if !done {
		resp.Session = sess.Token
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	sess, err := s.sessions.Get(r.PathValue("token"))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, sess.Info())
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if !s.sessions.Remove(r.PathValue("token")) {
		writeError(w, http.StatusNotFound, ErrSessionNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, &StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Load(),
		Pool:          s.pool.Stats(),
		Sessions:      s.sessions.Stats(),
		Solver:        s.pool.ReuseStats(),
		Atoms:         s.pool.AtomStats(),
		Streams:       s.streams.Stats(),
		Prefetch:      s.prefetchStats(),
		Backends:      s.backends.stats(),
		Canon:         s.canon.stats(!s.cfg.NoCanon),
		Orbits:        s.orbits.stats(s.cfg.DefaultOrbits),
		Workloads:     s.workloads.stats(),
	})
}

// prefetchStats snapshots the serving tier's speculation counters for
// /v1/stats, labelled with the configuration that produced them.
func (s *Server) prefetchStats() PrefetchStats {
	agg := s.streams.PrefetchStats()
	return PrefetchStats{
		Enabled:            s.cfg.PrefetchAhead > 0,
		SolveWorkers:       s.cfg.SolveWorkers,
		AheadRanks:         s.cfg.PrefetchAhead,
		AheadBytes:         s.cfg.PrefetchBytes,
		BufferedHits:       agg.Hits,
		DemandSolves:       agg.DemandSolves,
		PrefetchSolves:     agg.PrefetchSolves,
		Pauses:             agg.Pauses,
		Resumes:            agg.Resumes,
		LookaheadHighWater: agg.LookaheadHighWater,
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

// solverInfo snapshots one solver for the enumerate response, including
// the atom decomposition shape when the solver routes through it.
func solverInfo(solver *core.Solver) *SolverInfo {
	info := &SolverInfo{
		MinimalSeparators: len(solver.MinimalSeparators()),
		PMCs:              len(solver.PMCs()),
		FullBlocks:        solver.NumFullBlocks(),
		InitMillis:        solver.InitDuration.Milliseconds(),
	}
	if dec := solver.Atoms(); dec != nil {
		info.Atoms = dec.Count()
		info.LargestAtom = dec.LargestAtom()
	}
	return info
}

func pageJSON(g *graph.Graph, start int, results []*core.Result) []TriangulationJSON {
	out := make([]TriangulationJSON, len(results))
	for i, r := range results {
		out[i] = resultJSON(g, start+i, r)
	}
	return out
}

func clampPageSize(requested, def int) (int, error) {
	if requested < 0 {
		return 0, errors.New("page_size must be positive")
	}
	if requested == 0 {
		return def, nil
	}
	if requested > maxPageSize {
		return maxPageSize, nil
	}
	return requested, nil
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrSessionNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrTooManySessions):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, &ErrorResponse{Error: err.Error()})
}
