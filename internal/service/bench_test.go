package service

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exp"
)

// benchGraphs returns the small end of the Grids experiment family — the
// serving-layer baseline graphs. Larger experiment graphs are excluded so
// the cold-init benchmark stays minutes-free; the cold/cached ratio is
// what later perf PRs track, not the absolute init time.
func benchGraphs(b *testing.B) []exp.NamedGraph {
	for _, ds := range exp.Datasets(1) {
		if ds.Name != "Grids" {
			continue
		}
		var out []exp.NamedGraph
		for _, ng := range ds.Graphs {
			if ng.Graph.NumVertices() <= 16 {
				out = append(out, ng)
			}
		}
		if len(out) == 0 {
			b.Fatal("no small grid graphs in the experiment corpus")
		}
		return out
	}
	b.Fatal("Grids dataset missing from the experiment corpus")
	return nil
}

// BenchmarkSolverPoolColdInit measures the miss path: full solver
// initialization (minimal separators, PMCs, blocks) through the pool.
func BenchmarkSolverPoolColdInit(b *testing.B) {
	graphs := benchGraphs(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pool := NewSolverPool(len(graphs))
		for _, ng := range graphs {
			g := ng.Graph
			key := SolverKey{Fingerprint: g.Fingerprint(), Cost: "width", Bound: -1}
			if _, _, err := pool.Get(context.Background(), key, func(ctx context.Context) (*core.Solver, error) {
				return core.NewSolverContext(ctx, g, cost.Width{})
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSolverPoolCachedFetch measures the hit path: fingerprint
// hashing plus the LRU lookup, the steady-state cost of a re-submitted
// graph.
func BenchmarkSolverPoolCachedFetch(b *testing.B) {
	graphs := benchGraphs(b)
	pool := NewSolverPool(len(graphs))
	for _, ng := range graphs {
		g := ng.Graph
		key := SolverKey{Fingerprint: g.Fingerprint(), Cost: "width", Bound: -1}
		if _, _, err := pool.Get(context.Background(), key, func(ctx context.Context) (*core.Solver, error) {
			return core.NewSolverContext(ctx, g, cost.Width{})
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graphs[i%len(graphs)].Graph
		key := SolverKey{Fingerprint: g.Fingerprint(), Cost: "width", Bound: -1}
		_, hit, err := pool.Get(context.Background(), key, func(ctx context.Context) (*core.Solver, error) {
			b.Fatal("cached fetch must not rebuild")
			return nil, nil
		})
		if err != nil || !hit {
			b.Fatalf("want cache hit, got hit=%v err=%v", hit, err)
		}
	}
}
