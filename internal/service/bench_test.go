package service

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exp"
	"repro/internal/gen"
)

// benchGraphs returns the small end of the Grids experiment family — the
// serving-layer baseline graphs. Larger experiment graphs are excluded so
// the cold-init benchmark stays minutes-free; the cold/cached ratio is
// what later perf PRs track, not the absolute init time.
func benchGraphs(b *testing.B) []exp.NamedGraph {
	for _, ds := range exp.Datasets(1) {
		if ds.Name != "Grids" {
			continue
		}
		var out []exp.NamedGraph
		for _, ng := range ds.Graphs {
			if ng.Graph.NumVertices() <= 16 {
				out = append(out, ng)
			}
		}
		if len(out) == 0 {
			b.Fatal("no small grid graphs in the experiment corpus")
		}
		return out
	}
	b.Fatal("Grids dataset missing from the experiment corpus")
	return nil
}

// BenchmarkSharedStreamFanout is the headline number of the shared
// ranked-stream cache: N concurrent clients consuming the same ranked
// prefix of one graph. With private enumerators (the pre-cache serving
// model) the enumeration work — constrained Lawler–Murty branch solves —
// is N× that of a single client; through the StreamStore the first cursor
// to reach each rank solves it once and everyone else reads the buffer,
// so total work approaches 1×. The solves/op metric reports the measured
// work per iteration; compare shared vs private.
func BenchmarkSharedStreamFanout(b *testing.B) {
	const clients = 8
	const ranks = 100
	g := gen.Cycle(9) // Catalan(7) = 429 minimal triangulations, no atoms
	solver, err := core.NewSolverContext(context.Background(), g, cost.FillIn{})
	if err != nil {
		b.Fatal(err)
	}
	key := SolverKey{Fingerprint: g.Fingerprint(), Cost: "fill", Bound: -1}

	// Consumers run on their own goroutines, so failures are reported with
	// b.Error (goroutine-safe) rather than b.Fatal (test-goroutine only).
	consume := func(b *testing.B, next func(i int) (*core.Result, bool)) {
		for i := 0; i < ranks; i++ {
			if _, ok := next(i); !ok {
				b.Errorf("stream ended early at rank %d", i)
				return
			}
		}
	}

	b.Run("shared", func(b *testing.B) {
		before := solver.ReuseStats().ConstrainedSolves
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			store := NewStreamStore(0, 0) // fresh store: every iteration re-enumerates once
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					h := store.Acquire(key, solver)
					defer h.Release()
					consume(b, func(i int) (*core.Result, bool) {
						r, ok, err := h.At(context.Background(), i)
						if err != nil {
							b.Error(err)
							return nil, false
						}
						return r, ok
					})
				}()
			}
			wg.Wait()
		}
		b.StopTimer()
		solves := solver.ReuseStats().ConstrainedSolves - before
		b.ReportMetric(float64(solves)/float64(b.N), "solves/op")
	})

	b.Run("private", func(b *testing.B) {
		before := solver.ReuseStats().ConstrainedSolves
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					e := solver.EnumerateContext(context.Background())
					consume(b, func(int) (*core.Result, bool) { return e.Next() })
				}()
			}
			wg.Wait()
		}
		b.StopTimer()
		solves := solver.ReuseStats().ConstrainedSolves - before
		b.ReportMetric(float64(solves)/float64(b.N), "solves/op")
	})
}

// BenchmarkCanonFanout is the headline number of canonical cache keying:
// N concurrent clients submit the SAME graph under DIFFERENT vertex
// numberings — the workload label-sensitive keys cannot deduplicate. With
// canonical keys all N requests collapse onto one solver and one
// materialized stream (plus a per-client relabel on egress), so the
// enumeration work approaches the 1× of a solo client; with -no-canon
// every labeling builds and enumerates privately at N× cost. The whole
// HTTP enumerate path runs, so solver init is included — canonical keys
// dedup that too. Compare solves/op across canon, no-canon and solo.
func BenchmarkCanonFanout(b *testing.B) {
	const clients = 8
	const ranks = 100
	rng := rand.New(rand.NewSource(42))
	copies := gen.IsoCopies(rng, gen.Cycle(9), clients) // Catalan(7) = 429 results per labeling

	bodies := make([]string, clients)
	for i, g := range copies {
		edges, err := json.Marshal(g.Edges())
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = fmt.Sprintf(`{"n": %d, "edges": %s, "cost": "fill", "page_size": %d}`, g.Universe(), edges, ranks)
	}

	run := func(b *testing.B, nClients int, noCanon bool) {
		b.ReportAllocs()
		var solves uint64
		for i := 0; i < b.N; i++ {
			// A fresh server per iteration: every fan-out starts from a cold
			// pool and stream store. Sequential solving and no speculation
			// keep the work accounting deterministic.
			srv := New(Config{NoCanon: noCanon, MaxConcurrent: clients * 2, SolveWorkers: 1, PrefetchAhead: -1})
			var wg sync.WaitGroup
			for c := 0; c < nClients; c++ {
				wg.Add(1)
				go func(body string) {
					defer wg.Done()
					req := httptest.NewRequest("POST", "/v1/enumerate", strings.NewReader(body))
					rec := httptest.NewRecorder()
					srv.ServeHTTP(rec, req)
					if rec.Code != 200 {
						b.Errorf("enumerate: status %d: %s", rec.Code, rec.Body.String())
						return
					}
					var resp EnumerateResponse
					if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
						b.Error(err)
						return
					}
					if len(resp.Results) != ranks {
						b.Errorf("got %d results, want %d", len(resp.Results), ranks)
					}
				}(bodies[c])
			}
			wg.Wait()
			b.StopTimer()
			solves += srv.Pool().ReuseStats().ConstrainedSolves
			srv.Close()
			b.StartTimer()
		}
		b.ReportMetric(float64(solves)/float64(b.N), "solves/op")
	}

	b.Run("canon", func(b *testing.B) { run(b, clients, false) })
	b.Run("no-canon", func(b *testing.B) { run(b, clients, true) })
	b.Run("solo", func(b *testing.B) { run(b, 1, false) })
}

// BenchmarkPrefetchReadLatency measures what speculation buys a paced
// consumer: per-rank read latency (p50/p99, reported in ns) of a cursor
// that thinks for ~1ms between reads — the serving-tier shape, where
// client round-trips leave the producer idle wall-clock. With prefetch
// the speculative producer spends that think-time running ahead, so the
// cursor's reads are buffer hits; the demand baseline solves a
// Lawler–Murty branch on the latency path of every read.
func BenchmarkPrefetchReadLatency(b *testing.B) {
	const ranks = 100
	const think = time.Millisecond
	run := func(b *testing.B, tune bool) {
		g := gen.Cycle(9) // 429 minimal triangulations
		solver, err := core.NewSolverContext(context.Background(), g, cost.FillIn{})
		if err != nil {
			b.Fatal(err)
		}
		key := SolverKey{Fingerprint: g.Fingerprint(), Cost: "fill", Bound: -1}
		var lat []time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			store := NewStreamStore(0, 0) // fresh store: every iteration starts cold
			if tune {
				store.Tune(1, ranks+16, 0)
			}
			h := store.Acquire(key, solver)
			// The first read raises the demand mark (starting the producer
			// when speculation is on); it is cold in both variants and not a
			// sample.
			if _, ok, err := h.At(context.Background(), 0); !ok || err != nil {
				b.Fatalf("rank 0: ok=%v err=%v", ok, err)
			}
			for r := 1; r < ranks; r++ {
				time.Sleep(think)
				start := time.Now()
				_, ok, err := h.At(context.Background(), r)
				lat = append(lat, time.Since(start))
				if !ok || err != nil {
					b.Fatalf("rank %d: ok=%v err=%v", r, ok, err)
				}
			}
			h.Release()
			store.Close()
		}
		b.StopTimer()
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		b.ReportMetric(float64(lat[len(lat)/2]), "p50-ns")
		b.ReportMetric(float64(lat[len(lat)*99/100]), "p99-ns")
	}
	b.Run("prefetch", func(b *testing.B) { run(b, true) })
	b.Run("demand", func(b *testing.B) { run(b, false) })
}

// BenchmarkSolverPoolColdInit measures the miss path: full solver
// initialization (minimal separators, PMCs, blocks) through the pool.
func BenchmarkSolverPoolColdInit(b *testing.B) {
	graphs := benchGraphs(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pool := NewSolverPool(len(graphs))
		for _, ng := range graphs {
			g := ng.Graph
			key := SolverKey{Fingerprint: g.Fingerprint(), Cost: "width", Bound: -1}
			if _, _, err := pool.Get(context.Background(), key, func(ctx context.Context) (*core.Solver, error) {
				return core.NewSolverContext(ctx, g, cost.Width{})
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSolverPoolCachedFetch measures the hit path: fingerprint
// hashing plus the LRU lookup, the steady-state cost of a re-submitted
// graph.
func BenchmarkSolverPoolCachedFetch(b *testing.B) {
	graphs := benchGraphs(b)
	pool := NewSolverPool(len(graphs))
	for _, ng := range graphs {
		g := ng.Graph
		key := SolverKey{Fingerprint: g.Fingerprint(), Cost: "width", Bound: -1}
		if _, _, err := pool.Get(context.Background(), key, func(ctx context.Context) (*core.Solver, error) {
			return core.NewSolverContext(ctx, g, cost.Width{})
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graphs[i%len(graphs)].Graph
		key := SolverKey{Fingerprint: g.Fingerprint(), Cost: "width", Bound: -1}
		_, hit, err := pool.Get(context.Background(), key, func(ctx context.Context) (*core.Solver, error) {
			b.Fatal("cached fetch must not rebuild")
			return nil, nil
		})
		if err != nil || !hit {
			b.Fatalf("want cache hit, got hit=%v err=%v", hit, err)
		}
	}
}

// BenchmarkBatchThroughput is the /v1/batch headline: one request
// carrying N isomorphic problems (the batchy templated workload of PR 8,
// now in a single round trip) against the full handler stack. The
// compile layer collapses the members onto one canonical solver/stream
// key, so per-iteration work approaches one solve plus N-1 cache reads;
// problems/sec is the reported throughput metric.
func BenchmarkBatchThroughput(b *testing.B) {
	const members = 8
	srv := New(Config{})
	defer srv.Close()
	rng := rand.New(rand.NewSource(11))
	copies := gen.IsoCopies(rng, gen.Cycle(8), members)
	var problems []string
	for _, g := range copies {
		edges, err := json.Marshal(g.Edges())
		if err != nil {
			b.Fatal(err)
		}
		problems = append(problems, fmt.Sprintf(`{"edges": %s, "cost": "fill", "page_size": 5}`, edges))
	}
	body := fmt.Sprintf(`{"problems": [%s]}`, strings.Join(problems, ","))

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/batch", strings.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
		}
		var out BatchResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			b.Fatal(err)
		}
		if out.Errors != 0 || len(out.Items) != members {
			b.Fatalf("batch failed: %d errors over %d items", out.Errors, len(out.Items))
		}
		// Keep the session table from saturating across iterations.
		for _, item := range out.Items {
			if item.Response != nil && item.Response.Session != "" {
				srv.Sessions().Remove(item.Response.Session)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*members)/b.Elapsed().Seconds(), "problems/sec")
}
