package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/csp"
	"repro/internal/gen"
	"repro/internal/hyper"
)

// postJSON posts a body to an endpoint and returns the raw outcome; the
// caller owns status-code expectations.
func postJSON(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func decodeEnumerate(t *testing.T, data []byte) *EnumerateResponse {
	t.Helper()
	var out EnumerateResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decode %s: %v", data, err)
	}
	return &out
}

// edgesJSON renders a graph as the edge-list request fragment.
func edgesJSON(t *testing.T, edges [][2]int) string {
	t.Helper()
	data, err := json.Marshal(edges)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestKnobPrecedence pins the query > body > default resolution the
// shared knob helper gives every endpoint, on the backend and orbits
// knobs.
func TestKnobPrecedence(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultBackend: "dp"})
	g6 := cycleGraph6(t, 5)
	body := fmt.Sprintf(`{"graph6": %q, "backend": "mis"}`, g6)

	// Body field beats the server default.
	status, data := postJSON(t, ts, "/v1/enumerate", body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	if resp := decodeEnumerate(t, data); resp.Backend != "mis" {
		t.Fatalf("body knob: backend %q, want mis", resp.Backend)
	}
	// Query knob beats the body field.
	status, data = postJSON(t, ts, "/v1/enumerate?backend=dp", body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	if resp := decodeEnumerate(t, data); resp.Backend != "dp" {
		t.Fatalf("query knob: backend %q, want dp", resp.Backend)
	}
	// Neither set: the server default.
	status, data = postJSON(t, ts, "/v1/enumerate", fmt.Sprintf(`{"graph6": %q}`, g6))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	if resp := decodeEnumerate(t, data); resp.Backend != "dp" {
		t.Fatalf("default: backend %q, want dp", resp.Backend)
	}
	// A malformed query value is the canonical "bad <knob>" client error.
	status, data = postJSON(t, ts, "/v1/enumerate?orbits=maybe", body)
	if status != http.StatusBadRequest || !strings.Contains(string(data), "bad orbits") {
		t.Fatalf("bad orbits: status %d body %s", status, data)
	}
	status, data = postJSON(t, ts, "/v1/enumerate?diverse=x", body)
	if status != http.StatusBadRequest || !strings.Contains(string(data), "bad diverse") {
		t.Fatalf("bad diverse: status %d body %s", status, data)
	}
	// The query orbits knob rides through on every endpoint, e.g.
	// /v1/hypergraph rejects it for a hypergraph cost via the usual gate.
	status, data = postJSON(t, ts, "/v1/hypergraph?orbits=1", `{"hyperedges": [[0,1,2],[2,3]]}`)
	if status != http.StatusBadRequest || !strings.Contains(string(data), "label-invariant") {
		t.Fatalf("hypergraph orbit gate: status %d body %s", status, data)
	}
}

// TestEnumerateWireShapeUnchanged pins the /v1/enumerate response to its
// pre-compile-layer key set: the new response fields (diverse, window,
// hypergraph, csp) must stay omitted on classic requests so the refactor
// is byte-invisible to existing clients.
func TestEnumerateWireShapeUnchanged(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, data := postJSON(t, ts, "/v1/enumerate",
		fmt.Sprintf(`{"graph6": %q, "cost": "fill", "page_size": 2}`, cycleGraph6(t, 5)))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	allowed := map[string]bool{
		"session": true, "done": true, "cache_hit": true, "cost": true,
		"backend": true, "ranked": true, "orbits": true, "graph": true,
		"solver": true, "results": true,
	}
	for k := range raw {
		if !allowed[k] {
			t.Fatalf("unexpected key %q leaked into the classic enumerate response: %s", k, data)
		}
	}
}

// TestDiverseResponseMode drives ?diverse=k end to end and oracles it
// against core.DiverseTopK on the same graph, cost and window.
func TestDiverseResponseMode(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	g := gen.Cycle(7) // Catalan(5) = 42 minimal triangulations
	g6 := cycleGraph6(t, 7)

	status, data := postJSON(t, ts, "/v1/enumerate?diverse=3",
		fmt.Sprintf(`{"graph6": %q, "cost": "fill"}`, g6))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	resp := decodeEnumerate(t, data)
	if !resp.Done || resp.Session != "" {
		t.Fatalf("diverse responses are one-shot: done=%v session=%q", resp.Done, resp.Session)
	}
	if resp.Diverse != 3 || resp.Window != 12 {
		t.Fatalf("diverse/window = %d/%d, want 3/12", resp.Diverse, resp.Window)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("%d results, want 3", len(resp.Results))
	}
	if resp.Results[0].Index != 0 {
		t.Fatalf("the optimum (rank 0) must lead, got index %d", resp.Results[0].Index)
	}
	// Indices are ranks into the underlying enumeration, strictly inside
	// the window.
	for _, r := range resp.Results[1:] {
		if r.Index <= 0 || r.Index >= 12 {
			t.Fatalf("index %d outside the (0, window) range", r.Index)
		}
	}
	// Oracle: the library-level DiverseTopK over the same window picks the
	// same cost multiset.
	s := core.NewSolver(g, cost.FillIn{})
	want := s.DiverseTopK(3, 12)
	for i, r := range resp.Results {
		if r.Cost != want[i].Cost {
			t.Fatalf("rank %d: cost %v, want %v", i, r.Cost, want[i].Cost)
		}
	}

	// A window larger than the finite stream truncates to what exists.
	status, data = postJSON(t, ts, "/v1/enumerate",
		fmt.Sprintf(`{"graph6": %q, "cost": "fill", "diverse": 3, "window": 100}`, cycleGraph6(t, 5)))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	resp = decodeEnumerate(t, data)
	if resp.Window != 5 || len(resp.Results) != 3 {
		t.Fatalf("C5 window/results = %d/%d, want 5/3", resp.Window, len(resp.Results))
	}

	// k larger than the whole stream returns everything.
	status, data = postJSON(t, ts, "/v1/enumerate?diverse=9&window=100",
		fmt.Sprintf(`{"graph6": %q, "cost": "fill"}`, cycleGraph6(t, 5)))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	if resp = decodeEnumerate(t, data); len(resp.Results) != 5 {
		t.Fatalf("k beyond stream: %d results, want all 5", len(resp.Results))
	}

	// Contract errors.
	for body, wantSub := range map[string]string{
		fmt.Sprintf(`{"graph6": %q, "diverse": 2, "stream": true}`, g6): "cannot be combined with stream",
		fmt.Sprintf(`{"graph6": %q, "window": 8}`, g6):                  "window requires diverse",
		fmt.Sprintf(`{"graph6": %q, "diverse": 2, "window": 1}`, g6):    "window must be at least diverse",
		fmt.Sprintf(`{"graph6": %q, "diverse": -1}`, g6):                "diverse must be non-negative",
	} {
		status, data = postJSON(t, ts, "/v1/enumerate", body)
		if status != http.StatusBadRequest || !strings.Contains(string(data), wantSub) {
			t.Fatalf("%s: status %d body %s (want %q)", body, status, data, wantSub)
		}
	}
}

// TestBatchIsomorphicDedup is the batching payoff: N isomorphic problems
// in one batch cost one solver build — the canonical compile keys
// collapse them onto one pool entry and one materialized stream.
func TestBatchIsomorphicDedup(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	const n = 6
	rng := rand.New(rand.NewSource(7))
	copies := gen.IsoCopies(rng, gen.Cycle(6), n)

	var problems []string
	for _, g := range copies {
		problems = append(problems,
			fmt.Sprintf(`{"edges": %s, "cost": "fill", "page_size": 4}`, edgesJSON(t, g.Edges())))
	}
	status, data := postJSON(t, ts, "/v1/batch",
		fmt.Sprintf(`{"problems": [%s]}`, strings.Join(problems, ",")))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	var batch BatchResponse
	if err := json.Unmarshal(data, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Items) != n || batch.Errors != 0 {
		t.Fatalf("items=%d errors=%d, want %d/0", len(batch.Items), batch.Errors, n)
	}
	// Every member sees the identical ranked cost sequence (costs are
	// label-invariant; representatives differ by each client's labeling).
	first := batch.Items[0].Response
	if first == nil || len(first.Results) != 4 {
		t.Fatalf("bad first item: %+v", batch.Items[0])
	}
	for i, item := range batch.Items {
		if item.Response == nil {
			t.Fatalf("item %d failed: %s", i, item.Error)
		}
		for j := range item.Response.Results {
			if item.Response.Results[j].Cost != first.Results[j].Cost {
				t.Fatalf("item %d rank %d: cost %v diverges from item 0's %v",
					i, j, item.Response.Results[j].Cost, first.Results[j].Cost)
			}
		}
	}

	// 1× solo cost: one solver built, every other member a pool hit; the
	// canon funnel recorded cross-labeling hits.
	stats := getStats(t, ts)
	if stats.Pool.Misses != 1 {
		t.Fatalf("pool misses = %d, want 1 (N isomorphic members must build once)", stats.Pool.Misses)
	}
	if stats.Pool.Hits != n-1 {
		t.Fatalf("pool hits = %d, want %d", stats.Pool.Hits, n-1)
	}
	if stats.Canon.Hits == 0 {
		t.Fatal("canon hits = 0: relabeled members did not ride the shared solver")
	}
	if stats.Workloads.Batch != 1 || stats.Workloads.BatchProblems != n {
		t.Fatalf("workload counters batch=%d problems=%d, want 1/%d",
			stats.Workloads.Batch, stats.Workloads.BatchProblems, n)
	}
	// Items are resumable sessions like any enumerate response.
	if first.Session == "" {
		t.Fatal("undone batch item carries no resume token")
	}
	next, code := getNext(t, ts, first.Session, 4)
	if code != http.StatusOK || len(next.Results) == 0 {
		t.Fatalf("batch item session next: code %d", code)
	}
	_ = srv
}

// TestBatchMixedOutcomes pins per-item error isolation: a bad member
// reports in place and never fails its neighbors, and batch-wide query
// knobs flow into every item through the shared compile layer.
func TestBatchMixedOutcomes(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatchItems: 4})
	g6 := cycleGraph6(t, 5)
	status, data := postJSON(t, ts, "/v1/batch?diverse=2",
		fmt.Sprintf(`{"problems": [
			{"graph6": %q, "cost": "fill"},
			{"graph6": "not-a-graph"},
			{"graph6": %q, "stream": true}
		]}`, g6, g6))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	var batch BatchResponse
	if err := json.Unmarshal(data, &batch); err != nil {
		t.Fatal(err)
	}
	if batch.Errors != 2 {
		t.Fatalf("errors = %d, want 2: %s", batch.Errors, data)
	}
	ok := batch.Items[0]
	if ok.Response == nil || ok.Response.Diverse != 2 || len(ok.Response.Results) != 2 {
		t.Fatalf("knobbed item: %+v (%s)", ok, data)
	}
	if batch.Items[1].Error == "" || batch.Items[2].Error == "" {
		t.Fatalf("bad members did not report: %s", data)
	}

	// Cap and emptiness are whole-batch client errors.
	status, data = postJSON(t, ts, "/v1/batch", `{"problems": []}`)
	if status != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d %s", status, data)
	}
	five := strings.Repeat(fmt.Sprintf(`{"graph6": %q},`, g6), 4) + fmt.Sprintf(`{"graph6": %q}`, g6)
	status, data = postJSON(t, ts, "/v1/batch", `{"problems": [`+five+`]}`)
	if status != http.StatusBadRequest || !strings.Contains(string(data), "limit is 4") {
		t.Fatalf("over-cap batch: status %d %s", status, data)
	}
}

// joinoptHypergraph is the examples/joinopt schema: six relations over
// nine attributes, the join-optimization oracle workload.
func joinoptHypergraph() *hyper.Hypergraph {
	h := hyper.New(9)
	h.AddEdge(0, 1, 2) // R
	h.AddEdge(2, 3)    // S
	h.AddEdge(3, 4, 5) // T
	h.AddEdge(5, 6)    // U
	h.AddEdge(6, 7, 0) // V
	h.AddEdge(7, 8)    // W
	return h
}

// TestHypergraphEndpointOracle replays the joinopt example through
// /v1/hypergraph and checks the ranked cost sequences against the
// library path it wraps, for both the default hypertree cost and an
// explicit lex override.
func TestHypergraphEndpointOracle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	h := joinoptHypergraph()
	hyperedges := `[[0,1,2],[2,3],[3,4,5],[5,6],[6,7,0],[7,8]]`

	oracle := func(c cost.Cost, k int) []float64 {
		t.Helper()
		s, err := core.NewSolverContext(context.Background(), h.Primal(), c)
		if err != nil {
			t.Fatal(err)
		}
		results := s.TopK(k)
		costs := make([]float64, len(results))
		for i, r := range results {
			costs[i] = r.Cost
		}
		return costs
	}

	status, data := postJSON(t, ts, "/v1/hypergraph",
		fmt.Sprintf(`{"hyperedges": %s, "page_size": 6}`, hyperedges))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	resp := decodeEnumerate(t, data)
	if resp.Cost != "hypertree-width" {
		t.Fatalf("default hypergraph cost %q, want hypertree-width", resp.Cost)
	}
	if resp.Hypergraph == nil || resp.Hypergraph.Vertices != 9 ||
		resp.Hypergraph.Hyperedges != 6 || resp.Hypergraph.PrimalEdges != h.Primal().NumEdges() {
		t.Fatalf("hypergraph info: %+v", resp.Hypergraph)
	}
	want := oracle(h.HypertreeWidthCost(), 6)
	if len(resp.Results) != len(want) {
		t.Fatalf("%d results, want %d", len(resp.Results), len(want))
	}
	for i, r := range resp.Results {
		if r.Cost != want[i] {
			t.Fatalf("hypertree rank %d: cost %v, want %v", i, r.Cost, want[i])
		}
	}

	// The cost knob stays open: lex ranking over the same primal graph.
	status, data = postJSON(t, ts, "/v1/hypergraph",
		fmt.Sprintf(`{"hyperedges": %s, "cost": "lex", "page_size": 6}`, hyperedges))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	resp = decodeEnumerate(t, data)
	want = oracle(cost.LexWidthFill{}, 6)
	for i, r := range resp.Results {
		if r.Cost != want[i] {
			t.Fatalf("lex rank %d: cost %v, want %v", i, r.Cost, want[i])
		}
	}

	// Input contract: hyperedges only, and hyperedges required.
	status, data = postJSON(t, ts, "/v1/hypergraph", `{"graph6": "DqK"}`)
	if status != http.StatusBadRequest || !strings.Contains(string(data), "requires hyperedges") {
		t.Fatalf("graph6 to hypergraph: status %d %s", status, data)
	}
	status, data = postJSON(t, ts, "/v1/hypergraph",
		fmt.Sprintf(`{"hyperedges": %s, "edges": [[0,1]]}`, hyperedges))
	if status != http.StatusBadRequest || !strings.Contains(string(data), "hyperedges only") {
		t.Fatalf("mixed sources: status %d %s", status, data)
	}
}

// bayesCSP models the examples/bayes moral graph as a CSP whose
// constraints allow every combination: the constraint graph is exactly
// the moral graph, the statespace ranking matches the example's, and the
// solution count is the full joint state space.
func bayesCSP() (domains []int, constraints string, jointSize int64) {
	domains = []int{8, 3, 6, 6, 2, 2, 2, 2, 3, 3}
	edges := [][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {2, 4}, {2, 5}, {3, 6}, {3, 7}, {2, 7}, {4, 8}, {5, 8}, {6, 9}, {3, 9}}
	var cs []string
	for _, e := range edges {
		var tuples []string
		for a := 0; a < domains[e[0]]; a++ {
			for b := 0; b < domains[e[1]]; b++ {
				tuples = append(tuples, fmt.Sprintf("[%d,%d]", a, b))
			}
		}
		cs = append(cs, fmt.Sprintf(`{"scope": [%d,%d], "allowed": [%s]}`, e[0], e[1], strings.Join(tuples, ",")))
	}
	jointSize = 1
	for _, d := range domains {
		jointSize *= int64(d)
	}
	return domains, "[" + strings.Join(cs, ",") + "]", jointSize
}

// TestCSPEndpointBayesOracle replays the examples/bayes workload through
// /v1/csp: the ranked statespace order must match the direct library
// solve over the moral graph, and the all-allowed constraint count must
// equal the joint state space.
func TestCSPEndpointBayesOracle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	domains, constraints, joint := bayesCSP()
	domJSON, _ := json.Marshal(domains)

	status, data := postJSON(t, ts, "/v1/csp",
		fmt.Sprintf(`{"domains": %s, "constraints": %s, "page_size": 5, "count": true}`, domJSON, constraints))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	resp := decodeEnumerate(t, data)
	if resp.Cost != "state-space" {
		t.Fatalf("default csp cost %q, want state-space", resp.Cost)
	}

	// Oracle ranking: the direct bayes-example path — statespace cost over
	// the moral (= constraint) graph.
	p := csp.NewProblem(domains)
	for _, e := range [][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {2, 4}, {2, 5}, {3, 6}, {3, 7}, {2, 7}, {4, 8}, {5, 8}, {6, 9}, {3, 9}} {
		p.AllowFunc(e[0], e[1], func(a, b int) bool { return true })
	}
	s, err := core.NewSolverContext(context.Background(), p.ConstraintGraph(), cost.TotalStateSpace{Domain: domains})
	if err != nil {
		t.Fatal(err)
	}
	want := s.TopK(5)
	if len(resp.Results) != len(want) {
		t.Fatalf("%d results, want %d", len(resp.Results), len(want))
	}
	for i, r := range resp.Results {
		if r.Cost != want[i].Cost {
			t.Fatalf("rank %d: cost %v, want %v", i, r.Cost, want[i].Cost)
		}
	}

	// All-allowed constraints: every assignment satisfies, so the count is
	// the joint state space — and it must agree with the library DP run
	// over the same top-ranked decomposition.
	if resp.CSP == nil || resp.CSP.Count == nil {
		t.Fatalf("no csp count block: %s", data)
	}
	if *resp.CSP.Count != joint || !resp.CSP.Satisfiable {
		t.Fatalf("count = %d satisfiable=%v, want %d/true", *resp.CSP.Count, resp.CSP.Satisfiable, joint)
	}
}

// TestCSPSolveCountAndUnsat covers the payoff semantics on a real
// constraint structure: proper 3-colorings of C5 (30 of them), assignment
// validity, and — via an empty allowed set — a definitively unsatisfiable
// problem, the case csp.Constrain exists for.
func TestCSPSolveCountAndUnsat(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// C5 3-coloring: chromatic polynomial gives (3-1)^5 - 2 = 30.
	neq := func(x, y int) string {
		var tuples []string
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				if a != b {
					tuples = append(tuples, fmt.Sprintf("[%d,%d]", a, b))
				}
			}
		}
		return fmt.Sprintf(`{"scope": [%d,%d], "allowed": [%s]}`, x, y, strings.Join(tuples, ","))
	}
	body := fmt.Sprintf(`{"domains": [3,3,3,3,3], "constraints": [%s,%s,%s,%s,%s], "solve": true, "count": true}`,
		neq(0, 1), neq(1, 2), neq(2, 3), neq(3, 4), neq(4, 0))
	status, data := postJSON(t, ts, "/v1/csp", body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	resp := decodeEnumerate(t, data)
	if resp.CSP == nil || resp.CSP.Count == nil {
		t.Fatalf("no csp block: %s", data)
	}
	if *resp.CSP.Count != 30 {
		t.Fatalf("C5 3-colorings = %d, want 30", *resp.CSP.Count)
	}
	if !resp.CSP.Satisfiable || len(resp.CSP.Assignment) != 5 {
		t.Fatalf("bad solution: %+v", resp.CSP)
	}
	asg := resp.CSP.Assignment
	for i := 0; i < 5; i++ {
		if asg[i] == asg[(i+1)%5] {
			t.Fatalf("assignment %v violates edge (%d,%d)", asg, i, (i+1)%5)
		}
	}

	// An empty allowed set is a real constraint admitting nothing.
	status, data = postJSON(t, ts, "/v1/csp",
		`{"domains": [2,2], "constraints": [{"scope": [0,1], "allowed": []}], "solve": true, "count": true}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	resp = decodeEnumerate(t, data)
	if resp.CSP == nil || resp.CSP.Satisfiable || resp.CSP.Count == nil || *resp.CSP.Count != 0 {
		t.Fatalf("empty-allowed constraint not honored: %s", data)
	}

	// Validation errors.
	for body, wantSub := range map[string]string{
		`{"domains": []}`:    "at least one variable",
		`{"domains": [2,0]}`: "non-positive domain",
		`{"domains": [2,2], "constraints": [{"scope": [0,5]}]}`:                     "out of range",
		`{"domains": [2,2], "constraints": [{"scope": [1,1]}]}`:                     "unary scope",
		`{"domains": [3,3], "constraints": [{"scope": [0,1], "allowed": [[0,7]]}]}`: "out of domain range",
	} {
		status, data = postJSON(t, ts, "/v1/csp", body)
		if status != http.StatusBadRequest || !strings.Contains(string(data), wantSub) {
			t.Fatalf("%s: status %d body %s (want %q)", body, status, data, wantSub)
		}
	}
}

// TestMaxBodyBytes pins the configurable request-body cap: an over-long
// body is 413, and the daemon-facing knob genuinely moves the limit.
func TestMaxBodyBytes(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 128})
	long := fmt.Sprintf(`{"graph6": %q, "cost": %q}`, cycleGraph6(t, 5), strings.Repeat("x", 256))
	status, data := postJSON(t, ts, "/v1/enumerate", long)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d (%s), want 413", status, data)
	}
	short := fmt.Sprintf(`{"graph6": %q}`, cycleGraph6(t, 5))
	if status, data = postJSON(t, ts, "/v1/enumerate", short); status != http.StatusOK {
		t.Fatalf("small body under a small cap: status %d %s", status, data)
	}
}
