package service

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hyper"
)

// edgesBody renders g as an edge-list enumerate request with extra JSON
// fields appended (e.g. `"cost": "fill"`).
func edgesBody(g *graph.Graph, extra string) string {
	edges, _ := json.Marshal(g.Edges())
	body := fmt.Sprintf(`{"n": %d, "edges": %s`, g.Universe(), edges)
	if extra != "" {
		body += ", " + extra
	}
	return body + "}"
}

// tieSorted renders results as NDJSON lines sorted by (cost, bytes) with
// the rank index zeroed out and each result's bag/separator lists sorted.
// Enumeration order within an equal-cost block — and the order of bags
// within one clique tree — is implementation-defined: canonical keying
// enumerates a relabeling of the submitted graph, which may permute both
// relative to a direct solve. Equality of tie-sorted lines is therefore
// the right oracle: same triangulations, same costs, same per-cost
// blocks.
func tieSorted(t *testing.T, results []TriangulationJSON) []string {
	t.Helper()
	lines := make([]string, len(results))
	prev := results
	for i, r := range prev {
		if i > 0 && r.Cost < prev[i-1].Cost {
			t.Fatalf("cost order violated at rank %d: %g after %g", i, r.Cost, prev[i-1].Cost)
		}
		r.Index = 0
		r.Bags = sortSetList(r.Bags)
		r.Seps = sortSetList(r.Seps)
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		lines[i] = string(b)
	}
	sort.SliceStable(lines, func(i, j int) bool {
		if prev[i].Cost != prev[j].Cost {
			return prev[i].Cost < prev[j].Cost
		}
		return lines[i] < lines[j]
	})
	return lines
}

// sortSetList returns sets (each already ascending) in lexicographic
// order, without mutating the input.
func sortSetList(sets [][]int) [][]int {
	out := append([][]int(nil), sets...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

// soloResults enumerates g under c directly — no serving tier — as the
// per-client oracle.
func soloResults(t *testing.T, g *graph.Graph, c cost.Cost) []TriangulationJSON {
	t.Helper()
	e := core.NewSolver(g, c).Enumerate()
	var out []TriangulationJSON
	for i := 0; ; i++ {
		r, ok := e.Next()
		if !ok {
			return out
		}
		out = append(out, resultJSON(g, i, r))
	}
}

// pageBody drives one paging session to exhaustion from a raw request
// body and returns all wire results in rank order.
func pageBody(t *testing.T, ts *httptest.Server, body string, pageSize int) []TriangulationJSON {
	t.Helper()
	first, _ := postEnumerate(t, ts, body)
	results := append([]TriangulationJSON(nil), first.Results...)
	token, done := first.Session, first.Done
	for !done {
		np, status := getNext(t, ts, token, pageSize)
		if np == nil {
			t.Fatalf("next: status %d", status)
		}
		results = append(results, np.Results...)
		done = np.Done
		if np.Session != "" {
			token = np.Session
		}
	}
	return results
}

// TestCanonicalKeyingIsomorphicClients is the tentpole's end-to-end
// oracle: several clients submit the same graph under different vertex
// numberings; every client must receive exactly its own graph's
// enumeration (validated against a direct solo solve on its labeling, up
// to equal-cost tie order), while the serving tier builds ONE solver and
// ONE materialized stream for all of them.
func TestCanonicalKeyingIsomorphicClients(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	template := gen.Cycle(8) // Catalan(6) = 132 minimal triangulations
	copies := gen.IsoCopies(rng, template, 4)

	_, ts := newTestServer(t, Config{})
	for i, g := range copies {
		got := pageBody(t, ts, edgesBody(g, `"cost": "fill", "page_size": 25`), 25)
		want := soloResults(t, g, cost.FillIn{})
		if len(got) != len(want) {
			t.Fatalf("client %d: got %d results, want %d", i, len(got), len(want))
		}
		gotLines, wantLines := tieSorted(t, got), tieSorted(t, want)
		for j := range gotLines {
			if gotLines[j] != wantLines[j] {
				t.Fatalf("client %d: tie-sorted rank %d differs:\n got %s\nwant %s", i, j, gotLines[j], wantLines[j])
			}
		}
	}

	stats := getStats(t, ts)
	if stats.Pool.Misses != 1 {
		t.Errorf("isomorphic clients built %d solvers, want 1", stats.Pool.Misses)
	}
	if stats.Streams.Misses != 1 {
		t.Errorf("isomorphic clients materialized %d streams, want 1", stats.Streams.Misses)
	}
	if !stats.Canon.Enabled || stats.Canon.Requests != uint64(len(copies)) {
		t.Errorf("canon stats: %+v, want enabled with %d requests", stats.Canon, len(copies))
	}
	if stats.Canon.Fallbacks != 0 {
		t.Errorf("canon stats: %d fallbacks on an 8-cycle", stats.Canon.Fallbacks)
	}
	// At most one labeling can coincide with the canonical one; every
	// other client was relabeled, and each relabeled client after the
	// first rode an existing solver or stream.
	if stats.Canon.Relabeled < uint64(len(copies)-1) {
		t.Errorf("canon stats: only %d of %d clients relabeled", stats.Canon.Relabeled, len(copies))
	}
	if stats.Canon.Hits < stats.Canon.Relabeled-1 {
		t.Errorf("canon stats: %d hits for %d relabeled clients", stats.Canon.Hits, stats.Canon.Relabeled)
	}
}

// TestCanonicalKeyingDomains pins the label-carrying cost parameters: the
// statespace cost's per-vertex domains must be permuted into canonical
// labels alongside the graph, or the shared stream would rank by the
// wrong weights. The domains are chosen pairwise distinct so any
// mis-permutation changes costs, not just tie order.
func TestCanonicalKeyingDomains(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	template := gen.Path(6)
	tmplDomains := []int{2, 3, 4, 5, 6, 7}
	perm := rng.Perm(6)
	client := template.Relabel(perm)
	clientDomains := make([]int, 6)
	for v, d := range tmplDomains {
		clientDomains[perm[v]] = d
	}

	_, ts := newTestServer(t, Config{})
	for i, sub := range []struct {
		g       *graph.Graph
		domains []int
	}{{template, tmplDomains}, {client, clientDomains}} {
		dj, _ := json.Marshal(sub.domains)
		body := edgesBody(sub.g, fmt.Sprintf(`"cost": "statespace", "domains": %s, "page_size": 50`, dj))
		got := pageBody(t, ts, body, 50)
		want := soloResults(t, sub.g, cost.TotalStateSpace{Domain: sub.domains})
		if len(got) != len(want) {
			t.Fatalf("client %d: got %d results, want %d", i, len(got), len(want))
		}
		gotLines, wantLines := tieSorted(t, got), tieSorted(t, want)
		for j := range gotLines {
			if gotLines[j] != wantLines[j] {
				t.Fatalf("client %d: tie-sorted rank %d differs:\n got %s\nwant %s", i, j, gotLines[j], wantLines[j])
			}
		}
	}
	if stats := getStats(t, ts); stats.Streams.Misses != 1 {
		t.Errorf("isomorphic statespace requests materialized %d streams, want 1 (domains not canonicalized with the graph?)", stats.Streams.Misses)
	}
}

// TestCanonicalKeyingHyperedges pins the other label-carrying parameter:
// hyperedge sets relabel with the graph, so isomorphic hypergraph
// submissions share a stream and each client's hypertree-width costs
// match a direct solve on its own labeling.
func TestCanonicalKeyingHyperedges(t *testing.T) {
	tmplEdges := [][]int{{0, 1, 2}, {2, 3}, {3, 4, 0}}
	perm := []int{3, 0, 4, 1, 2}
	clientEdges := make([][]int, len(tmplEdges))
	for i, e := range tmplEdges {
		ce := make([]int, len(e))
		for j, v := range e {
			ce[j] = perm[v]
		}
		clientEdges[i] = ce
	}

	_, ts := newTestServer(t, Config{})
	for i, edges := range [][][]int{tmplEdges, clientEdges} {
		ej, _ := json.Marshal(edges)
		body := fmt.Sprintf(`{"hyperedges": %s, "cost": "hypertree", "page_size": 50}`, ej)
		got := pageBody(t, ts, body, 50)

		h := hyper.New(5)
		for _, e := range edges {
			h.AddEdge(e...)
		}
		want := soloResults(t, h.Primal(), h.HypertreeWidthCost())
		if len(got) != len(want) {
			t.Fatalf("client %d: got %d results, want %d", i, len(got), len(want))
		}
		gotLines, wantLines := tieSorted(t, got), tieSorted(t, want)
		for j := range gotLines {
			if gotLines[j] != wantLines[j] {
				t.Fatalf("client %d: tie-sorted rank %d differs:\n got %s\nwant %s", i, j, gotLines[j], wantLines[j])
			}
		}
	}
	if stats := getStats(t, ts); stats.Streams.Misses != 1 {
		t.Errorf("isomorphic hypertree requests materialized %d streams, want 1 (hyperedges not canonicalized with the graph?)", stats.Streams.Misses)
	}
}

// TestNoCanonDisablesSharing pins the escape hatch: with NoCanon set,
// isomorphic labelings key separately (pre-canonicalization behavior) and
// the canon stats report the feature off and untouched.
func TestNoCanonDisablesSharing(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	copies := gen.IsoCopies(rng, gen.Cycle(6), 2)

	_, ts := newTestServer(t, Config{NoCanon: true})
	for _, g := range copies {
		pageBody(t, ts, edgesBody(g, `"cost": "fill", "page_size": 20`), 20)
	}
	stats := getStats(t, ts)
	if stats.Canon.Enabled || stats.Canon.Requests != 0 {
		t.Errorf("canon stats with NoCanon: %+v, want disabled and zero", stats.Canon)
	}
	if stats.Streams.Misses != 2 {
		t.Errorf("NoCanon isomorphic clients materialized %d streams, want 2 separate", stats.Streams.Misses)
	}
}

// TestCanonicalKeyingNDJSONStream covers the third egress path: an NDJSON
// stream on a relabeled graph must emit client-labeled lines identical
// (tie-sorted) to a direct solve, while riding the stream a previous
// paging client materialized under the canonical key.
func TestCanonicalKeyingNDJSONStream(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	copies := gen.IsoCopies(rng, gen.Cycle(7), 2) // Catalan(5) = 42
	_, ts := newTestServer(t, Config{})

	// First client pages; second client streams the isomorphic relabeling.
	pageBody(t, ts, edgesBody(copies[0], `"cost": "fill", "page_size": 20`), 20)
	lines, err := streamAllBody(ts, edgesBody(copies[1], `"cost": "fill", "stream": true`))
	if err != nil {
		t.Fatal(err)
	}
	var got []TriangulationJSON
	for _, line := range lines {
		var r TriangulationJSON
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatal(err)
		}
		got = append(got, r)
	}
	want := soloResults(t, copies[1], cost.FillIn{})
	if len(got) != len(want) {
		t.Fatalf("stream: got %d results, want %d", len(got), len(want))
	}
	gotLines, wantLines := tieSorted(t, got), tieSorted(t, want)
	for j := range gotLines {
		if gotLines[j] != wantLines[j] {
			t.Fatalf("stream: tie-sorted rank %d differs:\n got %s\nwant %s", j, gotLines[j], wantLines[j])
		}
	}
	if stats := getStats(t, ts); stats.Streams.Misses != 1 {
		t.Errorf("paging + isomorphic NDJSON stream materialized %d streams, want 1", stats.Streams.Misses)
	}
}
