package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// postRaw posts an enumerate body to url and returns the status and body
// without asserting success (for the 4xx/5xx paths postEnumerate rejects).
func postRaw(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(data)
}

// TestDegradedModeMISBackend is the serving-tier story this subsystem
// exists for: when the ranked DP's init budget makes it a 503, the same
// server answers the same graph through ?backend=mis — a degraded
// (unranked) but complete stream instead of no answer at all.
func TestDegradedModeMISBackend(t *testing.T) {
	_, ts := newTestServer(t, Config{InitTimeout: time.Nanosecond, PageSize: 5})
	g6 := cycleGraph6(t, 6)

	// The DP backend cannot initialize inside a nanosecond: capacity 503.
	status, body := postRaw(t, ts.URL+"/v1/enumerate", fmt.Sprintf(`{"graph6": %q, "cost": "fill"}`, g6))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("DP under 1ns init budget: want 503, got %d: %s", status, body)
	}

	// The MIS backend has no init phase to time out; the same request
	// with backend=mis streams all 14 triangulations of C6.
	first, _ := postEnumerate(t, ts, fmt.Sprintf(`{"graph6": %q, "cost": "fill", "backend": "mis"}`, g6))
	if first.Backend != "mis" {
		t.Fatalf("want backend mis, got %q", first.Backend)
	}
	if first.Ranked {
		t.Fatal("MIS backend must not claim ranked output")
	}
	if first.Solver != nil {
		t.Fatal("MIS response must not carry DP solver init stats")
	}
	results := first.Results
	token := first.Session
	done := first.Done
	for !done {
		page, status := getNext(t, ts, token, 0)
		if status != http.StatusOK {
			t.Fatalf("paging MIS session: status %d", status)
		}
		results = append(results, page.Results...)
		done = page.Done
	}
	if len(results) != 14 {
		t.Fatalf("C6 via MIS: got %d results, want 14", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		k := fmt.Sprint(r.Bags)
		if seen[k] {
			t.Fatalf("duplicate triangulation on the wire: %v", r.Bags)
		}
		seen[k] = true
	}
}

// TestBackendQueryKnobOverrides asserts the resolution order: the
// ?backend= query knob wins over the body field, which wins over the
// server default.
func TestBackendQueryKnobOverrides(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultBackend: "mis"})
	g6 := cycleGraph6(t, 5)

	// Server default applies when the request names nothing.
	resp, _ := postEnumerate(t, ts, fmt.Sprintf(`{"graph6": %q, "page_size": 1}`, g6))
	if resp.Backend != "mis" {
		t.Fatalf("server default: want mis, got %q", resp.Backend)
	}

	// The body field overrides the default.
	resp2, _ := postEnumerate(t, ts, fmt.Sprintf(`{"graph6": %q, "backend": "dp", "page_size": 1}`, g6))
	if resp2.Backend != "dp" || !resp2.Ranked {
		t.Fatalf("body field: want ranked dp, got %q ranked=%v", resp2.Backend, resp2.Ranked)
	}

	// The query knob overrides the body field.
	req := fmt.Sprintf(`{"graph6": %q, "backend": "dp", "page_size": 1}`, g6)
	httpResp, err := http.Post(ts.URL+"/v1/enumerate?backend=mis-scored", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var out EnumerateResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Backend != "mis-scored" {
		t.Fatalf("query knob: want mis-scored, got %q", out.Backend)
	}

	// Unknown names are client errors.
	status, body := postRaw(t, ts.URL+"/v1/enumerate?backend=quantum", fmt.Sprintf(`{"graph6": %q}`, g6))
	if status != http.StatusBadRequest {
		t.Fatalf("unknown backend: want 400, got %d: %s", status, body)
	}
}

// TestBackendAutoPolicy pins the auto probe's routing: a separator-poor
// graph stays on the ranked DP, and the same server sends a graph whose
// separator count overflows the probe budget to MIS.
func TestBackendAutoPolicy(t *testing.T) {
	// C6 has 9 minimal separators; a budget of 4 overflows on it. The
	// path P4 has 2, which exhausts under the budget and proves "easy".
	_, ts := newTestServer(t, Config{BackendProbeBudget: 4})

	pathReq := `{"edges": [[0,1],[1,2],[2,3]], "backend": "auto", "page_size": 1}`
	resp, _ := postEnumerate(t, ts, pathReq)
	if resp.Backend != "dp" {
		t.Fatalf("auto on P4: want dp, got %q", resp.Backend)
	}

	g6 := cycleGraph6(t, 6)
	resp2, _ := postEnumerate(t, ts, fmt.Sprintf(`{"graph6": %q, "backend": "auto", "page_size": 1}`, g6))
	if resp2.Backend != "mis" {
		t.Fatalf("auto on C6 under budget 4: want mis, got %q", resp2.Backend)
	}

	stats := getStats(t, ts)
	if stats.Backends.DP < 1 || stats.Backends.MIS < 1 {
		t.Fatalf("backend counters: %+v", stats.Backends)
	}
	if stats.Backends.AutoResolved != 2 {
		t.Fatalf("auto_resolved: want 2, got %d", stats.Backends.AutoResolved)
	}
}

// TestBackendStreamsDoNotAlias drives the same (graph, cost) through both
// backends and checks they use distinct shared-stream cache entries — the
// Backend field of SolverKey at work. Aliasing would make one backend
// serve the other's buffered sequence.
func TestBackendStreamsDoNotAlias(t *testing.T) {
	srv, ts := newTestServer(t, Config{PageSize: 3})
	g6 := cycleGraph6(t, 5)

	dpResp, _ := postEnumerate(t, ts, fmt.Sprintf(`{"graph6": %q, "cost": "fill", "page_size": 2}`, g6))
	misResp, _ := postEnumerate(t, ts, fmt.Sprintf(`{"graph6": %q, "cost": "fill", "backend": "mis", "page_size": 2}`, g6))
	if dpResp.Backend == misResp.Backend {
		t.Fatalf("both requests report backend %q", dpResp.Backend)
	}
	if got := srv.Streams().Len(); got != 2 {
		t.Fatalf("want 2 distinct stream entries (dp + mis), got %d", got)
	}

	// DP's first page is the two cheapest triangulations; cost order must
	// hold there and is not required of MIS.
	if len(dpResp.Results) == 2 && dpResp.Results[0].Cost > dpResp.Results[1].Cost {
		t.Fatalf("DP page out of cost order: %v then %v", dpResp.Results[0].Cost, dpResp.Results[1].Cost)
	}

	stats := getStats(t, ts)
	if stats.Backends.DP != 1 || stats.Backends.MIS != 1 {
		t.Fatalf("backend counters after one request each: %+v", stats.Backends)
	}
}

// TestMISScoredSessionCompletes exercises the scored backend through the
// full session lifecycle: C6's 14 triangulations, no duplicates, done=true.
func TestMISScoredSessionCompletes(t *testing.T) {
	_, ts := newTestServer(t, Config{PageSize: 4})
	g6 := cycleGraph6(t, 6)
	first, _ := postEnumerate(t, ts, fmt.Sprintf(`{"graph6": %q, "cost": "fill", "backend": "mis-scored"}`, g6))
	if first.Backend != "mis-scored" {
		t.Fatalf("want mis-scored, got %q", first.Backend)
	}
	count := len(first.Results)
	token := first.Session
	done := first.Done
	for !done {
		page, status := getNext(t, ts, token, 0)
		if status != http.StatusOK {
			t.Fatalf("paging: status %d", status)
		}
		count += len(page.Results)
		done = page.Done
	}
	if count != 14 {
		t.Fatalf("C6 via mis-scored: got %d results, want 14", count)
	}
}

// TestMISNDJSONStream drives the NDJSON fan-out path over the MIS
// backend: stream=true produces one line per triangulation plus the
// summary line, all from the shared stream cache.
func TestMISNDJSONStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	g6 := cycleGraph6(t, 6)
	resp, err := http.Post(ts.URL+"/v1/enumerate", "application/json",
		strings.NewReader(fmt.Sprintf(`{"graph6": %q, "cost": "fill", "backend": "mis", "stream": true}`, g6)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 15 { // 14 results + summary
		t.Fatalf("want 15 NDJSON lines, got %d", len(lines))
	}
	var summary struct {
		Done  bool `json:"done"`
		Count int  `json:"count"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &summary); err != nil {
		t.Fatal(err)
	}
	if !summary.Done || summary.Count != 14 {
		t.Fatalf("summary: %+v", summary)
	}
}
