package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/hyper"
)

// EnumerateRequest is the body of POST /v1/enumerate. Exactly one of
// Graph6, Edges or Hyperedges must be supplied (see the package doc for
// the full API description).
type EnumerateRequest struct {
	Graph6     string   `json:"graph6,omitempty"`
	N          int      `json:"n,omitempty"`
	Edges      [][2]int `json:"edges,omitempty"`
	Hyperedges [][]int  `json:"hyperedges,omitempty"`

	Cost    string `json:"cost,omitempty"`
	Domains []int  `json:"domains,omitempty"`
	Bound   *int   `json:"bound,omitempty"`

	// Backend selects the enumeration engine: "dp" (ranked-exact, cost
	// order), "mis" (unordered, no init cost), "mis-scored" (heuristic
	// best-first) or "auto" (separator-count probe). Empty defers to the
	// server's default; the ?backend= query knob overrides both.
	Backend string `json:"backend,omitempty"`

	// Orbits selects orbit-reduced enumeration: the stream collapses to
	// one representative per automorphism-group orbit of triangulations,
	// each stamped with its orbit_size (Σ orbit_size over the reduced
	// stream reconstructs the unreduced length). Unset defers to the
	// server's default; the ?orbits= query knob overrides both. Requires
	// a label-invariant cost — pairing it with hypertree, fractional-htw
	// or non-uniform statespace domains is rejected with 400.
	Orbits *bool `json:"orbits,omitempty"`

	// Diverse selects the diverse-portfolio response mode: instead of the
	// first page of the ranked order, return Diverse results chosen from
	// the first Window ranks to maximize pairwise fill distance
	// (core.DiverseSelect), optimum always first, in one session-less
	// response. Window defaults to 4·Diverse and is capped; each result
	// keeps its rank in the underlying enumeration as its index. The
	// ?diverse= / ?window= query knobs override these fields. Incompatible
	// with Stream.
	Diverse int `json:"diverse,omitempty"`
	Window  int `json:"window,omitempty"`

	PageSize   int  `json:"page_size,omitempty"`
	MaxResults int  `json:"max_results,omitempty"`
	Stream     bool `json:"stream,omitempty"`
}

// TriangulationJSON is the wire form of one core.Result. OrbitSize is
// present only on orbit-reduced streams: how many minimal triangulations
// this representative's automorphism orbit contains (≥ 1).
type TriangulationJSON struct {
	Index     int     `json:"index"`
	Cost      float64 `json:"cost"`
	Width     int     `json:"width"`
	Fill      int     `json:"fill"`
	OrbitSize int64   `json:"orbit_size,omitempty"`
	Bags      [][]int `json:"bags"`
	Seps      [][]int `json:"separators"`
}

// GraphInfo describes the submitted graph.
type GraphInfo struct {
	N           int    `json:"n"`
	M           int    `json:"m"`
	Fingerprint string `json:"fingerprint"`
}

// SolverInfo reports the initialization statistics of the solver that
// served the request (the "init" column of the paper's Table 2). For a
// decomposed solver the separator/PMC/block counts aggregate over the
// atoms and Atoms/LargestAtom describe the decomposition.
type SolverInfo struct {
	MinimalSeparators int   `json:"minimal_separators"`
	PMCs              int   `json:"pmcs"`
	FullBlocks        int   `json:"full_blocks"`
	InitMillis        int64 `json:"init_ms"`
	Atoms             int   `json:"atoms,omitempty"`
	LargestAtom       int   `json:"largest_atom,omitempty"`
}

// EnumerateResponse is the body returned by POST /v1/enumerate and, with
// only Session/Done/Results set, by GET /v1/sessions/{token}/next.
type EnumerateResponse struct {
	Session  string `json:"session,omitempty"`
	Done     bool   `json:"done"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	Cost     string `json:"cost,omitempty"`
	// Backend is the engine that served the request after auto
	// resolution; Ranked reports whether its results arrive in
	// non-decreasing cost order (false for the MIS backends, whose order
	// is arbitrary or merely heuristic).
	Backend string `json:"backend,omitempty"`
	Ranked  bool   `json:"ranked,omitempty"`
	// Orbits reports whether the stream is orbit-reduced: results then
	// carry orbit_size and the enumeration emits one representative per
	// automorphism orbit instead of every triangulation.
	Orbits  bool                `json:"orbits,omitempty"`
	Graph   *GraphInfo          `json:"graph,omitempty"`
	Solver  *SolverInfo         `json:"solver,omitempty"`
	Results []TriangulationJSON `json:"results"`
	// Diverse/Window report the diverse-portfolio mode: Diverse is the
	// requested portfolio size, Window how many ranks of the stream were
	// actually materialized as candidates (smaller than requested when the
	// enumeration is finite). Zero on normal paged responses.
	Diverse int `json:"diverse,omitempty"`
	Window  int `json:"window,omitempty"`
	// Hypergraph is set by /v1/hypergraph: the shape of the submitted
	// hypergraph and its server-built primal graph.
	Hypergraph *HypergraphInfo `json:"hypergraph,omitempty"`
	// CSP is set by /v1/csp when the request asked for the solve/count
	// payoff over the top-ranked decomposition.
	CSP *CSPSolutionJSON `json:"csp,omitempty"`
}

// HypergraphInfo describes the hypergraph behind a /v1/hypergraph
// request: the service built PrimalEdges pairwise edges from Hyperedges
// hyperedges and enumerated decompositions of that primal graph.
type HypergraphInfo struct {
	Vertices    int `json:"vertices"`
	Hyperedges  int `json:"hyperedges"`
	PrimalEdges int `json:"primal_edges"`
}

// BatchRequest is the body of POST /v1/batch: many enumeration problems
// sharing one HTTP round trip and one admission slot. Query knobs
// (?backend=, ?orbits=, ?diverse=, ?window=) apply batch-wide, overriding
// each problem's own fields.
type BatchRequest struct {
	Problems []EnumerateRequest `json:"problems"`
}

// BatchItem is one problem's outcome within a BatchResponse: exactly one
// of Response or Error is set. A failing problem never fails the batch.
type BatchItem struct {
	Response *EnumerateResponse `json:"response,omitempty"`
	Error    string             `json:"error,omitempty"`
}

// BatchResponse is the body of POST /v1/batch. Items aligns with the
// request's problems; Errors counts the items that failed.
type BatchResponse struct {
	Items  []BatchItem `json:"items"`
	Errors int         `json:"errors,omitempty"`
}

// CSPConstraint is one binary constraint of a /v1/csp request: the two
// distinct variables it relates and the explicitly allowed value pairs
// (aligned with Scope). An empty Allowed list is a real constraint — it
// admits nothing, making the problem unsatisfiable — not an absent one.
type CSPConstraint struct {
	Scope   [2]int   `json:"scope"`
	Allowed [][2]int `json:"allowed"`
}

// CSPRequest is the body of POST /v1/csp: a binary constraint-satisfaction
// problem. The service builds the constraint graph server-side and ranks
// its decompositions exactly like /v1/enumerate (Cost defaults to
// "statespace" under the variable domains — the cost that models the
// CSP DP's table work); Solve/Count additionally run the csp DP over the
// top-ranked decomposition and report the payoff in the response's CSP
// block.
type CSPRequest struct {
	// Domains is the domain size per variable (values 0..d-1); its length
	// is the variable count.
	Domains     []int           `json:"domains"`
	Constraints []CSPConstraint `json:"constraints,omitempty"`

	Cost     string `json:"cost,omitempty"`
	Bound    *int   `json:"bound,omitempty"`
	Backend  string `json:"backend,omitempty"`
	Orbits   *bool  `json:"orbits,omitempty"`
	PageSize int    `json:"page_size,omitempty"`
	Diverse  int    `json:"diverse,omitempty"`
	Window   int    `json:"window,omitempty"`

	// Solve asks for one satisfying assignment (or a definitive
	// unsatisfiable); Count for the number of satisfying assignments. Both
	// run the DP of internal/csp over the top-ranked decomposition — the
	// paper's motivating payoff: pick the bag structure first, then pay
	// the DP under it.
	Solve bool `json:"solve,omitempty"`
	Count bool `json:"count,omitempty"`
}

// CSPSolutionJSON is the CSP payoff block of a /v1/csp response.
type CSPSolutionJSON struct {
	Satisfiable bool   `json:"satisfiable"`
	Assignment  []int  `json:"assignment,omitempty"`
	Count       *int64 `json:"count,omitempty"`
}

// SessionInfo is the body of GET /v1/sessions/{token}.
//
// BufferedAhead is how many results past this session's cursor are
// already materialized in the shared stream buffer — the ranks the next
// pages can serve without any solving work. With speculative prefetch on
// (the default) the stream's producer keeps this positive for any cursor
// within the lookahead budget, so it genuinely predicts that the next
// page is a buffer read; with prefetch off it is nonzero only when other
// cursors on the same graph, or this session's own interrupted pages,
// produced ranks ahead. It replaces the old queued_partitions field, which reported the
// enumerator's internal Lawler–Murty queue depth: an implementation
// detail that was neither a bound on remaining results nor a measure of
// buffered work, i.e. misleading wire metadata.
type SessionInfo struct {
	Session       string  `json:"session"`
	Emitted       int     `json:"emitted"`
	BufferedAhead int     `json:"buffered_ahead"`
	IdleSeconds   float64 `json:"idle_seconds"`
}

// AtomStats aggregates the clique-separator decompositions of the cached
// solvers for GET /v1/stats: how many solvers decomposed, the total atom
// count across them, the largest atom seen (the quantity that actually
// bounds the exponential work), and how many per-atom sub-solvers have
// been lazily initialized so far.
type AtomStats struct {
	DecomposedSolvers int `json:"decomposed_solvers"`
	TotalAtoms        int `json:"total_atoms"`
	LargestAtom       int `json:"largest_atom"`
	ReadySubSolvers   int `json:"ready_sub_solvers"`
}

// PrefetchStats is the "prefetch" block of GET /v1/stats: the serving
// tier's speculation configuration plus demand-vs-speculation counters
// aggregated over every materialized stream the store has held.
// BufferedHits counts per-rank reads served straight from a buffer —
// no solve on the request's latency path; DemandSolves and
// PrefetchSolves split the production work between waiting consumers
// and the background producers. Pauses/Resumes count speculative
// producers parked when a stream's last cursor went away and woken by
// the next one. LookaheadHighWater is the most ranks any producer has
// run ahead of its stream's demand mark.
type PrefetchStats struct {
	Enabled            bool   `json:"enabled"`
	SolveWorkers       int    `json:"solve_workers"`
	AheadRanks         int    `json:"ahead_ranks"`
	AheadBytes         int64  `json:"ahead_bytes"`
	BufferedHits       uint64 `json:"buffered_hits"`
	DemandSolves       uint64 `json:"demand_solves"`
	PrefetchSolves     uint64 `json:"prefetch_solves"`
	Pauses             uint64 `json:"pauses"`
	Resumes            uint64 `json:"resumes"`
	LookaheadHighWater int    `json:"lookahead_high_water"`
}

// StatsResponse is the body of GET /v1/stats. Solver aggregates the
// incremental-DP reuse counters (see core.ReuseStats) over the cached
// solvers: dirty_blocks were re-solved under Lawler–Murty constraints,
// reused_blocks came straight from each solver's unconstrained baseline.
// Atoms aggregates the clique-separator decompositions of those solvers.
// Streams reports the shared ranked-stream cache (see StreamStats): a
// stream hit means a new session or NDJSON stream rode an existing
// materialized buffer instead of enumerating privately.
type StatsResponse struct {
	UptimeSeconds float64         `json:"uptime_seconds"`
	Requests      uint64          `json:"requests"`
	Pool          PoolStats       `json:"pool"`
	Sessions      SessionStats    `json:"sessions"`
	Solver        core.ReuseStats `json:"solver"`
	Atoms         AtomStats       `json:"atoms"`
	Streams       StreamStats     `json:"streams"`
	Prefetch      PrefetchStats   `json:"prefetch"`
	Backends      BackendStats    `json:"backends"`
	Canon         CanonStats      `json:"canon"`
	Orbits        OrbitModeStats  `json:"orbits"`
	Workloads     WorkloadStats   `json:"workloads"`
}

// WorkloadStats is the "workloads" block of GET /v1/stats: requests per
// ingress shape. Enumerate counts /v1/enumerate, Batch counts /v1/batch
// requests and BatchProblems the problems inside them, Hypergraph and CSP
// count their endpoints, CSPSolves the csp requests that ran the solve/
// count DP payoff, and Diverse the requests (any endpoint) served in the
// ?diverse=k portfolio mode.
type WorkloadStats struct {
	Enumerate     uint64 `json:"enumerate"`
	Batch         uint64 `json:"batch"`
	BatchProblems uint64 `json:"batch_problems"`
	Hypergraph    uint64 `json:"hypergraph"`
	CSP           uint64 `json:"csp"`
	CSPSolves     uint64 `json:"csp_solves"`
	Diverse       uint64 `json:"diverse"`
}

// OrbitModeStats is the "orbits" block of GET /v1/stats: whether the mode
// is on by default, how many enumerate requests ran orbit-reduced, and
// the aggregated core counters of every orbit backend this server built
// (core.OrbitStats, flattened) — representatives vs skipped results give
// the realized stream-length reduction, skipped_branches the constrained
// solves the Lawler–Murty pruner saved, and the trivial/inexact group
// counts how often the mode degraded to a passthrough.
type OrbitModeStats struct {
	DefaultOn bool   `json:"default_on"`
	Requests  uint64 `json:"requests"`
	core.OrbitStats
}

// CanonStats is the "canon" block of GET /v1/stats: the canonical
// cache-keying funnel. Requests counts enumerate requests that went
// through the canonical labeling; Relabeled is how many of those arrived
// in a non-canonical labeling (i.e. an actual relabeling happened on
// ingress and an inverse one happens on every egress); Fallbacks is how
// many exhausted the labeling search budget and kept label-sensitive keys
// (correct, merely undeduplicated); Hits is how many relabeled requests
// were served by a solver or materialized stream that a *different*
// labeling of the same graph built — exactly the cache hits that
// label-sensitive keying would have missed.
type CanonStats struct {
	Enabled   bool   `json:"enabled"`
	Requests  uint64 `json:"requests"`
	Relabeled uint64 `json:"relabeled"`
	Fallbacks uint64 `json:"fallbacks"`
	Hits      uint64 `json:"hits"`
}

// BackendStats counts enumerate requests served per backend kind.
// AutoResolved is how many of those were routed by the auto probe rather
// than an explicit backend choice (it overlaps the per-kind counts).
type BackendStats struct {
	DP           uint64 `json:"dp"`
	MIS          uint64 `json:"mis"`
	MISScored    uint64 `json:"mis_scored"`
	AutoResolved uint64 `json:"auto_resolved"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// resultJSON converts one enumeration result for the wire.
func resultJSON(g *graph.Graph, index int, r *core.Result) TriangulationJSON {
	bags := make([][]int, len(r.Bags))
	for i, b := range r.Bags {
		bags[i] = b.Slice()
	}
	seps := make([][]int, len(r.Seps))
	for i, s := range r.Seps {
		seps[i] = s.Slice()
	}
	return TriangulationJSON{
		Index:     index,
		Cost:      r.Cost,
		Width:     r.Tree.Width(),
		Fill:      r.H.NumEdges() - g.NumEdges(),
		OrbitSize: r.OrbitSize,
		Bags:      bags,
		Seps:      seps,
	}
}

// buildGraph materializes the request's graph plus, for hypergraph input,
// the hypergraph whose primal it is. Errors are client errors (400).
func buildGraph(req *EnumerateRequest, maxVertices int) (*graph.Graph, *hyper.Hypergraph, error) {
	hasG6 := req.Graph6 != ""
	hasHyper := len(req.Hyperedges) > 0
	// "n" alone is a valid edge-list source — the edgeless graph on n
	// vertices — but when another source is present, n merely names that
	// source's universe size.
	hasEdges := len(req.Edges) > 0 || (req.N > 0 && !hasG6 && !hasHyper)
	sources := 0
	for _, has := range []bool{hasG6, hasHyper, hasEdges} {
		if has {
			sources++
		}
	}
	if sources != 1 {
		return nil, nil, fmt.Errorf("exactly one of graph6, edges or hyperedges (or n for an edgeless graph) must be given")
	}

	if hasG6 {
		// Bound the claimed vertex count from the cheap header before the
		// O(n²) decode runs — a request body must not be able to buy an
		// oversized parse it could never enumerate.
		for _, line := range strings.Split(req.Graph6, "\n") {
			line = strings.TrimSpace(line)
			line = strings.TrimPrefix(line, ">>graph6<<")
			if line == "" {
				continue
			}
			n, err := graph.Graph6HeaderN(line)
			if err != nil {
				return nil, nil, fmt.Errorf("graph6: %v", err)
			}
			if n > maxVertices {
				return nil, nil, fmt.Errorf("graph has %d vertices; the limit is %d", n, maxVertices)
			}
		}
		gs, err := graph.ReadGraph6(strings.NewReader(req.Graph6))
		if err != nil {
			return nil, nil, fmt.Errorf("graph6: %v", err)
		}
		if len(gs) != 1 {
			return nil, nil, fmt.Errorf("graph6: want exactly one graph, got %d", len(gs))
		}
		return gs[0], nil, nil
	}

	universe := func(max int) (int, error) {
		n := req.N
		if n == 0 {
			n = max + 1
		}
		if max >= n {
			return 0, fmt.Errorf("vertex %d out of range for n=%d", max, n)
		}
		if n > maxVertices {
			return 0, fmt.Errorf("graph has %d vertices; the limit is %d", n, maxVertices)
		}
		return n, nil
	}

	if len(req.Hyperedges) > 0 {
		max := -1
		for _, e := range req.Hyperedges {
			if len(e) == 0 {
				return nil, nil, fmt.Errorf("empty hyperedge")
			}
			for _, v := range e {
				if v < 0 {
					return nil, nil, fmt.Errorf("negative vertex %d", v)
				}
				if v > max {
					max = v
				}
			}
		}
		n, err := universe(max)
		if err != nil {
			return nil, nil, err
		}
		h := hyper.New(n)
		for _, e := range req.Hyperedges {
			h.AddEdge(e...)
		}
		return h.Primal(), h, nil
	}

	max := -1
	for _, e := range req.Edges {
		if e[0] < 0 || e[1] < 0 {
			return nil, nil, fmt.Errorf("negative vertex in edge [%d,%d]", e[0], e[1])
		}
		if e[0] == e[1] {
			return nil, nil, fmt.Errorf("self loop [%d,%d]", e[0], e[1])
		}
		if e[0] > max {
			max = e[0]
		}
		if e[1] > max {
			max = e[1]
		}
	}
	n, err := universe(max)
	if err != nil {
		return nil, nil, err
	}
	g := graph.New(n)
	for _, e := range req.Edges {
		g.AddEdge(e[0], e[1])
	}
	return g, nil, nil
}

// buildCost resolves the request's cost name to a cost.Cost plus the
// canonical key fragment that, together with the graph fingerprint and
// width bound, identifies the solver in the pool. Parameterized costs
// (statespace domains, hypergraph edge sets) contribute their parameters
// to the key, since they change the ranking.
func buildCost(req *EnumerateRequest, g *graph.Graph, h *hyper.Hypergraph) (cost.Cost, string, error) {
	name := req.Cost
	if name == "" {
		name = "width"
	}
	switch name {
	case "width":
		return cost.Width{}, "width", nil
	case "fill":
		return cost.FillIn{}, "fill", nil
	case "lex", "width-fill":
		return cost.LexWidthFill{}, "lex", nil
	case "statespace":
		if req.Domains != nil && len(req.Domains) != g.Universe() {
			return nil, "", fmt.Errorf("domains has %d entries for %d vertices", len(req.Domains), g.Universe())
		}
		for _, d := range req.Domains {
			if d < 1 {
				return nil, "", fmt.Errorf("domain sizes must be positive")
			}
		}
		key := "statespace"
		if req.Domains != nil {
			key = fmt.Sprintf("statespace%v", req.Domains)
		}
		return cost.TotalStateSpace{Domain: req.Domains}, key, nil
	case "hypertree":
		if h == nil {
			return nil, "", fmt.Errorf("cost %q requires hyperedges input", name)
		}
		return h.HypertreeWidthCost(), "hypertree:" + hyperFingerprint(h), nil
	case "fractional-htw":
		if h == nil {
			return nil, "", fmt.Errorf("cost %q requires hyperedges input", name)
		}
		return h.FractionalHypertreeWidthCost(), "fractional-htw:" + hyperFingerprint(h), nil
	}
	return nil, "", fmt.Errorf("unknown cost %q", name)
}

// orbitCostCheck gates orbit mode on label-invariant costs. Collapsing an
// orbit to one representative is only sound when every member has the
// representative's cost — true of width, fill and their lexicographic
// combination, and of statespace under uniform (or default) domains, but
// false once per-vertex domains differ or the ranking reads a hypergraph
// (hypertree, fractional-htw): there, isomorphic triangulations rank
// differently and the collapse would hide real answers. Runs after
// buildCost, so unknown cost names are already rejected.
func orbitCostCheck(req *EnumerateRequest) error {
	name := req.Cost
	if name == "" {
		name = "width"
	}
	switch name {
	case "width", "fill", "lex", "width-fill":
		return nil
	case "statespace":
		for _, d := range req.Domains {
			if d != req.Domains[0] {
				return fmt.Errorf("orbit mode requires a label-invariant cost: statespace with non-uniform domains ranks isomorphic triangulations differently")
			}
		}
		return nil
	}
	return fmt.Errorf("orbit mode requires a label-invariant cost; %q is label-sensitive", name)
}

// hyperFingerprint hashes the hyperedge multiset (order-insensitively) so
// that distinct hypergraphs sharing a primal graph get distinct solver
// cache keys.
func hyperFingerprint(h *hyper.Hypergraph) string {
	keys := make([]string, 0, len(h.Edges()))
	for _, e := range h.Edges() {
		keys = append(keys, e.Key())
	}
	sort.Strings(keys)
	hash := sha256.New()
	for _, k := range keys {
		hash.Write([]byte(k))
		hash.Write([]byte{0})
	}
	return hex.EncodeToString(hash.Sum(nil)[:16])
}
