package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/graph"
)

// cycleGraph6 returns the graph6 line for the n-cycle. C_n has
// Catalan(n-2) minimal triangulations (polygon triangulations), which the
// lifecycle tests rely on: C5 → 5, C6 → 14.
func cycleGraph6(t *testing.T, n int) string {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteGraph6(&buf, gen.Cycle(n)); err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(buf.String())
}

func postEnumerate(t *testing.T, ts *httptest.Server, body string) (*EnumerateResponse, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/enumerate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("enumerate: status %d: %s", resp.StatusCode, data)
	}
	var out EnumerateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp
}

func getNext(t *testing.T, ts *httptest.Server, token string, pageSize int) (*EnumerateResponse, int) {
	t.Helper()
	url := fmt.Sprintf("%s/v1/sessions/%s/next", ts.URL, token)
	if pageSize > 0 {
		url += fmt.Sprintf("?page_size=%d", pageSize)
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var out EnumerateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp.StatusCode
}

func getStats(t *testing.T, ts *httptest.Server) *StatsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// TestEnumerateResumeExhaust drives the full lifecycle over HTTP: first
// page with a resume token, paging until exhaustion, token invalidation
// afterwards, and cost monotonicity across pages.
func TestEnumerateResumeExhaust(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	g6 := cycleGraph6(t, 5) // 5 minimal triangulations

	first, _ := postEnumerate(t, ts, fmt.Sprintf(`{"graph6": %q, "cost": "fill", "page_size": 2}`, g6))
	if first.Done || first.Session == "" {
		t.Fatalf("want live session after first page, got done=%v session=%q", first.Done, first.Session)
	}
	if len(first.Results) != 2 {
		t.Fatalf("first page: want 2 results, got %d", len(first.Results))
	}
	if first.Graph == nil || first.Graph.N != 5 || first.Graph.Fingerprint == "" {
		t.Fatalf("bad graph info: %+v", first.Graph)
	}
	if first.Solver == nil || first.Solver.PMCs == 0 {
		t.Fatalf("bad solver info: %+v", first.Solver)
	}

	all := append([]TriangulationJSON(nil), first.Results...)
	token := first.Session
	for pages := 0; ; pages++ {
		if pages > 10 {
			t.Fatal("enumeration did not exhaust")
		}
		page, status := getNext(t, ts, token, 2)
		if status != http.StatusOK {
			t.Fatalf("next: status %d", status)
		}
		all = append(all, page.Results...)
		if page.Done {
			if page.Session != "" {
				t.Fatal("done page should not carry a session token")
			}
			break
		}
	}
	if len(all) != 5 {
		t.Fatalf("C5: want 5 minimal triangulations, got %d", len(all))
	}
	for i := range all {
		if all[i].Index != i {
			t.Fatalf("result %d has index %d", i, all[i].Index)
		}
		if i > 0 && all[i].Cost < all[i-1].Cost {
			t.Fatalf("costs not non-decreasing: %g after %g", all[i].Cost, all[i-1].Cost)
		}
	}

	if _, status := getNext(t, ts, token, 0); status != http.StatusNotFound {
		t.Fatalf("exhausted token should 404, got %d", status)
	}
	if stats := getStats(t, ts); stats.Sessions.Live != 0 {
		t.Fatalf("no session should remain, got %d", stats.Sessions.Live)
	}
}

// TestCacheHitOnResubmission submits the same graph twice and expects the
// second request to be served from the solver pool.
func TestCacheHitOnResubmission(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	g6 := cycleGraph6(t, 6)
	body := fmt.Sprintf(`{"graph6": %q, "page_size": 3}`, g6)

	first, _ := postEnumerate(t, ts, body)
	if first.CacheHit {
		t.Fatal("first submission cannot be a cache hit")
	}
	second, _ := postEnumerate(t, ts, body)
	if !second.CacheHit {
		t.Fatal("second submission of the same graph should hit the solver cache")
	}
	stats := getStats(t, ts)
	if stats.Pool.Hits < 1 || stats.Pool.Misses < 1 {
		t.Fatalf("stats should record the hit and the miss: %+v", stats.Pool)
	}
	// Different cost => different solver => miss.
	third, _ := postEnumerate(t, ts, fmt.Sprintf(`{"graph6": %q, "cost": "fill"}`, g6))
	if third.CacheHit {
		t.Fatal("different cost must not share a solver")
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"invalid graph6":  `{"graph6": "@@##notgraph6"}`,
		"no source":       `{"cost": "width"}`,
		"two sources":     `{"graph6": "D?{", "edges": [[0,1]]}`,
		"self loop":       `{"edges": [[1,1]]}`,
		"out of range":    `{"n": 2, "edges": [[0,5]]}`,
		"unknown cost":    `{"edges": [[0,1]], "cost": "nope"}`,
		"bad domains":     `{"edges": [[0,1]], "cost": "statespace", "domains": [2]}`,
		"hyper cost":      `{"edges": [[0,1]], "cost": "hypertree"}`,
		"negative bound":  `{"edges": [[0,1]], "bound": -2}`,
		"not json":        `hello`,
		"empty hyperedge": `{"hyperedges": [[]]}`,
		"too many verts":  `{"n": 4096, "edges": [[0,1]]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/enumerate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: want 400, got %d", name, resp.StatusCode)
		}
	}
}

// TestSessionEviction parks a session past the idle timeout and expects
// the janitor to evict it.
func TestSessionEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{IdleTimeout: 50 * time.Millisecond})
	first, _ := postEnumerate(t, ts, fmt.Sprintf(`{"graph6": %q, "page_size": 1}`, cycleGraph6(t, 5)))
	if first.Session == "" {
		t.Fatal("want a live session")
	}
	deadline := time.Now().Add(5 * time.Second)
	for getStats(t, ts).Sessions.Expired < 1 {
		if time.Now().After(deadline) {
			t.Fatal("session was not evicted")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if stats := getStats(t, ts); stats.Sessions.Live != 0 {
		t.Fatalf("no session should remain: %+v", stats.Sessions)
	}
	if _, status := getNext(t, ts, first.Session, 1); status != http.StatusNotFound {
		t.Fatalf("evicted token should 404, got %d", status)
	}
}

// TestCancelledEnumerateLeavesNoSession serves an enumerate request whose
// context is already cancelled and checks no session leaks.
func TestCancelledEnumerateLeavesNoSession(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	body := fmt.Sprintf(`{"graph6": %q, "page_size": 1}`, cycleGraph6(t, 5))
	req := httptest.NewRequest("POST", "/v1/enumerate", strings.NewReader(body)).WithContext(ctx)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code == http.StatusOK {
		t.Fatalf("cancelled request should not succeed, got %d: %s", w.Code, w.Body)
	}
	if live := srv.Sessions().Stats().Live; live != 0 {
		t.Fatalf("cancelled request left %d live sessions", live)
	}
}

// TestStreamNDJSON checks the streaming mode: every result on its own
// line, a final summary line, and no session created.
func TestStreamNDJSON(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	body := fmt.Sprintf(`{"graph6": %q, "stream": true}`, cycleGraph6(t, 5))
	resp, err := http.Post(ts.URL+"/v1/enumerate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("want NDJSON content type, got %q", ct)
	}
	data, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 6 { // 5 results + summary
		t.Fatalf("want 6 NDJSON lines, got %d: %s", len(lines), data)
	}
	var last struct {
		Done  bool `json:"done"`
		Count int  `json:"count"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if !last.Done || last.Count != 5 {
		t.Fatalf("bad summary line: %s", lines[len(lines)-1])
	}
	if live := srv.Sessions().Stats().Live; live != 0 {
		t.Fatalf("streaming must not create sessions, got %d", live)
	}
}

// TestStreamMaxResults truncates a stream after max_results.
func TestStreamMaxResults(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := fmt.Sprintf(`{"graph6": %q, "stream": true, "max_results": 2}`, cycleGraph6(t, 6))
	resp, err := http.Post(ts.URL+"/v1/enumerate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 2 results + summary, got %d lines", len(lines))
	}
}

// TestEdgeListAndCosts smoke-tests the edge-list input and each cost.
func TestEdgeListAndCosts(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	edges := `"edges": [[0,1],[1,2],[2,3],[3,0]]`
	for _, c := range []string{"width", "fill", "lex", "statespace"} {
		resp, _ := postEnumerate(t, ts, fmt.Sprintf(`{%s, "cost": %q, "page_size": 10}`, edges, c))
		if len(resp.Results) != 2 { // C4 has exactly 2 minimal triangulations
			t.Fatalf("cost %s: want 2 results, got %d", c, len(resp.Results))
		}
		if !resp.Done {
			t.Fatalf("cost %s: C4 should exhaust in one page", c)
		}
	}
}

// TestHypergraphCosts enumerates a hypergraph by hypertree width.
func TestHypergraphCosts(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"hyperedges": [[0,1,2],[2,3],[3,4,0]], "cost": "hypertree", "page_size": 50}`
	resp, _ := postEnumerate(t, ts, body)
	if len(resp.Results) == 0 {
		t.Fatal("hypergraph enumeration returned nothing")
	}
	if resp.Cost != "hypertree-width" {
		t.Fatalf("want hypertree-width cost, got %q", resp.Cost)
	}
}

// TestBoundedEnumeration checks the width bound reaches MinTriangB.
func TestBoundedEnumeration(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := fmt.Sprintf(`{"graph6": %q, "bound": 2, "page_size": 100}`, cycleGraph6(t, 6))
	resp, _ := postEnumerate(t, ts, body)
	for _, r := range resp.Results {
		if r.Width > 2 {
			t.Fatalf("bound violated: width %d", r.Width)
		}
	}
	if len(resp.Results) == 0 {
		t.Fatal("C6 has width-2 triangulations")
	}
}

// TestSessionInfoAndDelete covers the metadata and early-close endpoints.
func TestSessionInfoAndDelete(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	first, _ := postEnumerate(t, ts, fmt.Sprintf(`{"graph6": %q, "page_size": 1}`, cycleGraph6(t, 5)))
	resp, err := http.Get(ts.URL + "/v1/sessions/" + first.Session)
	if err != nil {
		t.Fatal(err)
	}
	var info SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Emitted != 1 {
		t.Fatalf("want 1 emitted, got %d", info.Emitted)
	}
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/sessions/"+first.Session, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: want 204, got %d", dresp.StatusCode)
	}
	if _, status := getNext(t, ts, first.Session, 0); status != http.StatusNotFound {
		t.Fatalf("deleted session should 404, got %d", status)
	}
}

// TestPoolSingleflight hammers one key concurrently and expects exactly
// one initialization.
func TestPoolSingleflight(t *testing.T) {
	pool := NewSolverPool(4)
	g := gen.Cycle(6)
	key := SolverKey{Fingerprint: g.Fingerprint(), Cost: "width", Bound: -1}
	builds := make(chan struct{}, 64)
	const callers = 16
	errc := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func() {
			_, _, err := pool.Get(context.Background(), key, func(ctx context.Context) (*core.Solver, error) {
				builds <- struct{}{}
				return core.NewSolverContext(ctx, g, cost.Width{})
			})
			errc <- err
		}()
	}
	for i := 0; i < callers; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if n := len(builds); n != 1 {
		t.Fatalf("want exactly 1 build, got %d", n)
	}
	if stats := pool.Stats(); stats.Misses != 1 || stats.Hits != callers-1 {
		t.Fatalf("bad stats: %+v", stats)
	}
}

// TestPoolEviction fills the pool past capacity and expects LRU eviction.
func TestPoolEviction(t *testing.T) {
	pool := NewSolverPool(2)
	for n := 4; n <= 7; n++ {
		g := gen.Cycle(n)
		key := SolverKey{Fingerprint: g.Fingerprint(), Cost: "width", Bound: -1}
		if _, _, err := pool.Get(context.Background(), key, func(ctx context.Context) (*core.Solver, error) {
			return core.NewSolverContext(ctx, g, cost.Width{})
		}); err != nil {
			t.Fatal(err)
		}
	}
	if pool.Len() != 2 {
		t.Fatalf("want 2 cached solvers, got %d", pool.Len())
	}
	if stats := pool.Stats(); stats.Evictions != 2 {
		t.Fatalf("want 2 evictions, got %+v", stats)
	}
}

// TestPoolAbandonedInit cancels the only waiter of an in-flight build and
// expects the build context to be cancelled with it.
func TestPoolAbandonedInit(t *testing.T) {
	pool := NewSolverPool(2)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	cancelled := make(chan struct{})
	go func() {
		pool.Get(ctx, SolverKey{Fingerprint: "x"}, func(bctx context.Context) (*core.Solver, error) {
			close(started)
			<-bctx.Done()
			close(cancelled)
			return nil, bctx.Err()
		})
	}()
	<-started
	cancel()
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("build context was not cancelled after its last waiter left")
	}
}

// TestEdgelessGraph accepts {"n": k} as the edgeless graph on k vertices.
func TestEdgelessGraph(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := postEnumerate(t, ts, `{"n": 3, "page_size": 5}`)
	if len(resp.Results) == 0 || !resp.Done {
		t.Fatalf("edgeless graph should enumerate to completion: %+v", resp)
	}
	if resp.Graph.N != 3 || resp.Graph.M != 0 {
		t.Fatalf("bad graph info: %+v", resp.Graph)
	}
}

// TestOversizedDefaultPageSize clamps a configured page size above the
// hard cap.
func TestOversizedDefaultPageSize(t *testing.T) {
	srv := New(Config{PageSize: 50000})
	defer srv.Close()
	if srv.cfg.PageSize != maxPageSize {
		t.Fatalf("configured page size should clamp to %d, got %d", maxPageSize, srv.cfg.PageSize)
	}
}

// TestStreamTruncation marks a stream cut off by the lifetime budget as
// not done.
func TestStreamTruncation(t *testing.T) {
	_, ts := newTestServer(t, Config{StreamTimeout: time.Nanosecond})
	body := fmt.Sprintf(`{"graph6": %q, "stream": true}`, cycleGraph6(t, 6))
	resp, err := http.Post(ts.URL+"/v1/enumerate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	var last struct {
		Done      bool `json:"done"`
		Truncated bool `json:"truncated"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Done || !last.Truncated {
		t.Fatalf("budget-cut stream must report truncation, got %s", lines[len(lines)-1])
	}
}

// TestNextPageRedelivery cancels a paging request mid-page and checks the
// pulled results are redelivered (not lost) on the retry.
func TestNextPageRedelivery(t *testing.T) {
	m := NewSessionManager(4, time.Minute, nil)
	defer m.Close()
	solver := core.NewSolver(gen.Cycle(5), cost.Width{})
	sess, err := m.Create(solver, SolverKey{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, results, _, err := sess.NextPage(cancelled, 2); err == nil || results != nil {
		t.Fatalf("cancelled page should error without results, got %v, %v", results, err)
	}
	start, results, done, err := sess.NextPage(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if start != 0 || len(results) != 5 || !done {
		t.Fatalf("retry should deliver the full stream from rank 0: start=%d n=%d done=%v", start, len(results), done)
	}
}

// TestNextPageAfterEviction distinguishes eviction from exhaustion.
func TestNextPageAfterEviction(t *testing.T) {
	m := NewSessionManager(4, time.Minute, nil)
	defer m.Close()
	solver := core.NewSolver(gen.Cycle(5), cost.Width{})
	sess, err := m.Create(solver, SolverKey{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Remove(sess.Token) // cancels the session context
	if _, _, done, err := sess.NextPage(context.Background(), 2); !errors.Is(err, ErrSessionNotFound) || done {
		t.Fatalf("evicted session must report ErrSessionNotFound, not done=%v err=%v", done, err)
	}
}

// TestCreateAfterClose reports shutdown, not a bogus missing session.
func TestCreateAfterClose(t *testing.T) {
	m := NewSessionManager(4, time.Minute, nil)
	m.Close()
	solver := core.NewSolver(gen.Cycle(4), cost.Width{})
	if _, err := m.Create(solver, SolverKey{}, nil, nil); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("want ErrShuttingDown, got %v", err)
	}
}

// TestReplayAnchorOnError: Replay's error returns must carry the
// requested anchor rank, not the zero value of the named return — an
// error response claiming the replay was anchored at rank 0 would send a
// recovering client back to re-fetch pages it already has.
func TestReplayAnchorOnError(t *testing.T) {
	m := NewSessionManager(4, time.Minute, nil)
	solver := core.NewSolver(gen.Cycle(6), cost.Width{})
	sess, err := m.Create(solver, SolverKey{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := sess.NextPage(context.Background(), 5); err != nil {
		t.Fatal(err)
	}
	m.Close() // cancels the session's context under the live cursor
	start, results, _, ok, rerr := sess.Replay(context.Background(), 3, 2)
	if !ok || !errors.Is(rerr, ErrSessionNotFound) {
		t.Fatalf("replay on a dead session: ok=%v err=%v", ok, rerr)
	}
	if start != 3 || results != nil {
		t.Fatalf("error replay must echo the anchor rank 3 without results, got start=%d results=%v", start, results)
	}
}

// TestPageReplay re-serves the last page via ?from= (the recovery path
// for a response lost mid-write) and rejects unreplayable ranks.
func TestPageReplay(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	first, _ := postEnumerate(t, ts, fmt.Sprintf(`{"graph6": %q, "page_size": 2}`, cycleGraph6(t, 6)))
	page, status := getNext(t, ts, first.Session, 2) // ranks 2,3
	if status != http.StatusOK || len(page.Results) != 2 {
		t.Fatalf("setup page failed: %d %+v", status, page)
	}
	replayURL := fmt.Sprintf("%s/v1/sessions/%s/next?from=%d", ts.URL, first.Session, page.Results[0].Index)
	resp, err := http.Get(replayURL)
	if err != nil {
		t.Fatal(err)
	}
	var replay EnumerateResponse
	if err := json.NewDecoder(resp.Body).Decode(&replay); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(replay.Results) != 2 || replay.Results[0].Index != 2 || replay.Results[1].Index != 3 {
		t.Fatalf("replay should re-serve ranks 2,3, got %+v", replay.Results)
	}
	// Paging continues from the live cursor afterwards.
	cont, status := getNext(t, ts, first.Session, 2)
	if status != http.StatusOK || cont.Results[0].Index != 4 {
		t.Fatalf("paging after replay should resume at rank 4, got %d %+v", status, cont.Results)
	}
	// Any committed rank is replayable, not just the last page: the shared
	// stream buffer retains the whole prefix.
	resp, err = http.Get(fmt.Sprintf("%s/v1/sessions/%s/next?from=0&page_size=3", ts.URL, first.Session))
	if err != nil {
		t.Fatal(err)
	}
	var old EnumerateResponse
	if err := json.NewDecoder(resp.Body).Decode(&old); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(old.Results) != 3 || old.Results[0].Index != 0 || old.Results[2].Index != 2 {
		t.Fatalf("replay from 0 should re-serve ranks 0..2, got %+v", old.Results)
	}
	// A rank beyond the cursor is a conflict.
	resp, err = http.Get(fmt.Sprintf("%s/v1/sessions/%s/next?from=100", ts.URL, first.Session))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("from beyond the cursor should 409, got %d", resp.StatusCode)
	}
	// from equal to the current cursor pages normally.
	resp, err = http.Get(fmt.Sprintf("%s/v1/sessions/%s/next?from=6&page_size=2", ts.URL, first.Session))
	if err != nil {
		t.Fatal(err)
	}
	var cur EnumerateResponse
	if err := json.NewDecoder(resp.Body).Decode(&cur); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(cur.Results) != 2 || cur.Results[0].Index != 6 {
		t.Fatalf("from=cursor should page normally from rank 6, got %+v", cur.Results)
	}
}

// TestBadPageSizeQuery rejects trailing garbage in the page_size query.
func TestBadPageSizeQuery(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	first, _ := postEnumerate(t, ts, fmt.Sprintf(`{"graph6": %q, "page_size": 1}`, cycleGraph6(t, 5)))
	for _, q := range []string{"5x", "abc", "1.5"} {
		resp, err := http.Get(ts.URL + "/v1/sessions/" + first.Session + "/next?page_size=" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("page_size=%s: want 400, got %d", q, resp.StatusCode)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
}

// TestStatsSolverReuseCounters checks that /v1/stats surfaces the
// incremental-DP counters of the cached solvers after an enumeration, and
// that the FullResolve ablation knob keeps the output identical while
// reporting a dirty ratio of 100%.
func TestStatsSolverReuseCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	g6 := cycleGraph6(t, 6)
	first, _ := postEnumerate(t, ts, fmt.Sprintf(`{"graph6": %q, "cost": "fill", "page_size": 100}`, g6))
	if !first.Done {
		t.Fatalf("cycle enumeration should exhaust in one page, got done=%v", first.Done)
	}
	stats := getStats(t, ts)
	if stats.Solver.ConstrainedSolves == 0 {
		t.Fatal("stats report no constrained solves after an enumeration")
	}
	if stats.Solver.ReusedBlocks == 0 {
		t.Fatal("incremental solver reused no blocks")
	}

	_, tsFull := newTestServer(t, Config{FullResolve: true})
	full, _ := postEnumerate(t, tsFull, fmt.Sprintf(`{"graph6": %q, "cost": "fill", "page_size": 100}`, g6))
	if len(full.Results) != len(first.Results) {
		t.Fatalf("full-resolve enumeration emitted %d results, incremental %d", len(full.Results), len(first.Results))
	}
	for i := range full.Results {
		if full.Results[i].Cost != first.Results[i].Cost || fmt.Sprint(full.Results[i].Bags) != fmt.Sprint(first.Results[i].Bags) {
			t.Fatalf("full-resolve result %d differs from incremental", i)
		}
	}
	fullStats := getStats(t, tsFull)
	if fullStats.Solver.ConstrainedSolves != 0 {
		t.Fatalf("full-resolve solver should bypass the incremental counters, got %d solves", fullStats.Solver.ConstrainedSolves)
	}
}

// TestAtomDecompositionService drives a clique-separated graph through
// both a default server and a NoDecompose server: the decomposed solver
// must report its atom shape in the enumerate response and /v1/stats, and
// the two servers must emit the same enumeration (costs, widths, fills)
// rank by rank.
func TestAtomDecompositionService(t *testing.T) {
	// Two 4-cycles sharing a cut vertex: two atoms of 4 vertices each.
	g := graph.New(7)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {3, 4}, {4, 5}, {5, 6}, {6, 3}} {
		g.AddEdge(e[0], e[1])
	}
	var buf bytes.Buffer
	if err := graph.WriteGraph6(&buf, g); err != nil {
		t.Fatal(err)
	}
	g6 := strings.TrimSpace(buf.String())
	body := fmt.Sprintf(`{"graph6": %q, "cost": "fill", "page_size": 100}`, g6)

	_, tsDec := newTestServer(t, Config{})
	dec, _ := postEnumerate(t, tsDec, body)
	if dec.Solver == nil || dec.Solver.Atoms < 2 {
		t.Fatalf("expected a decomposed solver, got %+v", dec.Solver)
	}
	if dec.Solver.LargestAtom >= 7 {
		t.Fatalf("largest atom %d should be smaller than the graph", dec.Solver.LargestAtom)
	}
	stats := getStats(t, tsDec)
	if stats.Atoms.DecomposedSolvers != 1 || stats.Atoms.TotalAtoms != dec.Solver.Atoms {
		t.Fatalf("atom stats %+v inconsistent with solver info %+v", stats.Atoms, dec.Solver)
	}
	if stats.Atoms.ReadySubSolvers != dec.Solver.Atoms {
		t.Fatalf("expected all %d sub-solvers ready after paging, got %d", dec.Solver.Atoms, stats.Atoms.ReadySubSolvers)
	}

	_, tsMono := newTestServer(t, Config{NoDecompose: true})
	mono, _ := postEnumerate(t, tsMono, body)
	if mono.Solver.Atoms != 0 {
		t.Fatalf("NoDecompose server reported atoms: %+v", mono.Solver)
	}
	if !dec.Done || !mono.Done {
		t.Fatalf("enumerations not exhausted in one page: dec=%v mono=%v", dec.Done, mono.Done)
	}
	if len(dec.Results) == 0 || len(dec.Results) != len(mono.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(dec.Results), len(mono.Results))
	}
	for i := range dec.Results {
		d, m := dec.Results[i], mono.Results[i]
		if d.Cost != m.Cost || d.Width != m.Width || d.Fill != m.Fill {
			t.Fatalf("rank %d differs: decomposed %+v, monolithic %+v", i, d, m)
		}
	}
	// The aggregated separator/PMC counts must agree across the modes.
	if dec.Solver.MinimalSeparators != mono.Solver.MinimalSeparators || dec.Solver.PMCs != mono.Solver.PMCs {
		t.Fatalf("aggregate counts differ: %+v vs %+v", dec.Solver, mono.Solver)
	}
}
