package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// ErrSessionNotFound reports an unknown, completed or evicted session
// token (HTTP 404).
var ErrSessionNotFound = errors.New("service: unknown or expired session")

// ErrTooManySessions reports that the live-session table is full
// (HTTP 429).
var ErrTooManySessions = errors.New("service: session limit reached")

// ErrShuttingDown reports that the manager has been closed and accepts no
// new sessions (HTTP 503).
var ErrShuttingDown = errors.New("service: shutting down")

// Session is one live enumeration stream parked between requests. All
// paging goes through NextPage, which serializes concurrent requests for
// the same token.
type Session struct {
	Token string
	Key   SolverKey

	g         *graph.Graph
	mu        sync.Mutex
	enum      *core.Enumerator
	ctx       context.Context // the enumeration's context; done = evicted/shutdown
	cancel    context.CancelFunc
	last      time.Time
	emitted   int
	pending   []*core.Result // pulled but never delivered (cancelled paging request)
	lastStart int            // global rank of the most recent page's first result
	lastPage  []*core.Result // the most recent page, kept for ?from= replay
	done      bool
}

// graphOf returns the graph the session enumerates (for wire conversion).
func (s *Session) graphOf() *graph.Graph { return s.g }

// SessionStats is a snapshot of SessionManager counters.
type SessionStats struct {
	Live    int    `json:"live"`
	Created uint64 `json:"created"`
	Expired uint64 `json:"expired"`
}

// SessionManager owns the token → Session table: creation under a
// capacity limit, lookup, deletion, idle eviction by a janitor goroutine,
// and cancellation of every live enumeration on shutdown.
type SessionManager struct {
	mu       sync.Mutex
	sessions map[string]*Session
	max      int
	idle     time.Duration
	created  uint64
	expired  uint64
	closed   bool

	base       context.Context
	baseCancel context.CancelFunc
	janitor    chan struct{}
}

// NewSessionManager returns a manager holding at most max sessions and
// evicting sessions idle longer than idle.
func NewSessionManager(max int, idle time.Duration) *SessionManager {
	if max < 1 {
		max = 1
	}
	if idle <= 0 {
		idle = 5 * time.Minute
	}
	base, cancel := context.WithCancel(context.Background())
	m := &SessionManager{
		sessions:   make(map[string]*Session),
		max:        max,
		idle:       idle,
		base:       base,
		baseCancel: cancel,
		janitor:    make(chan struct{}),
	}
	go m.runJanitor()
	return m
}

// Create registers a new session streaming from solver. The enumeration
// context descends from the manager, so Close and idle eviction cancel it.
func (m *SessionManager) Create(solver *core.Solver, key SolverKey) (*Session, error) {
	// Cheap admission check first: a full table must reject before the
	// enumerator's first MinTriang — the most expensive single solve —
	// burns CPU on work that can never be admitted.
	if err := m.admittable(); err != nil {
		return nil, err
	}
	// The solve itself runs outside the table lock, so a slow first
	// MinTriang never stalls unrelated sessions.
	ctx, cancel := context.WithCancel(m.base)
	s := &Session{
		Key:    key,
		g:      solver.Graph(),
		enum:   solver.EnumerateContext(ctx),
		ctx:    ctx,
		cancel: cancel,
		last:   time.Now(),
	}
	m.mu.Lock()
	if m.closed || len(m.sessions) >= m.max {
		closed := m.closed
		m.mu.Unlock()
		cancel()
		if closed {
			return nil, ErrShuttingDown
		}
		return nil, ErrTooManySessions
	}
	s.Token = newToken()
	m.sessions[s.Token] = s
	m.created++
	m.mu.Unlock()
	return s, nil
}

// admittable reports whether a new session would currently be accepted.
func (m *SessionManager) admittable() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrShuttingDown
	}
	if len(m.sessions) >= m.max {
		return ErrTooManySessions
	}
	return nil
}

// Get returns the live session for token.
func (m *SessionManager) Get(token string) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[token]
	if !ok {
		return nil, ErrSessionNotFound
	}
	return s, nil
}

// Remove closes the session for token, cancelling its enumeration.
func (m *SessionManager) Remove(token string) bool {
	m.mu.Lock()
	s, ok := m.sessions[token]
	delete(m.sessions, token)
	m.mu.Unlock()
	if ok {
		s.cancel()
	}
	return ok
}

// Close cancels every live enumeration and stops the janitor. The manager
// rejects new sessions afterwards.
func (m *SessionManager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.sessions = make(map[string]*Session)
	m.mu.Unlock()
	m.baseCancel()
	close(m.janitor)
}

// Stats returns a snapshot of the session counters.
func (m *SessionManager) Stats() SessionStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return SessionStats{Live: len(m.sessions), Created: m.created, Expired: m.expired}
}

// runJanitor evicts idle sessions. The tick is a fraction of the idle
// timeout so eviction latency stays proportional to the configured budget.
func (m *SessionManager) runJanitor() {
	tick := m.idle / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	if tick > 30*time.Second {
		tick = 30 * time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-m.janitor:
			return
		case <-t.C:
		}
		cutoff := time.Now().Add(-m.idle)
		m.mu.Lock()
		snapshot := make([]*Session, 0, len(m.sessions))
		for _, s := range m.sessions {
			snapshot = append(snapshot, s)
		}
		m.mu.Unlock()
		for _, s := range snapshot {
			// TryLock: a session mid-NextPage is busy, hence not idle —
			// and blocking on it here (or worse, while holding m.mu)
			// would stall eviction behind one slow page.
			if !s.mu.TryLock() {
				continue
			}
			stale := s.last.Before(cutoff)
			if stale {
				// Holding s.mu across the table update keeps NextPage
				// from touching the session between check and eviction.
				// Lock order s.mu → m.mu is safe: no other path holds
				// m.mu while acquiring s.mu.
				m.mu.Lock()
				if m.sessions[s.Token] == s {
					delete(m.sessions, s.Token)
					m.expired++
				} else {
					stale = false
				}
				m.mu.Unlock()
			}
			s.mu.Unlock()
			if stale {
				s.cancel()
			}
		}
	}
}

// NextPage advances the session by up to n results, returning the global
// rank of the page's first result (so concurrent pagers on one token get
// disjoint, correctly numbered pages). The done flag reports exhaustion,
// after which the caller should Remove the session.
//
// Two cancellation sources are kept distinct. When the paging request's
// ctx dies mid-page, the response cannot be delivered, so the pulled
// results are parked in a redelivery buffer — the enumerator's cursor is
// destructive, and dropping them would silently lose ranks — and
// ctx.Err() is returned; a retry redelivers them. When the session's own
// context is cancelled (idle eviction, shutdown), ErrSessionNotFound is
// returned rather than mislabelling the truncated stream as exhausted.
func (s *Session) NextPage(ctx context.Context, n int) (start int, results []*core.Result, done bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	start = s.emitted
	for len(s.pending) > 0 && len(results) < n {
		results = append(results, s.pending[0])
		s.pending = s.pending[1:]
	}
	for len(results) < n && !s.done {
		if s.ctx.Err() != nil {
			s.pending = append(results, s.pending...)
			return start, nil, false, ErrSessionNotFound
		}
		if ctx.Err() != nil {
			break
		}
		r, ok := s.enum.Next()
		if !ok {
			if s.ctx.Err() != nil {
				s.pending = append(results, s.pending...)
				return start, nil, false, ErrSessionNotFound
			}
			s.done = true
			break
		}
		results = append(results, r)
	}
	s.last = time.Now()
	if ctx.Err() != nil {
		s.pending = append(results, s.pending...)
		return start, nil, false, ctx.Err()
	}
	s.emitted += len(results)
	if len(results) > 0 {
		s.lastStart, s.lastPage = start, results
	}
	return start, results, s.done, nil
}

// Replay returns the most recent page again when from names its first
// rank — the recovery path for a response lost after NextPage committed
// it (connection dropped mid-write). Only one page of history is kept;
// ok=false means from is neither the last page's start nor the current
// cursor. A from equal to the current cursor returns an empty replay and
// the caller should page normally.
func (s *Session) Replay(from int) (start int, results []*core.Result, done, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.last = time.Now()
	if s.lastPage != nil && from == s.lastStart {
		return s.lastStart, s.lastPage, s.done && len(s.pending) == 0, true
	}
	if from == s.emitted {
		return from, nil, false, true
	}
	return 0, nil, false, false
}

// Emitted returns how many results the session has produced so far.
func (s *Session) Emitted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.emitted
}

// Info returns the session's wire metadata.
func (s *Session) Info() SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionInfo{
		Session:     s.Token,
		Emitted:     s.emitted,
		Queued:      s.enum.Remaining(),
		IdleSeconds: time.Since(s.last).Seconds(),
	}
}

// newToken returns an opaque 128-bit resume token.
func newToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("service: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}
