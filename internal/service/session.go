package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// ErrSessionNotFound reports an unknown, completed or evicted session
// token (HTTP 404).
var ErrSessionNotFound = errors.New("service: unknown or expired session")

// ErrTooManySessions reports that the live-session table is full
// (HTTP 429).
var ErrTooManySessions = errors.New("service: session limit reached")

// ErrShuttingDown reports that the manager has been closed and accepts no
// new sessions (HTTP 503).
var ErrShuttingDown = errors.New("service: shutting down")

// Session is one client's cursor over a shared materialized stream: a
// token, a position, and nothing else that costs memory — the results
// themselves live in the StreamStore buffer, shared with every other
// cursor on the same (graph, cost, bound) key. Paging reads the buffer
// and drives production only past its end (singleflighted per rank across
// all cursors); a page interrupted mid-flight simply does not advance the
// position, so the retry re-reads the same ranks from the buffer — no
// private redelivery state is needed. All paging goes through NextPage,
// which serializes concurrent requests for the same token.
type Session struct {
	Token string
	Key   SolverKey

	g *graph.Graph
	// fromCanon maps the stream's (canonical) labels back to the client's
	// labels; nil when the client submitted in canonical labels already or
	// canonical keying is off. Results are stored canonically — one shared
	// buffer serves every isomorphic client — and relabeled per cursor on
	// egress (see Server.handleEnumerate).
	fromCanon []int
	mu        sync.Mutex
	stream    *StreamHandle
	ctx       context.Context // the session's context; done = evicted/shutdown
	cancel    context.CancelFunc
	closer    sync.Once
	last      time.Time
	pos       int // ranks [0, pos) have been committed to the client
	done      bool
}

// graphOf returns the client-labeled graph the session enumerates (for
// wire conversion).
func (s *Session) graphOf() *graph.Graph { return s.g }

// egress relabels a batch of stream results from the canonical labeling
// into this session's client labeling. The identity case returns the
// shared Results unchanged (they are read-only by contract).
func (s *Session) egress(results []*core.Result) []*core.Result {
	return relabelResults(results, s.fromCanon)
}

// relabelResults maps results through fromCanon, or passes them through
// untouched when fromCanon is nil.
func relabelResults(results []*core.Result, fromCanon []int) []*core.Result {
	if fromCanon == nil || len(results) == 0 {
		return results
	}
	out := make([]*core.Result, len(results))
	for i, r := range results {
		out[i] = core.RelabelResult(r, fromCanon)
	}
	return out
}

// close cancels the session's context and releases its stream reference.
func (s *Session) close() {
	s.closer.Do(func() {
		s.cancel()
		s.stream.Release()
	})
}

// SessionStats is a snapshot of SessionManager counters.
type SessionStats struct {
	Live    int    `json:"live"`
	Created uint64 `json:"created"`
	Expired uint64 `json:"expired"`
}

// SessionManager owns the token → Session table: creation under a
// capacity limit, lookup, deletion, idle eviction by a janitor goroutine,
// and release of every cursor on shutdown. The enumeration state itself
// lives in the StreamStore; evicting a session releases one reference on
// its stream and nothing more — other cursors and the buffered prefix are
// untouched.
type SessionManager struct {
	mu       sync.Mutex
	sessions map[string]*Session
	store    *StreamStore
	max      int
	idle     time.Duration
	created  uint64
	expired  uint64
	closed   bool

	base       context.Context
	baseCancel context.CancelFunc
	janitor    chan struct{}
}

// NewSessionManager returns a manager holding at most max sessions over
// store's materialized streams, evicting sessions idle longer than idle.
func NewSessionManager(max int, idle time.Duration, store *StreamStore) *SessionManager {
	if max < 1 {
		max = 1
	}
	if idle <= 0 {
		idle = 5 * time.Minute
	}
	if store == nil {
		store = NewStreamStore(0, 0)
	}
	base, cancel := context.WithCancel(context.Background())
	m := &SessionManager{
		sessions:   make(map[string]*Session),
		store:      store,
		max:        max,
		idle:       idle,
		base:       base,
		baseCancel: cancel,
		janitor:    make(chan struct{}),
	}
	go m.runJanitor()
	return m
}

// Create registers a new cursor over the shared stream for key, served by
// backend on a stream-cache miss. No enumeration work happens here — the
// first NextPage drives (or merely reads) the shared buffer. clientG is
// the graph in the client's own labeling (nil defaults to the backend's
// graph) and fromCanon, when non-nil, maps the backend's canonical labels
// back to the client's — the per-cursor egress permutation of canonical
// cache keying.
func (m *SessionManager) Create(backend core.Backend, key SolverKey, clientG *graph.Graph, fromCanon []int) (*Session, error) {
	if clientG == nil {
		clientG = backend.Graph()
	}
	ctx, cancel := context.WithCancel(m.base)
	s := &Session{
		Key:       key,
		g:         clientG,
		fromCanon: fromCanon,
		stream:    m.store.Acquire(key, backend),
		ctx:       ctx,
		cancel:    cancel,
		last:      time.Now(),
	}
	m.mu.Lock()
	if m.closed || len(m.sessions) >= m.max {
		closed := m.closed
		m.mu.Unlock()
		s.close()
		if closed {
			return nil, ErrShuttingDown
		}
		return nil, ErrTooManySessions
	}
	s.Token = newToken()
	m.sessions[s.Token] = s
	m.created++
	m.mu.Unlock()
	return s, nil
}

// Get returns the live session for token.
func (m *SessionManager) Get(token string) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[token]
	if !ok {
		return nil, ErrSessionNotFound
	}
	return s, nil
}

// Remove closes the session for token, releasing its stream reference.
func (m *SessionManager) Remove(token string) bool {
	m.mu.Lock()
	s, ok := m.sessions[token]
	delete(m.sessions, token)
	m.mu.Unlock()
	if ok {
		s.close()
	}
	return ok
}

// Close releases every live session and stops the janitor. The manager
// rejects new sessions afterwards.
func (m *SessionManager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	snapshot := m.sessions
	m.sessions = make(map[string]*Session)
	m.mu.Unlock()
	for _, s := range snapshot {
		s.close()
	}
	m.baseCancel()
	close(m.janitor)
}

// Stats returns a snapshot of the session counters.
func (m *SessionManager) Stats() SessionStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return SessionStats{Live: len(m.sessions), Created: m.created, Expired: m.expired}
}

// runJanitor evicts idle sessions. The tick is a fraction of the idle
// timeout so eviction latency stays proportional to the configured budget.
func (m *SessionManager) runJanitor() {
	tick := m.idle / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	if tick > 30*time.Second {
		tick = 30 * time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-m.janitor:
			return
		case <-t.C:
		}
		cutoff := time.Now().Add(-m.idle)
		m.mu.Lock()
		snapshot := make([]*Session, 0, len(m.sessions))
		for _, s := range m.sessions {
			snapshot = append(snapshot, s)
		}
		m.mu.Unlock()
		for _, s := range snapshot {
			// TryLock: a session mid-NextPage is busy, hence not idle —
			// and blocking on it here (or worse, while holding m.mu)
			// would stall eviction behind one slow page.
			if !s.mu.TryLock() {
				continue
			}
			stale := s.last.Before(cutoff)
			if stale {
				// Holding s.mu across the table update keeps NextPage
				// from touching the session between check and eviction.
				// Lock order s.mu → m.mu is safe: no other path holds
				// m.mu while acquiring s.mu.
				m.mu.Lock()
				if m.sessions[s.Token] == s {
					delete(m.sessions, s.Token)
					m.expired++
				} else {
					stale = false
				}
				m.mu.Unlock()
			}
			s.mu.Unlock()
			if stale {
				s.close()
			}
		}
	}
}

// NextPage advances the cursor by up to n results, returning the global
// rank of the page's first result (so concurrent pagers on one token get
// disjoint, correctly numbered pages). The done flag reports exhaustion,
// after which the caller should Remove the session.
//
// Two cancellation sources are kept distinct. When the paging request's
// ctx dies mid-page, the cursor simply does not advance — the results
// already materialized stay in the shared buffer, so a retry re-reads
// them — and ctx's error is returned. When the session's own context is
// cancelled (idle eviction, shutdown), ErrSessionNotFound is returned
// rather than mislabelling the truncated stream as exhausted.
func (s *Session) NextPage(ctx context.Context, n int) (start int, results []*core.Result, done bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.last = time.Now()
	start = s.pos
	for len(results) < n {
		if s.ctx.Err() != nil {
			return start, nil, false, ErrSessionNotFound
		}
		if ctx.Err() != nil {
			return start, nil, false, ctx.Err()
		}
		r, ok, aerr := s.stream.At(ctx, s.pos+len(results))
		if aerr != nil {
			if s.ctx.Err() != nil {
				return start, nil, false, ErrSessionNotFound
			}
			return start, nil, false, aerr
		}
		if !ok {
			s.done = true
			break
		}
		results = append(results, r)
	}
	s.pos += len(results)
	s.last = time.Now()
	return start, results, s.done, nil
}

// Replay re-serves up to n already-committed results starting at rank
// from — the recovery path for a response lost after NextPage committed
// it (connection dropped mid-write). Any from in [0, cursor] is
// replayable: the shared buffer retains the whole prefix, and even if the
// byte budget evicted it, the stream rebuilds and replays the identical
// ranks (hence the ctx). Replay never advances the cursor; ok=false means
// from lies beyond it. A from equal to the current cursor returns an
// empty replay and the caller should page normally.
func (s *Session) Replay(ctx context.Context, from, n int) (start int, results []*core.Result, done, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.last = time.Now()
	if from < 0 || from > s.pos {
		return 0, nil, false, false, nil
	}
	if from == s.pos {
		return from, nil, false, true, nil
	}
	end := from + n
	if end > s.pos {
		end = s.pos
	}
	for i := from; i < end; i++ {
		// Error returns carry from, not the zero-valued named return: an
		// error response's page start must still say where the replay was
		// anchored.
		if s.ctx.Err() != nil {
			return from, nil, false, true, ErrSessionNotFound
		}
		r, rok, aerr := s.stream.At(ctx, i)
		if aerr != nil {
			return from, nil, false, true, aerr
		}
		if !rok {
			// Impossible for ranks below the cursor: the stream replays
			// deterministically, so a committed rank always rematerializes.
			return from, nil, false, true, errors.New("service: committed rank vanished from the stream")
		}
		results = append(results, r)
	}
	return from, results, s.done && end == s.pos, true, nil
}

// Emitted returns how many results the session has committed so far.
func (s *Session) Emitted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pos
}

// Info returns the session's wire metadata.
func (s *Session) Info() SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionInfo{
		Session:       s.Token,
		Emitted:       s.pos,
		BufferedAhead: s.stream.BufferedAhead(s.pos),
		IdleSeconds:   time.Since(s.last).Seconds(),
	}
}

// newToken returns an opaque 128-bit resume token.
func newToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("service: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}
