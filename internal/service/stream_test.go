package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/graph"
)

// oracleLines renders a solver's full enumeration the way the wire does —
// the byte-identical reference every shared-stream consumer must match.
func oracleLines(t *testing.T, solver *core.Solver) []string {
	t.Helper()
	g := solver.Graph()
	e := solver.Enumerate()
	var out []string
	for i := 0; ; i++ {
		r, ok := e.Next()
		if !ok {
			return out
		}
		b, err := json.Marshal(resultJSON(g, i, r))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(b))
	}
}

// TestStreamStoreSharing: two handles on one key share a buffer (hit),
// different keys do not, and releasing a produced buffer keeps it cached
// for the next consumer.
func TestStreamStoreSharing(t *testing.T) {
	store := NewStreamStore(0, 0)
	solver := core.NewSolver(gen.Cycle(6), cost.Width{})
	key := SolverKey{Fingerprint: "c6", Cost: "width", Bound: -1}

	h1 := store.Acquire(key, solver)
	h2 := store.Acquire(key, solver)
	if st := store.Stats(); st.Hits != 1 || st.Misses != 1 || st.Streams != 1 || st.Cursors != 2 {
		t.Fatalf("bad stats after two acquires: %+v", st)
	}
	r1, ok, err := h1.At(context.Background(), 0)
	if !ok || err != nil {
		t.Fatalf("At: ok=%v err=%v", ok, err)
	}
	r2, _, _ := h2.At(context.Background(), 0)
	if r1 != r2 {
		t.Fatal("handles on one key must share the materialized buffer")
	}
	other := store.Acquire(SolverKey{Fingerprint: "other"}, solver)
	if st := store.Stats(); st.Misses != 2 || st.Streams != 2 {
		t.Fatalf("distinct key should miss: %+v", st)
	}

	h1.Release()
	h1.Release() // idempotent
	h2.Release()
	if st := store.Stats(); st.Streams != 2 || st.Cursors != 1 {
		t.Fatalf("produced buffer should stay cached after release: %+v", st)
	}
	// A fresh consumer rides the cached buffer: no new production needed
	// for rank 0.
	h3 := store.Acquire(key, solver)
	if h3.Buffered() < 1 {
		t.Fatal("cached buffer lost its results")
	}
	h3.Release()
	// The never-produced entry is dropped once unreferenced.
	other.Release()
	if store.Len() != 1 {
		t.Fatalf("empty unreferenced stream should be dropped, have %d", store.Len())
	}
}

// TestStreamStoreEvictionAndRebuild forces byte-budget eviction of a cold
// stream and expects (a) its bytes reclaimed, (b) a later read to rebuild
// and replay the identical results.
func TestStreamStoreEvictionAndRebuild(t *testing.T) {
	ctx := context.Background()
	solverA := core.NewSolver(gen.Cycle(8), cost.FillIn{})
	solverB := core.NewSolver(gen.Cycle(9), cost.FillIn{})
	keyA := SolverKey{Fingerprint: "a"}
	keyB := SolverKey{Fingerprint: "b"}

	// Budget sized so one full C8 buffer fits but two streams do not.
	// Reads run past a touchStride multiple so the batched accounting has
	// registered the growth by the end of each phase.
	const reads = 2*touchStride + 8
	perResult := solverA.TopK(1)[0].SizeEstimate()
	store := NewStreamStore(int64(reads)*perResult*4/3, 0)

	hA := store.Acquire(keyA, solverA)
	var sigA []string
	for i := 0; i < reads; i++ {
		r, ok, err := hA.At(ctx, i)
		if !ok || err != nil {
			t.Fatalf("A rank %d: ok=%v err=%v", i, ok, err)
		}
		sigA = append(sigA, fmt.Sprintf("%g|%v", r.Cost, r.Bags))
	}

	// Growing B past the budget must evict A (the LRU victim), not B.
	hB := store.Acquire(keyB, solverB)
	for i := 0; i < reads; i++ {
		if _, ok, err := hB.At(ctx, i); !ok || err != nil {
			t.Fatalf("B rank %d: ok=%v err=%v", i, ok, err)
		}
	}
	st := store.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no eviction despite exceeding the budget: %+v", st)
	}
	if hA.Buffered() != 0 {
		t.Fatalf("LRU stream A should have been truncated, buffered=%d", hA.Buffered())
	}
	if hB.Buffered() == 0 {
		t.Fatal("the stream being grown must never self-evict")
	}

	// A's cursor still works: the stream rebuilds and replays byte-identically.
	for i := 0; i < reads; i++ {
		r, ok, err := hA.At(ctx, i)
		if !ok || err != nil {
			t.Fatalf("A rank %d after eviction: ok=%v err=%v", i, ok, err)
		}
		if got := fmt.Sprintf("%g|%v", r.Cost, r.Bags); got != sigA[i] {
			t.Fatalf("rank %d differs after rebuild:\n got %s\nwant %s", i, got, sigA[i])
		}
	}
	if st := store.Stats(); st.Rebuilds == 0 {
		t.Fatalf("rebuild not counted: %+v", st)
	}
	hA.Release()
	hB.Release()
}

// TestStreamStoreSelfTrimBounded: a single stream larger than the whole
// byte budget must not grow without bound — its window slides behind the
// reader instead (the lone-NDJSON-client memory guarantee).
func TestStreamStoreSelfTrimBounded(t *testing.T) {
	ctx := context.Background()
	solver := core.NewSolver(gen.Cycle(9), cost.FillIn{}) // 429 results
	perResult := solver.TopK(1)[0].SizeEstimate()
	budget := 10 * perResult
	store := NewStreamStore(budget, 0)
	h := store.Acquire(SolverKey{Fingerprint: "c9"}, solver)
	defer h.Release()
	for i := 0; i < 200; i++ {
		if _, ok, err := h.At(ctx, i); !ok || err != nil {
			t.Fatalf("rank %d: ok=%v err=%v", i, ok, err)
		}
		// The window may overshoot by up to a touch stride of appends
		// before the batched accounting trims it.
		if b := store.Stats().Bytes; b > budget+int64(touchStride+2)*perResult {
			t.Fatalf("stream grew past the budget at rank %d: %d bytes (budget %d)", i, b, budget)
		}
	}
	if st := store.Stats(); st.BufferedResults >= 200 {
		t.Fatalf("window did not slide: %d results buffered", st.BufferedResults)
	}
	// A committed rank behind the window is still readable via rebuild.
	if _, ok, err := h.At(ctx, 0); !ok || err != nil {
		t.Fatalf("read behind the window: ok=%v err=%v", ok, err)
	}
}

// TestStreamStoreTrimRespectsSlowCursor: the budget trim must never
// slide the window past a live lagging cursor — doing so would make the
// laggard's next read Reset the stream and the leader re-enumerate its
// whole prefix, a ping-pong costing more than the memory saved.
func TestStreamStoreTrimRespectsSlowCursor(t *testing.T) {
	ctx := context.Background()
	solver := core.NewSolver(gen.Cycle(9), cost.FillIn{}) // 429 results
	perResult := solver.TopK(1)[0].SizeEstimate()
	store := NewStreamStore(10*perResult, 0)
	slow := store.Acquire(SolverKey{Fingerprint: "c9"}, solver)
	fast := store.Acquire(SolverKey{Fingerprint: "c9"}, solver)
	defer slow.Release()
	defer fast.Release()

	// The slow cursor parks at rank 5; the fast one races far past the
	// budget. The window must keep every rank >= 5 materialized.
	for i := 0; i <= 5; i++ {
		if _, ok, err := slow.At(ctx, i); !ok || err != nil {
			t.Fatalf("slow rank %d: ok=%v err=%v", i, ok, err)
		}
	}
	for i := 0; i < 150; i++ {
		if _, ok, err := fast.At(ctx, i); !ok || err != nil {
			t.Fatalf("fast rank %d: ok=%v err=%v", i, ok, err)
		}
	}
	solves := solver.ReuseStats().ConstrainedSolves
	// The slow cursor resumes through the fast cursor's wake: every rank
	// must come from the buffer, with no rebuild and no re-enumeration.
	for i := 6; i < 150; i++ {
		if _, ok, err := slow.At(ctx, i); !ok || err != nil {
			t.Fatalf("slow resume rank %d: ok=%v err=%v", i, ok, err)
		}
	}
	if r := store.Stats().Rebuilds; r != 0 {
		t.Fatalf("trim crossed a live cursor: %d rebuilds", r)
	}
	if after := solver.ReuseStats().ConstrainedSolves; after != solves {
		t.Fatalf("slow cursor re-enumerated: %d -> %d constrained solves", solves, after)
	}
}

// TestStreamStoreEntryCap: unreferenced entries beyond the entry cap are
// dropped (they pin solvers, so the byte budget alone is not enough).
func TestStreamStoreEntryCap(t *testing.T) {
	ctx := context.Background()
	store := NewStreamStore(0, 2)
	for i := 0; i < 5; i++ {
		solver := core.NewSolver(gen.Cycle(5), cost.Width{})
		h := store.Acquire(SolverKey{Fingerprint: fmt.Sprintf("g%d", i)}, solver)
		if _, ok, err := h.At(ctx, 0); !ok || err != nil {
			t.Fatalf("graph %d: ok=%v err=%v", i, ok, err)
		}
		h.Release()
	}
	if n := store.Len(); n > 2 {
		t.Fatalf("entry cap 2 exceeded: %d entries", n)
	}
	// Referenced entries survive the cap even when it is exceeded.
	var held []*StreamHandle
	for i := 0; i < 4; i++ {
		solver := core.NewSolver(gen.Cycle(5), cost.Width{})
		h := store.Acquire(SolverKey{Fingerprint: fmt.Sprintf("h%d", i)}, solver)
		if _, ok, err := h.At(ctx, 0); !ok || err != nil {
			t.Fatalf("held graph %d: ok=%v err=%v", i, ok, err)
		}
		held = append(held, h)
	}
	if st := store.Stats(); st.Cursors != 4 {
		t.Fatalf("want 4 live cursors, got %+v", st)
	}
	for _, h := range held {
		if _, ok, err := h.At(ctx, 1); !ok || err != nil {
			t.Fatalf("held handle unusable: ok=%v err=%v", ok, err)
		}
		h.Release()
	}
}

// TestSessionInfoBufferedAhead: results materialized by one cursor count
// as buffered-ahead work for a colder cursor on the same key.
func TestSessionInfoBufferedAhead(t *testing.T) {
	m := NewSessionManager(4, time.Minute, nil)
	defer m.Close()
	solver := core.NewSolver(gen.Cycle(7), cost.Width{})
	key := SolverKey{Fingerprint: "c7"}
	warm, err := m.Create(solver, key, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := m.Create(solver, key, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := warm.NextPage(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	if info := warm.Info(); info.Emitted != 10 || info.BufferedAhead != 0 {
		t.Fatalf("warm cursor info: %+v", info)
	}
	if info := cold.Info(); info.Emitted != 0 || info.BufferedAhead != 10 {
		t.Fatalf("cold cursor should see 10 buffered ranks ahead: %+v", info)
	}
	// The cold cursor's first page does zero solving work.
	before := solver.ReuseStats().ConstrainedSolves
	if _, results, _, err := cold.NextPage(context.Background(), 10); err != nil || len(results) != 10 {
		t.Fatalf("cold page: n=%d err=%v", len(results), err)
	}
	if after := solver.ReuseStats().ConstrainedSolves; after != before {
		t.Fatalf("cold cursor re-solved: %d -> %d constrained solves", before, after)
	}
}

// TestReplayAcrossPagesAndEviction is the dropped-connection recovery
// regression test: a cursor pages deep, then replays ranks several pages
// back — including after the byte budget evicted the buffer, which must
// rebuild and serve the same results.
func TestReplayAcrossPagesAndEviction(t *testing.T) {
	solver := core.NewSolver(gen.Cycle(8), cost.FillIn{})
	key := SolverKey{Fingerprint: "c8"}
	store := NewStreamStore(0, 0)
	m := NewSessionManager(4, time.Minute, store)
	defer m.Close()
	sess, err := m.Create(solver, key, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var committed []*core.Result
	for p := 0; p < 5; p++ {
		_, results, _, err := sess.NextPage(ctx, 4)
		if err != nil {
			t.Fatal(err)
		}
		committed = append(committed, results...)
	}

	// Replay a window three pages back.
	start, results, done, ok, err := sess.Replay(ctx, 6, 4)
	if !ok || err != nil || done {
		t.Fatalf("replay(6,4): ok=%v done=%v err=%v", ok, done, err)
	}
	if start != 6 || len(results) != 4 {
		t.Fatalf("replay window: start=%d n=%d", start, len(results))
	}
	for i, r := range results {
		if r != committed[6+i] {
			t.Fatalf("replayed rank %d is not the committed result", 6+i)
		}
	}
	// Replay clamps at the cursor and never advances it.
	if _, results, _, ok, _ := sess.Replay(ctx, 18, 100); !ok || len(results) != 2 {
		t.Fatalf("replay(18,100) should clamp to the cursor: ok=%v n=%d", ok, len(results))
	}
	if sess.Emitted() != 20 {
		t.Fatalf("replay advanced the cursor to %d", sess.Emitted())
	}
	// Beyond the cursor: not replayable.
	if _, _, _, ok, _ := sess.Replay(ctx, 21, 4); ok {
		t.Fatal("rank beyond the cursor must not be replayable")
	}

	// Evict the buffer out from under the cursor, then replay again: the
	// stream rebuilds deterministically and the ranks come back equal.
	sig := func(r *core.Result) string { return fmt.Sprintf("%g|%v", r.Cost, r.Bags) }
	want := make([]string, len(committed))
	for i, r := range committed {
		want[i] = sig(r)
	}
	for _, e := range store.entries {
		e.stream.Reset()
	}
	start, results, _, ok, err = sess.Replay(ctx, 0, 20)
	if !ok || err != nil || start != 0 || len(results) != 20 {
		t.Fatalf("replay after eviction: ok=%v err=%v start=%d n=%d", ok, err, start, len(results))
	}
	for i, r := range results {
		if sig(r) != want[i] {
			t.Fatalf("rank %d differs after eviction+rebuild", i)
		}
	}
}

// TestSharedStreamFanoutOracle is the stress test: many concurrent paging
// sessions and NDJSON streams on the same fingerprint, under a byte
// budget tight enough to force mid-run evictions and rebuilds, must each
// see the byte-identical rank order of a solo enumerator. Run with -race
// in CI.
func TestSharedStreamFanoutOracle(t *testing.T) {
	g := gen.Cycle(8) // Catalan(6) = 132 minimal triangulations
	oracleSolver := core.NewSolver(g, cost.FillIn{})
	want := oracleLines(t, oracleSolver)
	if len(want) != 132 {
		t.Fatalf("C8 oracle: want 132 results, got %d", len(want))
	}

	// A budget of ~25 results over a 132-result stream forces repeated
	// eviction/rebuild while the fan-out is mid-flight. NoCanon pins the
	// pre-canonicalization path: this oracle demands the byte-identical
	// rank order of a solo solve on the submitted labeling, and canonical
	// keying enumerates a relabeling, which may permute equal-cost ties
	// (the canonical path has its own tie-aware oracle in canon tests).
	budget := 25 * oracleSolver.TopK(1)[0].SizeEstimate()
	_, ts := newTestServer(t, Config{StreamBudgetBytes: budget, MaxConcurrent: 16, MaxSessions: 64, NoCanon: true})
	g6 := cycleGraph6(t, 8)

	const pagers, streamers = 8, 4
	var wg sync.WaitGroup
	errs := make(chan error, pagers+streamers)
	collect := func(idx int, lines []string, err error) {
		if err != nil {
			errs <- fmt.Errorf("client %d: %v", idx, err)
			return
		}
		if len(lines) != len(want) {
			errs <- fmt.Errorf("client %d: got %d results, want %d", idx, len(lines), len(want))
			return
		}
		for i := range lines {
			if lines[i] != want[i] {
				errs <- fmt.Errorf("client %d: rank %d differs from solo enumerator:\n got %s\nwant %s", idx, i, lines[i], want[i])
				return
			}
		}
	}

	for c := 0; c < pagers; c++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			lines, err := pageAll(ts, g6, 7)
			collect(idx, lines, err)
		}(c)
	}
	for c := 0; c < streamers; c++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			lines, err := streamAll(ts, g6)
			collect(pagers+idx, lines, err)
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// pageAll drives one paging session to exhaustion and returns the result
// lines in rank order.
func pageAll(ts *httptest.Server, g6 string, pageSize int) ([]string, error) {
	body := fmt.Sprintf(`{"graph6": %q, "cost": "fill", "page_size": %d}`, g6, pageSize)
	resp, err := http.Post(ts.URL+"/v1/enumerate", "application/json", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("enumerate: status %d", resp.StatusCode)
	}
	var page EnumerateResponse
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return nil, err
	}
	lines, err := appendResultLines(nil, page.Results)
	if err != nil {
		return nil, err
	}
	for !page.Done {
		next, err := http.Get(fmt.Sprintf("%s/v1/sessions/%s/next?page_size=%d", ts.URL, page.Session, pageSize))
		if err != nil {
			return nil, err
		}
		if next.StatusCode != http.StatusOK {
			next.Body.Close()
			return nil, fmt.Errorf("next: status %d", next.StatusCode)
		}
		var np EnumerateResponse
		err = json.NewDecoder(next.Body).Decode(&np)
		next.Body.Close()
		if err != nil {
			return nil, err
		}
		if np.Session != "" {
			page.Session = np.Session
		}
		page.Done = np.Done
		if lines, err = appendResultLines(lines, np.Results); err != nil {
			return nil, err
		}
	}
	return lines, nil
}

// streamAll reads one NDJSON stream to its summary line.
func streamAll(ts *httptest.Server, g6 string) ([]string, error) {
	return streamAllBody(ts, fmt.Sprintf(`{"graph6": %q, "cost": "fill", "stream": true}`, g6))
}

// streamAllBody is streamAll over a raw request body.
func streamAllBody(ts *httptest.Server, body string) ([]string, error) {
	resp, err := http.Post(ts.URL+"/v1/enumerate", "application/json", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stream: status %d", resp.StatusCode)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.Contains(line, `"count"`) { // summary line
			var sum struct {
				Done  bool `json:"done"`
				Count int  `json:"count"`
			}
			if err := json.Unmarshal([]byte(line), &sum); err != nil {
				return nil, err
			}
			if !sum.Done || sum.Count != len(lines) {
				return nil, fmt.Errorf("bad summary %s after %d lines", line, len(lines))
			}
			return lines, sc.Err()
		}
		lines = append(lines, line)
	}
	return nil, fmt.Errorf("stream ended without a summary line (%d lines): %v", len(lines), sc.Err())
}

// appendResultLines re-marshals wire results into canonical NDJSON lines
// so paged and streamed output compare byte-for-byte.
func appendResultLines(lines []string, results []TriangulationJSON) ([]string, error) {
	for _, r := range results {
		b, err := json.Marshal(r)
		if err != nil {
			return nil, err
		}
		lines = append(lines, string(b))
	}
	return lines, nil
}

// waitUntil polls cond for up to two seconds — for asserting that a
// speculative producer eventually reaches a state.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStreamStorePrefetchPausesOnLastRelease wires the PR 4 invariant —
// abandoned streams burn no CPU — through the speculative producer: the
// last Release parks it, the next Acquire wakes it, and the stream a
// woken producer finishes is byte-identical to a solo enumeration.
func TestStreamStorePrefetchPausesOnLastRelease(t *testing.T) {
	ctx := context.Background()
	store := NewStreamStore(0, 0)
	store.Tune(1, 8, 0)
	solver := core.NewSolver(gen.Cycle(9), cost.FillIn{}) // 429 results
	key := SolverKey{Fingerprint: "c9"}

	h := store.Acquire(key, solver)
	if _, ok, err := h.At(ctx, 0); !ok || err != nil {
		t.Fatalf("rank 0: ok=%v err=%v", ok, err)
	}
	waitUntil(t, "speculation to start", func() bool {
		return store.PrefetchStats().PrefetchSolves > 0
	})
	h.Release()
	waitUntil(t, "last release to pause the producer", func() bool {
		return store.PrefetchStats().Pauses >= 1
	})
	// A pause can leave one solve in flight; wait for production to settle,
	// then assert it stays settled.
	var parked uint64
	for {
		parked = store.PrefetchStats().PrefetchSolves
		time.Sleep(20 * time.Millisecond)
		if store.PrefetchStats().PrefetchSolves == parked {
			break
		}
	}
	time.Sleep(30 * time.Millisecond)
	if got := store.PrefetchStats().PrefetchSolves; got != parked {
		t.Fatalf("parked producer kept producing: %d -> %d speculative solves", parked, got)
	}

	// The next consumer resumes speculation, and everything the producer
	// built — before and after the park — matches a solo enumeration.
	h2 := store.Acquire(key, solver)
	defer h2.Release()
	waitUntil(t, "re-acquire to resume the producer", func() bool {
		return store.PrefetchStats().Resumes >= 1
	})
	oracle := core.NewSolver(gen.Cycle(9), cost.FillIn{})
	sig := func(r *core.Result) string { return fmt.Sprintf("%g|%v", r.Cost, r.Bags) }
	e := oracle.Enumerate()
	for i := 0; ; i++ {
		want, wok := e.Next()
		got, gok, err := h2.At(ctx, i)
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
		if gok != wok {
			t.Fatalf("rank %d: exhaustion mismatch (stream %v, oracle %v)", i, gok, wok)
		}
		if !wok {
			break
		}
		if sig(got) != sig(want) {
			t.Fatalf("rank %d differs from the solo enumeration", i)
		}
	}
}

// TestStreamStorePrefetchOracleUnderEviction drives concurrent cursors on
// two keys under a byte budget tight enough to evict and rebuild streams
// while their speculative producers are live. Oracle: every cursor sees
// the byte-identical rank order of a solo enumerator — with prefetch on.
// Run with -race in CI.
func TestStreamStorePrefetchOracleUnderEviction(t *testing.T) {
	graphs := []struct {
		key SolverKey
		g   *graph.Graph
	}{
		{SolverKey{Fingerprint: "c8"}, gen.Cycle(8)}, // 132 results
		{SolverKey{Fingerprint: "c9"}, gen.Cycle(9)}, // 429 results
	}
	sig := func(r *core.Result) string { return fmt.Sprintf("%g|%v", r.Cost, r.Bags) }
	oracles := make([][]string, len(graphs))
	solvers := make([]*core.Solver, len(graphs))
	for i, gr := range graphs {
		solvers[i] = core.NewSolver(gr.g, cost.FillIn{})
		o := core.NewSolver(gr.g, cost.FillIn{})
		e := o.Enumerate()
		for {
			r, ok := e.Next()
			if !ok {
				break
			}
			oracles[i] = append(oracles[i], sig(r))
		}
	}

	// ~20 results of budget across two streams of 132 and 429 results
	// forces repeated eviction/rebuild mid-speculation.
	budget := 20 * solvers[0].TopK(1)[0].SizeEstimate()
	store := NewStreamStore(budget, 0)
	store.Tune(2, 16, 0)

	const cursorsPerKey = 3
	var wg sync.WaitGroup
	errs := make(chan error, len(graphs)*cursorsPerKey)
	for gi := range graphs {
		for c := 0; c < cursorsPerKey; c++ {
			wg.Add(1)
			go func(gi, c int) {
				defer wg.Done()
				ctx := context.Background()
				h := store.Acquire(graphs[gi].key, solvers[gi])
				defer h.Release()
				// Churn the refcount on one cursor per key so pause/resume
				// transitions interleave with the eviction traffic.
				if c == 0 {
					h.Release()
					h = store.Acquire(graphs[gi].key, solvers[gi])
					defer h.Release()
				}
				for i := 0; i < len(oracles[gi]); i++ {
					r, ok, err := h.At(ctx, i)
					if err != nil {
						errs <- fmt.Errorf("key %d rank %d: %v", gi, i, err)
						return
					}
					if !ok {
						errs <- fmt.Errorf("key %d: spurious exhaustion at rank %d", gi, i)
						return
					}
					if sig(r) != oracles[gi][i] {
						errs <- fmt.Errorf("key %d rank %d differs from solo enumerator under eviction churn", gi, i)
						return
					}
				}
			}(gi, c)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Evictions == 0 {
		t.Fatalf("budget never forced an eviction — test exercised nothing: %+v", st)
	}
}

// TestStatsPrefetchBlock: /v1/stats surfaces the prefetch block — enabled
// by default, speculative solves accumulating after a first page, and a
// warm second consumer reading buffered hits.
func TestStatsPrefetchBlock(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	g6 := cycleGraph6(t, 8)
	body := fmt.Sprintf(`{"graph6": %q, "cost": "fill", "page_size": 5}`, g6)
	postEnumerate(t, ts, body)

	stats := getStats(t, ts)
	if !stats.Prefetch.Enabled || stats.Prefetch.AheadRanks != defaultPrefetchAhead {
		t.Fatalf("prefetch should be on by default: %+v", stats.Prefetch)
	}
	if stats.Prefetch.SolveWorkers < 1 {
		t.Fatalf("solve workers should default to GOMAXPROCS: %+v", stats.Prefetch)
	}
	// The page demanded 5 ranks; the speculative producer runs ahead of
	// them in the background.
	waitUntil(t, "speculative solves to accrue", func() bool {
		return getStats(t, ts).Prefetch.PrefetchSolves > 0
	})
	waitUntil(t, "lookahead high water to register", func() bool {
		return getStats(t, ts).Prefetch.LookaheadHighWater > 0
	})

	// A second consumer of the same graph rides the speculatively built
	// buffer: its reads are hits, not demand solves.
	before := getStats(t, ts).Prefetch
	postEnumerate(t, ts, body)
	after := getStats(t, ts).Prefetch
	if after.BufferedHits <= before.BufferedHits {
		t.Fatalf("warm consumer should read buffered hits: %+v -> %+v", before, after)
	}
	if after.DemandSolves > before.DemandSolves {
		t.Fatalf("warm consumer inside the lookahead should not demand-solve: %+v -> %+v", before, after)
	}
}

// TestStatsPrefetchDisabled: negative config knobs switch the serving
// tier back to the demand-driven sequential baseline, and /v1/stats says
// so.
func TestStatsPrefetchDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{PrefetchAhead: -1, SolveWorkers: -1})
	g6 := cycleGraph6(t, 7)
	postEnumerate(t, ts, fmt.Sprintf(`{"graph6": %q, "cost": "fill", "page_size": 5}`, g6))
	time.Sleep(50 * time.Millisecond) // give any (wrongly) started producer time to show up
	stats := getStats(t, ts)
	if stats.Prefetch.Enabled {
		t.Fatalf("negative PrefetchAhead must disable speculation: %+v", stats.Prefetch)
	}
	if stats.Prefetch.PrefetchSolves != 0 || stats.Prefetch.Pauses != 0 {
		t.Fatalf("disabled prefetch must not speculate: %+v", stats.Prefetch)
	}
	if stats.Prefetch.SolveWorkers != 1 {
		t.Fatalf("negative SolveWorkers must mean sequential: %+v", stats.Prefetch)
	}
	if stats.Prefetch.DemandSolves < 5 {
		t.Fatalf("demand production should still be counted: %+v", stats.Prefetch)
	}
}

// TestStatsStreamCounters: /v1/stats surfaces the stream cache block with
// hits and buffered bytes after a shared fan-out.
func TestStatsStreamCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	g6 := cycleGraph6(t, 6)
	body := fmt.Sprintf(`{"graph6": %q, "cost": "fill", "page_size": 100}`, g6)
	postEnumerate(t, ts, body)
	postEnumerate(t, ts, body)
	stats := getStats(t, ts)
	if stats.Streams.Misses != 1 || stats.Streams.Hits < 1 {
		t.Fatalf("second submission should hit the stream cache: %+v", stats.Streams)
	}
	if stats.Streams.BufferedResults != 14 || stats.Streams.Bytes <= 0 {
		t.Fatalf("C6 buffer should hold 14 results with bytes > 0: %+v", stats.Streams)
	}
	if stats.Streams.BudgetBytes != defaultStreamBudget {
		t.Fatalf("default budget not reported: %+v", stats.Streams)
	}
}

// TestStreamStatsRebuildsMonotoneAcrossDrop: the /v1/stats rebuilds
// counter is monotone. Rebuild counts live on the stream entries, so
// dropping an entry (entry-cap churn, release of an empty stream) used to
// subtract its rebuilds from the next snapshot — a monotone wire counter
// that went backwards. Dropped entries' counts must fold into the retired
// aggregate, exactly like the prefetch counters.
func TestStreamStatsRebuildsMonotoneAcrossDrop(t *testing.T) {
	ctx := context.Background()
	store := NewStreamStore(0, 1)
	solver := core.NewSolver(gen.Cycle(6), cost.Width{})
	keyA := SolverKey{Fingerprint: "a"}

	h := store.Acquire(keyA, solver)
	for i := 0; i < 5; i++ {
		if _, ok, err := h.At(ctx, i); !ok || err != nil {
			t.Fatalf("rank %d: ok=%v err=%v", i, ok, err)
		}
	}
	// Force a rebuild: reset the buffer behind the cursor's back (what a
	// budget eviction does) and re-demand a committed rank.
	store.mu.Lock()
	store.entries[keyA].stream.Reset()
	store.mu.Unlock()
	if _, ok, err := h.At(ctx, 0); !ok || err != nil {
		t.Fatalf("re-demand after reset: ok=%v err=%v", ok, err)
	}
	before := store.Stats().Rebuilds
	if before == 0 {
		t.Fatal("rebuild not counted")
	}
	h.Release()

	// Acquiring a second key over the cap drops A's (unreferenced) entry.
	h2 := store.Acquire(SolverKey{Fingerprint: "b"}, core.NewSolver(gen.Cycle(5), cost.Width{}))
	defer h2.Release()
	if _, ok, err := h2.At(ctx, 0); !ok || err != nil {
		t.Fatalf("second stream: ok=%v err=%v", ok, err)
	}
	if store.Contains(keyA) {
		t.Fatal("entry cap did not drop the unreferenced entry; the test exercises nothing")
	}
	if after := store.Stats().Rebuilds; after < before {
		t.Fatalf("rebuilds went backwards across an entry drop: %d -> %d", before, after)
	}
}

// TestStreamStoreClosePostAcquireDemandDriven: Close stops speculation
// for good. An Acquire after Close (the HTTP drain window) must create
// demand-driven streams — no speculative producer may be configured for
// them, and the refs 0→1 resume path must stay parked — or shutdown
// leaks enumeration goroutines that race the exiting process. Run with
// -race in CI.
func TestStreamStoreClosePostAcquireDemandDriven(t *testing.T) {
	ctx := context.Background()
	store := NewStreamStore(0, 0)
	store.Tune(1, 64, 0) // speculation on for streams created from now on
	store.Close()

	solver := core.NewSolver(gen.Cycle(8), cost.FillIn{})
	key := SolverKey{Fingerprint: "post-close"}
	h := store.Acquire(key, solver)
	if _, ok, err := h.At(ctx, 0); !ok || err != nil {
		t.Fatalf("post-Close read must stay demand-driven and work: ok=%v err=%v", ok, err)
	}
	// The refs 0→1 transition is the resume path; exercise it post-Close.
	h.Release()
	h2 := store.Acquire(key, solver)
	defer h2.Release()
	if _, ok, err := h2.At(ctx, 1); !ok || err != nil {
		t.Fatalf("post-Close reacquire: ok=%v err=%v", ok, err)
	}
	// Give a leaked producer time to do visible work, then assert none did.
	time.Sleep(50 * time.Millisecond)
	if pf := store.PrefetchStats(); pf.PrefetchSolves != 0 || pf.Resumes != 0 {
		t.Fatalf("speculative producer ran after Close: %+v", pf)
	}
}
