package service

import (
	"container/list"
	"context"
	"errors"
	"sync"

	"repro/internal/core"
)

// SolverKey identifies one initialized enumeration engine: the canonical
// fingerprint of the submitted graph (graph.Fingerprint), the canonical
// cost key (see buildCost), the width bound (-1 for unbounded) and the
// backend kind serving it. Two requests with equal keys are served by the
// same engine — for the DP backend, initialization (minimal separators,
// PMCs, full blocks) dominates request latency, so this is the cache that
// matters. The Backend field keeps the shared ranked-stream cache honest:
// a DP stream and a MIS stream over one (graph, cost, bound) produce
// different sequences, so their keys must never alias. The solver pool
// itself only ever holds DP solvers (the MIS backends are O(1) to build
// and are not pooled), so its keys all carry Backend == "dp".
//
// Orbits marks an orbit-reduced stream (core.NewOrbitBackend): the
// reduced sequence is a strict subsequence of the unreduced one, so the
// two must never share a stream-cache entry. The solver pool never sets
// it — the pooled DP solver is identical either way and is shared across
// both modes; all orbit state lives in the per-request wrapper.
type SolverKey struct {
	Fingerprint string
	Cost        string
	Bound       int
	Backend     string
	Orbits      bool
}

// PoolStats is a snapshot of SolverPool counters.
type PoolStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Size      int    `json:"size"`
	Inflight  int    `json:"inflight"`
}

// poolEntry is one cached or in-flight solver. ready is closed once
// solver/err are set; entries enter the LRU list only on success.
type poolEntry struct {
	key     SolverKey
	ready   chan struct{}
	solver  *core.Solver
	err     error
	waiters int
	cancel  context.CancelFunc
	elem    *list.Element
}

// SolverPool deduplicates and LRU-caches solver initializations.
// Concurrent Gets for the same key join a single build; when every waiter
// of an in-flight build cancels, the build context is cancelled and the
// initialization work stops (core.NewSolverContext observes it). Failed
// builds are not cached.
type SolverPool struct {
	mu      sync.Mutex
	cap     int
	entries map[SolverKey]*poolEntry
	lru     *list.List // of *poolEntry; front = most recently used
	hits    uint64
	misses  uint64
	evicted uint64
}

// NewSolverPool returns a pool caching up to capacity solvers.
func NewSolverPool(capacity int) *SolverPool {
	if capacity < 1 {
		capacity = 1
	}
	return &SolverPool{
		cap:     capacity,
		entries: make(map[SolverKey]*poolEntry),
		lru:     list.New(),
	}
}

// Get returns the solver for key, building it with build on a miss. The
// returned hit flag reports whether the call was served without starting
// a new initialization (a cached solver or joining an in-flight build).
// ctx cancels only this caller's wait; the build itself is cancelled when
// its last waiter is gone.
func (p *SolverPool) Get(ctx context.Context, key SolverKey, build func(context.Context) (*core.Solver, error)) (*core.Solver, bool, error) {
	for {
		p.mu.Lock()
		if e, ok := p.entries[key]; ok {
			e.waiters++
			if e.elem != nil {
				p.lru.MoveToFront(e.elem)
			}
			p.hits++
			p.mu.Unlock()
			s, err := p.wait(ctx, e)
			if err != nil && ctx.Err() == nil && errors.Is(err, context.Canceled) {
				// The build we joined was abandoned by its other waiters
				// before we arrived; it is already removed from the map,
				// so retry with a fresh build.
				continue
			}
			return s, true, err
		}
		bctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
		e := &poolEntry{key: key, ready: make(chan struct{}), waiters: 1, cancel: cancel}
		p.entries[key] = e
		p.misses++
		p.mu.Unlock()

		go func() {
			s, err := build(bctx)
			if s == nil && err == nil {
				err = errors.New("service: solver build returned nil")
			}
			p.mu.Lock()
			e.solver, e.err = s, err
			if err != nil {
				if p.entries[key] == e {
					delete(p.entries, key)
				}
			} else if cur, ok := p.entries[key]; !ok || cur == e {
				// Re-insert if the entry was abandoned (and removed) while
				// the build raced its own cancellation to success; drop the
				// solver when a newer build already owns the key.
				p.entries[key] = e
				e.elem = p.lru.PushFront(e)
				p.evictLocked()
			}
			close(e.ready)
			p.mu.Unlock()
		}()
		s, err := p.wait(ctx, e)
		return s, false, err
	}
}

// wait blocks until e is ready or ctx is done. When the last waiter of an
// unfinished build leaves, the build is cancelled and the entry removed so
// later Gets rebuild.
func (p *SolverPool) wait(ctx context.Context, e *poolEntry) (*core.Solver, error) {
	select {
	case <-e.ready:
		p.mu.Lock()
		e.waiters--
		p.mu.Unlock()
		return e.solver, e.err
	case <-ctx.Done():
		p.mu.Lock()
		e.waiters--
		select {
		case <-e.ready:
			// Finished while we were giving up; leave it cached.
		default:
			if e.waiters == 0 {
				e.cancel()
				if p.entries[e.key] == e {
					delete(p.entries, e.key)
				}
			}
		}
		p.mu.Unlock()
		return nil, ctx.Err()
	}
}

// evictLocked trims the LRU cache to capacity. In-flight builds live only
// in the map and are never evicted. Solvers still referenced by live
// sessions survive eviction — the pool drops its reference, nothing more.
func (p *SolverPool) evictLocked() {
	for p.lru.Len() > p.cap {
		back := p.lru.Back()
		e := back.Value.(*poolEntry)
		p.lru.Remove(back)
		delete(p.entries, e.key)
		p.evicted++
	}
}

// ReuseStats sums the incremental-DP counters (constrained solves, dirty
// vs baseline-reused blocks) over the currently cached solvers. Counters
// of evicted solvers leave the sum; the ratio is still the right signal
// for how much of the enumeration load the incremental path absorbs.
func (p *SolverPool) ReuseStats() core.ReuseStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total core.ReuseStats
	for e := p.lru.Front(); e != nil; e = e.Next() {
		st := e.Value.(*poolEntry).solver.ReuseStats()
		total.ConstrainedSolves += st.ConstrainedSolves
		total.DirtyBlocks += st.DirtyBlocks
		total.ReusedBlocks += st.ReusedBlocks
	}
	return total
}

// AtomStats aggregates the atom decompositions of the currently cached
// solvers (see the type's doc in types.go).
func (p *SolverPool) AtomStats() AtomStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out AtomStats
	for e := p.lru.Front(); e != nil; e = e.Next() {
		solver := e.Value.(*poolEntry).solver
		infos := solver.AtomInfos()
		if infos == nil {
			continue
		}
		out.DecomposedSolvers++
		out.TotalAtoms += len(infos)
		for _, ai := range infos {
			if ai.Vertices > out.LargestAtom {
				out.LargestAtom = ai.Vertices
			}
			if ai.Ready {
				out.ReadySubSolvers++
			}
		}
	}
	return out
}

// Stats returns a snapshot of the pool counters.
func (p *SolverPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Hits:      p.hits,
		Misses:    p.misses,
		Evictions: p.evicted,
		Size:      p.lru.Len(),
		Inflight:  len(p.entries) - p.lru.Len(),
	}
}

// Len returns the number of cached (ready) solvers.
func (p *SolverPool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}
