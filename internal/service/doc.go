// Package service is the serving layer over the RankedTriang machinery:
// it exposes ranked enumeration of minimal triangulations as a long-lived,
// concurrent HTTP/JSON service. The anytime shape of the paper's algorithm
// — results stream by increasing cost, clients stop when the prefix is
// good enough — maps directly onto paged and streamed HTTP responses.
//
// The subsystem has four layers:
//
//   - SolverPool deduplicates and LRU-caches initialized core.Solvers,
//     keyed by the canonical graph fingerprint plus the cost and width
//     bound. Concurrent requests for the same key share one
//     initialization; abandoned initializations are cancelled via
//     context once their last waiter disconnects.
//   - StreamStore materializes each solver's ranked enumeration exactly
//     once per key: an append-only result buffer (core.SharedStream)
//     shared by every consumer of that key, produced on demand with a
//     per-rank singleflight — the first cursor to need rank i drives the
//     enumerator, later cursors read the buffer. Each Next fans its
//     independent Lawler–Murty branch solves over a worker pool
//     (Config.SolveWorkers, -solve-workers; the emitted sequence is
//     identical at any worker count), and a speculative producer per
//     stream runs the enumeration up to Config.PrefetchAhead ranks and
//     Config.PrefetchBytes past the fastest cursor so warm reads are
//     buffer hits, not solves. Buffers live under an LRU byte budget
//     (Config.StreamBudgetBytes, -stream-budget); an evicted buffer
//     rebuilds lazily and, because the enumeration order is
//     deterministic, replays identical ranks.
//   - SessionManager holds thin cursors (token + position) over the
//     shared streams behind opaque resume tokens so clients page through
//     results across requests. Idle sessions are evicted by a janitor;
//     an abandoned stream burns no CPU: demand production only happens
//     on behalf of a paging cursor, and the speculative producer is
//     parked whenever a stream's last consumer goes away.
//   - Server wires everything behind an http.Handler with
//     bounded-concurrency admission and graceful shutdown; the NDJSON
//     streaming mode reads the same shared buffers as the paging
//     sessions. cmd/rankedtriangd is the daemon around it.
//
// Every ingress route runs through one problem-compilation step
// (compileProblem): graph construction, canonical relabeling, cost and
// bound resolution, knob parsing and cache-key derivation happen once,
// in one place, for /v1/enumerate, /v1/batch, /v1/hypergraph and
// /v1/csp alike. Endpoints differ only in how they source the request
// and what they do with the ranked stream afterwards, so every workload
// shares the solver pool, the stream buffers and the
// isomorphism-canonical cache keys.
//
// # HTTP API
//
// POST /v1/enumerate — submit a graph and start an enumeration.
// Request body (application/json), exactly one graph source:
//
//	{
//	  "graph6": "D?{",             // nauty graph6, one graph
//	  "n": 4, "edges": [[0,1],[1,2]],  // or an edge list over {0..n-1}
//	  "hyperedges": [[0,1,2],[2,3]],   // or a hypergraph (primal graph is
//	                                   // triangulated; enables hypergraph costs)
//	  "cost": "width",             // width|fill|lex|statespace|hypertree|fractional-htw
//	  "domains": [2,3,2,2],        // per-vertex domain sizes for statespace
//	  "bound": 3,                  // optional width bound (MinTriangB)
//	  "page_size": 10,             // results per page
//	  "max_results": 0,            // stream mode: stop after this many (0 = all)
//	  "stream": false              // true = NDJSON streaming instead of paging
//	}
//
// Response: the first page of results plus a resume token (empty when the
// enumeration is already exhausted):
//
//	{
//	  "session": "f2a9…",          // pass to /v1/sessions/{token}/next
//	  "done": false,
//	  "cache_hit": true,           // solver served from the pool
//	  "cost": "width",
//	  "graph": {"n": 4, "m": 3, "fingerprint": "9057…"},
//	  "solver": {"minimal_separators": 2, "pmcs": 4, "full_blocks": 4, "init_ms": 0,
//	             "atoms": 2, "largest_atom": 3},  // atom fields only when decomposed
//	  "results": [{"index": 0, "cost": 1, "width": 1, "fill": 0,
//	               "bags": [[0,1],[1,2]], "separators": [[1]]}, …]
//	}
//
// With "stream": true the response is application/x-ndjson: one result
// object per line in increasing cost order, terminated by a summary line
// {"done":true,"count":N}. No session is created; disconnecting cancels
// the enumeration.
//
// Solve knobs can also ride the query string on every POST route —
// ?backend=, ?orbits=, ?diverse=, ?window= — with a fixed precedence:
// query parameter over body field over server default. ?diverse=k
// switches the response to a one-shot diverse portfolio: the first
// ?window= ranks (default 4096, capped) are materialized and k results
// are picked greedily to maximize the minimum pairwise fill-edge
// distance, always leading with the true optimum. The response carries
// "diverse" and "window" (the pool actually examined), each result
// keeps its original rank as "index", and no session is created —
// diverse mode cannot combine with "stream".
//
// POST /v1/batch — submit many problems in one request:
//
//	{"problems": [{"graph6": "D?{", "cost": "fill"}, {"n": 4, "edges": [[0,1]]}, …]}
//
// Every member is an EnumerateRequest (graph, hypergraph or edge-list
// source; any cost; per-member diverse mode; "stream" is rejected
// inside a batch). All members are compiled before any is solved, then
// solved sequentially under a single admission slot — isomorphic
// members compile to the same canonical cache key, so N copies of one
// problem cost one solver build and one materialized stream. The
// response is {"items": [{"response": …} | {"error": "…"}, …],
// "errors": N}: per-member failures are recorded in place and do not
// fail the batch (the request itself 400s only for an empty or
// over-limit batch, Config.MaxBatchItems / -max-batch). Query knobs
// apply batch-wide.
//
// POST /v1/hypergraph — rank triangulations of a relation schema's
// primal graph. The body takes "hyperedges" only (graph6/edges are
// rejected here; /v1/enumerate still accepts hypergraph bodies
// unchanged), the cost defaults to "hypertree" (generalized hypertree
// width), and the response is the /v1/enumerate shape plus
//
//	"hypergraph": {"vertices": 9, "hyperedges": 6, "primal_edges": 15}
//
// Sessions, streaming and diverse mode all work as on /v1/enumerate.
//
// POST /v1/csp — rank decompositions of a binary CSP's constraint
// graph and optionally run the internal/csp dynamic program over the
// best one as the payoff:
//
//	{
//	  "domains": [3,3,3],                  // one variable per entry, |D_i| ≥ 1
//	  "constraints": [{"scope": [0,1],     // binary scope, x ≠ y
//	                   "allowed": [[0,1],[1,0]]}],  // allowed value pairs;
//	                                       // empty list = unsatisfiable constraint
//	  "cost": "statespace",                // default: Σ ∏ domains over bags
//	  "solve": true, "count": true         // run the DP on the top-ranked tree
//	}
//
// The enumeration ranks tree decompositions of the constraint graph
// (statespace under the declared domains models the DP's table work);
// with "solve"/"count" the response adds
//
//	"csp": {"satisfiable": true, "assignment": [0,1,0], "count": 6}
//
// computed by the join-tree DP over the top-ranked decomposition.
//
// GET /v1/sessions/{token}/next?page_size=N — the next page for a live
// session. Returns {"session","done","results"}; when done is true the
// session is closed and the token becomes invalid (404 afterwards).
// Adding &from=R recovers a page lost in flight: any rank the session
// has already committed is re-served from the shared stream buffer
// (page_size results starting at R, never advancing the cursor); R equal
// to the cursor pages normally; R beyond the cursor is a 409. Replay
// survives buffer eviction — the stream rebuilds deterministically — but
// not session closure: the final (done) page closes the session, so
// re-enumerate instead (the solver and usually the buffer are cached, so
// this is cheap).
//
// GET /v1/sessions/{token} — session metadata (emitted count, results
// buffered ahead of the cursor, idle time). DELETE /v1/sessions/{token}
// — close early.
//
// GET /v1/stats — cache hit rates, live/expired session counts, request
// totals, the ingress workload mix
//
//	"workloads": {"enumerate": 40, "batch": 3, "batch_problems": 24,
//	              "hypergraph": 5, "csp": 2, "csp_solves": 2, "diverse": 4}
//
// and the incremental-solve counters aggregated over the cached
// solvers:
//
//	"solver": {"constrained_solves": 812, "dirty_blocks": 74692,
//	           "reused_blocks": 13820}
//
// Each Lawler–Murty branch of an enumeration re-solves only the blocks
// of the DP its constraint pair can affect (dirty_blocks) and reuses the
// solver's precomputed unconstrained baseline for the rest
// (reused_blocks); the reuse ratio measures how much enumeration work
// the incremental DP absorbs. Config.FullResolve disables the reuse
// server-wide (every branch re-runs the full DP) for A/B debugging — the
// enumeration output is identical either way.
//
// Stats also aggregate the clique-separator atom decompositions of the
// cached solvers:
//
//	"atoms": {"decomposed_solvers": 3, "total_atoms": 11,
//	          "largest_atom": 9, "ready_sub_solvers": 11}
//
// Graphs that split on clique minimal separators are solved one atom at
// a time with the ranked streams merged, so initialization and delay
// depend on the largest atom rather than the whole graph;
// Config.NoDecompose (-no-decompose) forces the monolithic solver for
// A/B debugging.
//
// Stats also report the shared ranked-stream cache:
//
//	"streams": {"streams": 2, "cursors": 9, "buffered_results": 420,
//	            "bytes": 501760, "budget_bytes": 67108864,
//	            "hits": 11, "misses": 2, "evictions": 0, "rebuilds": 0}
//
// A stream hit means a new session or NDJSON stream rode an existing
// materialized buffer instead of enumerating privately — N concurrent
// clients on one graph cost one enumeration, not N (see
// BenchmarkSharedStreamFanout and BENCH_stream.json).
//
// Stats also report the speculation ledger:
//
//	"prefetch": {"enabled": true, "solve_workers": 8, "ahead_ranks": 64,
//	             "ahead_bytes": 8388608, "buffered_hits": 350,
//	             "demand_solves": 40, "prefetch_solves": 120,
//	             "pauses": 2, "resumes": 1, "lookahead_high_water": 64}
//
// buffered_hits counts per-rank reads served straight from a buffer (no
// solve on the request's latency path); demand_solves and
// prefetch_solves split the production work between waiting consumers
// and the background producers; pauses/resumes count producers parked
// on last-cursor release and woken by the next acquire (see
// BenchmarkPrefetchReadLatency and BENCH_parallel.json). GET /healthz —
// liveness.
//
// Errors are {"error": "…"} with a 4xx/5xx status: 400 for malformed
// graphs, unknown costs or bad knobs, 404 for unknown sessions, 413 when
// the request body exceeds Config.MaxBodyBytes (-max-body), 429 when the
// session table is full, 503 when admission or initialization is
// cancelled or times out, or when the server is shutting down.
package service
