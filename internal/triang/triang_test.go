package triang

import (
	"math/rand"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/chordal"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestLBTriangChordalIsIdentity(t *testing.T) {
	for _, g := range []*graph.Graph{gen.Path(6), gen.Complete(5), gen.KTree(rand.New(rand.NewSource(1)), 10, 2, 0)} {
		h := LBTriang(g, nil)
		if h.EdgeSetKey() != g.EdgeSetKey() {
			t.Errorf("LB-Triang added fill to a chordal graph")
		}
	}
}

func TestLBTriangCycle(t *testing.T) {
	// A minimal triangulation of C6 adds exactly 3 chords.
	h := LBTriang(gen.Cycle(6), nil)
	if !chordal.IsChordal(h) {
		t.Fatalf("LB-Triang output not chordal")
	}
	if fill := len(chordal.FillEdges(gen.Cycle(6), h)); fill != 3 {
		t.Fatalf("C6 fill = %d, want 3", fill)
	}
}

func TestLBTriangMinimalAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 80; trial++ {
		n := 3 + rng.Intn(5)
		g := gen.GNP(rng, n, 0.2+rng.Float64()*0.5)
		order := rng.Perm(g.Universe())
		var active []int
		for _, v := range order {
			if g.Vertices().Contains(v) {
				active = append(active, v)
			}
		}
		h := LBTriang(g, active)
		if !chordal.IsTriangulationOf(h, g) {
			t.Fatalf("LB-Triang output not a triangulation")
		}
		if !bruteforce.IsMinimalTriangulation(h, g) {
			t.Fatalf("LB-Triang output not minimal (n=%d, edges=%v)", n, g.Edges())
		}
	}
}

func TestMCSMMinimalAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 80; trial++ {
		n := 3 + rng.Intn(5)
		g := gen.GNP(rng, n, 0.2+rng.Float64()*0.5)
		h := MCSM(g)
		if !chordal.IsTriangulationOf(h, g) {
			t.Fatalf("MCS-M output not a triangulation (n=%d, edges=%v)", n, g.Edges())
		}
		if !bruteforce.IsMinimalTriangulation(h, g) {
			t.Fatalf("MCS-M output not minimal (n=%d, edges=%v)", n, g.Edges())
		}
	}
}

func TestMCSMChordalIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		g := gen.KTree(rng, 4+rng.Intn(10), 1+rng.Intn(3), 0)
		h := MCSM(g)
		if h.EdgeSetKey() != g.EdgeSetKey() {
			t.Fatalf("MCS-M added fill to a chordal graph")
		}
	}
}

func TestTriangulatorsOnLargerGraphs(t *testing.T) {
	// No oracle here; verify chordality and (structural) minimality via
	// the fill-removability criterion: in a minimal triangulation, no
	// single fill edge can be dropped while remaining chordal.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		g := gen.ConnectedGNP(rng, 12+rng.Intn(10), 0.25)
		for name, h := range map[string]*graph.Graph{"lb": LBTriang(g, nil), "mcsm": MCSM(g)} {
			if !chordal.IsTriangulationOf(h, g) {
				t.Fatalf("%s: not a triangulation", name)
			}
			for _, e := range chordal.FillEdges(g, h) {
				h2 := h.Clone()
				h2.RemoveEdge(e[0], e[1])
				if chordal.IsChordal(h2) {
					t.Fatalf("%s: fill edge %v removable — not minimal", name, e)
				}
			}
		}
	}
}

func TestMinimalDeterministic(t *testing.T) {
	g := gen.PaperExample()
	if Minimal(g).EdgeSetKey() != Minimal(g).EdgeSetKey() {
		t.Fatalf("Minimal is not deterministic")
	}
}
