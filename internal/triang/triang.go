// Package triang provides black-box minimal triangulators: LB-Triang
// (Berry; Berry, Bordat, Heggernes, Simonet, Villanger 2006 — the
// triangulator the CKK baseline uses, chosen by the paper for its low
// widths and fills) and MCS-M (Berry, Blair, Heggernes, Peyton 2004).
// Both produce a minimal triangulation from an arbitrary vertex ordering.
package triang

import (
	"repro/internal/graph"
	"repro/internal/vset"
)

// LBTriang returns a minimal triangulation of g computed by the LB-Triang
// algorithm under the given vertex order (which must enumerate exactly the
// active vertices; pass nil for ascending order).
//
// For each vertex v in turn, the minimal separators of the *current*
// triangulation that are contained in N_H[v] — the neighborhoods of the
// components of H \ N_H[v] — are saturated. After all vertices are
// processed, H is a minimal triangulation of g.
func LBTriang(g *graph.Graph, order []int) *graph.Graph {
	if order == nil {
		order = g.Vertices().Slice()
	}
	h := g.Clone()
	for _, v := range order {
		closed := h.ClosedNeighborhood(v)
		for _, c := range h.ComponentsAvoiding(closed) {
			h.SaturateInPlace(h.NeighborsOfSet(c))
		}
	}
	return h
}

// MCSM returns a minimal triangulation of g computed by MCS-M, a
// maximum-cardinality-search variant: at each step an unnumbered vertex v
// of maximum weight is chosen, and a fill edge {u, v} is added for every
// unnumbered u reachable from v through unnumbered vertices of weight
// strictly smaller than w(u); those u get their weight bumped.
// Ties are broken by smallest vertex number, making the result
// deterministic.
func MCSM(g *graph.Graph) *graph.Graph {
	h, _ := MCSMOrder(g)
	return h
}

// MCSMOrder is MCSM returning also the order in which the vertices were
// numbered. The reverse of that order is a minimal elimination ordering of
// the returned triangulation (Berry, Blair, Heggernes, Peyton 2004) — the
// ordering the clique-minimal-separator decomposition of internal/atoms
// consumes.
func MCSMOrder(g *graph.Graph) (*graph.Graph, []int) {
	n := g.Universe()
	h := g.Clone()
	weight := make([]int, n)
	numbered := vset.New(n)
	order := make([]int, 0, g.NumVertices())
	remaining := g.NumVertices()
	for step := 0; step < remaining; step++ {
		// Pick unnumbered vertex of maximum weight.
		best, bestW := -1, -1
		g.Vertices().ForEach(func(v int) bool {
			if !numbered.Contains(v) && weight[v] > bestW {
				best, bestW = v, weight[v]
			}
			return true
		})
		v := best
		// For each unnumbered u, compute the smallest achievable
		// "maximum internal weight" over v→u paths through unnumbered
		// vertices; u is reached if that value < w(u). A Dijkstra-like
		// relaxation with max-composition computes it.
		const inf = int(^uint(0) >> 1)
		reachCost := make(map[int]int)
		done := map[int]bool{}
		g.Vertices().ForEach(func(u int) bool {
			if !numbered.Contains(u) && u != v {
				reachCost[u] = inf
			}
			return true
		})
		g.Neighbors(v).ForEach(func(u int) bool {
			if !numbered.Contains(u) {
				reachCost[u] = -1 // direct edge: no internal vertices
			}
			return true
		})
		for {
			u, best := -1, inf
			for w, c := range reachCost {
				if !done[w] && c < best {
					u, best = w, c
				}
			}
			if u == -1 || best == inf {
				break
			}
			done[u] = true
			// u can serve as an internal vertex only if the path may
			// continue through it: the "max internal weight" becomes
			// max(best, weight[u]).
			through := best
			if weight[u] > through {
				through = weight[u]
			}
			g.Neighbors(u).ForEach(func(x int) bool {
				if c, ok := reachCost[x]; ok && !done[x] && through < c {
					reachCost[x] = through
				}
				return true
			})
		}
		for u, c := range reachCost {
			if c < weight[u] {
				weight[u]++
				if !h.HasEdge(u, v) {
					h.AddEdge(u, v)
				}
			}
		}
		numbered.AddInPlace(v)
		order = append(order, v)
	}
	return h, order
}

// Minimal returns a deterministic minimal triangulation of g (LB-Triang in
// ascending vertex order). It is the default black box used by the CKK
// baseline.
func Minimal(g *graph.Graph) *graph.Graph {
	return LBTriang(g, nil)
}
