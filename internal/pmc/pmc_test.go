package pmc

import (
	"math/rand"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/minsep"
	"repro/internal/vset"
)

func TestIsPMCPaperExample(t *testing.T) {
	// Example 5.2: PMC(G) contains {u,w1,w2,w3} and {u,v,w1}.
	g := gen.PaperExample()
	yes := []vset.Set{
		vset.Of(6, 0, 3, 4, 5), // {u, w1, w2, w3}
		vset.Of(6, 1, 3, 4, 5), // {v, w1, w2, w3}
		vset.Of(6, 0, 1, 3),    // {u, v, w1}
		vset.Of(6, 0, 1, 4),
		vset.Of(6, 0, 1, 5),
		vset.Of(6, 1, 2), // {v, v'}
	}
	for _, omega := range yes {
		if !IsPMC(g, omega) {
			t.Errorf("IsPMC(%v) = false, want true", omega)
		}
	}
	no := []vset.Set{
		vset.Of(6, 3, 4, 5),       // S1 — a minimal separator, never a PMC
		vset.Of(6, 0, 1),          // S2
		vset.Of(6, 1),             // S3: full component exists
		vset.Of(6, 0, 1, 3, 4, 5), // too large: v' makes no component cover u,v... still has component {v'} with N={1}≠Ω, but u..v pairs? u,v covered? components: {v'}, N={v}≠Ω; pair (u,v) non-adjacent and no component covers it
		vset.New(6),
	}
	for _, omega := range no {
		if IsPMC(g, omega) {
			t.Errorf("IsPMC(%v) = true, want false", omega)
		}
	}
}

func TestAllPaperExample(t *testing.T) {
	g := gen.PaperExample()
	got := All(g)
	want := []vset.Set{
		vset.Of(6, 1, 2),
		vset.Of(6, 0, 1, 3),
		vset.Of(6, 0, 1, 4),
		vset.Of(6, 0, 1, 5),
		vset.Of(6, 0, 3, 4, 5),
		vset.Of(6, 1, 3, 4, 5),
	}
	if len(got) != len(want) {
		t.Fatalf("got %d PMCs: %v", len(got), got)
	}
	keys := map[string]bool{}
	for _, o := range got {
		keys[o.Key()] = true
	}
	for _, w := range want {
		if !keys[w.Key()] {
			t.Errorf("missing PMC %v", w)
		}
	}
}

func TestAllMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(6)
		g := gen.GNP(rng, n, 0.15+rng.Float64()*0.65)
		got := All(g)
		want := bruteforce.AllPMCs(g)
		if len(got) != len(want) {
			t.Fatalf("trial %d (n=%d): got %d PMCs, oracle %d\ngot=%v\nwant=%v\ngraph=%v",
				trial, n, len(got), len(want), got, want, g.Edges())
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("PMC mismatch at %d: %v vs %v", i, got[i], want[i])
			}
		}
	}
}

func TestAllMatchesBruteForceStructured(t *testing.T) {
	cases := []*graph.Graph{
		gen.Cycle(6),
		gen.Path(7),
		gen.Complete(5),
		gen.Grid(2, 4),
		gen.PaperExample(),
	}
	for i, g := range cases {
		got := All(g)
		want := bruteforce.AllPMCs(g)
		if len(got) != len(want) {
			t.Fatalf("case %d: got %d PMCs, oracle %d", i, len(got), len(want))
		}
		for j := range got {
			if !got[j].Equal(want[j]) {
				t.Fatalf("case %d: PMC mismatch", i)
			}
		}
	}
}

func TestAtMostFilters(t *testing.T) {
	g := gen.PaperExample()
	small := AtMost(g, 3)
	for _, o := range small {
		if o.Len() > 3 {
			t.Fatalf("AtMost returned oversized PMC %v", o)
		}
	}
	// All PMCs of size ≤ 3 must be present.
	count := 0
	for _, o := range All(g) {
		if o.Len() <= 3 {
			count++
		}
	}
	if len(small) != count {
		t.Fatalf("AtMost(3) = %d PMCs, want %d", len(small), count)
	}
}

func TestAssociatedPaperExample(t *testing.T) {
	// Example 5.2: for Ω = {w1,u,v}, MinSep(Ω) = {S2, S3} and the blocks
	// are (S2,{w2}), (S2,{w3}), (S3,{v'}).
	g := gen.PaperExample()
	omega := vset.Of(6, 0, 1, 3)
	seps, blocks := Associated(g, omega)
	if len(seps) != 2 || len(blocks) != 3 {
		t.Fatalf("got %d seps, %d blocks", len(seps), len(blocks))
	}
	sepKeys := map[string]bool{}
	for _, s := range seps {
		sepKeys[s.Key()] = true
	}
	if !sepKeys[vset.Of(6, 0, 1).Key()] || !sepKeys[vset.Of(6, 1).Key()] {
		t.Fatalf("wrong associated separators: %v", seps)
	}
	for _, b := range blocks {
		if !b.IsFull(g) {
			t.Errorf("associated block %v not full", b.Vertices())
		}
		if !bruteforce.IsMinimalSeparator(g, b.S) {
			t.Errorf("associated separator %v not minimal", b.S)
		}
	}
}

func TestAssociatedSeparatorsAreMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		g := gen.ConnectedGNP(rng, 4+rng.Intn(6), 0.4)
		for _, omega := range All(g) {
			if omega.Equal(g.Vertices()) {
				continue // no components, no separators
			}
			seps, blocks := Associated(g, omega)
			for _, s := range seps {
				if !bruteforce.IsMinimalSeparator(g, s) {
					t.Fatalf("associated sep %v of PMC %v not minimal", s, omega)
				}
				if !s.SubsetOf(omega) {
					t.Fatalf("associated sep %v ⊄ Ω %v", s, omega)
				}
			}
			for _, b := range blocks {
				if !b.IsFull(g) {
					t.Fatalf("associated block not full")
				}
			}
		}
	}
}

func TestFullBlocks(t *testing.T) {
	g := gen.PaperExample()
	seps := minsep.All(g)
	blocks := FullBlocks(g, seps)
	// From Figure 2: all blocks are full except (S2, C4={v'}).
	// Blocks: (S1,{u}), (S1,{v,v'}), (S2,{w1}), (S2,{w2}), (S2,{w3}),
	// (S3,{v'}), (S3,{u,w1,w2,w3}) full; (S2,{v'}) not full.
	if len(blocks) != 7 {
		t.Fatalf("got %d full blocks, want 7: %v", len(blocks), blocks)
	}
	for i := 1; i < len(blocks); i++ {
		a := blocks[i-1].S.Len() + blocks[i-1].C.Len()
		b := blocks[i].S.Len() + blocks[i].C.Len()
		if a > b {
			t.Fatalf("blocks not sorted by cardinality")
		}
	}
	for _, b := range blocks {
		if !b.IsFull(g) {
			t.Fatalf("non-full block reported")
		}
		r := b.Realization(g)
		if !r.IsClique(b.S) {
			t.Fatalf("realization separator not saturated")
		}
	}
}

func TestBlockKeyDistinguishes(t *testing.T) {
	n := 6
	b1 := Block{S: vset.Of(n, 0), C: vset.Of(n, 1, 2)}
	b2 := Block{S: vset.Of(n, 0, 1), C: vset.Of(n, 2)}
	if b1.Key() == b2.Key() {
		t.Fatalf("blocks with same union share a key")
	}
	if !b1.Vertices().Equal(b2.Vertices()) {
		t.Fatalf("test setup wrong")
	}
}
