// Package pmc implements potential maximal cliques: the Bouchitté–Todinca
// membership test and their vertex-incremental enumeration of PMC(G)
// (Bouchitté & Todinca, "Listing all potential maximal cliques of a graph",
// TCS 2002). PMCs are exactly the bags of proper tree decompositions, i.e.
// the maximal cliques of minimal triangulations.
package pmc

import (
	"context"
	"errors"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/intern"
	"repro/internal/minsep"
	"repro/internal/vset"
)

// IsPMC reports whether Ω is a potential maximal clique of g, using the
// Bouchitté–Todinca characterization: Ω is a PMC iff (a) G \ Ω has no full
// component (no component C with N(C) = Ω), and (b) every pair of
// non-adjacent vertices of Ω is "covered" by the neighborhood of some
// component of G \ Ω (so saturating those neighborhoods completes Ω).
func IsPMC(g *graph.Graph, omega vset.Set) bool {
	if omega.IsEmpty() || !omega.SubsetOf(g.Vertices()) {
		return false
	}
	comps := g.ComponentsAvoiding(omega)
	neighborhoods := make([]vset.Set, len(comps))
	for i, c := range comps {
		s := g.NeighborsOfSet(c)
		if s.Equal(omega) {
			return false // full component
		}
		neighborhoods[i] = s
	}
	// Every non-adjacent pair inside Ω must lie together in some N(C).
	vs := omega.Slice()
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			u, v := vs[i], vs[j]
			if g.HasEdge(u, v) {
				continue
			}
			covered := false
			for _, s := range neighborhoods {
				if s.Contains(u) && s.Contains(v) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
	}
	return true
}

// All enumerates PMC(G) with the vertex-incremental Bouchitté–Todinca
// algorithm: processing active vertices a1..an, the PMCs of
// G_{i+1} = G[{a1..a_{i+1}}] are found among
//
//	(1) the PMCs of G_i,
//	(2) those PMCs extended with a_{i+1},
//	(3) S ∪ {a_{i+1}} for minimal separators S of G_{i+1}, and
//	(4) S ∪ (T ∩ C) for minimal separators S of G_{i+1} not containing
//	    a_{i+1} that are not separators of G_i, minimal separators T of
//	    G_i, and components C of G_{i+1} \ S,
//
// each candidate filtered with IsPMC. The result is in canonical order.
//
// The running time is polynomial in |MinSep(G)| (the poly-MS assumption of
// the paper); completeness is property-tested against the brute-force
// oracle.
func All(g *graph.Graph) []vset.Set {
	out, _ := enumerate(context.Background(), g, -1)
	return out
}

// ErrDeadline reports that a deadline-bounded enumeration ran out of time.
var ErrDeadline = errors.New("pmc: deadline exceeded")

// AllWithDeadline is All with a wall-clock deadline; it returns
// ErrDeadline when the budget runs out (Figure 5 tractability runs).
func AllWithDeadline(g *graph.Graph, deadline time.Time) ([]vset.Set, error) {
	if deadline.IsZero() {
		return All(g), nil
	}
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	return AllCtx(ctx, g)
}

// AllCtx is All with cancellation: it returns ErrDeadline when ctx is
// cancelled or times out before the enumeration completes. Long-lived
// services use it to abandon initialization for disconnected clients.
func AllCtx(ctx context.Context, g *graph.Graph) ([]vset.Set, error) {
	out, ok := enumerate(ctx, g, -1)
	if !ok {
		return nil, ErrDeadline
	}
	return out, nil
}

// AtMost enumerates the PMCs of g of size at most k (the bags allowed by
// MinTriangB for width bound k-1). Candidates above the size bound are
// pruned during enumeration, but the separator lists are still complete
// (see minsep.AtMost for the discussion).
func AtMost(g *graph.Graph, k int) []vset.Set {
	out, _ := enumerate(context.Background(), g, k)
	return out
}

// AtMostCtx is AtMost with cancellation (see AllCtx).
func AtMostCtx(ctx context.Context, g *graph.Graph, k int) ([]vset.Set, error) {
	out, ok := enumerate(ctx, g, k)
	if !ok {
		return nil, ErrDeadline
	}
	return out, nil
}

func enumerate(ctx context.Context, g *graph.Graph, maxSize int) ([]vset.Set, bool) {
	verts := g.Vertices().Slice()
	n := g.Universe()
	current := intern.New(0)
	var prevSeps []vset.Set
	prevSepTab := intern.New(0)
	prefix := vset.New(n)
	for i, a := range verts {
		if ctx.Err() != nil {
			return nil, false
		}
		prefix.AddInPlace(a)
		gi := g.InducedSubgraph(prefix)
		// Candidate dedup and the seen-separator test run once per
		// candidate; interned IDs keep both a single hash away.
		next := intern.New(current.Len())
		consider := func(omega vset.Set) {
			if maxSize >= 0 && omega.Len() > maxSize {
				return
			}
			if next.Contains(omega) || !IsPMC(gi, omega) {
				return
			}
			next.Intern(omega)
		}
		if i == 0 {
			consider(vset.Of(n, a))
			current = next
			prevSeps, _ = minsep.AllCtx(ctx, gi)
			prevSepTab = intern.FromSets(prevSeps)
			continue
		}
		seps, sepsOK := minsep.AllCtx(ctx, gi)
		if !sepsOK {
			return nil, false
		}
		for _, omega := range current.Sets() {
			consider(omega)
			consider(omega.Add(a))
		}
		for _, s := range seps {
			if !s.Contains(a) {
				consider(s.Add(a))
				if !prevSepTab.Contains(s) {
					// Case (4): new separators combine with old ones.
					for _, c := range gi.ComponentsAvoiding(s) {
						for _, t := range prevSeps {
							if t.Intersects(c) {
								consider(s.Union(t.Intersect(c)))
							}
						}
					}
				}
			}
		}
		current = next
		prevSeps = seps
		prevSepTab = intern.FromSets(seps)
	}
	out := append([]vset.Set(nil), current.Sets()...)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out, true
}

// Associated returns the minimal separators MinSep_G(Ω) and blocks
// Blck_G(Ω) associated with the PMC Ω in g: for each component C of
// G \ Ω, the pair (N(C), C). Each N(C) is a minimal separator of g and
// (N(C), C) is a full block (Section 5.1 of the paper).
func Associated(g *graph.Graph, omega vset.Set) (seps []vset.Set, blocks []Block) {
	seen := intern.New(4)
	for _, c := range g.ComponentsAvoiding(omega) {
		s := g.NeighborsOfSet(c)
		blocks = append(blocks, Block{S: s, C: c})
		if _, fresh := seen.Intern(s); fresh {
			seps = append(seps, s)
		}
	}
	return seps, blocks
}

// Block is a block (S, C) of a graph: a minimal separator S together with
// an S-component C. The block is identified with the vertex set S ∪ C.
type Block struct {
	S vset.Set
	C vset.Set
}

// Vertices returns S ∪ C.
func (b Block) Vertices() vset.Set { return b.S.Union(b.C) }

// Key returns a canonical map key for the block.
func (b Block) Key() string { return b.S.Key() + "|" + b.C.Key() }

// IsFull reports whether the block is full in g: every vertex of S has a
// neighbor in C.
func (b Block) IsFull(g *graph.Graph) bool {
	return g.NeighborsOfSet(b.C).Equal(b.S)
}

// Realization returns R(S, C) = G[S ∪ C] ∪ K_S.
func (b Block) Realization(g *graph.Graph) *graph.Graph {
	return g.Realization(b.S, b.C)
}

// FullBlocks returns every full block (S, C) of g over the given minimal
// separators, sorted by increasing |S ∪ C| — the processing order of the
// MinTriang dynamic program (Figure 3, line 3).
func FullBlocks(g *graph.Graph, seps []vset.Set) []Block {
	var out []Block
	for _, s := range seps {
		for _, c := range g.ComponentsAvoiding(s) {
			b := Block{S: s, C: c}
			if b.IsFull(g) {
				out = append(out, b)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		si := out[i].S.Len() + out[i].C.Len()
		sj := out[j].S.Len() + out[j].C.Len()
		if si != sj {
			return si < sj
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}
