// Package gen generates the workloads of the paper's evaluation (§7.1):
// Erdős–Rényi random graphs, PIC2011-like probabilistic graphical models
// (moralized random DAGs, grids, CSP-style constraint graphs), TPC-H-like
// conjunctive-query Gaifman graphs, and PACE2016-like named graphs.
//
// The paper's real datasets are not redistributable; DESIGN.md documents
// why each generator preserves the behaviour the experiments measure.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/vset"
)

// GNP draws an Erdős–Rényi G(n, p) graph from rng.
func GNP(rng *rand.Rand, n int, p float64) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// ConnectedGNP draws G(n, p) graphs until one is connected (adding a random
// spanning tree after too many failures, which keeps the degree profile
// close to G(n,p) while guaranteeing termination).
func ConnectedGNP(rng *rand.Rand, n int, p float64) *graph.Graph {
	for attempt := 0; attempt < 20; attempt++ {
		g := GNP(rng, n, p)
		if g.IsConnected() {
			return g
		}
	}
	g := GNP(rng, n, p)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		u, v := perm[i], perm[rng.Intn(i)]
		if !g.HasEdge(u, v) {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Grid returns the rows×cols grid graph, a classic PIC2011 "Grids" model.
func Grid(rows, cols int) *graph.Graph {
	g := graph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// Cycle returns the cycle on n vertices (n ≥ 3).
func Cycle(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// CirculantGraph returns the circulant graph C_n(jumps): vertices 0..n-1
// with i adjacent to i±j (mod n) for every jump j. Jumps are taken modulo
// n; jump 0 and (for even n) the self-paired jump n/2 are handled, and
// duplicate jumps collapse. Circulants are the tunable-symmetry benchmark
// family for orbit-reduced enumeration: every circulant is
// vertex-transitive with the rotations and the reflection giving
// |Aut| ≥ 2n (the dihedral group D_n acts for any jump set; generic jump
// sets achieve exactly 2n, while special ones — e.g. C_n(1..⌊n/2⌋) = K_n,
// or jump sets fixed by a multiplier m with m·J = ±J (mod n) — have
// strictly larger groups).
func CirculantGraph(n int, jumps []int) *graph.Graph {
	g := graph.New(n)
	for _, j := range jumps {
		j = ((j % n) + n) % n
		if j == 0 {
			continue
		}
		for i := 0; i < n; i++ {
			g.AddEdge(i, (i+j)%n)
		}
	}
	return g
}

// Path returns the path on n vertices.
func Path(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// PaperExample returns the running-example graph of Figure 1(a):
// u=0, v=1, v'=2, w1=3, w2=4, w3=5.
func PaperExample() *graph.Graph {
	g := graph.New(6)
	for _, w := range []int{3, 4, 5} {
		g.AddEdge(0, w)
		g.AddEdge(1, w)
	}
	g.AddEdge(1, 2)
	for v, name := range []string{"u", "v", "v'", "w1", "w2", "w3"} {
		g.SetName(v, name)
	}
	return g
}

// MoralizedDAG simulates a PIC2011-style probabilistic graphical model:
// a random DAG over n variables where each node picks up to maxParents
// earlier parents, then moralized (parents of a common child are married
// and edges made undirected). The result is the structure whose junction
// trees probabilistic inference actually uses.
func MoralizedDAG(rng *rand.Rand, n, maxParents int) *graph.Graph {
	g := graph.New(n)
	parents := make([][]int, n)
	for v := 1; v < n; v++ {
		k := rng.Intn(maxParents + 1)
		if k > v {
			k = v
		}
		seen := map[int]bool{}
		for len(parents[v]) < k {
			p := rng.Intn(v)
			if !seen[p] {
				seen[p] = true
				parents[v] = append(parents[v], p)
			}
		}
	}
	for v := 0; v < n; v++ {
		for i, p := range parents[v] {
			if !g.HasEdge(p, v) {
				g.AddEdge(p, v)
			}
			for _, q := range parents[v][i+1:] {
				if !g.HasEdge(p, q) {
					g.AddEdge(p, q) // marry co-parents
				}
			}
		}
	}
	return g
}

// CSPGrid simulates a CSP/segmentation-style constraint graph: a grid with
// extra random "long" constraints, matching the dense-but-structured
// PIC2011 CSP instances.
func CSPGrid(rng *rand.Rand, rows, cols, extra int) *graph.Graph {
	g := Grid(rows, cols)
	n := rows * cols
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v)
		}
	}
	return g
}

// TreePlusChords draws a random tree on n vertices and adds up to
// `chords` random extra edges (duplicate draws are tolerated, not
// retried, so sparse graphs terminate). Trees decompose completely
// (every edge is a clique separator); a few chords leave most cut
// vertices intact while creating non-trivial atoms — the
// clique-separated family the atom decomposition is benchmarked and
// oracle-tested on.
func TreePlusChords(rng *rand.Rand, n, chords int) *graph.Graph {
	g := graph.New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(perm[i], perm[rng.Intn(i)])
	}
	for added := 0; added < chords; {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v)
			added++
		} else {
			added++ // tolerate duplicates so sparse graphs terminate
		}
	}
	return g
}

// CliqueChain chains `blobs` dense G(blobSize, p) blobs, consecutive blobs
// sharing a saturated `sepSize`-clique. Each shared clique is a clique
// minimal separator, so the graph decomposes into `blobs` atoms of
// blobSize vertices each — the workload where decomposition turns one
// |MinSep|-exponential instance into many small ones.
func CliqueChain(rng *rand.Rand, blobs, blobSize, sepSize int, p float64) *graph.Graph {
	if sepSize >= blobSize {
		panic("gen: CliqueChain separator must be smaller than the blob")
	}
	stride := blobSize - sepSize
	n := blobSize + (blobs-1)*stride
	g := graph.New(n)
	for b := 0; b < blobs; b++ {
		lo := b * stride
		for i := lo; i < lo+blobSize; i++ {
			for j := i + 1; j < lo+blobSize; j++ {
				if rng.Float64() < p {
					g.AddEdge(i, j)
				}
			}
		}
		// Saturate the shared boundary cliques and keep the blob connected
		// through them.
		for i := lo; i < lo+sepSize; i++ {
			for j := i + 1; j < lo+sepSize; j++ {
				if !g.HasEdge(i, j) {
					g.AddEdge(i, j)
				}
			}
			for j := lo + sepSize; j < lo+blobSize; j++ {
				if !g.HasEdge(i, j) && rng.Float64() < 0.8 {
					g.AddEdge(i, j)
				}
			}
		}
	}
	// Guarantee connectivity: link every component of a blob's induced
	// subgraph to the blob's first boundary vertex (isolated-vertex checks
	// alone would miss detached interior pairs at low p).
	for b := 0; b < blobs; b++ {
		lo := b * stride
		blob := vset.New(n)
		for j := lo; j < lo+blobSize; j++ {
			blob.AddInPlace(j)
		}
		for _, comp := range g.ComponentsWithin(blob) {
			if !comp.Contains(lo) {
				g.AddEdge(comp.First(), lo)
			}
		}
	}
	return g
}

// Relabel returns a copy of g with its vertices renamed by a random
// permutation drawn from rng — one client of a templated workload. The
// result is isomorphic to g but (almost always) fingerprints differently
// under the label-sensitive graph.Fingerprint, which is exactly what the
// serving tier's canonical keying is benchmarked against.
func Relabel(rng *rand.Rand, g *graph.Graph) *graph.Graph {
	return g.Relabel(rng.Perm(g.Universe()))
}

// IsoCopies returns count independent random relabelings of template —
// the templated workload of PR 8's canonical-caching benchmark: N clients
// each submitting "the same" grid/chain/schema with their own private
// vertex numbering. The template itself is not included.
func IsoCopies(rng *rand.Rand, template *graph.Graph, count int) []*graph.Graph {
	out := make([]*graph.Graph, count)
	for i := range out {
		out[i] = Relabel(rng, template)
	}
	return out
}

// QueryShape names a conjunctive-query join topology.
type QueryShape int

// Join shapes matching the TPC-H query graphs the paper uses.
const (
	ChainQuery QueryShape = iota
	StarQuery
	CycleQuery
	SnowflakeQuery
)

// QueryGaifman builds the Gaifman graph of a synthetic conjunctive query
// with the given shape over `atoms` relations, each pair of joined atoms
// sharing one variable. Vertices are query variables; two variables are
// adjacent iff they co-occur in an atom — the structure that join
// optimizers decompose (TPC-H-like workload).
func QueryGaifman(rng *rand.Rand, shape QueryShape, atoms, varsPerAtom int) *graph.Graph {
	if varsPerAtom < 2 {
		varsPerAtom = 2
	}
	// Each atom has its own fresh variables, then shares one variable with
	// its join partner according to the shape.
	type atom struct{ vars []int }
	as := make([]atom, atoms)
	next := 0
	fresh := func() int { next++; return next - 1 }
	for i := range as {
		for j := 0; j < varsPerAtom; j++ {
			as[i].vars = append(as[i].vars, fresh())
		}
	}
	merge := map[int]int{} // variable aliasing via union-find-ish map
	var find func(x int) int
	find = func(x int) int {
		if r, ok := merge[x]; ok {
			root := find(r)
			merge[x] = root
			return root
		}
		return x
	}
	unify := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			merge[ra] = rb
		}
	}
	link := func(i, j int) {
		unify(as[i].vars[rng.Intn(varsPerAtom)], as[j].vars[rng.Intn(varsPerAtom)])
	}
	switch shape {
	case ChainQuery:
		for i := 0; i+1 < atoms; i++ {
			link(i, i+1)
		}
	case StarQuery:
		for i := 1; i < atoms; i++ {
			link(0, i)
		}
	case CycleQuery:
		for i := 0; i < atoms; i++ {
			link(i, (i+1)%atoms)
		}
	case SnowflakeQuery:
		// A small core star whose leaves are themselves star centers.
		core := atoms / 3
		if core < 1 {
			core = 1
		}
		for i := 1; i < core; i++ {
			link(0, i)
		}
		for i := core; i < atoms; i++ {
			link(rng.Intn(core), i)
		}
	}
	// Renumber representative variables densely.
	id := map[int]int{}
	for i := range as {
		for _, v := range as[i].vars {
			r := find(v)
			if _, ok := id[r]; !ok {
				id[r] = len(id)
			}
		}
	}
	g := graph.New(len(id))
	for i := range as {
		for a := 0; a < varsPerAtom; a++ {
			for b := a + 1; b < varsPerAtom; b++ {
				u, v := id[find(as[i].vars[a])], id[find(as[i].vars[b])]
				if u != v && !g.HasEdge(u, v) {
					g.AddEdge(u, v)
				}
			}
		}
	}
	return g
}

// KTree returns a random k-tree on n vertices (treewidth exactly k for
// n > k), optionally with `removed` random edges deleted to create a
// partial k-tree — a standard treewidth benchmark family.
func KTree(rng *rand.Rand, n, k, removed int) *graph.Graph {
	if n <= k {
		return Complete(n)
	}
	g := Complete(k + 1)
	full := graph.New(n)
	for _, e := range g.Edges() {
		full.AddEdge(e[0], e[1])
	}
	cliques := [][]int{}
	base := make([]int, 0, k+1)
	for i := 0; i <= k; i++ {
		base = append(base, i)
	}
	cliques = append(cliques, base)
	for v := k + 1; v < n; v++ {
		c := cliques[rng.Intn(len(cliques))]
		sub := append([]int(nil), c...)
		rng.Shuffle(len(sub), func(i, j int) { sub[i], sub[j] = sub[j], sub[i] })
		sub = sub[:k]
		for _, u := range sub {
			full.AddEdge(u, v)
		}
		cliques = append(cliques, append(append([]int(nil), sub...), v))
	}
	edges := full.Edges()
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	for i := 0; i < removed && i < len(edges); i++ {
		full.RemoveEdge(edges[i][0], edges[i][1])
	}
	return full
}

// Named returns one of the PACE2016-style named graphs.
// Available names: petersen, grotzsch, queen4, queen5, cube, moebius-kantor,
// octahedron, wagner, bull, house.
func Named(name string) (*graph.Graph, error) {
	adj := map[string][][2]int{
		"petersen": {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9},
			{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5}},
		"grotzsch": {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0},
			{5, 1}, {5, 4}, {6, 2}, {6, 0}, {7, 3}, {7, 1}, {8, 4}, {8, 2}, {9, 0}, {9, 3},
			{10, 5}, {10, 6}, {10, 7}, {10, 8}, {10, 9}},
		"cube":           {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 5}, {5, 6}, {6, 7}, {7, 4}, {0, 4}, {1, 5}, {2, 6}, {3, 7}},
		"moebius-kantor": {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8}, {8, 9}, {9, 10}, {10, 11}, {11, 12}, {12, 13}, {13, 14}, {14, 15}, {15, 0}, {0, 5}, {1, 12}, {2, 7}, {3, 14}, {4, 9}, {6, 11}, {8, 13}, {10, 15}},
		"octahedron":     {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {2, 3}, {3, 4}, {4, 1}, {5, 1}, {5, 2}, {5, 3}, {5, 4}},
		"wagner":         {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0}, {0, 4}, {1, 5}, {2, 6}, {3, 7}},
		"bull":           {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 4}},
		"house":          {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 4}, {1, 4}},
	}
	if name == "queen4" || name == "queen5" {
		n := 4
		if name == "queen5" {
			n = 5
		}
		return queen(n), nil
	}
	edges, ok := adj[name]
	if !ok {
		return nil, fmt.Errorf("gen: unknown named graph %q", name)
	}
	max := 0
	for _, e := range edges {
		if e[0] > max {
			max = e[0]
		}
		if e[1] > max {
			max = e[1]
		}
	}
	g := graph.New(max + 1)
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g, nil
}

// NamedGraphs lists the names accepted by Named.
func NamedGraphs() []string {
	return []string{"petersen", "grotzsch", "queen4", "queen5", "cube",
		"moebius-kantor", "octahedron", "wagner", "bull", "house"}
}

// queen builds the n×n queen graph from the DIMACS coloring benchmarks.
func queen(n int) *graph.Graph {
	g := graph.New(n * n)
	id := func(r, c int) int { return r*n + c }
	attack := func(r1, c1, r2, c2 int) bool {
		return r1 == r2 || c1 == c2 || r1-c1 == r2-c2 || r1+c1 == r2+c2
	}
	for r1 := 0; r1 < n; r1++ {
		for c1 := 0; c1 < n; c1++ {
			for r2 := 0; r2 < n; r2++ {
				for c2 := 0; c2 < n; c2++ {
					a, b := id(r1, c1), id(r2, c2)
					if a < b && attack(r1, c1, r2, c2) {
						g.AddEdge(a, b)
					}
				}
			}
		}
	}
	return g
}
