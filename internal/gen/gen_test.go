package gen

import (
	"math/rand"
	"testing"
)

func TestGNPBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := GNP(rng, 30, 0)
	if g.NumEdges() != 0 {
		t.Fatalf("p=0 produced edges")
	}
	g = GNP(rng, 30, 1)
	if g.NumEdges() != 30*29/2 {
		t.Fatalf("p=1 missing edges: %d", g.NumEdges())
	}
	g = GNP(rng, 40, 0.5)
	if g.NumEdges() < 200 || g.NumEdges() > 580 {
		t.Fatalf("p=0.5 suspicious edge count %d", g.NumEdges())
	}
}

func TestConnectedGNP(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		g := ConnectedGNP(rng, 2+rng.Intn(25), 0.05+rng.Float64()*0.4)
		if !g.IsConnected() {
			t.Fatalf("ConnectedGNP returned a disconnected graph")
		}
	}
}

func TestGridAndCycleAndPath(t *testing.T) {
	g := Grid(3, 4)
	if g.NumVertices() != 12 || g.NumEdges() != 3*3+2*4 {
		t.Fatalf("grid(3,4): n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	c := Cycle(7)
	if c.NumEdges() != 7 {
		t.Fatalf("C7 edges = %d", c.NumEdges())
	}
	p := Path(7)
	if p.NumEdges() != 6 || !p.IsConnected() {
		t.Fatalf("P7 wrong")
	}
	k := Complete(6)
	if k.NumEdges() != 15 {
		t.Fatalf("K6 edges = %d", k.NumEdges())
	}
}

func TestPaperExampleShape(t *testing.T) {
	g := PaperExample()
	if g.NumVertices() != 6 || g.NumEdges() != 7 {
		t.Fatalf("paper example: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if g.Name(0) != "u" || g.Name(2) != "v'" {
		t.Fatalf("names: %s %s", g.Name(0), g.Name(2))
	}
}

func TestMoralizedDAG(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(30)
		g := MoralizedDAG(rng, n, 3)
		if g.NumVertices() != n {
			t.Fatalf("n mismatch")
		}
		// Moralization marries co-parents: verify the invariant on a
		// fresh deterministic instance instead (structure is random),
		// here just sanity-check the graph is simple and within bounds.
		if g.NumEdges() > n*(n-1)/2 {
			t.Fatalf("too many edges")
		}
	}
	// maxParents=0 gives an edgeless graph.
	if g := MoralizedDAG(rng, 10, 0); g.NumEdges() != 0 {
		t.Fatalf("no-parent DAG has edges")
	}
}

func TestCSPGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := CSPGrid(rng, 4, 4, 10)
	base := Grid(4, 4)
	if g.NumEdges() < base.NumEdges() {
		t.Fatalf("CSPGrid lost grid edges")
	}
	if g.NumEdges() > base.NumEdges()+10 {
		t.Fatalf("CSPGrid added too many edges")
	}
}

func TestQueryGaifman(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, shape := range []QueryShape{ChainQuery, StarQuery, CycleQuery, SnowflakeQuery} {
		g := QueryGaifman(rng, shape, 6, 3)
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Fatalf("shape %d produced empty graph", shape)
		}
		// Each atom's variables form a clique; at most 6 atoms × C(3,2).
		if g.NumEdges() > 6*3 {
			t.Fatalf("too many edges: %d", g.NumEdges())
		}
	}
	// Chain queries over 2-ary atoms are connected paths of cliques.
	g := QueryGaifman(rng, ChainQuery, 5, 2)
	if !g.IsConnected() {
		t.Fatalf("chain query Gaifman graph disconnected")
	}
}

func TestKTree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := KTree(rng, 12, 3, 0)
	if g.NumVertices() != 12 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// A k-tree on n vertices has kn - k(k+1)/2 edges.
	want := 3*12 - 3*4/2
	if g.NumEdges() != want {
		t.Fatalf("3-tree edges = %d, want %d", g.NumEdges(), want)
	}
	// Small n degenerates to a complete graph.
	if KTree(rng, 3, 5, 0).NumEdges() != 3 {
		t.Fatalf("KTree small-n broken")
	}
	// Edge removal removes edges.
	g2 := KTree(rng, 12, 3, 5)
	if g2.NumEdges() != want-5 {
		t.Fatalf("partial k-tree edges = %d", g2.NumEdges())
	}
}

func TestNamed(t *testing.T) {
	for _, name := range NamedGraphs() {
		g, err := Named(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumVertices() == 0 {
			t.Fatalf("%s empty", name)
		}
	}
	if _, err := Named("nope"); err == nil {
		t.Fatalf("unknown name accepted")
	}
	pet, _ := Named("petersen")
	if pet.NumVertices() != 10 || pet.NumEdges() != 15 {
		t.Fatalf("petersen: n=%d m=%d", pet.NumVertices(), pet.NumEdges())
	}
	for v := 0; v < 10; v++ {
		if pet.Degree(v) != 3 {
			t.Fatalf("petersen not cubic at %d", v)
		}
	}
	q4, _ := Named("queen4")
	if q4.NumVertices() != 16 {
		t.Fatalf("queen4 n = %d", q4.NumVertices())
	}
	// Every queen attacks its row/col/diagonals: vertex 0 attacks 3+3+3=9.
	if q4.Degree(0) != 9 {
		t.Fatalf("queen4 corner degree = %d", q4.Degree(0))
	}
}

func TestDeterminismPerSeed(t *testing.T) {
	a := GNP(rand.New(rand.NewSource(9)), 20, 0.3)
	b := GNP(rand.New(rand.NewSource(9)), 20, 0.3)
	if a.EdgeSetKey() != b.EdgeSetKey() {
		t.Fatalf("same seed produced different graphs")
	}
}
