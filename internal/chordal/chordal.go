// Package chordal implements the chordal-graph toolkit the paper relies on:
// maximum cardinality search, perfect elimination orderings, a chordality
// test, maximal cliques of chordal graphs, clique trees (via maximum-weight
// spanning trees of the clique graph, per Jordan), and the minimal
// separators of a chordal graph (clique-tree adhesions).
package chordal

import (
	"errors"
	"sort"

	"repro/internal/graph"
	"repro/internal/td"
	"repro/internal/vset"
)

// MCSOrder runs maximum cardinality search on the active vertices of g and
// returns the vertices in *elimination order*: the reverse of the visit
// order, so that for chordal graphs the result is a perfect elimination
// ordering.
func MCSOrder(g *graph.Graph) []int {
	n := g.Universe()
	weight := make([]int, n)
	visited := vset.New(n)
	remaining := g.NumVertices()
	visit := make([]int, 0, remaining)
	for len(visit) < remaining {
		best, bestW := -1, -1
		g.Vertices().ForEach(func(v int) bool {
			if !visited.Contains(v) && weight[v] > bestW {
				best, bestW = v, weight[v]
			}
			return true
		})
		visited.AddInPlace(best)
		visit = append(visit, best)
		g.Neighbors(best).ForEach(func(w int) bool {
			if !visited.Contains(w) {
				weight[w]++
			}
			return true
		})
	}
	// Reverse: last visited is eliminated first.
	for i, j := 0, len(visit)-1; i < j; i, j = i+1, j-1 {
		visit[i], visit[j] = visit[j], visit[i]
	}
	return visit
}

// IsPerfectEliminationOrder reports whether order (covering exactly the
// active vertices of g) is a perfect elimination ordering: for every vertex
// v, the neighbors of v that come later in the order form a clique.
func IsPerfectEliminationOrder(g *graph.Graph, order []int) bool {
	n := g.Universe()
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, v := range order {
		pos[v] = i
	}
	later := make([]vset.Set, len(order))
	for i, v := range order {
		lv := vset.New(n)
		g.Neighbors(v).ForEach(func(w int) bool {
			if pos[w] > i {
				lv.AddInPlace(w)
			}
			return true
		})
		later[i] = lv
	}
	// Tarjan–Yannakakis check: it suffices to verify, for each v, that
	// later(v) minus its earliest member u is contained in N(u).
	for i, lv := range later {
		if lv.IsEmpty() {
			continue
		}
		u, uPos := -1, len(order)
		lv.ForEach(func(w int) bool {
			if pos[w] < uPos {
				u, uPos = w, pos[w]
			}
			return true
		})
		rest := lv.Remove(u)
		if !rest.SubsetOf(g.Neighbors(u)) {
			return false
		}
		_ = i
	}
	return true
}

// IsChordal reports whether g is chordal, in near-linear time via MCS plus
// the perfect-elimination check.
func IsChordal(g *graph.Graph) bool {
	return IsPerfectEliminationOrder(g, MCSOrder(g))
}

// ErrNotChordal is returned by operations that require a chordal input.
var ErrNotChordal = errors.New("chordal: graph is not chordal")

// MaximalCliques returns the maximal cliques of a chordal graph g, sorted
// canonically. A chordal graph has fewer maximal cliques than vertices
// (Theorem 2.2), so the result is small.
func MaximalCliques(g *graph.Graph) ([]vset.Set, error) {
	order := MCSOrder(g)
	if !IsPerfectEliminationOrder(g, order) {
		return nil, ErrNotChordal
	}
	n := g.Universe()
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, v := range order {
		pos[v] = i
	}
	// Candidate cliques: {v} ∪ later-neighbors(v) for each v.
	candidates := make([]vset.Set, 0, len(order))
	seen := map[string]bool{}
	for i, v := range order {
		c := vset.New(n)
		c.AddInPlace(v)
		g.Neighbors(v).ForEach(func(w int) bool {
			if pos[w] > i {
				c.AddInPlace(w)
			}
			return true
		})
		if !seen[c.Key()] {
			seen[c.Key()] = true
			candidates = append(candidates, c)
		}
	}
	// Keep only the maximal ones.
	var out []vset.Set
	for i, c := range candidates {
		maximal := true
		for j, d := range candidates {
			if i != j && c.ProperSubsetOf(d) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out, nil
}

// CliqueTree returns a clique tree of the chordal graph g: a tree
// decomposition whose bags are exactly the maximal cliques of g. It is
// computed as a maximum-weight spanning tree of the clique graph with
// weights |Ci ∩ Cj| (Jordan's characterization). Disconnected graphs are
// supported: zero-weight tree edges stitch the forest together, which
// preserves the junction property because the joined cliques are disjoint.
func CliqueTree(g *graph.Graph) (*td.Decomposition, error) {
	cliques, err := MaximalCliques(g)
	if err != nil {
		return nil, err
	}
	d := td.New()
	for _, c := range cliques {
		d.AddNode(c)
	}
	k := len(cliques)
	if k <= 1 {
		return d, nil
	}
	// Prim's algorithm on the complete clique graph.
	inTree := make([]bool, k)
	bestW := make([]int, k)
	bestTo := make([]int, k)
	for i := range bestW {
		bestW[i] = -1
		bestTo[i] = -1
	}
	inTree[0] = true
	for j := 1; j < k; j++ {
		bestW[j] = cliques[0].IntersectionLen(cliques[j])
		bestTo[j] = 0
	}
	for added := 1; added < k; added++ {
		pick, w := -1, -2
		for j := 0; j < k; j++ {
			if !inTree[j] && bestW[j] > w {
				pick, w = j, bestW[j]
			}
		}
		inTree[pick] = true
		d.AddEdge(pick, bestTo[pick])
		for j := 0; j < k; j++ {
			if !inTree[j] {
				if iw := cliques[pick].IntersectionLen(cliques[j]); iw > bestW[j] {
					bestW[j] = iw
					bestTo[j] = pick
				}
			}
		}
	}
	return d, nil
}

// MinimalSeparators returns the minimal separators of the chordal graph g:
// the distinct nonempty adhesions of any clique tree.
func MinimalSeparators(g *graph.Graph) ([]vset.Set, error) {
	ct, err := CliqueTree(g)
	if err != nil {
		return nil, err
	}
	var out []vset.Set
	for _, s := range ct.Adhesions(g.Universe()) {
		if !s.IsEmpty() {
			out = append(out, s)
		}
	}
	return out, nil
}

// FillEdges returns E(h) \ E(g): the fill set of a triangulation h of g.
// Both graphs must share a universe and h must contain every edge of g.
func FillEdges(g, h *graph.Graph) [][2]int {
	var out [][2]int
	for _, e := range h.Edges() {
		if !g.HasEdge(e[0], e[1]) {
			out = append(out, e)
		}
	}
	return out
}

// IsTriangulationOf reports whether h is a triangulation of g: h is
// chordal, has the same active vertices, and E(g) ⊆ E(h).
func IsTriangulationOf(h, g *graph.Graph) bool {
	if !h.Vertices().Equal(g.Vertices()) {
		return false
	}
	for _, e := range g.Edges() {
		if !h.HasEdge(e[0], e[1]) {
			return false
		}
	}
	return IsChordal(h)
}
