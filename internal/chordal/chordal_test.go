package chordal

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/vset"
)

func TestIsChordal(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"empty", graph.New(0), true},
		{"single", graph.New(1), true},
		{"path", gen.Path(6), true},
		{"triangle", gen.Complete(3), true},
		{"complete", gen.Complete(6), true},
		{"C4", gen.Cycle(4), false},
		{"C5", gen.Cycle(5), false},
		{"paper", gen.PaperExample(), false},
		{"grid", gen.Grid(3, 3), false},
	}
	for _, tc := range tests {
		if got := IsChordal(tc.g); got != tc.want {
			t.Errorf("%s: IsChordal = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestChordalAfterSaturation(t *testing.T) {
	// Saturating S1 = {w1,w2,w3} yields minimal triangulation H1 of the
	// paper example; saturating S2 = {u,v} yields H2.
	g := gen.PaperExample()
	h1 := g.Saturate(vset.Of(6, 3, 4, 5))
	h2 := g.Saturate(vset.Of(6, 0, 1))
	if !IsChordal(h1) || !IsChordal(h2) {
		t.Fatalf("paper triangulations not chordal")
	}
	if !IsTriangulationOf(h1, g) || !IsTriangulationOf(h2, g) {
		t.Fatalf("IsTriangulationOf rejected valid triangulations")
	}
	if IsTriangulationOf(g, g) {
		t.Fatalf("non-chordal graph accepted as triangulation of itself")
	}
	if len(FillEdges(g, h1)) != 3 || len(FillEdges(g, h2)) != 1 {
		t.Fatalf("fill sizes: %d, %d", len(FillEdges(g, h1)), len(FillEdges(g, h2)))
	}
}

func TestMaximalCliquesPaperH1(t *testing.T) {
	g := gen.PaperExample()
	h1 := g.Saturate(vset.Of(6, 3, 4, 5))
	cliques, err := MaximalCliques(h1)
	if err != nil {
		t.Fatal(err)
	}
	want := []vset.Set{
		vset.Of(6, 1, 2),       // {v, v'}
		vset.Of(6, 0, 3, 4, 5), // {u, w1, w2, w3}
		vset.Of(6, 1, 3, 4, 5), // {v, w1, w2, w3}
	}
	if len(cliques) != len(want) {
		t.Fatalf("got %d cliques: %v", len(cliques), cliques)
	}
	got := map[string]bool{}
	for _, c := range cliques {
		got[c.Key()] = true
	}
	for _, w := range want {
		if !got[w.Key()] {
			t.Errorf("missing clique %v", w)
		}
	}
}

func TestMaximalCliquesRejectsNonChordal(t *testing.T) {
	if _, err := MaximalCliques(gen.Cycle(4)); err != ErrNotChordal {
		t.Fatalf("want ErrNotChordal, got %v", err)
	}
}

func TestCliqueTreePaperH2(t *testing.T) {
	g := gen.PaperExample()
	h2 := g.Saturate(vset.Of(6, 0, 1)) // T2's triangulation
	ct, err := CliqueTree(h2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ct.Validate(h2); err != nil {
		t.Fatalf("clique tree invalid: %v", err)
	}
	cliques, _ := MaximalCliques(h2)
	if !ct.IsCliqueTreeOf(h2, cliques) {
		t.Fatalf("not a clique tree")
	}
	// H2's maximal cliques: {u,v,w1}, {u,v,w2}, {u,v,w3}, {v,v'}.
	if len(ct.Bags) != 4 {
		t.Fatalf("bag count = %d", len(ct.Bags))
	}
}

func TestMinimalSeparatorsOfChordal(t *testing.T) {
	g := gen.PaperExample()
	h2 := g.Saturate(vset.Of(6, 0, 1))
	seps, err := MinimalSeparators(h2)
	if err != nil {
		t.Fatal(err)
	}
	// MinSep(H2) = {{u,v}, {v}} per Parra–Scheffler (M2 = {S2, S3}).
	want := map[string]bool{vset.Of(6, 0, 1).Key(): true, vset.Of(6, 1).Key(): true}
	if len(seps) != 2 {
		t.Fatalf("got %d separators: %v", len(seps), seps)
	}
	for _, s := range seps {
		if !want[s.Key()] {
			t.Errorf("unexpected separator %v", s)
		}
	}
}

func TestCliqueTreeDisconnected(t *testing.T) {
	g := graph.New(5)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	// vertex 4 isolated
	ct, err := CliqueTree(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := ct.Validate(g); err != nil {
		t.Fatalf("disconnected clique tree invalid: %v", err)
	}
	if len(ct.Bags) != 3 {
		t.Fatalf("bags = %d, want 3", len(ct.Bags))
	}
}

func TestPEOExplicit(t *testing.T) {
	// A path 0-1-2: order [0,1,2] is a PEO, order [1,0,2] is too
	// (every vertex has at most one later neighbor).
	g := gen.Path(3)
	if !IsPerfectEliminationOrder(g, []int{0, 1, 2}) {
		t.Errorf("[0 1 2] should be a PEO of a path")
	}
	// C4 has no PEO at all.
	c4 := gen.Cycle(4)
	perms := [][]int{{0, 1, 2, 3}, {0, 2, 1, 3}, {1, 3, 0, 2}, {3, 2, 1, 0}}
	for _, p := range perms {
		if IsPerfectEliminationOrder(c4, p) {
			t.Errorf("order %v accepted as PEO of C4", p)
		}
	}
}

func TestRandomChordalInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		// k-trees are chordal by construction.
		n := 3 + rng.Intn(15)
		k := 1 + rng.Intn(3)
		g := gen.KTree(rng, n, k, 0)
		if !IsChordal(g) {
			t.Fatalf("k-tree not detected chordal (n=%d k=%d)", n, k)
		}
		cliques, err := MaximalCliques(g)
		if err != nil {
			t.Fatal(err)
		}
		if len(cliques) >= g.NumVertices()+1 {
			t.Fatalf("chordal graph has %d maximal cliques, ≥ n+1", len(cliques))
		}
		for _, c := range cliques {
			if !g.IsClique(c) {
				t.Fatalf("reported clique is not a clique: %v", c)
			}
		}
		ct, err := CliqueTree(g)
		if err != nil {
			t.Fatal(err)
		}
		if err := ct.Validate(g); err != nil {
			t.Fatalf("clique tree invalid: %v", err)
		}
		if !ct.IsCliqueTreeOf(g, cliques) {
			t.Fatalf("clique tree bags are not the maximal cliques")
		}
	}
}

func TestMCSOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		g := gen.GNP(rng, 1+rng.Intn(20), 0.3)
		order := MCSOrder(g)
		if len(order) != g.NumVertices() {
			t.Fatalf("order length %d != %d", len(order), g.NumVertices())
		}
		seen := map[int]bool{}
		for _, v := range order {
			if seen[v] {
				t.Fatalf("duplicate vertex %d in MCS order", v)
			}
			seen[v] = true
		}
	}
}

func TestMinimalSeparatorsAreSeparators(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		g := gen.KTree(rng, 4+rng.Intn(10), 2, 0)
		seps, err := MinimalSeparators(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range seps {
			comps := g.ComponentsAvoiding(s)
			full := 0
			for _, c := range comps {
				if g.NeighborsOfSet(c).Equal(s) {
					full++
				}
			}
			if full < 2 {
				t.Fatalf("adhesion %v is not a minimal separator", s)
			}
		}
		// Separators are sorted and unique.
		for i := 1; i < len(seps); i++ {
			if seps[i-1].Compare(seps[i]) >= 0 {
				t.Fatalf("separators not sorted/unique")
			}
		}
		sort.Slice(seps, func(i, j int) bool { return seps[i].Compare(seps[j]) < 0 })
	}
}
