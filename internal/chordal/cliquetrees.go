package chordal

import (
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/td"
	"repro/internal/vset"
)

// CliqueTreeEnumerator streams every clique tree of a chordal graph.
// By Jordan's characterization these are exactly the maximum-weight
// spanning trees of the clique graph with adhesion-size weights, so the
// enumeration delegates to mst.Enumerate. Since a chordal graph has fewer
// maximal cliques than vertices, each tree is produced with polynomial
// delay — the ingredient Proposition 6.1 needs to turn ranked
// triangulation enumeration into ranked proper-tree-decomposition
// enumeration.
type CliqueTreeEnumerator struct {
	cliques []vset.Set
	edges   []mst.Edge
	inner   *mst.Enumerator
	done    bool
}

// EnumerateCliqueTrees prepares the enumeration of all clique trees of the
// chordal graph g. It fails with ErrNotChordal on non-chordal input.
func EnumerateCliqueTrees(g *graph.Graph) (*CliqueTreeEnumerator, error) {
	cliques, err := MaximalCliques(g)
	if err != nil {
		return nil, err
	}
	e := &CliqueTreeEnumerator{cliques: cliques}
	for i := 0; i < len(cliques); i++ {
		for j := i + 1; j < len(cliques); j++ {
			e.edges = append(e.edges, mst.Edge{A: i, B: j, W: cliques[i].IntersectionLen(cliques[j])})
		}
	}
	e.inner = mst.Enumerate(len(cliques), e.edges)
	return e, nil
}

// Next returns the next clique tree, or ok=false when all have been
// produced.
func (e *CliqueTreeEnumerator) Next() (*td.Decomposition, bool) {
	if e.done || len(e.cliques) == 0 {
		return nil, false
	}
	if len(e.cliques) == 1 {
		// A single maximal clique has exactly one (edgeless) clique tree.
		e.done = true
		d := td.New()
		d.AddNode(e.cliques[0])
		return d, true
	}
	treeEdges, ok := e.inner.Next()
	if !ok {
		return nil, false
	}
	d := td.New()
	for _, c := range e.cliques {
		d.AddNode(c)
	}
	for _, ei := range treeEdges {
		d.AddEdge(e.edges[ei].A, e.edges[ei].B)
	}
	return d, true
}
