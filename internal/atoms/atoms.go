// Package atoms computes the clique-minimal-separator decomposition of a
// graph: the unique tree of "atoms" — maximal connected subgraphs with no
// clique separator (Tarjan 1985; Leimer 1993) — obtained by recursively
// splitting on minimal separators that are cliques.
//
// The decomposition matters for ranked enumeration because minimal
// triangulations factor across it: H is a minimal triangulation of G iff
// H is the union of minimal triangulations of the atoms of G (Leimer), a
// fact the sibling enumeration paper (Carmeli, Kenig, Kimelfeld) exploits.
// The solver in internal/core uses it to turn one |MinSep|-exponential
// instance into several independent small ones and merge their ranked
// streams.
//
// The algorithm is the Berry–Pogorelčnik–Simonet formulation of
// Tarjan's decomposition ("An introduction to clique minimal separator
// decomposition", 2010): compute a minimal triangulation H of G with a
// minimal elimination ordering (MCS-M), then walk the ordering once; each
// vertex whose madj (its H-neighbors not yet eliminated) is a clique of G
// exposes a clique minimal separator, and the component of the vertex on
// its side of that separator is split off as an atom. The whole
// decomposition is polynomial — O(n·m) for MCS-M plus O(n·m) for the walk
// — in contrast to everything downstream of it.
package atoms

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/triang"
	"repro/internal/vset"
)

// Atom is one node of the atom tree: an induced subgraph of the input
// graph with no clique separator.
type Atom struct {
	// Vertices is the atom's vertex set S ∪ C over the input universe.
	Vertices vset.Set
	// Sep is the clique minimal separator through which the atom was
	// split off — the atom's interface to its parent. Empty for the last
	// atom of each connected component.
	Sep vset.Set
	// Parent indexes the atom containing Sep (every clique of the
	// remainder lies inside a single later atom), or is -1 for atoms with
	// an empty Sep. Parent edges form a forest with one root per
	// connected component of the input.
	Parent int
}

// Decomposition is the clique-minimal-separator decomposition of a graph.
type Decomposition struct {
	// Atoms lists the atoms in the order the decomposition split them
	// off; within one connected component an atom's parent always comes
	// later in the list.
	Atoms []Atom
	// CliqueSeps holds the distinct clique minimal separators of the
	// graph in canonical order. The empty separator is included exactly
	// when the graph is disconnected, mirroring minsep.All.
	CliqueSeps []vset.Set
}

// Decompose returns the clique-minimal-separator decomposition of g. The
// atom set is unique (Leimer 1993); the order of atoms depends on the
// deterministic MCS-M ordering, so equal graphs decompose identically.
func Decompose(g *graph.Graph) *Decomposition {
	d := &Decomposition{}
	comps := g.ComponentsWithin(g.Vertices())
	sepSeen := map[string]bool{}
	for _, comp := range comps {
		decomposeComponent(g, comp, d, sepSeen)
	}
	if len(comps) > 1 {
		d.CliqueSeps = append(d.CliqueSeps, vset.New(g.Universe()))
	}
	sort.Slice(d.CliqueSeps, func(i, j int) bool {
		return d.CliqueSeps[i].Compare(d.CliqueSeps[j]) < 0
	})
	return d
}

// decomposeComponent runs the Berry–Pogorelčnik–Simonet walk on one
// connected component and appends its atoms (parent-linked) to d.
func decomposeComponent(g *graph.Graph, comp vset.Set, d *Decomposition, sepSeen map[string]bool) {
	first := len(d.Atoms)
	gc := g.InducedSubgraph(comp)
	h, picked := triang.MCSMOrder(gc)

	// Walk the minimal elimination ordering of H: the vertex picked last
	// by MCS-M is eliminated first. remaining tracks the vertex set of
	// H' — vertices neither eliminated by the walk nor shipped inside an
	// earlier atom's component (the paper's H' := H' − x and H' := H' − C
	// steps) — so madj(x) = N_H(x) ∩ remaining. w tracks the vertex set
	// of the shrinking graph G'.
	w := comp.Clone()
	remaining := comp.Clone()
	for i := len(picked) - 1; i >= 0; i-- {
		x := picked[i]
		remaining.RemoveInPlace(x)
		if !w.Contains(x) {
			continue // already split off inside an earlier atom
		}
		s := h.Neighbors(x).Intersect(remaining)
		s.IntersectInPlace(w)
		if !g.IsClique(s) {
			continue
		}
		// The madj of x is a clique of G, but that alone does not make it
		// a clique *minimal* separator of the current graph G' — e.g. the
		// parent clique of a simplicial vertex may strictly contain the
		// true separator, and splitting on it would over-decompose.
		// Require the definition: at least two components of G' \ S whose
		// neighborhood is exactly S.
		if !isMinimalSeparatorWithin(g, w, s) {
			continue
		}
		c := g.ComponentContaining(x, w.Diff(s))
		d.Atoms = append(d.Atoms, Atom{Vertices: c.Union(s), Sep: s, Parent: -1})
		if key := s.Key(); !sepSeen[key] {
			sepSeen[key] = true
			d.CliqueSeps = append(d.CliqueSeps, s)
		}
		w.DiffInPlace(c)
	}
	d.Atoms = append(d.Atoms, Atom{Vertices: w, Sep: vset.New(g.Universe()), Parent: -1})

	// Parent links: each split-off atom's separator is a clique of the
	// remainder, so it lies inside a single later atom of this component.
	for i := first; i < len(d.Atoms)-1; i++ {
		a := &d.Atoms[i]
		for j := i + 1; j < len(d.Atoms); j++ {
			if a.Sep.SubsetOf(d.Atoms[j].Vertices) {
				a.Parent = j
				break
			}
		}
		if a.Parent < 0 {
			// Unreachable if the decomposition is correct (the invariant
			// is cross-checked against internal/bruteforce).
			panic(fmt.Sprintf("atoms: separator %v of atom %d not contained in any later atom", a.Sep, i))
		}
	}
}

// isMinimalSeparatorWithin reports whether s is a minimal separator of
// G[w]: G[w] \ s has at least two components whose neighborhood within w
// is exactly s.
func isMinimalSeparatorWithin(g *graph.Graph, w, s vset.Set) bool {
	full := 0
	for _, c := range g.ComponentsWithin(w.Diff(s)) {
		if g.NeighborsOfSet(c).Intersect(w).Equal(s) {
			full++
			if full >= 2 {
				return true
			}
		}
	}
	return false
}

// Count returns the number of atoms.
func (d *Decomposition) Count() int { return len(d.Atoms) }

// LargestAtom returns the vertex count of the largest atom, the quantity
// that governs the exponential part of solver initialization after
// decomposition.
func (d *Decomposition) LargestAtom() int {
	max := 0
	for _, a := range d.Atoms {
		if n := a.Vertices.Len(); n > max {
			max = n
		}
	}
	return max
}
