package atoms

import (
	"math/rand"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/vset"
)

// checkAgainstBruteforce asserts that Decompose(g) finds exactly the
// ground-truth atoms and clique minimal separators of g, and that the
// structural invariants of the atom tree hold.
func checkAgainstBruteforce(t *testing.T, g *graph.Graph) {
	t.Helper()
	d := Decompose(g)

	keys := func(sets []vset.Set) map[string]bool {
		m := map[string]bool{}
		for _, s := range sets {
			m[s.Key()] = true
		}
		return m
	}
	gotAtoms := map[string]bool{}
	for _, a := range d.Atoms {
		if gotAtoms[a.Vertices.Key()] {
			t.Fatalf("duplicate atom %v", a.Vertices)
		}
		gotAtoms[a.Vertices.Key()] = true
	}
	wantAtoms := keys(bruteforce.Atoms(g))
	if len(gotAtoms) != len(wantAtoms) {
		t.Fatalf("atom count: got %d want %d (graph %s)", len(gotAtoms), len(wantAtoms), g.EdgeSetKey())
	}
	for k := range wantAtoms {
		if !gotAtoms[k] {
			t.Fatalf("missing atom %q (graph %s)", k, g.EdgeSetKey())
		}
	}

	gotSeps := keys(d.CliqueSeps)
	wantSeps := keys(bruteforce.CliqueMinimalSeparators(g))
	if len(gotSeps) != len(wantSeps) {
		t.Fatalf("clique-sep count: got %d want %d (graph %s)", len(gotSeps), len(wantSeps), g.EdgeSetKey())
	}
	for k := range wantSeps {
		if !gotSeps[k] {
			t.Fatalf("missing clique minimal separator %q (graph %s)", k, g.EdgeSetKey())
		}
	}

	covered := vset.New(g.Universe())
	for i, a := range d.Atoms {
		covered.UnionInPlace(a.Vertices)
		if !g.IsClique(a.Sep) {
			t.Fatalf("atom %d: separator %v is not a clique", i, a.Sep)
		}
		if a.Sep.IsEmpty() != (a.Parent < 0) {
			t.Fatalf("atom %d: empty-sep/parent mismatch (%v, parent %d)", i, a.Sep, a.Parent)
		}
		if a.Parent >= 0 {
			if a.Parent <= i || a.Parent >= len(d.Atoms) {
				t.Fatalf("atom %d: parent %d out of order", i, a.Parent)
			}
			if !a.Sep.SubsetOf(d.Atoms[a.Parent].Vertices) {
				t.Fatalf("atom %d: separator %v not inside parent %v", i, a.Sep, d.Atoms[a.Parent].Vertices)
			}
			if !a.Sep.SubsetOf(a.Vertices) {
				t.Fatalf("atom %d: separator %v not inside atom %v", i, a.Sep, a.Vertices)
			}
		}
	}
	if !covered.Equal(g.Vertices()) {
		t.Fatalf("atoms cover %v, want %v", covered, g.Vertices())
	}
}

// TestDecomposeExhaustive cross-checks every graph on up to 6 vertices
// against the bruteforce ground truth.
func TestDecomposeExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep")
	}
	for n := 0; n <= 6; n++ {
		pairs := n * (n - 1) / 2
		for mask := 0; mask < 1<<uint(pairs); mask++ {
			g := graph.New(n)
			bit := 0
			for u := 0; u < n; u++ {
				for v := u + 1; v < n; v++ {
					if mask&(1<<uint(bit)) != 0 {
						g.AddEdge(u, v)
					}
					bit++
				}
			}
			checkAgainstBruteforce(t, g)
		}
	}
}

// TestDecomposeRandom extends the cross-check to n = 7 and n = 8 with
// random G(n,p) graphs across the density range, completing the
// "all graphs up to n=8" oracle corpus at a feasible cost.
func TestDecomposeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	for n := 7; n <= 8; n++ {
		for _, p := range []float64{0.15, 0.3, 0.5, 0.7} {
			trials := 60
			if testing.Short() {
				trials = 8
			}
			for i := 0; i < trials; i++ {
				checkAgainstBruteforce(t, gen.GNP(rng, n, p))
			}
		}
	}
}

// TestDecomposeStructured covers the families the decomposed solver is
// designed for: trees (every internal edge is a clique separator),
// trees plus chords, clique chains, and disconnected unions.
func TestDecomposeStructured(t *testing.T) {
	rng := rand.New(rand.NewSource(7))

	// A path: n-1 atoms (the edges), n-2 cut vertices.
	p := gen.Path(6)
	d := Decompose(p)
	if d.Count() != 5 {
		t.Fatalf("P6: %d atoms, want 5", d.Count())
	}
	checkAgainstBruteforce(t, p)

	// A cycle has no clique separator: one atom.
	c := gen.Cycle(6)
	if d := Decompose(c); d.Count() != 1 {
		t.Fatalf("C6: %d atoms, want 1", d.Count())
	}

	// A complete graph is a single atom with no separators at all.
	if d := Decompose(gen.Complete(5)); d.Count() != 1 || len(d.CliqueSeps) != 0 {
		t.Fatalf("K5: %d atoms, %d seps", d.Count(), len(d.CliqueSeps))
	}

	// Disconnected: the empty separator is a clique minimal separator
	// and the components decompose independently.
	g := graph.New(8)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, (i+1)%4)
		g.AddEdge(4+i, 4+(i+1)%4)
	}
	d = Decompose(g)
	if d.Count() != 2 {
		t.Fatalf("2×C4: %d atoms, want 2", d.Count())
	}
	if len(d.CliqueSeps) != 1 || !d.CliqueSeps[0].IsEmpty() {
		t.Fatalf("2×C4: clique seps %v, want only the empty separator", d.CliqueSeps)
	}
	checkAgainstBruteforce(t, g)

	// Trees plus chords, the oracle family of the core tests.
	for i := 0; i < 30; i++ {
		checkAgainstBruteforce(t, gen.TreePlusChords(rng, 8, 2))
	}
}
