// Package hyper provides the hypergraph substrate behind the paper's
// database motivation: hypergraphs with primal (Gaifman) graphs, exact
// integral edge covers of bags (hypertree-width bag cost), and exact
// fractional edge covers via linear programming (fractional hypertree
// width, Grohe–Marx). Combined with cost.WeightedWidth these realize the
// generalized-hypertree-width and fractional-hypertree-width costs that
// Section 3 lists as split-monotone bag costs.
package hyper

import (
	"fmt"
	"math"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/simplex"
	"repro/internal/vset"
)

// Hypergraph is a set of hyperedges over vertices {0..n-1}.
type Hypergraph struct {
	n     int
	edges []vset.Set
}

// New returns a hypergraph over n vertices with no hyperedges.
func New(n int) *Hypergraph {
	return &Hypergraph{n: n}
}

// NumVertices returns the universe size.
func (h *Hypergraph) NumVertices() int { return h.n }

// Edges returns the hyperedges. Callers must not mutate them.
func (h *Hypergraph) Edges() []vset.Set { return h.edges }

// AddEdge inserts a hyperedge over the given vertices.
func (h *Hypergraph) AddEdge(vertices ...int) {
	h.edges = append(h.edges, vset.Of(h.n, vertices...))
}

// AddEdgeSet inserts a hyperedge given as a set.
func (h *Hypergraph) AddEdgeSet(e vset.Set) {
	if e.Universe() != h.n {
		panic("hyper: universe mismatch")
	}
	h.edges = append(h.edges, e)
}

// Primal returns the primal (Gaifman) graph: vertices of the hypergraph,
// with two vertices adjacent iff they co-occur in a hyperedge. This is the
// graph whose tree decompositions underlie generalized hypertree
// decompositions.
func (h *Hypergraph) Primal() *graph.Graph {
	g := graph.New(h.n)
	for _, e := range h.edges {
		vs := e.Slice()
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				if !g.HasEdge(vs[i], vs[j]) {
					g.AddEdge(vs[i], vs[j])
				}
			}
		}
	}
	return g
}

// CoverNumber returns the minimum number of hyperedges whose union covers
// bag, or +Inf when no cover exists. Exact branch-and-bound search; bags
// are small (they are cliques of decompositions), so this is fast in
// practice.
func (h *Hypergraph) CoverNumber(bag vset.Set) float64 {
	if bag.IsEmpty() {
		return 0
	}
	// Only edges intersecting the bag are useful; dedupe by their trace.
	var useful []vset.Set
	seen := map[string]bool{}
	for _, e := range h.edges {
		tr := e.Intersect(bag)
		if tr.IsEmpty() || seen[tr.Key()] {
			continue
		}
		seen[tr.Key()] = true
		useful = append(useful, tr)
	}
	best := math.Inf(1)
	var rec func(uncovered vset.Set, used int)
	rec = func(uncovered vset.Set, used int) {
		if float64(used) >= best {
			return
		}
		if uncovered.IsEmpty() {
			best = float64(used)
			return
		}
		// Branch on an uncovered vertex: some edge must contain it.
		v := uncovered.First()
		for _, tr := range useful {
			if tr.Contains(v) {
				rec(uncovered.Diff(tr), used+1)
			}
		}
	}
	rec(bag.Clone(), 0)
	return best
}

// FractionalCoverNumber returns the optimal fractional edge cover weight
// of bag: min Σ x_e subject to Σ_{e ∋ v} x_e ≥ 1 for every v in the bag,
// x ≥ 0. Solved exactly with the simplex method. Returns +Inf when some
// bag vertex appears in no hyperedge.
func (h *Hypergraph) FractionalCoverNumber(bag vset.Set) float64 {
	if bag.IsEmpty() {
		return 0
	}
	var useful []vset.Set
	for _, e := range h.edges {
		if e.Intersects(bag) {
			useful = append(useful, e)
		}
	}
	verts := bag.Slice()
	for _, v := range verts {
		covered := false
		for _, e := range useful {
			if e.Contains(v) {
				covered = true
				break
			}
		}
		if !covered {
			return math.Inf(1)
		}
	}
	c := make([]float64, len(useful))
	for i := range c {
		c[i] = 1
	}
	a := make([][]float64, len(verts))
	b := make([]float64, len(verts))
	for i, v := range verts {
		a[i] = make([]float64, len(useful))
		for j, e := range useful {
			if e.Contains(v) {
				a[i][j] = 1
			}
		}
		b[i] = 1
	}
	val, _, status, err := simplex.Minimize(c, a, b)
	if err != nil || status != simplex.Optimal {
		return math.Inf(1)
	}
	return val
}

// HypertreeWidthCost returns the split-monotone bag cost whose value is
// the generalized hypertree width: the maximum over bags of the minimum
// integral edge cover.
func (h *Hypergraph) HypertreeWidthCost() cost.Cost {
	return cost.WeightedWidth{
		CostName: "hypertree-width",
		BagWeight: func(_ *graph.Graph, bag vset.Set) float64 {
			return h.CoverNumber(bag)
		},
	}
}

// FractionalHypertreeWidthCost returns the split-monotone bag cost whose
// value is the fractional hypertree width: the maximum over bags of the
// optimal fractional edge cover.
func (h *Hypergraph) FractionalHypertreeWidthCost() cost.Cost {
	return cost.WeightedWidth{
		CostName: "fractional-htw",
		BagWeight: func(_ *graph.Graph, bag vset.Set) float64 {
			return h.FractionalCoverNumber(bag)
		},
	}
}

// String renders a short description.
func (h *Hypergraph) String() string {
	return fmt.Sprintf("hypergraph(n=%d, %d hyperedges)", h.n, len(h.edges))
}
