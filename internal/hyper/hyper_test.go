package hyper

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/vset"
)

// triangleQuery is the classic 3-cycle join R(a,b) ⋈ S(b,c) ⋈ T(c,a).
func triangleQuery() *Hypergraph {
	h := New(3)
	h.AddEdge(0, 1)
	h.AddEdge(1, 2)
	h.AddEdge(2, 0)
	return h
}

func TestPrimal(t *testing.T) {
	h := triangleQuery()
	g := h.Primal()
	if g.NumEdges() != 3 {
		t.Fatalf("triangle primal edges = %d", g.NumEdges())
	}
	// A single 4-ary atom saturates its variables.
	h2 := New(4)
	h2.AddEdge(0, 1, 2, 3)
	if h2.Primal().NumEdges() != 6 {
		t.Fatalf("primal of one atom should be a clique")
	}
}

func TestCoverNumber(t *testing.T) {
	h := triangleQuery()
	full := vset.Of(3, 0, 1, 2)
	if got := h.CoverNumber(full); got != 2 {
		t.Fatalf("integral cover of triangle = %v, want 2", got)
	}
	if got := h.CoverNumber(vset.Of(3, 0, 1)); got != 1 {
		t.Fatalf("single-edge cover = %v", got)
	}
	if got := h.CoverNumber(vset.New(3)); got != 0 {
		t.Fatalf("empty cover = %v", got)
	}
	// Uncoverable vertex.
	h2 := New(3)
	h2.AddEdge(0, 1)
	if got := h2.CoverNumber(vset.Of(3, 2)); !math.IsInf(got, 1) {
		t.Fatalf("uncoverable = %v", got)
	}
}

func TestFractionalCoverNumber(t *testing.T) {
	h := triangleQuery()
	full := vset.Of(3, 0, 1, 2)
	if got := h.FractionalCoverNumber(full); math.Abs(got-1.5) > 1e-6 {
		t.Fatalf("fractional cover of triangle = %v, want 1.5 (AGM)", got)
	}
	if got := h.FractionalCoverNumber(vset.Of(3, 1)); math.Abs(got-1) > 1e-6 {
		t.Fatalf("singleton fractional cover = %v", got)
	}
	h2 := New(3)
	h2.AddEdge(0, 1)
	if got := h2.FractionalCoverNumber(vset.Of(3, 2)); !math.IsInf(got, 1) {
		t.Fatalf("uncoverable fractional = %v", got)
	}
}

func TestFractionalNeverExceedsIntegral(t *testing.T) {
	h := New(6)
	h.AddEdge(0, 1, 2)
	h.AddEdge(2, 3)
	h.AddEdge(3, 4, 5)
	h.AddEdge(5, 0)
	h.AddEdge(1, 4)
	for _, bag := range []vset.Set{
		vset.Of(6, 0, 1, 2, 3),
		vset.Of(6, 2, 3, 4),
		vset.Of(6, 0, 1, 2, 3, 4, 5),
	} {
		fr := h.FractionalCoverNumber(bag)
		in := h.CoverNumber(bag)
		if fr > in+1e-6 {
			t.Fatalf("fractional %v > integral %v for %v", fr, in, bag)
		}
	}
}

func TestHypertreeWidthCostOnTriangleQuery(t *testing.T) {
	// The triangle join's primal graph is a triangle: one bag {a,b,c}.
	// Hypertree width = 2, fractional hypertree width = 1.5.
	h := triangleQuery()
	g := h.Primal()

	s := core.NewSolver(g, h.HypertreeWidthCost())
	r, err := s.MinTriang(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 2 {
		t.Fatalf("hypertree width = %v, want 2", r.Cost)
	}

	s = core.NewSolver(g, h.FractionalHypertreeWidthCost())
	r, err = s.MinTriang(nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Cost-1.5) > 1e-6 {
		t.Fatalf("fractional hypertree width = %v, want 1.5", r.Cost)
	}
}

func TestHypertreeWidthAcyclicQuery(t *testing.T) {
	// Chain query R(a,b) ⋈ S(b,c) ⋈ T(c,d): acyclic, so (generalized)
	// hypertree width 1 — every bag covered by one atom.
	h := New(4)
	h.AddEdge(0, 1)
	h.AddEdge(1, 2)
	h.AddEdge(2, 3)
	g := h.Primal()
	s := core.NewSolver(g, h.HypertreeWidthCost())
	r, err := s.MinTriang(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 1 {
		t.Fatalf("acyclic hypertree width = %v, want 1", r.Cost)
	}
}

func TestRankedByFractionalWidth(t *testing.T) {
	// Cycle query of length 4: primal is C4; the two minimal
	// triangulations have equal fractional width; ranked enumeration must
	// emit both with non-decreasing cost.
	h := New(4)
	h.AddEdge(0, 1)
	h.AddEdge(1, 2)
	h.AddEdge(2, 3)
	h.AddEdge(3, 0)
	g := h.Primal()
	s := core.NewSolver(g, h.FractionalHypertreeWidthCost())
	e := s.Enumerate()
	var costs []float64
	for {
		r, ok := e.Next()
		if !ok {
			break
		}
		costs = append(costs, r.Cost)
	}
	if len(costs) != 2 {
		t.Fatalf("C4 query: %d triangulations, want 2", len(costs))
	}
	if costs[1] < costs[0] {
		t.Fatalf("ranked order violated: %v", costs)
	}
}

func TestAddEdgeSetAndString(t *testing.T) {
	h := New(5)
	h.AddEdgeSet(vset.Of(5, 0, 1, 2))
	if len(h.Edges()) != 1 || h.NumVertices() != 5 {
		t.Fatalf("AddEdgeSet broken")
	}
	if h.String() == "" {
		t.Fatalf("String empty")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("universe mismatch accepted")
		}
	}()
	h.AddEdgeSet(vset.Of(4, 0))
}
