package csp

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gen"
)

// bruteCount enumerates all assignments.
func bruteCount(p *Problem) int64 {
	n := len(p.Domains)
	assign := make([]int, n)
	var count int64
	var rec func(v int)
	rec = func(v int) {
		if v == n {
			count++
			return
		}
		for x := 0; x < p.Domains[v]; x++ {
			assign[v] = x
			ok := true
			for u := 0; u < v; u++ {
				if !p.compatible(u, v, assign[u], x) {
					ok = false
					break
				}
			}
			if ok {
				rec(v + 1)
			}
		}
	}
	rec(0)
	return count
}

func decompose(t *testing.T, p *Problem) *core.Result {
	t.Helper()
	g := p.ConstraintGraph()
	r, err := core.NewSolver(g, cost.TotalStateSpace{Domain: p.Domains}).MinTriang(nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestColoringCycle(t *testing.T) {
	// 3-coloring of C5: 30 proper colorings.
	p := NewProblem([]int{3, 3, 3, 3, 3})
	for i := 0; i < 5; i++ {
		j := (i + 1) % 5
		p.AllowFunc(i, j, func(a, b int) bool { return a != b })
	}
	r := decompose(t, p)
	count, err := p.Count(r.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if count != 30 {
		t.Fatalf("3-colorings of C5 = %d, want 30", count)
	}
	assign, ok, err := p.Solve(r.Tree)
	if err != nil || !ok {
		t.Fatalf("solve failed: %v %v", ok, err)
	}
	for i := 0; i < 5; i++ {
		if assign[i] == assign[(i+1)%5] {
			t.Fatalf("invalid coloring %v", assign)
		}
	}
}

func TestUnsatisfiable(t *testing.T) {
	// 2-coloring of a triangle: impossible.
	p := NewProblem([]int{2, 2, 2})
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		p.AllowFunc(e[0], e[1], func(a, b int) bool { return a != b })
	}
	r := decompose(t, p)
	count, err := p.Count(r.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("2-coloring K3 count = %d", count)
	}
	if _, ok, _ := p.Solve(r.Tree); ok {
		t.Fatalf("unsatisfiable CSP solved")
	}
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(6)
		domains := make([]int, n)
		for i := range domains {
			domains[i] = 2 + rng.Intn(2)
		}
		p := NewProblem(domains)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(2) == 0 {
					continue // unconstrained pair
				}
				dense := rng.Float64()
				p.AllowFunc(u, v, func(a, b int) bool { return rng.Float64() < 0.4+dense*0.5 })
			}
		}
		want := bruteCount(p)
		r := decompose(t, p)
		got, err := p.Count(r.Tree)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got != want {
			t.Fatalf("trial %d: DP count %d, brute force %d", trial, got, want)
		}
		assign, ok, err := p.Solve(r.Tree)
		if err != nil {
			t.Fatal(err)
		}
		if ok != (want > 0) {
			t.Fatalf("trial %d: solvability mismatch", trial)
		}
		if ok {
			for u := 0; u < n; u++ {
				for v := u + 1; v < n; v++ {
					if !p.compatible(u, v, assign[u], assign[v]) {
						t.Fatalf("trial %d: invalid solution", trial)
					}
				}
			}
		}
	}
}

func TestCountSameOverAllRankedDecompositions(t *testing.T) {
	// The count is decomposition-independent: verify over the whole
	// ranked stream of a C6 coloring problem.
	p := NewProblem([]int{3, 3, 3, 3, 3, 3})
	for i := 0; i < 6; i++ {
		p.AllowFunc(i, (i+1)%6, func(a, b int) bool { return a != b })
	}
	want := bruteCount(p)
	g := p.ConstraintGraph()
	s := core.NewSolver(g, cost.Width{})
	e := s.Enumerate()
	trees := 0
	for {
		r, ok := e.Next()
		if !ok {
			break
		}
		trees++
		got, err := p.Count(r.Tree)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("tree %d: count %d, want %d", trees, got, want)
		}
	}
	if trees != 14 {
		t.Fatalf("C6 trees = %d", trees)
	}
}

func TestFreeVariables(t *testing.T) {
	// Variables with no constraints multiply the count by their domain.
	p := NewProblem([]int{3, 2, 5})
	p.AllowFunc(0, 1, func(a, b int) bool { return a != b })
	r := decompose(t, p) // constraint graph covers only 0,1
	count, err := p.Count(r.Tree)
	if err != nil {
		t.Fatal(err)
	}
	// (3·2 - 2 equal... a≠b over 3×2: 3·2 - min(3,2)=... pairs with a==b:
	// b∈{0,1} → 2 disallowed → 4 allowed) × 5 free = 20.
	if count != 20 {
		t.Fatalf("count = %d, want 20", count)
	}
}

func TestBadDecomposition(t *testing.T) {
	p := NewProblem([]int{2, 2})
	p.AllowFunc(0, 1, func(a, b int) bool { return true })
	other := NewProblem([]int{2, 2, 2})
	other.AllowFunc(0, 2, func(a, b int) bool { return true })
	r := decompose(t, other)
	if _, err := p.Count(r.Tree); err == nil {
		t.Fatalf("foreign decomposition accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	domains := []int{3, 2, 4}
	vars := []int{2, 0, 1}
	out := make([]int, 3)
	for idx := 0; idx < 4*3*2; idx++ {
		decode(idx, vars, domains, out)
		if got := encodeAligned(vars, domains, out); got != idx {
			t.Fatalf("round trip %d → %v → %d", idx, out, got)
		}
	}
}

func TestPetersenColoringPipeline(t *testing.T) {
	// 3-color the Petersen graph (treewidth 4) through a ranked
	// decomposition — an end-to-end CSP workload on a PACE-style instance.
	g, err := gen.Named("petersen")
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	domains := make([]int, n)
	for i := range domains {
		domains[i] = 3
	}
	p := NewProblem(domains)
	for _, e := range g.Edges() {
		p.AllowFunc(e[0], e[1], func(a, b int) bool { return a != b })
	}
	r, err := core.NewSolver(p.ConstraintGraph(), cost.Width{}).MinTriang(nil)
	if err != nil {
		t.Fatal(err)
	}
	assign, ok, err := p.Solve(r.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("petersen is 3-colorable, solver said no")
	}
	for _, e := range g.Edges() {
		if assign[e[0]] == assign[e[1]] {
			t.Fatalf("invalid coloring")
		}
	}
}

func TestAllowPanicsOnUnary(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewProblem([]int{2}).Allow(0, 0, 0, 0)
}
