// Package csp solves and counts binary constraint-satisfaction problems
// by dynamic programming over a tree decomposition of the constraint
// graph — the CSP application of tree decompositions the paper cites
// (Kolaitis–Vardi). The DP runs over any valid decomposition, so the
// ranked enumeration can be used to pick the bag structure that minimizes
// the DP's actual table work.
package csp

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/td"
)

// Problem is a binary CSP: per-variable finite domains and binary
// constraints given as allowed value pairs.
type Problem struct {
	Domains     []int // domain size per variable; values are 0..d-1
	constraints map[[2]int]map[[2]int]bool
}

// NewProblem creates a CSP over len(domains) variables.
func NewProblem(domains []int) *Problem {
	return &Problem{
		Domains:     append([]int(nil), domains...),
		constraints: map[[2]int]map[[2]int]bool{},
	}
}

// Constrain marks the pair (x, y) as constrained without allowing any
// combination yet. Until Allow adds tuples the pair admits nothing —
// a trivially unsatisfiable constraint — whereas an untouched pair
// permits every combination. It is the explicit form of the switch the
// first Allow call performs, and the only way to express an empty
// allowed set (which wire decoders need: a constraint arriving with zero
// allowed tuples must not silently mean "unconstrained").
func (p *Problem) Constrain(x, y int) {
	if x == y {
		panic("csp: unary constraints are modeled by shrinking the domain")
	}
	if x > y {
		x, y = y, x
	}
	key := [2]int{x, y}
	if p.constraints[key] == nil {
		p.constraints[key] = map[[2]int]bool{}
	}
}

// Allow declares that (x=a, y=b) is an allowed combination. The first
// Allow or Constrain call for a pair (x, y) switches that pair from
// "unconstrained" to "only explicitly allowed combinations".
func (p *Problem) Allow(x, y int, a, b int) {
	if x > y {
		x, y = y, x
		a, b = b, a
	}
	p.Constrain(x, y)
	p.constraints[[2]int{x, y}][[2]int{a, b}] = true
}

// AllowFunc bulk-declares allowed combinations for the pair via a
// predicate.
func (p *Problem) AllowFunc(x, y int, ok func(a, b int) bool) {
	for a := 0; a < p.Domains[x]; a++ {
		for b := 0; b < p.Domains[y]; b++ {
			if ok(a, b) {
				p.Allow(x, y, a, b)
			}
		}
	}
}

// compatible reports whether the pairwise assignment is allowed.
func (p *Problem) compatible(x, y, a, b int) bool {
	if x > y {
		x, y = y, x
		a, b = b, a
	}
	rel, ok := p.constraints[[2]int{x, y}]
	if !ok {
		return true
	}
	return rel[[2]int{a, b}]
}

// ConstraintGraph returns the primal constraint graph: variables adjacent
// iff a constraint relates them.
func (p *Problem) ConstraintGraph() *graph.Graph {
	g := graph.New(len(p.Domains))
	for key := range p.constraints {
		if !g.HasEdge(key[0], key[1]) {
			g.AddEdge(key[0], key[1])
		}
	}
	return g
}

// ErrNotADecomposition reports that the supplied decomposition does not
// cover the constraint graph.
var ErrNotADecomposition = errors.New("csp: decomposition does not cover the constraint graph")

// Count returns the number of satisfying assignments using DP over the
// decomposition d, which must be a tree decomposition of the constraint
// graph. Complexity is O(nodes · Π domain^bagsize).
func (p *Problem) Count(d *td.Decomposition) (int64, error) {
	s, err := p.prepare(d)
	if err != nil {
		return 0, err
	}
	total := int64(1)
	for _, root := range s.roots {
		table := s.solve(root, -1)
		sum := int64(0)
		for _, c := range table.counts {
			sum += c
		}
		total *= sum
	}
	// Variables outside every bag are unconstrained free variables.
	for v, covered := range s.covered {
		if !covered {
			total *= int64(p.Domains[v])
		}
	}
	return total, nil
}

// Solve returns one satisfying assignment, or ok=false if none exists.
func (p *Problem) Solve(d *td.Decomposition) ([]int, bool, error) {
	s, err := p.prepare(d)
	if err != nil {
		return nil, false, err
	}
	assign := make([]int, len(p.Domains))
	for i := range assign {
		assign[i] = -1
	}
	for _, root := range s.roots {
		table := s.solve(root, -1)
		found := false
		for idx, c := range table.counts {
			if c > 0 {
				s.trace(root, -1, idx, assign)
				found = true
				break
			}
		}
		if !found {
			return nil, false, nil
		}
	}
	for v := range assign {
		if assign[v] == -1 {
			assign[v] = 0 // unconstrained
		}
	}
	return assign, true, nil
}

// state is the prepared DP context.
type state struct {
	p       *Problem
	d       *td.Decomposition
	bags    [][]int // sorted vertex lists per node
	roots   []int
	parent  []int
	order   []int
	covered []bool
	memo    map[int]*bagTable
}

// bagTable maps flat indices of bag assignments to subtree counts.
type bagTable struct {
	vars   []int
	counts []int64
}

func (p *Problem) prepare(d *td.Decomposition) (*state, error) {
	for _, b := range d.Bags {
		if b.Universe() != len(p.Domains) {
			return nil, fmt.Errorf("%w: decomposition universe %d vs %d variables",
				ErrNotADecomposition, b.Universe(), len(p.Domains))
		}
	}
	g := p.ConstraintGraph()
	if err := d.Validate(g.InducedSubgraph(d.CoveredVertices(g.Universe()))); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotADecomposition, err)
	}
	// Every constraint edge must be inside some bag.
	for key := range p.constraints {
		ok := false
		for _, b := range d.Bags {
			if b.Contains(key[0]) && b.Contains(key[1]) {
				ok = true
				break
			}
		}
		if !ok {
			return nil, ErrNotADecomposition
		}
	}
	n := d.NumNodes()
	s := &state{
		p:       p,
		d:       d,
		bags:    make([][]int, n),
		parent:  make([]int, n),
		covered: make([]bool, len(p.Domains)),
		memo:    map[int]*bagTable{},
	}
	for i, b := range d.Bags {
		s.bags[i] = b.Slice()
		for _, v := range s.bags[i] {
			s.covered[v] = true
		}
		s.parent[i] = -2
	}
	for i := 0; i < n; i++ {
		if s.parent[i] != -2 {
			continue
		}
		s.roots = append(s.roots, i)
		s.parent[i] = -1
		queue := []int{i}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, y := range d.Adj[x] {
				if s.parent[y] == -2 {
					s.parent[y] = x
					queue = append(queue, y)
				}
			}
		}
	}
	return s, nil
}

// solve computes the DP table of node x (with given parent) bottom-up.
func (s *state) solve(x, parent int) *bagTable {
	if t, ok := s.memo[x]; ok {
		return t
	}
	vars := s.bags[x]
	size := 1
	for _, v := range vars {
		size *= s.p.Domains[v]
	}
	table := &bagTable{vars: vars, counts: make([]int64, size)}
	children := make([]*bagTable, 0, len(s.d.Adj[x]))
	childNodes := make([]int, 0, len(s.d.Adj[x]))
	for _, y := range s.d.Adj[x] {
		if y != parent {
			children = append(children, s.solve(y, x))
			childNodes = append(childNodes, y)
		}
	}
	assign := make([]int, len(vars))
	for idx := 0; idx < size; idx++ {
		decode(idx, vars, s.p.Domains, assign)
		if !s.consistent(vars, assign) {
			continue
		}
		count := int64(1)
		for ci, child := range children {
			count *= s.childSum(childNodes[ci], child, vars, assign)
			if count == 0 {
				break
			}
		}
		table.counts[idx] = count
	}
	s.memo[x] = table
	return table
}

// childSum adds up the child's counts over assignments agreeing with the
// parent's assignment on the shared variables — but dividing out nothing:
// shared variables are fixed, so only matching entries contribute.
func (s *state) childSum(childNode int, child *bagTable, vars []int, assign []int) int64 {
	pos := map[int]int{}
	for i, v := range vars {
		pos[v] = i
	}
	sum := int64(0)
	childAssign := make([]int, len(child.vars))
	for idx, c := range child.counts {
		if c == 0 {
			continue
		}
		decode(idx, child.vars, s.p.Domains, childAssign)
		ok := true
		for i, v := range child.vars {
			if j, shared := pos[v]; shared && childAssign[i] != assign[j] {
				ok = false
				break
			}
		}
		if ok {
			sum += c
		}
	}
	return sum
}

// consistent checks all constraints internal to the bag assignment.
func (s *state) consistent(vars []int, assign []int) bool {
	for i := 0; i < len(vars); i++ {
		for j := i + 1; j < len(vars); j++ {
			if !s.p.compatible(vars[i], vars[j], assign[i], assign[j]) {
				return false
			}
		}
	}
	return true
}

// trace reconstructs one satisfying assignment from the solved tables.
func (s *state) trace(x, parent, idx int, out []int) {
	vars := s.bags[x]
	assign := make([]int, len(vars))
	decode(idx, vars, s.p.Domains, assign)
	for i, v := range vars {
		out[v] = assign[i]
	}
	for _, y := range s.d.Adj[x] {
		if y == parent {
			continue
		}
		child := s.memo[y]
		childAssign := make([]int, len(child.vars))
		for cidx, c := range child.counts {
			if c == 0 {
				continue
			}
			decode(cidx, child.vars, s.p.Domains, childAssign)
			// The child entry must agree with the parent bag on shared
			// variables; by the junction property those are the only
			// already-assigned variables the child can see.
			ok := true
			for i, v := range child.vars {
				if contains(vars, v) && childAssign[i] != out[v] {
					ok = false
					break
				}
			}
			if ok {
				s.trace(y, x, cidx, out)
				break
			}
		}
	}
}

func contains(vs []int, v int) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}

// decode expands a flat index into an assignment aligned with vars.
func decode(idx int, vars []int, domains []int, out []int) {
	for i := len(vars) - 1; i >= 0; i-- {
		d := domains[vars[i]]
		out[i] = idx % d
		idx /= d
	}
}

// encodeAligned is the inverse of decode (used by tests).
func encodeAligned(vars []int, domains []int, assign []int) int {
	idx := 0
	for i, v := range vars {
		idx = idx*domains[v] + assign[i]
	}
	return idx
}
