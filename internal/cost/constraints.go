package cost

import (
	"repro/internal/graph"
	"repro/internal/vset"
)

// Constraints is a pair [I, X] of inclusion and exclusion constraints over
// minimal triangulations (Section 6 of the paper). Each member is a
// minimal separator of the input graph. A triangulation H satisfies the
// pair iff every S ∈ I with S ⊆ V(H) is a clique of H and every S ∈ X with
// S ⊆ V(H) is not.
//
// The Lawler–Murty enumeration compiles these into the cost function
// (κ[I,X], Lemma 6.2); the dynamic program consults them through
// Satisfied.
type Constraints struct {
	Include []vset.Set
	Exclude []vset.Set
}

// IsEmpty reports whether no constraints are present.
func (c *Constraints) IsEmpty() bool {
	return c == nil || (len(c.Include) == 0 && len(c.Exclude) == 0)
}

// Clone returns a copy sharing the underlying separator sets (which are
// treated as immutable).
func (c *Constraints) Clone() *Constraints {
	if c == nil {
		return &Constraints{}
	}
	return &Constraints{
		Include: append([]vset.Set(nil), c.Include...),
		Exclude: append([]vset.Set(nil), c.Exclude...),
	}
}

// WithInclude returns c extended with an inclusion constraint.
func (c *Constraints) WithInclude(s vset.Set) *Constraints {
	out := c.Clone()
	out.Include = append(out.Include, s)
	return out
}

// WithExclude returns c extended with an exclusion constraint.
func (c *Constraints) WithExclude(s vset.Set) *Constraints {
	out := c.Clone()
	out.Exclude = append(out.Exclude, s)
	return out
}

// Satisfied reports whether a triangulation h of g satisfies [I, X]:
// inclusion separators must be cliques of h, exclusion separators must not.
func (c *Constraints) Satisfied(h *graph.Graph) bool {
	if c.IsEmpty() {
		return true
	}
	for _, s := range c.Include {
		if s.SubsetOf(h.Vertices()) && !h.IsClique(s) {
			return false
		}
	}
	for _, s := range c.Exclude {
		if s.SubsetOf(h.Vertices()) && h.IsClique(s) {
			return false
		}
	}
	return true
}

// SatisfiedByBags reports whether the triangulation induced by saturating
// the given bags over g satisfies [I, X]. A pair of a separator is present
// in the saturation iff it is an edge of g or co-occurs in a bag.
func (c *Constraints) SatisfiedByBags(g *graph.Graph, bags []vset.Set) bool {
	if c.IsEmpty() {
		return true
	}
	covered := func(u, v int) bool {
		if g.HasEdge(u, v) {
			return true
		}
		for _, b := range bags {
			if b.Contains(u) && b.Contains(v) {
				return true
			}
		}
		return false
	}
	clique := func(s vset.Set) bool {
		vs := s.Slice()
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				if !covered(vs[i], vs[j]) {
					return false
				}
			}
		}
		return true
	}
	for _, s := range c.Include {
		if !clique(s) {
			return false
		}
	}
	for _, s := range c.Exclude {
		if clique(s) {
			return false
		}
	}
	return true
}
