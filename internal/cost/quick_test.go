package cost

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/vset"
)

func TestQuickBagEquivalenceInvariance(t *testing.T) {
	// Permuting or duplicating bags never changes a bag cost
	// (Definition 3.2(1): invariance under bag equivalence).
	costs := []Cost{Width{}, FillIn{}, LexWidthFill{}, TotalStateSpace{}}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		g := gen.GNP(rng, n, 0.4)
		var bags []vset.Set
		for i := 0; i < 1+rng.Intn(5); i++ {
			b := vset.New(n)
			for v := 0; v < n; v++ {
				if rng.Intn(3) == 0 {
					b.AddInPlace(v)
				}
			}
			bags = append(bags, b)
		}
		shuffled := append([]vset.Set(nil), bags...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		duplicated := append(append([]vset.Set(nil), bags...), bags...)
		for _, c := range costs {
			base := c.Eval(g, bags)
			if c.Eval(g, shuffled) != base {
				return false
			}
			if c.Eval(g, duplicated) != base {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuickWidthMonotoneUnderBagGrowth(t *testing.T) {
	// Adding a vertex to a bag can only keep or increase width and
	// fill — the monotonicity split-monotone costs build on.
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		g := gen.GNP(rng, n, 0.4)
		b := vset.New(n)
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				b.AddInPlace(v)
			}
		}
		grown := b.Add(rng.Intn(n))
		bags := []vset.Set{b}
		grownBags := []vset.Set{grown}
		if (Width{}).Eval(g, grownBags) < (Width{}).Eval(g, bags) {
			return false
		}
		return (FillIn{}).Eval(g, grownBags) >= (FillIn{}).Eval(g, bags)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuickFillBagSumDecomposition(t *testing.T) {
	// BagSum with an empty separator equals the one-bag Eval for every
	// combinable cost — the anchor case of the DP's accounting.
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		g := gen.GNP(rng, n, 0.45)
		b := vset.New(n)
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				b.AddInPlace(v)
			}
		}
		if b.IsEmpty() {
			b.AddInPlace(0)
		}
		empty := vset.New(n)
		for _, c := range []Combinable{Width{}, FillIn{}, LexWidthFill{}, TotalStateSpace{}} {
			if c.Value(g, c.BagMax(g, b), c.BagSum(g, b, empty)) != c.Eval(g, []vset.Set{b}) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}
