// Package cost defines the split-monotone bag costs of Section 3 of the
// paper and the inclusion/exclusion constraints of Section 6.1.
//
// A bag cost depends only on the set of bags of a tree decomposition
// (invariance under bag equivalence), so a Cost evaluates on a graph and a
// bag collection. Costs that additionally decompose as a max-term plus an
// additive term per bag implement Combinable, which lets the MinTriang
// dynamic program combine sub-solutions in O(|Ω|²) instead of re-evaluating
// whole decompositions.
package cost

import (
	"math"

	"repro/internal/graph"
	"repro/internal/vset"
)

// Cost is a split-monotone bag cost κ(G, T). Implementations must be
// invariant under bag equivalence: only the set of bags matters.
// Eval may return +Inf to mark a decomposition inadmissible.
type Cost interface {
	// Name identifies the cost in logs and experiment tables.
	Name() string
	// Eval returns κ(g, bags) for the bags of a tree decomposition of g.
	Eval(g *graph.Graph, bags []vset.Set) float64
}

// Combinable is the dynamic-programming fast path: the cost must equal
// Value(g, max over bags of BagMax, Σ over bags of BagSum), where BagSum
// of a bag placed at the root of a block (S, C) is charged relative to the
// block's realization (pairs inside the separator sep belong to the parent
// and are excluded). All built-in costs implement it.
type Combinable interface {
	Cost
	// BagMax returns the max-combined term of bag omega (e.g. |Ω|-1 for
	// width).
	BagMax(g *graph.Graph, omega vset.Set) float64
	// BagSum returns the additive term of bag omega at the root of a block
	// with separator sep: for fill-like costs, the pairs inside omega that
	// are non-adjacent in g and not both inside sep. Pass the empty set at
	// the top level.
	BagSum(g *graph.Graph, omega, sep vset.Set) float64
	// Value folds the two accumulated terms into the final cost.
	Value(g *graph.Graph, max, sum float64) float64
}

// MergeKind says how a cost combines across the clique-separator atoms of
// a graph, where a minimal triangulation is the union of independent
// minimal triangulations of the atoms (Leimer).
type MergeKind int

const (
	// NoMerge marks costs with no exact atom-wise combination rule; the
	// solver falls back to the monolithic whole-graph DP for them.
	NoMerge MergeKind = iota
	// MergeMax: the cost of the union is the maximum of the atom costs
	// (pure max-type costs — width, weighted width, hypertree widths).
	MergeMax
	// MergeSum: the cost of the union is the sum of the atom costs
	// (pure sum-type costs — fill-in, weighted fill, total state space;
	// exact because atoms overlap only in cliques of G, so no fill edge
	// and no bag is shared between atoms).
	MergeSum
)

// Mergeable is implemented by costs that declare an atom-wise combination
// rule. Only such costs are eligible for the decomposed solver: the
// ranked product-stream merge needs the combined cost to be monotone in
// each atom's own cost stream, which holds for pure max- and pure
// sum-type costs but not for mixed ones (LexWidthFill orders by
// multiplier·max + sum, where advancing one atom past a width tie can
// lower the combined fill while another atom dominates the width — see
// DESIGN.md).
type Mergeable interface {
	Cost
	MergeKind() MergeKind
}

// missingPairs counts pairs within omega that are non-adjacent in g and
// not both inside sep.
func missingPairs(g *graph.Graph, omega, sep vset.Set) int {
	vs := omega.Slice()
	count := 0
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if g.HasEdge(vs[i], vs[j]) {
				continue
			}
			if sep.Contains(vs[i]) && sep.Contains(vs[j]) {
				continue
			}
			count++
		}
	}
	return count
}

// distinctMissingPairs counts the pairs that co-occur in some bag and are
// missing from g, each counted once.
func distinctMissingPairs(g *graph.Graph, bags []vset.Set) int {
	seen := map[[2]int]bool{}
	fill := 0
	for _, b := range bags {
		vs := b.Slice()
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				p := [2]int{vs[i], vs[j]}
				if seen[p] {
					continue
				}
				seen[p] = true
				if !g.HasEdge(vs[i], vs[j]) {
					fill++
				}
			}
		}
	}
	return fill
}

// Width is the classic width cost: the maximum bag cardinality minus one.
type Width struct{}

// Name implements Cost.
func (Width) Name() string { return "width" }

// Eval implements Cost.
func (Width) Eval(_ *graph.Graph, bags []vset.Set) float64 {
	w := -1.0
	for _, b := range bags {
		if v := float64(b.Len() - 1); v > w {
			w = v
		}
	}
	return w
}

// BagMax implements Combinable.
func (Width) BagMax(_ *graph.Graph, omega vset.Set) float64 {
	return float64(omega.Len() - 1)
}

// BagSum implements Combinable.
func (Width) BagSum(_ *graph.Graph, _, _ vset.Set) float64 { return 0 }

// Value implements Combinable.
func (Width) Value(_ *graph.Graph, max, _ float64) float64 { return max }

// MergeKind implements Mergeable: width folds as a maximum over atoms.
func (Width) MergeKind() MergeKind { return MergeMax }

// FillIn is the classic fill-in cost: the number of edges added by
// saturating every bag.
type FillIn struct{}

// Name implements Cost.
func (FillIn) Name() string { return "fill" }

// Eval implements Cost.
func (FillIn) Eval(g *graph.Graph, bags []vset.Set) float64 {
	return float64(distinctMissingPairs(g, bags))
}

// BagMax implements Combinable.
func (FillIn) BagMax(_ *graph.Graph, _ vset.Set) float64 { return 0 }

// BagSum implements Combinable. Pairs inside the block separator are the
// parent's responsibility, which makes the per-block sums add up to the
// global fill without double counting (see DESIGN.md).
func (FillIn) BagSum(g *graph.Graph, omega, sep vset.Set) float64 {
	return float64(missingPairs(g, omega, sep))
}

// Value implements Combinable.
func (FillIn) Value(_ *graph.Graph, _, sum float64) float64 { return sum }

// MergeKind implements Mergeable: fill edges of distinct atoms are
// disjoint (a shared pair would lie inside a clique separator, hence be
// an edge of G), so fill folds as a sum.
func (FillIn) MergeKind() MergeKind { return MergeSum }

// WeightedWidth is Furuse–Yamazaki's width_c: the maximum over bags of a
// user-supplied bag score (e.g. the log of the joint domain size in
// probabilistic inference, or a fractional edge-cover weight for
// fractional hypertree width).
type WeightedWidth struct {
	// BagWeight scores one bag. It must be monotone under bag inclusion
	// for the cost to be split monotone.
	BagWeight func(g *graph.Graph, bag vset.Set) float64
	// CostName labels the cost; defaults to "weighted-width".
	CostName string
}

// Name implements Cost.
func (c WeightedWidth) Name() string {
	if c.CostName != "" {
		return c.CostName
	}
	return "weighted-width"
}

// Eval implements Cost.
func (c WeightedWidth) Eval(g *graph.Graph, bags []vset.Set) float64 {
	w := math.Inf(-1)
	for _, b := range bags {
		if v := c.BagWeight(g, b); v > w {
			w = v
		}
	}
	return w
}

// BagMax implements Combinable.
func (c WeightedWidth) BagMax(g *graph.Graph, omega vset.Set) float64 {
	return c.BagWeight(g, omega)
}

// BagSum implements Combinable.
func (c WeightedWidth) BagSum(_ *graph.Graph, _, _ vset.Set) float64 { return 0 }

// Value implements Combinable.
func (c WeightedWidth) Value(_ *graph.Graph, max, _ float64) float64 { return max }

// MergeKind implements Mergeable: a pure max-type cost.
func (c WeightedWidth) MergeKind() MergeKind { return MergeMax }

// WeightedFill is Furuse–Yamazaki's fill_c: the sum over added edges of a
// per-edge weight.
type WeightedFill struct {
	// EdgeWeight prices the fill edge {u, v}.
	EdgeWeight func(u, v int) float64
	// CostName labels the cost; defaults to "weighted-fill".
	CostName string
}

// Name implements Cost.
func (c WeightedFill) Name() string {
	if c.CostName != "" {
		return c.CostName
	}
	return "weighted-fill"
}

// Eval implements Cost.
func (c WeightedFill) Eval(g *graph.Graph, bags []vset.Set) float64 {
	seen := map[[2]int]bool{}
	total := 0.0
	for _, b := range bags {
		vs := b.Slice()
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				p := [2]int{vs[i], vs[j]}
				if seen[p] || g.HasEdge(vs[i], vs[j]) {
					seen[p] = true
					continue
				}
				seen[p] = true
				total += c.EdgeWeight(vs[i], vs[j])
			}
		}
	}
	return total
}

// BagMax implements Combinable.
func (c WeightedFill) BagMax(_ *graph.Graph, _ vset.Set) float64 { return 0 }

// BagSum implements Combinable.
func (c WeightedFill) BagSum(g *graph.Graph, omega, sep vset.Set) float64 {
	vs := omega.Slice()
	total := 0.0
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if g.HasEdge(vs[i], vs[j]) {
				continue
			}
			if sep.Contains(vs[i]) && sep.Contains(vs[j]) {
				continue
			}
			total += c.EdgeWeight(vs[i], vs[j])
		}
	}
	return total
}

// Value implements Combinable.
func (c WeightedFill) Value(_ *graph.Graph, _, sum float64) float64 { return sum }

// MergeKind implements Mergeable: a pure sum-type cost over disjoint
// fill sets.
func (c WeightedFill) MergeKind() MergeKind { return MergeSum }

// TotalStateSpace is the paper's "sum over the exponents of the bag
// cardinalities": Σ over bags of Π over bag members of the member's domain
// size — exactly the total clique-table size of a junction tree in
// probabilistic inference. Domain defaults to 2 for every vertex.
type TotalStateSpace struct {
	// Domain maps a vertex to its number of states; nil means 2 everywhere.
	Domain []int
}

// Name implements Cost.
func (TotalStateSpace) Name() string { return "state-space" }

func (c TotalStateSpace) tableSize(bag vset.Set) float64 {
	size := 1.0
	bag.ForEach(func(v int) bool {
		d := 2
		if c.Domain != nil {
			d = c.Domain[v]
		}
		size *= float64(d)
		return true
	})
	return size
}

// Eval implements Cost. Duplicate bags are counted once, keeping the cost
// invariant under bag equivalence.
func (c TotalStateSpace) Eval(_ *graph.Graph, bags []vset.Set) float64 {
	seen := map[string]bool{}
	total := 0.0
	for _, b := range bags {
		if seen[b.Key()] {
			continue
		}
		seen[b.Key()] = true
		total += c.tableSize(b)
	}
	return total
}

// BagMax implements Combinable.
func (c TotalStateSpace) BagMax(_ *graph.Graph, _ vset.Set) float64 { return 0 }

// BagSum implements Combinable.
func (c TotalStateSpace) BagSum(_ *graph.Graph, omega, _ vset.Set) float64 {
	return c.tableSize(omega)
}

// Value implements Combinable.
func (c TotalStateSpace) Value(_ *graph.Graph, _, sum float64) float64 { return sum }

// MergeKind implements Mergeable: bags of distinct atoms are distinct
// (a shared bag would sit inside a clique separator and be subsumed by a
// larger clique), so table sizes fold as a sum.
func (c TotalStateSpace) MergeKind() MergeKind { return MergeSum }

// LexWidthFill orders decompositions by width first and fill second, via
// the linear combination multiplier·width + fill the paper suggests
// (Section 3, with multiplier |E(G)|). A zero Multiplier means
// n·(n-1)/2 + 1, which strictly dominates any possible fill and therefore
// realizes the true lexicographic order.
type LexWidthFill struct {
	Multiplier float64
}

// Name implements Cost.
func (LexWidthFill) Name() string { return "lex-width-fill" }

func (c LexWidthFill) multiplier(g *graph.Graph) float64 {
	if c.Multiplier > 0 {
		return c.Multiplier
	}
	n := float64(g.Universe())
	return n*(n-1)/2 + 1
}

// Eval implements Cost.
func (c LexWidthFill) Eval(g *graph.Graph, bags []vset.Set) float64 {
	return c.multiplier(g)*Width{}.Eval(g, bags) + FillIn{}.Eval(g, bags)
}

// BagMax implements Combinable.
func (c LexWidthFill) BagMax(g *graph.Graph, omega vset.Set) float64 {
	return float64(omega.Len() - 1)
}

// BagSum implements Combinable.
func (c LexWidthFill) BagSum(g *graph.Graph, omega, sep vset.Set) float64 {
	return float64(missingPairs(g, omega, sep))
}

// Value implements Combinable.
func (c LexWidthFill) Value(g *graph.Graph, max, sum float64) float64 {
	return c.multiplier(g)*max + sum
}

// PaperLex is the exact combination the paper prints: |E(G)|·width + fill.
func PaperLex(g *graph.Graph) LexWidthFill {
	return LexWidthFill{Multiplier: float64(g.NumEdges())}
}
