package cost

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/vset"
)

// paperBagsH2 are the maximal cliques of triangulation H2 of the paper
// example: {u,v,w1}, {u,v,w2}, {u,v,w3}, {v,v'}.
func paperBagsH2() []vset.Set {
	return []vset.Set{
		vset.Of(6, 0, 1, 3),
		vset.Of(6, 0, 1, 4),
		vset.Of(6, 0, 1, 5),
		vset.Of(6, 1, 2),
	}
}

func TestWidth(t *testing.T) {
	g := gen.PaperExample()
	if got := (Width{}).Eval(g, paperBagsH2()); got != 2 {
		t.Fatalf("width = %v, want 2", got)
	}
	if got := (Width{}).Eval(g, nil); got != -1 {
		t.Fatalf("empty width = %v, want -1", got)
	}
	if (Width{}).Name() != "width" {
		t.Fatalf("name")
	}
}

func TestFillIn(t *testing.T) {
	g := gen.PaperExample()
	// H2 adds exactly the edge {u,v}, shared by three bags — counted once.
	if got := (FillIn{}).Eval(g, paperBagsH2()); got != 1 {
		t.Fatalf("fill = %v, want 1", got)
	}
	// H1's bags: {u,w1,w2,w3}, {v,w1,w2,w3}, {v,v'} — adds 3 w-edges.
	h1 := []vset.Set{vset.Of(6, 0, 3, 4, 5), vset.Of(6, 1, 3, 4, 5), vset.Of(6, 1, 2)}
	if got := (FillIn{}).Eval(g, h1); got != 3 {
		t.Fatalf("H1 fill = %v, want 3", got)
	}
}

func TestFillBagSumExcludesSeparator(t *testing.T) {
	g := gen.PaperExample()
	omega := vset.Of(6, 0, 1, 3)
	sep := vset.Of(6, 0, 1)
	// Pair {u,v} is inside the separator: charged to the parent.
	if got := (FillIn{}).BagSum(g, omega, sep); got != 0 {
		t.Fatalf("BagSum with sep = %v, want 0", got)
	}
	if got := (FillIn{}).BagSum(g, omega, vset.New(6)); got != 1 {
		t.Fatalf("BagSum without sep = %v, want 1", got)
	}
}

func TestWeightedWidth(t *testing.T) {
	c := WeightedWidth{BagWeight: func(_ *graph.Graph, b vset.Set) float64 {
		return float64(2 * b.Len())
	}}
	g := gen.PaperExample()
	if got := c.Eval(g, paperBagsH2()); got != 6 {
		t.Fatalf("weighted width = %v, want 6", got)
	}
	if c.Name() != "weighted-width" {
		t.Fatalf("default name")
	}
	c.CostName = "domains"
	if c.Name() != "domains" {
		t.Fatalf("custom name")
	}
}

func TestWeightedFill(t *testing.T) {
	c := WeightedFill{EdgeWeight: func(u, v int) float64 { return float64(u + v) }}
	g := gen.PaperExample()
	// Only fill pair is {u=0, v=1}: weight 1.
	if got := c.Eval(g, paperBagsH2()); got != 1 {
		t.Fatalf("weighted fill = %v, want 1", got)
	}
}

func TestTotalStateSpace(t *testing.T) {
	g := gen.PaperExample()
	// Default binary domains: 8+8+8+4 = 28.
	if got := (TotalStateSpace{}).Eval(g, paperBagsH2()); got != 28 {
		t.Fatalf("state space = %v, want 28", got)
	}
	c := TotalStateSpace{Domain: []int{3, 1, 1, 2, 2, 2}}
	// Bags: 3·1·2 ×3 + 1·1 = 6+6+6+1 = 19.
	if got := c.Eval(g, paperBagsH2()); got != 19 {
		t.Fatalf("state space with domains = %v, want 19", got)
	}
	// Duplicate bags counted once (bag-equivalence invariance).
	dup := append(paperBagsH2(), paperBagsH2()...)
	if got := (TotalStateSpace{}).Eval(g, dup); got != 28 {
		t.Fatalf("duplicate bags double-counted: %v", got)
	}
}

func TestLexWidthFill(t *testing.T) {
	g := gen.PaperExample()
	c := LexWidthFill{}
	// Default multiplier n(n-1)/2+1 = 16.
	if got := c.Eval(g, paperBagsH2()); got != 16*2+1 {
		t.Fatalf("lex = %v, want 33", got)
	}
	p := PaperLex(g)
	if p.Multiplier != 7 {
		t.Fatalf("|E| multiplier = %v, want 7", p.Multiplier)
	}
	if got := p.Eval(g, paperBagsH2()); got != 7*2+1 {
		t.Fatalf("paper lex = %v, want 15", got)
	}
}

func TestCombinableConsistency(t *testing.T) {
	// Value(max of BagMax, Σ BagSum with per-block separator accounting)
	// must equal the direct Eval over full decompositions. We exercise it
	// through single-bag decompositions where they trivially coincide, and
	// a two-bag split.
	g := gen.PaperExample()
	for _, c := range []Combinable{Width{}, FillIn{}, LexWidthFill{}, TotalStateSpace{}} {
		bag := vset.Of(6, 0, 1, 3)
		direct := c.Eval(g, []vset.Set{bag})
		combined := c.Value(g, c.BagMax(g, bag), c.BagSum(g, bag, vset.New(6)))
		if direct != combined {
			t.Fatalf("%s: single-bag mismatch %v vs %v", c.Name(), direct, combined)
		}
	}
}

func TestConstraintsSatisfied(t *testing.T) {
	g := gen.PaperExample()
	h2 := g.Saturate(vset.Of(6, 0, 1))
	s1 := vset.Of(6, 3, 4, 5)
	s2 := vset.Of(6, 0, 1)

	var nilCons *Constraints
	if !nilCons.IsEmpty() || !nilCons.Satisfied(h2) {
		t.Fatalf("nil constraints should be trivially satisfied")
	}
	cons := &Constraints{Include: []vset.Set{s2}, Exclude: []vset.Set{s1}}
	if !cons.Satisfied(h2) {
		t.Fatalf("H2 should satisfy [I={S2}, X={S1}]")
	}
	bad := &Constraints{Include: []vset.Set{s1}}
	if bad.Satisfied(h2) {
		t.Fatalf("H2 does not saturate S1")
	}
	bad2 := &Constraints{Exclude: []vset.Set{s2}}
	if bad2.Satisfied(h2) {
		t.Fatalf("H2 saturates S2, exclusion must fail")
	}
}

func TestConstraintsWithHelpers(t *testing.T) {
	s1 := vset.Of(6, 3, 4, 5)
	s2 := vset.Of(6, 0, 1)
	var c *Constraints
	c2 := c.WithInclude(s1).WithExclude(s2)
	if len(c2.Include) != 1 || len(c2.Exclude) != 1 {
		t.Fatalf("builders broken: %+v", c2)
	}
	// Original untouched (nil), clone independence.
	c3 := c2.Clone()
	c3.Include = append(c3.Include, s2)
	if len(c2.Include) != 1 {
		t.Fatalf("clone shares backing arrays in a harmful way")
	}
}

func TestSatisfiedByBagsAgreesWithSaturation(t *testing.T) {
	rng := rand.New(rand.NewSource(444))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(5)
		g := gen.GNP(rng, n, 0.4)
		// Random bag family that covers all vertices.
		var bags []vset.Set
		for v := 0; v < n; v++ {
			b := vset.Of(n, v)
			for u := 0; u < n; u++ {
				if rng.Intn(3) == 0 {
					b.AddInPlace(u)
				}
			}
			bags = append(bags, b)
		}
		h := g.Clone()
		for _, b := range bags {
			h.SaturateInPlace(b)
		}
		var sep vset.Set = vset.New(n)
		for v := 0; v < n; v++ {
			if rng.Intn(3) == 0 {
				sep.AddInPlace(v)
			}
		}
		for _, cons := range []*Constraints{
			{Include: []vset.Set{sep}},
			{Exclude: []vset.Set{sep}},
		} {
			if cons.SatisfiedByBags(g, bags) != cons.Satisfied(h) {
				t.Fatalf("SatisfiedByBags disagrees with saturation (sep=%v)", sep)
			}
		}
	}
}

func TestInfinityPropagation(t *testing.T) {
	if !math.IsInf(math.Inf(1), 1) {
		t.Fatalf("sanity")
	}
	// WeightedWidth on empty bag list is -Inf (identity of max).
	c := WeightedWidth{BagWeight: func(_ *graph.Graph, b vset.Set) float64 { return 1 }}
	if got := c.Eval(gen.Path(2), nil); !math.IsInf(got, -1) {
		t.Fatalf("empty max = %v", got)
	}
}
