// Package vset provides compact vertex sets backed by bit sets.
//
// A Set is an immutable-by-convention value: operations that would mutate a
// set return a new one unless the method name ends in InPlace. Sets over the
// same universe size can be compared, hashed via Key, and iterated in
// ascending vertex order. The zero value is the empty set over an empty
// universe; use New(n) for a set over vertices 0..n-1.
package vset

import (
	"math/bits"
	"strconv"
	"strings"
)

const wordBits = 64

// Set is a set of vertices drawn from the universe {0, ..., n-1}.
// The universe size is fixed at construction and is carried by the word
// slice length; all binary operations require operands of equal universe.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set over the universe {0, ..., n-1}.
func New(n int) Set {
	if n < 0 {
		panic("vset: negative universe size")
	}
	return Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Of returns a set over {0,...,n-1} containing the given vertices.
func Of(n int, vertices ...int) Set {
	s := New(n)
	for _, v := range vertices {
		s.AddInPlace(v)
	}
	return s
}

// FromSlice returns a set over {0,...,n-1} containing the vertices in vs.
func FromSlice(n int, vs []int) Set {
	return Of(n, vs...)
}

// Full returns the set {0, ..., n-1}.
func Full(n int) Set {
	s := New(n)
	for v := 0; v < n; v++ {
		s.AddInPlace(v)
	}
	return s
}

// Universe returns the universe size n the set was created with.
func (s Set) Universe() int { return s.n }

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Set{words: w, n: s.n}
}

func (s Set) check(v int) {
	if v < 0 || v >= s.n {
		panic("vset: vertex " + strconv.Itoa(v) + " outside universe of size " + strconv.Itoa(s.n))
	}
}

// Contains reports whether v is in s.
func (s Set) Contains(v int) bool {
	s.check(v)
	return s.words[v/wordBits]&(1<<uint(v%wordBits)) != 0
}

// AddInPlace inserts v into s.
func (s *Set) AddInPlace(v int) {
	s.check(v)
	s.words[v/wordBits] |= 1 << uint(v%wordBits)
}

// RemoveInPlace deletes v from s.
func (s *Set) RemoveInPlace(v int) {
	s.check(v)
	s.words[v/wordBits] &^= 1 << uint(v%wordBits)
}

// Add returns s ∪ {v}.
func (s Set) Add(v int) Set {
	c := s.Clone()
	c.AddInPlace(v)
	return c
}

// Remove returns s \ {v}.
func (s Set) Remove(v int) Set {
	c := s.Clone()
	c.RemoveInPlace(v)
	return c
}

// Len returns |s|.
func (s Set) Len() int {
	total := 0
	for _, w := range s.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// IsEmpty reports whether s has no elements.
func (s Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

func (s Set) sameUniverse(t Set) {
	if s.n != t.n {
		panic("vset: universe mismatch: " + strconv.Itoa(s.n) + " vs " + strconv.Itoa(t.n))
	}
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	s.sameUniverse(t)
	c := s.Clone()
	c.UnionInPlace(t)
	return c
}

// UnionInPlace sets s to s ∪ t.
func (s *Set) UnionInPlace(t Set) {
	s.sameUniverse(t)
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	s.sameUniverse(t)
	c := s.Clone()
	c.IntersectInPlace(t)
	return c
}

// IntersectInPlace sets s to s ∩ t.
func (s *Set) IntersectInPlace(t Set) {
	s.sameUniverse(t)
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// Diff returns s \ t.
func (s Set) Diff(t Set) Set {
	s.sameUniverse(t)
	c := s.Clone()
	c.DiffInPlace(t)
	return c
}

// DiffInPlace sets s to s \ t.
func (s *Set) DiffInPlace(t Set) {
	s.sameUniverse(t)
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
}

// Equal reports whether s and t contain the same vertices.
func (s Set) Equal(t Set) bool {
	s.sameUniverse(t)
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether s ⊆ t.
func (s Set) SubsetOf(t Set) bool {
	s.sameUniverse(t)
	for i := range s.words {
		if s.words[i]&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// ProperSubsetOf reports whether s ⊊ t.
func (s Set) ProperSubsetOf(t Set) bool {
	return s.SubsetOf(t) && !s.Equal(t)
}

// Intersects reports whether s ∩ t is nonempty.
func (s Set) Intersects(t Set) bool {
	s.sameUniverse(t)
	for i := range s.words {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// IntersectionLen returns |s ∩ t| without allocating.
func (s Set) IntersectionLen(t Set) int {
	s.sameUniverse(t)
	total := 0
	for i := range s.words {
		total += bits.OnesCount64(s.words[i] & t.words[i])
	}
	return total
}

// First returns the smallest vertex in s, or -1 if s is empty.
func (s Set) First() int {
	for i, w := range s.words {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Next returns the smallest vertex in s strictly greater than v,
// or -1 if there is none. Next(-1) equals First().
func (s Set) Next(v int) int {
	v++
	if v >= s.n {
		return -1
	}
	i := v / wordBits
	w := s.words[i] >> uint(v%wordBits)
	if w != 0 {
		return v + bits.TrailingZeros64(w)
	}
	for i++; i < len(s.words); i++ {
		if s.words[i] != 0 {
			return i*wordBits + bits.TrailingZeros64(s.words[i])
		}
	}
	return -1
}

// ForEach calls fn for each vertex of s in ascending order.
// If fn returns false, iteration stops.
func (s Set) ForEach(fn func(v int) bool) {
	for i, w := range s.words {
		base := i * wordBits
		for w != 0 {
			v := base + bits.TrailingZeros64(w)
			if !fn(v) {
				return
			}
			w &= w - 1
		}
	}
}

// Slice returns the vertices of s in ascending order.
func (s Set) Slice() []int {
	out := make([]int, 0, s.Len())
	s.ForEach(func(v int) bool {
		out = append(out, v)
		return true
	})
	return out
}

// Relabel returns the set {perm[v] : v ∈ s} over the same universe. perm
// must map every member to a label within the universe (graph.Relabel
// validates bijectivity for whole-graph relabelings; here only the
// members' images are touched).
func (s Set) Relabel(perm []int) Set {
	out := New(s.n)
	s.ForEach(func(v int) bool {
		out.AddInPlace(perm[v])
		return true
	})
	return out
}

// Words exposes the little-endian bitset words backing s, least
// significant vertex first. The caller must not mutate the slice; it is
// the zero-copy input to hashing (graph.Fingerprint).
func (s Set) Words() []uint64 { return s.words }

// Key returns a canonical string key for s, usable as a map key.
// Two sets over the same universe have equal keys iff they are equal.
func (s Set) Key() string {
	b := make([]byte, 8*len(s.words))
	for i, w := range s.words {
		b[8*i+0] = byte(w)
		b[8*i+1] = byte(w >> 8)
		b[8*i+2] = byte(w >> 16)
		b[8*i+3] = byte(w >> 24)
		b[8*i+4] = byte(w >> 32)
		b[8*i+5] = byte(w >> 40)
		b[8*i+6] = byte(w >> 48)
		b[8*i+7] = byte(w >> 56)
	}
	return string(b)
}

// Compare orders sets first by cardinality, then lexicographically by
// their word representation. It returns -1, 0, or +1.
func (s Set) Compare(t Set) int {
	s.sameUniverse(t)
	sl, tl := s.Len(), t.Len()
	switch {
	case sl < tl:
		return -1
	case sl > tl:
		return 1
	}
	for i := len(s.words) - 1; i >= 0; i-- {
		switch {
		case s.words[i] < t.words[i]:
			return -1
		case s.words[i] > t.words[i]:
			return 1
		}
	}
	return 0
}

// String renders s as "{v0, v1, ...}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(v int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(strconv.Itoa(v))
		return true
	})
	b.WriteByte('}')
	return b.String()
}
