package vset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if !s.IsEmpty() || s.Len() != 0 {
		t.Fatalf("new set not empty: %v", s)
	}
	s.AddInPlace(0)
	s.AddInPlace(64)
	s.AddInPlace(129)
	if got := s.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	for _, v := range []int{0, 64, 129} {
		if !s.Contains(v) {
			t.Errorf("Contains(%d) = false, want true", v)
		}
	}
	if s.Contains(1) || s.Contains(128) {
		t.Errorf("unexpected membership")
	}
	s.RemoveInPlace(64)
	if s.Contains(64) {
		t.Errorf("Contains(64) after remove")
	}
	if got := s.Slice(); !reflect.DeepEqual(got, []int{0, 129}) {
		t.Errorf("Slice = %v, want [0 129]", got)
	}
}

func TestOfAndFull(t *testing.T) {
	s := Of(10, 1, 3, 5)
	if got := s.Slice(); !reflect.DeepEqual(got, []int{1, 3, 5}) {
		t.Fatalf("Of = %v", got)
	}
	f := Full(70)
	if f.Len() != 70 {
		t.Fatalf("Full(70).Len = %d", f.Len())
	}
	if f.First() != 0 || f.Next(68) != 69 || f.Next(69) != -1 {
		t.Fatalf("Full iteration broken")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := Of(100, 1, 2, 3, 70)
	b := Of(100, 2, 3, 4, 99)
	if got := a.Union(b).Slice(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 70, 99}) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b).Slice(); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Diff(b).Slice(); !reflect.DeepEqual(got, []int{1, 70}) {
		t.Errorf("Diff = %v", got)
	}
	if a.IntersectionLen(b) != 2 {
		t.Errorf("IntersectionLen = %d", a.IntersectionLen(b))
	}
	if !a.Intersects(b) {
		t.Errorf("Intersects = false")
	}
	if a.Intersects(Of(100, 50)) {
		t.Errorf("Intersects with disjoint = true")
	}
}

func TestSubsetAndEqual(t *testing.T) {
	a := Of(64, 1, 2)
	b := Of(64, 1, 2, 3)
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Errorf("SubsetOf wrong")
	}
	if !a.ProperSubsetOf(b) || a.ProperSubsetOf(a) {
		t.Errorf("ProperSubsetOf wrong")
	}
	if !a.Equal(Of(64, 2, 1)) {
		t.Errorf("Equal wrong")
	}
}

func TestNextAndForEach(t *testing.T) {
	s := Of(200, 0, 63, 64, 127, 199)
	var got []int
	for v := s.First(); v != -1; v = s.Next(v) {
		got = append(got, v)
	}
	want := []int{0, 63, 64, 127, 199}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("iteration = %v, want %v", got, want)
	}
	var early []int
	s.ForEach(func(v int) bool {
		early = append(early, v)
		return v < 64
	})
	if !reflect.DeepEqual(early, []int{0, 63, 64}) {
		t.Fatalf("ForEach early stop = %v", early)
	}
	if New(0).First() != -1 {
		t.Fatalf("empty First != -1")
	}
}

func TestKeyUniqueness(t *testing.T) {
	seen := map[string][]int{}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		s := New(90)
		for v := 0; v < 90; v++ {
			if rng.Intn(2) == 0 {
				s.AddInPlace(v)
			}
		}
		key := s.Key()
		if prev, ok := seen[key]; ok && !reflect.DeepEqual(prev, s.Slice()) {
			t.Fatalf("key collision: %v vs %v", prev, s.Slice())
		}
		seen[key] = s.Slice()
	}
}

func TestCompare(t *testing.T) {
	a := Of(20, 1)
	b := Of(20, 1, 2)
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Fatalf("Compare by cardinality wrong")
	}
	c := Of(20, 3)
	d := Of(20, 4)
	if c.Compare(d) != -1 || d.Compare(c) != 1 {
		t.Fatalf("Compare tie-break wrong")
	}
}

func TestPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for out-of-universe vertex")
		}
	}()
	s := New(5)
	s.AddInPlace(5)
}

func TestUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for universe mismatch")
		}
	}()
	New(5).Union(New(6))
}

// randomPair builds two random sets over the same universe from quick's seeds.
func randomPair(rng *rand.Rand) (Set, Set) {
	n := 1 + rng.Intn(150)
	a, b := New(n), New(n)
	for v := 0; v < n; v++ {
		if rng.Intn(2) == 0 {
			a.AddInPlace(v)
		}
		if rng.Intn(2) == 0 {
			b.AddInPlace(v)
		}
	}
	return a, b
}

func TestQuickAlgebraLaws(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomPair(rng)
		// De Morgan-ish identities on finite sets.
		u := a.Union(b)
		i := a.Intersect(b)
		if u.Len()+i.Len() != a.Len()+b.Len() {
			return false
		}
		if !i.SubsetOf(a) || !i.SubsetOf(b) || !a.SubsetOf(u) || !b.SubsetOf(u) {
			return false
		}
		if !a.Diff(b).Union(i).Equal(a) {
			return false
		}
		if a.IntersectionLen(b) != i.Len() {
			return false
		}
		if (a.Compare(b) == 0) != a.Equal(b) {
			return false
		}
		return a.Union(b).Equal(b.Union(a))
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuickKeyRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomPair(rng)
		return (a.Key() == b.Key()) == a.Equal(b)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}
