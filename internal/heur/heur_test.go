package heur

import (
	"math/rand"
	"testing"

	"repro/internal/chordal"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/triang"
)

func TestOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		g := gen.GNP(rng, 1+rng.Intn(20), 0.3)
		for _, s := range []Strategy{MinDegree, MinFill} {
			order := Order(g, s)
			if len(order) != g.NumVertices() {
				t.Fatalf("%v: order length %d", s, len(order))
			}
			seen := map[int]bool{}
			for _, v := range order {
				if seen[v] {
					t.Fatalf("%v: duplicate %d", s, v)
				}
				seen[v] = true
			}
		}
	}
}

func TestTriangulateIsChordal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		g := gen.GNP(rng, 2+rng.Intn(15), 0.35)
		for _, s := range []Strategy{MinDegree, MinFill} {
			h := Triangulate(g, s)
			if !chordal.IsTriangulationOf(h, g) {
				t.Fatalf("%v produced a non-triangulation", s)
			}
		}
	}
}

func TestChordalIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.KTree(rng, 12, 2, 0)
	for _, s := range []Strategy{MinDegree, MinFill} {
		if Triangulate(g, s).EdgeSetKey() != g.EdgeSetKey() {
			t.Fatalf("%v added fill to a chordal graph", s)
		}
	}
}

func TestHeuristicWidthNeverBeatsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		g := gen.ConnectedGNP(rng, 4+rng.Intn(6), 0.4)
		exact, err := core.NewSolver(g, cost.Width{}).MinTriang(nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []Strategy{MinDegree, MinFill} {
			w := Width(g, Order(g, s))
			if float64(w) < exact.Cost {
				t.Fatalf("%v width %d beats exact optimum %v", s, w, exact.Cost)
			}
		}
	}
}

func TestMinimalizeHeuristicOrder(t *testing.T) {
	// LB-Triang under a heuristic order yields a *minimal* triangulation
	// that is a subgraph of the heuristic one — the standard two-step
	// pipeline (heuristic order, then minimalization).
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		g := gen.ConnectedGNP(rng, 5+rng.Intn(10), 0.3)
		order := Order(g, MinFill)
		greedy := Triangulate(g, MinFill)
		minimal := triang.LBTriang(g, order)
		if !chordal.IsTriangulationOf(minimal, g) {
			t.Fatalf("minimalization broke triangulation")
		}
		if minimal.NumEdges() > greedy.NumEdges() {
			t.Fatalf("minimalized has more edges (%d) than greedy (%d)",
				minimal.NumEdges(), greedy.NumEdges())
		}
	}
}

func TestWidthOnKnownGraphs(t *testing.T) {
	// Grid 3xN has treewidth 3; min-fill finds it on small grids.
	g := gen.Grid(3, 4)
	if w := Width(g, Order(g, MinFill)); w != 3 {
		t.Fatalf("min-fill width on 3x4 grid = %d, want 3", w)
	}
	// Cycle: both heuristics achieve width 2.
	c := gen.Cycle(8)
	for _, s := range []Strategy{MinDegree, MinFill} {
		if w := Width(c, Order(c, s)); w != 2 {
			t.Fatalf("%v width on C8 = %d, want 2", s, w)
		}
	}
	if MinDegree.String() == MinFill.String() {
		t.Fatalf("strategy names collide")
	}
}
