// Package heur implements the classic greedy triangulation heuristics the
// paper's introduction contrasts with ([2, 4]): min-degree and min-fill
// orderings with elimination-game fill. They produce (not necessarily
// minimal) triangulations fast and serve as quality baselines for the
// exact machinery — and as seeds an application can compare against the
// ranked stream.
package heur

import (
	"repro/internal/graph"
	"repro/internal/vset"
)

// Strategy selects the greedy vertex-elimination rule.
type Strategy int

// Available strategies.
const (
	// MinDegree eliminates a vertex of minimum current degree.
	MinDegree Strategy = iota
	// MinFill eliminates a vertex whose elimination adds the fewest fill
	// edges to its current neighborhood.
	MinFill
)

func (s Strategy) String() string {
	if s == MinDegree {
		return "min-degree"
	}
	return "min-fill"
}

// Order computes the greedy elimination order of g under the strategy.
// Ties break toward the smallest vertex number, so the result is
// deterministic.
func Order(g *graph.Graph, s Strategy) []int {
	h := g.Clone()
	remaining := g.Vertices().Clone()
	order := make([]int, 0, remaining.Len())
	for !remaining.IsEmpty() {
		best, bestScore := -1, int(^uint(0)>>1)
		remaining.ForEach(func(v int) bool {
			var score int
			switch s {
			case MinDegree:
				score = h.Neighbors(v).IntersectionLen(remaining)
			case MinFill:
				score = fillOf(h, v, remaining)
			}
			if score < bestScore {
				best, bestScore = v, score
			}
			return true
		})
		order = append(order, best)
		nv := h.Neighbors(best).Intersect(remaining)
		h.SaturateInPlace(nv)
		remaining.RemoveInPlace(best)
	}
	return order
}

// fillOf counts the missing pairs in v's remaining neighborhood.
func fillOf(h *graph.Graph, v int, remaining vset.Set) int {
	nv := h.Neighbors(v).Intersect(remaining)
	return h.MissingPairsWithin(nv)
}

// Triangulate runs the elimination game under the greedy order and
// returns the resulting triangulation (chordal, contains g, but not
// necessarily minimal — use triang.LBTriang with this order to minimalize).
func Triangulate(g *graph.Graph, s Strategy) *graph.Graph {
	order := Order(g, s)
	h := g.Clone()
	remaining := g.Vertices().Clone()
	for _, v := range order {
		nv := h.Neighbors(v).Intersect(remaining)
		h.SaturateInPlace(nv)
		remaining.RemoveInPlace(v)
	}
	return h
}

// Width returns the width of the elimination order on g: the maximum
// remaining-neighborhood size encountered — the width of the induced tree
// decomposition.
func Width(g *graph.Graph, order []int) int {
	h := g.Clone()
	remaining := g.Vertices().Clone()
	w := 0
	for _, v := range order {
		nv := h.Neighbors(v).Intersect(remaining)
		if nv.Len() > w {
			w = nv.Len()
		}
		h.SaturateInPlace(nv)
		remaining.RemoveInPlace(v)
	}
	return w
}
