package rankedtriang

// Deep randomized cross-validation of the whole pipeline against the
// brute-force oracles. These sweeps are the strongest correctness evidence
// in the repository; they are skipped under -short.

import (
	"math/rand"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/chordal"
	"repro/internal/ckk"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/minsep"
	"repro/internal/pmc"
)

func TestStressSeparatorsAndPMCs(t *testing.T) {
	if testing.Short() {
		t.Skip("stress sweep skipped with -short")
	}
	rng := rand.New(rand.NewSource(987))
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.Intn(8) // up to 9 vertices
		g := gen.GNP(rng, n, 0.1+rng.Float64()*0.8)
		seps := minsep.All(g)
		wantSeps := bruteforce.AllMinimalSeparators(g)
		if len(seps) != len(wantSeps) {
			t.Fatalf("trial %d: %d seps vs oracle %d (edges=%v)",
				trial, len(seps), len(wantSeps), g.Edges())
		}
		if n <= 7 {
			pmcs := pmc.All(g)
			wantPMCs := bruteforce.AllPMCs(g)
			if len(pmcs) != len(wantPMCs) {
				t.Fatalf("trial %d: %d PMCs vs oracle %d (edges=%v)",
					trial, len(pmcs), len(wantPMCs), g.Edges())
			}
			for i := range pmcs {
				if !pmcs[i].Equal(wantPMCs[i]) {
					t.Fatalf("trial %d: PMC set mismatch", trial)
				}
			}
		}
	}
}

func TestStressRankedEnumeration(t *testing.T) {
	if testing.Short() {
		t.Skip("stress sweep skipped with -short")
	}
	rng := rand.New(rand.NewSource(654))
	costs := []cost.Cost{cost.Width{}, cost.FillIn{}, cost.LexWidthFill{}, cost.TotalStateSpace{}}
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(6) // up to 7 vertices: oracle stays fast
		g := gen.GNP(rng, n, 0.15+rng.Float64()*0.7)
		want := bruteforce.AllMinimalTriangulations(g)
		c := costs[trial%len(costs)]
		s := core.NewSolver(g, c)
		e := s.Enumerate()
		seen := map[string]bool{}
		prev := -1e18
		for {
			r, ok := e.Next()
			if !ok {
				break
			}
			key := r.H.EdgeSetKey()
			if seen[key] {
				t.Fatalf("trial %d (%s): duplicate", trial, c.Name())
			}
			seen[key] = true
			if r.Cost < prev {
				t.Fatalf("trial %d (%s): order violated", trial, c.Name())
			}
			prev = r.Cost
			if len(seen) > len(want) {
				t.Fatalf("trial %d (%s): more results than oracle", trial, c.Name())
			}
		}
		if len(seen) != len(want) {
			t.Fatalf("trial %d (%s): %d results vs oracle %d (edges=%v)",
				trial, c.Name(), len(seen), len(want), g.Edges())
		}
		for _, h := range want {
			if !seen[h.EdgeSetKey()] {
				t.Fatalf("trial %d (%s): missed a triangulation", trial, c.Name())
			}
		}
	}
}

func TestStressCKK(t *testing.T) {
	if testing.Short() {
		t.Skip("stress sweep skipped with -short")
	}
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(6)
		g := gen.GNP(rng, n, 0.15+rng.Float64()*0.7)
		want := bruteforce.AllMinimalTriangulations(g)
		got := ckk.New(g, nil).All()
		if len(got) != len(want) {
			t.Fatalf("trial %d: CKK %d vs oracle %d (edges=%v)",
				trial, len(got), len(want), g.Edges())
		}
	}
}

func TestStressWeightedCostsAgainstOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("stress sweep skipped with -short")
	}
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(6)
		g := gen.GNP(rng, n, 0.2+rng.Float64()*0.6)
		// Random monotone bag weight: sum of random positive vertex
		// weights (monotone under inclusion, so split monotonicity holds).
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = 0.5 + rng.Float64()*4
		}
		c := cost.WeightedWidth{
			CostName: "rand-weight",
			BagWeight: func(_ *Graph, bag VertexSet) float64 {
				total := 0.0
				bag.ForEach(func(v int) bool { total += weights[v]; return true })
				return total
			},
		}
		r, err := core.NewSolver(g, c).MinTriang(nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		best := 1e18
		for _, h := range bruteforce.AllMinimalTriangulations(g) {
			cliques, _ := chordal.MaximalCliques(h)
			if v := c.Eval(g, cliques); v < best {
				best = v
			}
		}
		if r.Cost != best {
			t.Fatalf("trial %d: weighted cost %v vs oracle %v", trial, r.Cost, best)
		}
	}
}

func TestStressDomainStateSpace(t *testing.T) {
	if testing.Short() {
		t.Skip("stress sweep skipped with -short")
	}
	rng := rand.New(rand.NewSource(222))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(6)
		g := gen.GNP(rng, n, 0.2+rng.Float64()*0.6)
		domains := make([]int, n)
		for i := range domains {
			domains[i] = 2 + rng.Intn(5)
		}
		c := cost.TotalStateSpace{Domain: domains}
		r, err := core.NewSolver(g, c).MinTriang(nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		best := 1e18
		for _, h := range bruteforce.AllMinimalTriangulations(g) {
			cliques, _ := chordal.MaximalCliques(h)
			if v := c.Eval(g, cliques); v < best {
				best = v
			}
		}
		if r.Cost != best {
			t.Fatalf("trial %d: state space %v vs oracle %v", trial, r.Cost, best)
		}
	}
}
