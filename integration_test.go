package rankedtriang

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chordal"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TestEndToEndFileFlow exercises the full downstream-user path: write a
// graph to disk in PACE format, read it back through the facade, run the
// ranked enumeration, and validate every artifact.
func TestEndToEndFileFlow(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "instance.gr")

	orig := gen.Grid(3, 3)
	var buf bytes.Buffer
	if err := graph.WritePACE(&buf, orig); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := ReadPACE(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 9 || g.NumEdges() != 12 {
		t.Fatalf("read back %v", g)
	}

	solver := NewSolver(g, WidthThenFill())
	enum := solver.Enumerate()
	count := 0
	prev := -1.0
	for {
		r, ok := enum.Next()
		if !ok {
			break
		}
		count++
		if r.Cost < prev {
			t.Fatalf("order violated")
		}
		prev = r.Cost
		if !chordal.IsTriangulationOf(r.H, g) {
			t.Fatalf("result %d invalid", count)
		}
		if err := r.Tree.Validate(g); err != nil {
			t.Fatalf("result %d tree: %v", count, err)
		}
		if count > 10000 {
			t.Fatalf("runaway enumeration")
		}
	}
	if count == 0 {
		t.Fatalf("no results")
	}
	// The 3x3 grid has treewidth 3: first result must have width 3.
	first, _ := MinimumTriangulation(g, Width())
	if first.Tree.Width() != 3 {
		t.Fatalf("3x3 grid treewidth = %d, want 3", first.Tree.Width())
	}
}

func TestGraph6Facade(t *testing.T) {
	gs, err := ReadGraph6(strings.NewReader("Bw\nD??\n"))
	if err != nil || len(gs) != 2 {
		t.Fatalf("graph6 facade: %v %d", err, len(gs))
	}
}

func TestHeuristicFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		g := gen.ConnectedGNP(rng, 6+rng.Intn(8), 0.35)
		hw := HeuristicWidth(g)
		exact, err := MinimumTriangulation(g, Width())
		if err != nil {
			t.Fatal(err)
		}
		if float64(hw) < exact.Cost {
			t.Fatalf("heuristic width %d beats exact %v", hw, exact.Cost)
		}
		h := HeuristicTriangulation(g)
		if !chordal.IsTriangulationOf(h, g) {
			t.Fatalf("heuristic triangulation invalid")
		}
	}
}

func TestDiverseTopKFacade(t *testing.T) {
	g := gen.Cycle(6)
	s := NewSolver(g, FillIn())
	div := s.DiverseTopK(3, 10)
	if len(div) != 3 {
		t.Fatalf("diverse = %d", len(div))
	}
}

func TestInferenceFacade(t *testing.T) {
	// Chain A-B with a single pairwise factor; check Z and a marginal.
	m := NewFactorModel([]int{2, 2})
	if _, err := m.AddFactor([]int{0, 1}, []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	g := NewGraph(2)
	g.AddEdge(0, 1)
	r, err := MinimumTriangulation(g, StateSpace([]int{2, 2}))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildJunctionTree(m, r.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Z() != 10 {
		t.Fatalf("Z = %v, want 10", tree.Z())
	}
	marg, err := tree.Marginal(0)
	if err != nil {
		t.Fatal(err)
	}
	if marg[0] != 0.3 || marg[1] != 0.7 {
		t.Fatalf("marginal = %v", marg)
	}
}

func TestCSPFacade(t *testing.T) {
	p := NewCSP([]int{2, 2, 2})
	for _, e := range [][2]int{{0, 1}, {1, 2}} {
		p.AllowFunc(e[0], e[1], func(a, b int) bool { return a != b })
	}
	r, err := MinimumTriangulation(p.ConstraintGraph(), Width())
	if err != nil {
		t.Fatal(err)
	}
	count, err := p.Count(r.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("2-colorings of P3 = %d, want 2", count)
	}
	assign, ok, err := p.Solve(r.Tree)
	if err != nil || !ok {
		t.Fatalf("solve: %v %v", ok, err)
	}
	if assign[0] == assign[1] || assign[1] == assign[2] {
		t.Fatalf("invalid solution %v", assign)
	}
}

func TestParallelFacade(t *testing.T) {
	g := gen.Cycle(6)
	s := NewSolver(g, FillIn())
	e := s.EnumerateParallel(3)
	count := 0
	for {
		if _, ok := e.Next(); !ok {
			break
		}
		count++
	}
	if count != 14 {
		t.Fatalf("parallel C6 = %d results", count)
	}
}
