// Package rankedtriang is a Go implementation of "Ranked Enumeration of
// Minimal Triangulations" (Ravid, Medini, Kimelfeld; PODS 2019): it
// enumerates the minimal triangulations of a graph — equivalently, its
// proper tree decompositions — by increasing cost, with polynomial delay
// for polynomial-time split-monotone bag costs on graphs with polynomially
// many minimal separators (and, via a width bound, on arbitrary graphs).
//
// # Quick start
//
//	g := rankedtriang.NewGraph(4)
//	g.AddEdge(0, 1)
//	g.AddEdge(1, 2)
//	g.AddEdge(2, 3)
//	g.AddEdge(3, 0)
//	solver := rankedtriang.NewSolver(g, rankedtriang.Width())
//	enum := solver.Enumerate()
//	for r, ok := enum.Next(); ok; r, ok = enum.Next() {
//		fmt.Println(r.Tree, r.Cost)
//	}
//
// The package re-exports the building blocks as type aliases, so the full
// machinery (graphs, vertex sets, tree decompositions, cost functions,
// hypergraphs, the CKK baseline) is reachable from this single import.
package rankedtriang

import (
	"context"
	"io"

	"repro/internal/atoms"
	"repro/internal/ckk"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/csp"
	"repro/internal/graph"
	"repro/internal/heur"
	"repro/internal/hyper"
	"repro/internal/jt"
	"repro/internal/service"
	"repro/internal/td"
	"repro/internal/triang"
	"repro/internal/vset"
)

// Graph is an undirected graph over a fixed vertex universe.
type Graph = graph.Graph

// VertexSet is a set of vertices of a Graph.
type VertexSet = vset.Set

// Decomposition is a tree decomposition (a tree of bags).
type Decomposition = td.Decomposition

// Cost is a split-monotone bag cost κ(G, T) (Section 3 of the paper).
type Cost = cost.Cost

// Constraints is an inclusion/exclusion constraint pair [I, X] over
// minimal separators (Section 6.1).
type Constraints = cost.Constraints

// Solver is the initialized triangulation engine: it owns the minimal
// separators, potential maximal cliques and block structure of a graph and
// answers optimization and enumeration queries over them.
type Solver = core.Solver

// Enumerator streams minimal triangulations by increasing cost
// (RankedTriang, Figure 4 of the paper).
type Enumerator = core.Enumerator

// TDEnumerator streams proper tree decompositions by increasing cost
// (Proposition 6.1).
type TDEnumerator = core.TDEnumerator

// Result is one minimal triangulation: the chordal supergraph H, a clique
// tree of it, its bags, minimal separators, and cost.
type Result = core.Result

// Hypergraph is a hypergraph with a primal graph and edge-cover based
// costs (hypertree width, fractional hypertree width).
type Hypergraph = hyper.Hypergraph

// ErrNoTriangulation is returned when no minimal triangulation satisfies
// the given width bound or constraints.
var ErrNoTriangulation = core.ErrNoTriangulation

// NewGraph returns a graph over the vertex universe {0..n-1} with no edges.
func NewGraph(n int) *Graph { return graph.New(n) }

// NewVertexSet returns the set of the given vertices over universe n.
func NewVertexSet(n int, vertices ...int) VertexSet { return vset.Of(n, vertices...) }

// ReadEdgeList parses a whitespace-separated edge list ("u v" per line).
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// ReadDIMACS parses a DIMACS graph-coloring file ("p edge", "e u v").
func ReadDIMACS(r io.Reader) (*Graph, error) { return graph.ReadDIMACS(r) }

// ReadPACE parses a PACE treewidth ".gr" file.
func ReadPACE(r io.Reader) (*Graph, error) { return graph.ReadPACE(r) }

// ReadGraph6 parses graphs in nauty's graph6 format (one per line).
func ReadGraph6(r io.Reader) ([]*Graph, error) { return graph.ReadGraph6(r) }

// NewHypergraph returns a hypergraph over n vertices.
func NewHypergraph(n int) *Hypergraph { return hyper.New(n) }

// Width is the classic width cost: maximum bag size minus one.
func Width() Cost { return cost.Width{} }

// FillIn is the classic fill-in cost: the number of added edges.
func FillIn() Cost { return cost.FillIn{} }

// WidthThenFill orders by width first and breaks ties by fill-in.
func WidthThenFill() Cost { return cost.LexWidthFill{} }

// StateSpace is the total junction-tree table size: the sum over bags of
// the product of member domain sizes (2 when domains is nil) — the
// paper's "sum over exponents of bag cardinalities" cost.
func StateSpace(domains []int) Cost { return cost.TotalStateSpace{Domain: domains} }

// BagWeightCost builds a Furuse–Yamazaki width_c cost from a bag scoring
// function, which must be monotone under bag inclusion.
func BagWeightCost(name string, weight func(g *Graph, bag VertexSet) float64) Cost {
	return cost.WeightedWidth{CostName: name, BagWeight: weight}
}

// EdgeWeightCost builds a Furuse–Yamazaki fill_c cost from a fill-edge
// pricing function.
func EdgeWeightCost(name string, weight func(u, v int) float64) Cost {
	return cost.WeightedFill{CostName: name, EdgeWeight: weight}
}

// NewSolver initializes the solver for g under the given cost: it
// computes the minimal separators, potential maximal cliques and full
// blocks once; all queries share them.
//
// When the graph splits into several clique-separator atoms and the cost
// folds across them (all pure max- and sum-type built-ins do), the solver
// automatically routes through the atom decomposition: one sub-solver per
// atom, initialized lazily and in parallel, with the per-atom ranked
// streams merged into one globally cost-ordered stream. Initialization
// and delay then depend on the largest atom instead of the whole graph.
// Use SolverOptions.NoDecompose to force the monolithic solver.
func NewSolver(g *Graph, c Cost) *Solver { return core.NewSolver(g, c) }

// SolverOptions configures NewSolverWithOptions: an optional width bound
// and the NoDecompose ablation knob that forces the monolithic
// whole-graph solver.
type SolverOptions = core.Options

// NewSolverWithOptions is the fully configurable solver constructor.
func NewSolverWithOptions(ctx context.Context, g *Graph, c Cost, opts SolverOptions) (*Solver, error) {
	return core.New(ctx, g, c, opts)
}

// AtomDecomposition is the clique-minimal-separator decomposition of a
// graph: its atoms (maximal connected subgraphs without a clique
// separator) and the clique minimal separators between them.
type AtomDecomposition = atoms.Decomposition

// DecomposeAtoms computes the atom decomposition of g (Tarjan; Berry–
// Bordat). Minimal triangulations factor across it: every minimal
// triangulation of g is the union of independent minimal triangulations
// of the atoms, which is what lets the solver enumerate per atom and
// merge ranked streams.
func DecomposeAtoms(g *Graph) *AtomDecomposition { return atoms.Decompose(g) }

// NewSolverContext is NewSolver with cancellation: initialization aborts
// with ctx's error when ctx is cancelled or times out. Long-lived callers
// (the service layer, batch pipelines) use it so abandoned work stops
// burning CPU.
func NewSolverContext(ctx context.Context, g *Graph, c Cost) (*Solver, error) {
	return core.NewSolverContext(ctx, g, c)
}

// NewBoundedSolver initializes a solver restricted to triangulations of
// width at most b (Theorem 4.5 — no poly-MS assumption needed for the
// guarantee).
func NewBoundedSolver(g *Graph, c Cost, b int) *Solver { return core.NewBoundedSolver(g, c, b) }

// MinimumTriangulation is a one-shot convenience: it computes a
// minimum-cost minimal triangulation of g under c.
func MinimumTriangulation(g *Graph, c Cost) (*Result, error) {
	return core.NewSolver(g, c).MinTriang(nil)
}

// TopK returns up to k minimal triangulations of g by increasing cost.
func TopK(g *Graph, c Cost, k int) []*Result {
	return core.NewSolver(g, c).TopK(k)
}

// TopKContext is TopK with cancellation and parallel Lawler–Murty branch
// solving: it stops early (possibly short of k results) once ctx is
// cancelled, and solves branch optimizations with the given worker count
// (1 means sequential; zero or negative means GOMAXPROCS). The emitted
// prefix is identical to the sequential TopK.
func TopKContext(ctx context.Context, g *Graph, c Cost, k, workers int) ([]*Result, error) {
	s, err := core.NewSolverContext(ctx, g, c)
	if err != nil {
		return nil, err
	}
	return s.TopKContext(ctx, k, workers), nil
}

// CKKResult is one triangulation from the baseline enumeration.
type CKKResult = ckk.Result

// CKKEnumerator is the Carmeli–Kenig–Kimelfeld baseline: complete,
// incremental polynomial time, no order guarantee.
type CKKEnumerator = ckk.Enumerator

// NewCKK starts the baseline enumeration of all minimal triangulations of
// g (unordered). A nil triangulator selects LB-Triang, as in the paper's
// experiments.
func NewCKK(g *Graph) *CKKEnumerator { return ckk.New(g, nil) }

// Backend is a pluggable enumeration engine over one (graph, cost) pair:
// the ranked-exact DP solver and the CKK separator-graph MIS adapters all
// implement it, producing the same Result stream shape, so the serving
// tier (shared streams, sessions, NDJSON fan-out) is backend-agnostic.
type Backend = core.Backend

// BackendKind names an enumeration strategy ("dp", "mis", "mis-scored",
// "auto").
type BackendKind = core.BackendKind

// Backend kinds (see core.BackendKind).
const (
	BackendAuto      = core.BackendAuto
	BackendDP        = core.BackendDP
	BackendMIS       = core.BackendMIS
	BackendMISScored = core.BackendMISScored
)

// MISBackendOptions tunes NewMISBackend (width bound post-filter,
// heuristic best-first scoring).
type MISBackendOptions = core.MISOptions

// NewMISBackend returns the Carmeli–Kenig–Kimelfeld separator-graph MIS
// backend for (g, c): no initialization cost, incremental polynomial
// time, results unordered (or heuristically best-first with
// MISBackendOptions.Scored).
func NewMISBackend(g *Graph, c Cost, opts MISBackendOptions) Backend {
	return core.NewMISBackend(g, c, opts)
}

// SelectBackend resolves BackendAuto for a graph by probing its minimal
// separator count under a budget (<= 0 selects core.DefaultProbeBudget):
// the ranked DP below the budget, MIS above. An explicit kind wins.
func SelectBackend(ctx context.Context, g *Graph, kind BackendKind, probeBudget int) BackendKind {
	return core.SelectBackend(ctx, g, kind, probeBudget)
}

// FactorModel is a discrete factor model for junction-tree inference.
type FactorModel = jt.Model

// JunctionTree is a calibrated junction tree answering marginal and
// partition-function queries.
type JunctionTree = jt.JunctionTree

// NewFactorModel creates a factor model with the given per-variable
// cardinalities.
func NewFactorModel(card []int) *FactorModel { return jt.NewModel(card) }

// BuildJunctionTree assigns the model's factors to the decomposition's
// bags and calibrates with sum-product message passing. The decomposition
// typically comes from a Result produced under the StateSpace cost, which
// is exactly the tree's total table size.
func BuildJunctionTree(m *FactorModel, d *Decomposition) (*JunctionTree, error) {
	return jt.Build(m, d)
}

// CSP is a binary constraint-satisfaction problem solvable by dynamic
// programming over a tree decomposition of its constraint graph.
type CSP = csp.Problem

// NewCSP creates a CSP with the given per-variable domain sizes.
func NewCSP(domains []int) *CSP { return csp.NewProblem(domains) }

// FillDistance measures how structurally different two minimal
// triangulations of g are: the size of the symmetric difference of their
// fill sets (0 iff they are the same triangulation). Solver.DiverseTopK
// maximizes it pairwise when assembling a portfolio.
func FillDistance(g *Graph, a, b *Result) int { return core.FillDistance(g, a, b) }

// HeuristicWidth returns the width achieved by the classic min-fill
// greedy elimination heuristic — a fast upper bound to compare the exact
// machinery against.
func HeuristicWidth(g *Graph) int {
	return heur.Width(g, heur.Order(g, heur.MinFill))
}

// HeuristicTriangulation returns a minimal triangulation obtained by
// minimalizing (LB-Triang) the min-fill greedy elimination order — the
// standard fast two-step pipeline, with no optimality or enumeration
// guarantees.
func HeuristicTriangulation(g *Graph) *Graph {
	return triang.LBTriang(g, heur.Order(g, heur.MinFill))
}

// Service is the ranked-enumeration HTTP service: a SolverPool cache, a
// SessionManager of resumable enumeration streams, and the HTTP/JSON API
// (see repro/internal/service's package doc). cmd/rankedtriangd is the
// daemon around it.
type Service = service.Server

// ServiceConfig tunes a Service (cache size, session limits, admission
// concurrency, idle eviction).
type ServiceConfig = service.Config

// SolverPool deduplicates and LRU-caches solver initializations keyed by
// canonical graph fingerprint, cost and width bound.
type SolverPool = service.SolverPool

// SolverKey identifies one cached solver in a SolverPool.
type SolverKey = service.SolverKey

// SessionManager parks live enumeration streams behind opaque resume
// tokens with idle eviction.
type SessionManager = service.SessionManager

// NewService returns a ready-to-serve ranked-enumeration HTTP handler.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// NewSolverPool returns a pool caching up to capacity initialized solvers.
func NewSolverPool(capacity int) *SolverPool { return service.NewSolverPool(capacity) }

// Fingerprint returns the canonical hash of the labeled graph — the cache
// key the service layer uses to deduplicate solver initializations.
func Fingerprint(g *Graph) string { return g.Fingerprint() }
