package rankedtriang

import (
	"strings"
	"testing"
)

func c4() *Graph {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	return g
}

func TestQuickstartFlow(t *testing.T) {
	solver := NewSolver(c4(), Width())
	enum := solver.Enumerate()
	count := 0
	for {
		r, ok := enum.Next()
		if !ok {
			break
		}
		count++
		if r.Cost != 2 {
			t.Fatalf("C4 width = %v, want 2", r.Cost)
		}
		if err := r.Tree.Validate(r.H); err != nil {
			t.Fatalf("invalid tree: %v", err)
		}
	}
	if count != 2 {
		t.Fatalf("C4 has %d minimal triangulations, want 2", count)
	}
}

func TestOneShotHelpers(t *testing.T) {
	r, err := MinimumTriangulation(c4(), FillIn())
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 1 {
		t.Fatalf("C4 min fill = %v", r.Cost)
	}
	top := TopK(c4(), FillIn(), 5)
	if len(top) != 2 {
		t.Fatalf("TopK = %d results", len(top))
	}
}

func TestBoundedSolverFacade(t *testing.T) {
	s := NewBoundedSolver(c4(), Width(), 2)
	r, err := s.MinTriang(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tree.Width() != 2 {
		t.Fatalf("width = %d", r.Tree.Width())
	}
	// Width bound 1 is infeasible for C4.
	s = NewBoundedSolver(c4(), Width(), 1)
	if _, err := s.MinTriang(nil); err != ErrNoTriangulation {
		t.Fatalf("want ErrNoTriangulation, got %v", err)
	}
}

func TestConstraintsFacade(t *testing.T) {
	g := c4()
	s := NewSolver(g, FillIn())
	diag := NewVertexSet(4, 0, 2)
	r, err := s.MinTriang((&Constraints{}).WithInclude(diag))
	if err != nil {
		t.Fatal(err)
	}
	if !r.H.HasEdge(0, 2) {
		t.Fatalf("inclusion constraint ignored")
	}
	r, err = s.MinTriang((&Constraints{}).WithExclude(diag))
	if err != nil {
		t.Fatal(err)
	}
	if r.H.HasEdge(0, 2) {
		t.Fatalf("exclusion constraint ignored")
	}
}

func TestCostConstructors(t *testing.T) {
	g := c4()
	for _, c := range []Cost{Width(), FillIn(), WidthThenFill(), StateSpace(nil),
		BagWeightCost("bw", func(_ *Graph, b VertexSet) float64 { return float64(b.Len()) }),
		EdgeWeightCost("ew", func(u, v int) float64 { return 1 }),
	} {
		if _, err := MinimumTriangulation(g, c); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
	}
}

func TestReadersFacade(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("a b\nb c\n"))
	if err != nil || g.NumEdges() != 2 {
		t.Fatalf("edge list: %v %v", g, err)
	}
	g, err = ReadDIMACS(strings.NewReader("p edge 3 2\ne 1 2\ne 2 3\n"))
	if err != nil || g.NumVertices() != 3 {
		t.Fatalf("dimacs: %v %v", g, err)
	}
	g, err = ReadPACE(strings.NewReader("p tw 3 2\n1 2\n2 3\n"))
	if err != nil || g.NumVertices() != 3 {
		t.Fatalf("pace: %v %v", g, err)
	}
}

func TestCKKFacade(t *testing.T) {
	e := NewCKK(c4())
	count := 0
	for {
		r, ok := e.Next()
		if !ok {
			break
		}
		if r.H == nil || len(r.Seps) == 0 {
			t.Fatalf("bad CKK result")
		}
		count++
	}
	if count != 2 {
		t.Fatalf("CKK found %d, want 2", count)
	}
}

func TestHypergraphFacade(t *testing.T) {
	h := NewHypergraph(3)
	h.AddEdge(0, 1)
	h.AddEdge(1, 2)
	h.AddEdge(2, 0)
	g := h.Primal()
	r, err := MinimumTriangulation(g, h.HypertreeWidthCost())
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 2 {
		t.Fatalf("hypertree width = %v", r.Cost)
	}
}

func TestProperTDFacade(t *testing.T) {
	s := NewSolver(c4(), Width())
	e := s.EnumerateProperTDs()
	count := 0
	for {
		d, r, ok := e.Next()
		if !ok {
			break
		}
		if d.Width() != 2 || r == nil {
			t.Fatalf("bad proper TD")
		}
		count++
	}
	// Each of C4's two triangulations has 2 maximal cliques sharing the
	// diagonal, hence a unique clique tree: 2 proper TDs.
	if count != 2 {
		t.Fatalf("proper TDs = %d, want 2", count)
	}
}
