// Command experiments regenerates the tables and figures of the paper's
// evaluation (Section 7) on the synthetic dataset corpus and prints them
// in the paper's layout. Budgets scale the whole study: the paper used
// 60 s / 30 min / 30 min on a 48-core server; the defaults here finish in
// about a minute on a laptop and preserve every qualitative shape.
//
// Usage:
//
//	experiments                 # everything
//	experiments -only table2    # one experiment: fig5|fig6|fig7|table2|fig8|fig9
//	experiments -enum-budget 5s # closer to the paper's scale
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/cost"
	"repro/internal/exp"
	"repro/internal/gen"
)

func main() {
	var (
		only       = flag.String("only", "", "run a single experiment: fig5|fig6|fig7|table2|fig8|fig9")
		seed       = flag.Int64("seed", 42, "dataset seed")
		msBudget   = flag.Duration("ms-budget", 500*time.Millisecond, "minimal separator budget per graph")
		pmcBudget  = flag.Duration("pmc-budget", time.Second, "PMC budget per graph")
		enumBudget = flag.Duration("enum-budget", 500*time.Millisecond, "enumeration budget per run")
	)
	flag.Parse()

	want := func(name string) bool { return *only == "" || *only == name }
	out := os.Stdout

	var tract []exp.TractabilityResult
	datasets := exp.Datasets(*seed)

	if want("fig5") || want("fig6") || want("table2") {
		rows, results := exp.Figure5(datasets, *msBudget, *pmcBudget)
		tract = results
		if want("fig5") {
			fmt.Fprintf(out, "== Figure 5: tractability of MinSep/PMC (budgets %v / %v)\n\n", *msBudget, *pmcBudget)
			exp.RenderFigure5(out, rows)
			fmt.Fprintln(out)
		}
		if want("fig6") {
			fmt.Fprintln(out, "== Figure 6: #minimal separators vs #edges (MS-tractable graphs)")
			fmt.Fprintln(out)
			exp.RenderFigure6(out, exp.Figure6(results))
			fmt.Fprintln(out)
		}
	}

	if want("fig7") {
		fmt.Fprintln(out, "== Figure 7: minimal separators of G(n,p)")
		fmt.Fprintln(out)
		pts := exp.Figure7(*seed, []int{20, 30, 50, 70},
			[]float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.65, 0.8, 0.95}, 3, *msBudget)
		exp.RenderFigure7(out, pts)
		fmt.Fprintln(out)
	}

	if want("table2") {
		fmt.Fprintf(out, "== Table 2: RankedTriang vs CKK (%v per run, width & fill)\n\n", *enumBudget)
		rows := exp.Table2(datasets, tract, *enumBudget)
		exp.RenderTable2(out, rows)
		fmt.Fprintln(out)
	}

	if want("fig8") {
		fmt.Fprintln(out, "== Figure 8: delay and quality on G(n,p)")
		fmt.Fprintln(out)
		pts := exp.Figure8(*seed, []int{20}, []float64{0.1, 0.2, 0.3, 0.45, 0.6, 0.75}, 3, *enumBudget)
		exp.RenderFigure8(out, pts)
		fmt.Fprintln(out)
	}

	if want("fig9") {
		fmt.Fprintln(out, "== Figure 9: case studies (results and widths over time)")
		fmt.Fprintln(out)
		rng := rand.New(rand.NewSource(*seed))
		csp := gen.CSPGrid(rng, 4, 4, 5)
		obj := gen.ConnectedGNP(rng, 17, 0.3)
		rankedCSP := exp.RunRanked(csp, cost.Width{}, *enumBudget)
		ckkCSP := exp.RunCKK(csp, *enumBudget)
		exp.RenderFigure9(out, "csp-like (myciel-style)",
			exp.Figure9(rankedCSP, *enumBudget/10, 10), exp.Figure9(ckkCSP, *enumBudget/10, 10))
		fmt.Fprintln(out)
		rankedObj := exp.RunRanked(obj, cost.Width{}, *enumBudget)
		ckkObj := exp.RunCKK(obj, *enumBudget)
		exp.RenderFigure9(out, "object-detection-like",
			exp.Figure9(rankedObj, *enumBudget/10, 10), exp.Figure9(ckkObj, *enumBudget/10, 10))
		fmt.Fprintln(out)
	}
}
