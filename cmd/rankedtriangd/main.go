// Command rankedtriangd serves ranked enumeration of minimal
// triangulations over HTTP/JSON: clients submit a graph plus a cost
// function and stream minimal triangulations by increasing cost, paging
// through results with opaque resume tokens. See the package doc of
// repro/internal/service for the full API.
//
// Usage:
//
//	rankedtriangd -addr :8372
//
//	curl -s localhost:8372/v1/enumerate -d '{"graph6": "DqK", "cost": "fill", "page_size": 2}'
//	curl -s localhost:8372/v1/sessions/$TOKEN/next?page_size=2
//	curl -s localhost:8372/v1/stats
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// drain, live enumeration sessions are cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof" // side listener only; the service handler uses its own mux
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/service"
)

func main() {
	var (
		addr          = flag.String("addr", ":8372", "listen address")
		cacheSize     = flag.Int("cache-size", 64, "solver pool capacity (initialized graphs kept hot)")
		maxSessions   = flag.Int("max-sessions", 256, "maximum live enumeration sessions")
		idleTimeout   = flag.Duration("idle-timeout", 5*time.Minute, "evict sessions idle longer than this")
		pageSize      = flag.Int("page-size", 10, "default results per page")
		concurrency   = flag.Int("concurrency", 8, "max requests admitted into solving at once")
		maxVertices   = flag.Int("max-vertices", 128, "reject graphs larger than this")
		maxBody       = flag.Int64("max-body", 16<<20, "request body byte cap (413 past it); batch deployments raise it")
		maxBatch      = flag.Int("max-batch", 256, "maximum problems one /v1/batch request may carry")
		initTimeout   = flag.Duration("init-timeout", 60*time.Second, "per-graph solver initialization budget")
		streamTimeout = flag.Duration("stream-timeout", 5*time.Minute, "total lifetime budget of one NDJSON stream")
		streamBudget  = flag.Int64("stream-budget", 64<<20, "byte budget for shared materialized result buffers (LRU-evicted past it)")
		solveWorkers  = flag.Int("solve-workers", 0, "goroutines solving Lawler–Murty branches per stream Next; 0 = GOMAXPROCS, 1 = sequential (identical output either way)")
		prefetchAhead = flag.Int("prefetch-ahead", 0, "ranks the speculative producer runs ahead of the fastest cursor per stream; 0 = default (64), negative disables prefetch")
		prefetchBytes = flag.Int64("prefetch-bytes", 0, "per-stream byte ceiling on speculative lookahead; 0 = default (8 MiB), negative = no ceiling")
		pprofAddr     = flag.String("pprof", "", "serve net/http/pprof on this side listener (e.g. localhost:6060); empty disables")
		fullResolve   = flag.Bool("full-resolve", false, "disable the incremental DP: every branch re-solves from scratch (A/B debugging; identical output)")
		noDecompose   = flag.Bool("no-decompose", false, "disable the clique-separator atom decomposition: always solve the whole graph monolithically (A/B debugging)")
		noCanon       = flag.Bool("no-canon", false, "disable isomorphism-canonical cache keys: isomorphic submissions with different vertex numberings no longer share solvers/streams (A/B debugging; identical responses)")
		backend       = flag.String("backend", "dp", "default enumeration backend: dp (ranked-exact), mis (unordered, no init cost), mis-scored (heuristic best-first) or auto (separator probe); overridable per request via ?backend=")
		probeBudget   = flag.Int("backend-probe-budget", core.DefaultProbeBudget, "separator budget the auto backend policy probes under before falling back to mis")
		orbits        = flag.Bool("orbits", false, "orbit-reduced enumeration by default: one representative per automorphism orbit, stamped with orbit_size; overridable per request via ?orbits=")
		drain         = flag.Duration("drain", 10*time.Second, "graceful shutdown budget")
	)
	flag.Parse()

	if _, ok := core.ParseBackendKind(*backend); !ok {
		log.Fatalf("rankedtriangd: unknown -backend %q (want auto, dp, mis or mis-scored)", *backend)
	}

	svc := service.New(service.Config{
		CacheSize:          *cacheSize,
		MaxSessions:        *maxSessions,
		IdleTimeout:        *idleTimeout,
		PageSize:           *pageSize,
		MaxConcurrent:      *concurrency,
		MaxVertices:        *maxVertices,
		MaxBodyBytes:       *maxBody,
		MaxBatchItems:      *maxBatch,
		InitTimeout:        *initTimeout,
		StreamTimeout:      *streamTimeout,
		StreamBudgetBytes:  *streamBudget,
		SolveWorkers:       *solveWorkers,
		PrefetchAhead:      *prefetchAhead,
		PrefetchBytes:      *prefetchBytes,
		FullResolve:        *fullResolve,
		NoDecompose:        *noDecompose,
		NoCanon:            *noCanon,
		DefaultBackend:     *backend,
		BackendProbeBudget: *probeBudget,
		DefaultOrbits:      *orbits,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc,
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *pprofAddr != "" {
		// The profiling endpoints live on a dedicated listener — typically
		// bound to localhost — so they are never reachable through the
		// public service port. net/http/pprof registers on the default mux,
		// which only this listener serves (the service has its own).
		go func() {
			log.Printf("rankedtriangd: pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("rankedtriangd: pprof listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("rankedtriangd listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("rankedtriangd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("rankedtriangd: shutting down (draining up to %v)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("rankedtriangd: shutdown: %v", err)
	}
	svc.Close()
	log.Printf("rankedtriangd: bye")
}
