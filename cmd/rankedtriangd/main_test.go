package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/service"
)

// TestDaemonLifecycle boots the daemon's serving stack on a real TCP
// listener and drives the acceptance scenario end to end: enumerate →
// resume → exhausted over HTTP, a cache hit on re-submission of the same
// graph, and a cancelled request leaving no live session behind.
func TestDaemonLifecycle(t *testing.T) {
	svc := service.New(service.Config{PageSize: 2})
	httpSrv := &http.Server{Handler: svc}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go httpSrv.Serve(ln)
	t.Cleanup(func() {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
		svc.Close()
	})
	base := "http://" + ln.Addr().String()

	var buf bytes.Buffer
	if err := graph.WriteGraph6(&buf, gen.Cycle(5)); err != nil {
		t.Fatal(err)
	}
	g6 := strings.TrimSpace(buf.String())
	body := fmt.Sprintf(`{"graph6": %q, "page_size": 2}`, g6)

	// Enumerate: first page plus resume token.
	var first service.EnumerateResponse
	postJSON(t, base+"/v1/enumerate", body, &first)
	if first.Session == "" || first.Done || len(first.Results) != 2 {
		t.Fatalf("bad first page: %+v", first)
	}

	// Resume until exhausted; C5 has exactly 5 minimal triangulations.
	total := len(first.Results)
	for i := 0; ; i++ {
		if i > 5 {
			t.Fatal("did not exhaust")
		}
		var page service.EnumerateResponse
		resp, err := http.Get(base + "/v1/sessions/" + first.Session + "/next")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("next: %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		total += len(page.Results)
		if page.Done {
			break
		}
	}
	if total != 5 {
		t.Fatalf("want 5 results, got %d", total)
	}
	if resp, err := http.Get(base + "/v1/sessions/" + first.Session + "/next"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("exhausted session should 404, got %d", resp.StatusCode)
		}
	}

	// Re-submission of the same graph hits the solver cache.
	var second service.EnumerateResponse
	postJSON(t, base+"/v1/enumerate", body, &second)
	if !second.CacheHit {
		t.Fatal("re-submission should be served from the solver cache")
	}

	// A cancelled request leaves no live session behind.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req, _ := http.NewRequestWithContext(ctx, "POST", base+"/v1/enumerate", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("cancelled request should error")
	}
	// The second enumerate above holds the only expected live session.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var stats service.StatsResponse
		resp, err := http.Get(base + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if stats.Sessions.Live <= 1 {
			if stats.Pool.Hits < 1 {
				t.Fatalf("stats should record the cache hit: %+v", stats.Pool)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancelled request leaked a session: %+v", stats.Sessions)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func postJSON(t *testing.T, url, body string, out any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestPprofSideListener verifies the -pprof wiring: the blank
// net/http/pprof import registers the profiling endpoints on the default
// mux, which only the side listener serves — the service handler (its
// own mux) must not expose them.
func TestPprofSideListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	side := &http.Server{Handler: http.DefaultServeMux}
	go side.Serve(ln)
	t.Cleanup(func() { side.Close() })

	resp, err := http.Get("http://" + ln.Addr().String() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof side listener: status %d", resp.StatusCode)
	}

	// The service mux must not serve profiling endpoints.
	svc := service.New(service.Config{})
	defer svc.Close()
	svcLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	svcSrv := &http.Server{Handler: svc}
	go svcSrv.Serve(svcLn)
	t.Cleanup(func() { svcSrv.Close() })
	resp, err = http.Get("http://" + svcLn.Addr().String() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("profiling endpoints must not be reachable through the service port")
	}
}
