package main

import (
	"strings"
	"testing"
)

func TestLoadGraphVariants(t *testing.T) {
	g, err := loadGraph("", "pace", "house")
	if err != nil || g.NumVertices() != 5 {
		t.Fatalf("named: %v %v", g, err)
	}
	if _, err := loadGraph("", "pace", ""); err == nil {
		t.Fatalf("empty input accepted")
	}
	if _, err := loadGraph("", "bogus", "house"); err != nil {
		t.Fatalf("named path should ignore format: %v", err)
	}
}

func TestVerdict(t *testing.T) {
	if v := verdict(0.5); !strings.Contains(v, "comfortable") {
		t.Fatalf("verdict(0.5) = %q", v)
	}
	if v := verdict(10); !strings.Contains(v, "stressed") {
		t.Fatalf("verdict(10) = %q", v)
	}
}
