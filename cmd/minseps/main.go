// Command minseps reports poly-MS statistics for a graph: the number of
// minimal separators, potential maximal cliques and full blocks, under
// optional time budgets — the per-graph version of the paper's Figure 5/6
// study.
//
// Usage:
//
//	minseps -named queen4 -ms-budget 1s -pmc-budget 5s
//	minseps -file model.gr -format pace -verbose
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/minsep"
	"repro/internal/pmc"
)

func main() {
	var (
		file      = flag.String("file", "", "input graph file")
		format    = flag.String("format", "pace", "file format: edges|dimacs|pace")
		named     = flag.String("named", "", "use a named graph instead of a file")
		msBudget  = flag.Duration("ms-budget", time.Minute, "budget for minimal separator generation")
		pmcBudget = flag.Duration("pmc-budget", 30*time.Minute, "budget for PMC generation")
		verbose   = flag.Bool("verbose", false, "print every separator")
	)
	flag.Parse()

	g, err := loadGraph(*file, *format, *named)
	if err != nil {
		fmt.Fprintln(os.Stderr, "minseps:", err)
		os.Exit(1)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	start := time.Now()
	seps, ok := minsep.AllWithDeadline(g, start.Add(*msBudget))
	if !ok {
		fmt.Printf("minimal separators: NOT TERMINATED within %v (≥ %d found)\n", *msBudget, len(seps))
		os.Exit(2)
	}
	fmt.Printf("minimal separators: %d (%.3fs)\n", len(seps), time.Since(start).Seconds())
	if *verbose {
		for _, s := range seps {
			fmt.Printf("  %s (size %d)\n", s, s.Len())
		}
	}
	fmt.Printf("full blocks: %d\n", len(pmc.FullBlocks(g, seps)))

	start = time.Now()
	pmcs, err := pmc.AllWithDeadline(g, start.Add(*pmcBudget))
	if err != nil {
		fmt.Printf("PMCs: NOT TERMINATED within %v\n", *pmcBudget)
		os.Exit(3)
	}
	fmt.Printf("PMCs: %d (%.3fs)\n", len(pmcs), time.Since(start).Seconds())
	ratio := float64(len(seps)) / float64(g.NumEdges())
	fmt.Printf("minseps/edges: %.2f (poly-MS %s)\n", ratio, verdict(ratio))
}

func verdict(r float64) string {
	if r <= 2 {
		return "looks comfortable"
	}
	return "is stressed on this graph"
}

func loadGraph(file, format, named string) (*graph.Graph, error) {
	if named != "" {
		return gen.Named(named)
	}
	if file == "" {
		return nil, fmt.Errorf("either -file or -named is required")
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch format {
	case "edges":
		return graph.ReadEdgeList(f)
	case "dimacs":
		return graph.ReadDIMACS(f)
	case "pace":
		return graph.ReadPACE(f)
	}
	return nil, fmt.Errorf("unknown format %q", format)
}
