package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadGraphFormats(t *testing.T) {
	cases := []struct {
		format  string
		content string
		n, m    int
	}{
		{"edges", "a b\nb c\n", 3, 2},
		{"dimacs", "p edge 3 2\ne 1 2\ne 2 3\n", 3, 2},
		{"pace", "p tw 4 3\n1 2\n2 3\n3 4\n", 4, 3},
	}
	for _, tc := range cases {
		path := writeTemp(t, "g."+tc.format, tc.content)
		g, err := loadGraph(path, tc.format, "")
		if err != nil {
			t.Fatalf("%s: %v", tc.format, err)
		}
		if g.NumVertices() != tc.n || g.NumEdges() != tc.m {
			t.Fatalf("%s: n=%d m=%d", tc.format, g.NumVertices(), g.NumEdges())
		}
	}
}

func TestLoadGraphNamed(t *testing.T) {
	g, err := loadGraph("", "pace", "petersen")
	if err != nil || g.NumVertices() != 10 {
		t.Fatalf("named load: %v %v", g, err)
	}
	if _, err := loadGraph("", "pace", ""); err == nil {
		t.Fatalf("missing input accepted")
	}
	if _, err := loadGraph("/nonexistent", "pace", ""); err == nil {
		t.Fatalf("missing file accepted")
	}
	path := writeTemp(t, "g.x", "p tw 1 0\n")
	if _, err := loadGraph(path, "nope", ""); err == nil {
		t.Fatalf("bad format accepted")
	}
}

func TestPickCost(t *testing.T) {
	g, _ := loadGraph("", "pace", "bull")
	for _, name := range []string{"width", "fill", "lex", "statespace"} {
		c, err := pickCost(name, g)
		if err != nil || c == nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := pickCost("bogus", g); err == nil {
		t.Fatalf("bogus cost accepted")
	}
}

func TestNameSet(t *testing.T) {
	g, _ := loadGraph("", "pace", "bull")
	s := g.Vertices()
	out := nameSet(g, s)
	if !strings.HasPrefix(out, "{") || !strings.HasSuffix(out, "}") {
		t.Fatalf("nameSet = %q", out)
	}
	if strings.Count(out, ",") != 4 {
		t.Fatalf("bull has 5 vertices: %q", out)
	}
}
