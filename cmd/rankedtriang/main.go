// Command rankedtriang enumerates the minimal triangulations (or proper
// tree decompositions) of a graph by increasing cost.
//
// Usage:
//
//	rankedtriang -file graph.gr -format pace -cost width -k 10
//	rankedtriang -named petersen -cost fill -k 5 -proper
//	rankedtriang -file query.edges -format edges -cost lex -bound 3
//
// Formats: edges (whitespace edge list), dimacs (.col), pace (.gr).
// Costs: width, fill, lex (width then fill), statespace.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	var (
		file    = flag.String("file", "", "input graph file")
		format  = flag.String("format", "pace", "file format: edges|dimacs|pace|graph6")
		named   = flag.String("named", "", "use a named graph instead of a file (see -list)")
		list    = flag.Bool("list", false, "list named graphs and exit")
		costArg = flag.String("cost", "width", "ranking cost: width|fill|lex|statespace")
		k       = flag.Int("k", 10, "number of results (0 = all)")
		bound   = flag.Int("bound", -1, "width bound (-1 = unbounded)")
		proper  = flag.Bool("proper", false, "enumerate proper tree decompositions instead of triangulations")
		orbits  = flag.Bool("orbits", false, "emit one representative per automorphism orbit, with its orbit_size")
		stats   = flag.Bool("stats", false, "print initialization statistics")
	)
	flag.Parse()

	if *list {
		for _, n := range gen.NamedGraphs() {
			fmt.Println(n)
		}
		return
	}
	g, err := loadGraph(*file, *format, *named)
	if err != nil {
		fatal(err)
	}
	c, err := pickCost(*costArg, g)
	if err != nil {
		fatal(err)
	}

	var solver *core.Solver
	if *bound >= 0 {
		solver = core.NewBoundedSolver(g, c, *bound)
	} else {
		solver = core.NewSolver(g, c)
	}
	if *stats {
		fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
		fmt.Printf("init: %v (%d minimal separators, %d PMCs, %d full blocks)\n",
			solver.InitDuration, len(solver.MinimalSeparators()), len(solver.PMCs()), solver.NumFullBlocks())
	}

	if *proper {
		if *orbits {
			fatal(fmt.Errorf("-orbits applies to triangulation enumeration, not -proper"))
		}
		enumerateProper(solver, g, *k)
		return
	}
	enumerateTriangulations(solver, g, *k, *orbits)
}

func enumerateTriangulations(solver *core.Solver, g *graph.Graph, k int, orbits bool) {
	var e *core.Enumerator
	if orbits {
		// Every cost this command offers is label-invariant (statespace
		// runs with default uniform domains), so the orbit collapse is
		// always sound here.
		e = core.NewOrbitBackend(solver, nil).EnumerateContext(context.Background())
	} else {
		e = solver.Enumerate()
	}
	for i := 1; k == 0 || i <= k; i++ {
		r, ok := e.Next()
		if !ok {
			break
		}
		line := fmt.Sprintf("#%d cost=%g width=%d fill=%d bags=%d seps=%d",
			i, r.Cost, r.Tree.Width(), r.H.NumEdges()-g.NumEdges(), len(r.Bags), len(r.Seps))
		if orbits {
			line += fmt.Sprintf(" orbit_size=%d", r.OrbitSize)
		}
		fmt.Println(line)
		for _, b := range r.Bags {
			fmt.Printf("   bag %s\n", nameSet(g, b))
		}
	}
}

func enumerateProper(solver *core.Solver, g *graph.Graph, k int) {
	e := solver.EnumerateProperTDs()
	for i := 1; k == 0 || i <= k; i++ {
		d, r, ok := e.Next()
		if !ok {
			break
		}
		fmt.Printf("#%d cost=%g width=%d nodes=%d\n", i, r.Cost, d.Width(), d.NumNodes())
		for x, nb := range d.Adj {
			for _, y := range nb {
				if x < y {
					fmt.Printf("   %s -- %s\n", nameSet(g, d.Bags[x]), nameSet(g, d.Bags[y]))
				}
			}
		}
		if d.NumNodes() == 1 {
			fmt.Printf("   %s\n", nameSet(g, d.Bags[0]))
		}
	}
}

func nameSet(g *graph.Graph, s interface{ Slice() []int }) string {
	out := "{"
	for i, v := range s.Slice() {
		if i > 0 {
			out += ","
		}
		out += g.Name(v)
	}
	return out + "}"
}

func loadGraph(file, format, named string) (*graph.Graph, error) {
	if named != "" {
		return gen.Named(named)
	}
	if file == "" {
		return nil, fmt.Errorf("either -file or -named is required (see -h)")
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch format {
	case "edges":
		return graph.ReadEdgeList(f)
	case "dimacs":
		return graph.ReadDIMACS(f)
	case "pace":
		return graph.ReadPACE(f)
	case "graph6":
		gs, err := graph.ReadGraph6(f)
		if err != nil {
			return nil, err
		}
		if len(gs) == 0 {
			return nil, fmt.Errorf("graph6 file holds no graphs")
		}
		return gs[0], nil
	}
	return nil, fmt.Errorf("unknown format %q", format)
}

func pickCost(name string, g *graph.Graph) (cost.Cost, error) {
	switch name {
	case "width":
		return cost.Width{}, nil
	case "fill":
		return cost.FillIn{}, nil
	case "lex":
		return cost.LexWidthFill{}, nil
	case "statespace":
		return cost.TotalStateSpace{}, nil
	}
	return nil, fmt.Errorf("unknown cost %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rankedtriang:", err)
	os.Exit(1)
}
