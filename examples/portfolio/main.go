// Portfolio selection: the extensions the paper's concluding remarks ask
// for — diversity and parallelism — in one workflow.
//
// A solver pipeline (say, a CSP engine) wants a handful of *structurally
// different* cheap decompositions to probe at runtime, not five
// near-duplicates of the optimum. DiverseTopK greedily picks a portfolio
// from the ranked stream maximizing pairwise fill distance; the ranked
// stream itself is produced with parallel Lawler–Murty branch solving.
//
// Run with: go run ./examples/portfolio
package main

import (
	"fmt"
	"runtime"
	"time"

	rankedtriang "repro"
)

func main() {
	// A queen-graph-like constraint structure: hard enough to have many
	// minimal triangulations, small enough to enumerate instantly.
	g := buildBoard(4)
	fmt.Printf("constraint graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("greedy min-fill heuristic width: %d\n\n", rankedtriang.HeuristicWidth(g))

	solver := rankedtriang.NewSolver(g, rankedtriang.WidthThenFill())
	fmt.Printf("init: %v (%d separators, %d PMCs)\n",
		solver.InitDuration, len(solver.MinimalSeparators()), len(solver.PMCs()))

	// Sequential vs parallel delay over the first results.
	const probe = 40
	seqStart := time.Now()
	seq := solver.Enumerate()
	for i := 0; i < probe; i++ {
		if _, ok := seq.Next(); !ok {
			break
		}
	}
	seqTime := time.Since(seqStart)

	parStart := time.Now()
	par := solver.EnumerateParallel(runtime.NumCPU())
	for i := 0; i < probe; i++ {
		if _, ok := par.Next(); !ok {
			break
		}
	}
	parTime := time.Since(parStart)
	fmt.Printf("first %d results: sequential %v, parallel(%d workers) %v\n\n",
		probe, seqTime, runtime.NumCPU(), parTime)

	// The diverse portfolio.
	portfolio := solver.DiverseTopK(4, 40)
	fmt.Printf("diverse portfolio (%d decompositions):\n", len(portfolio))
	for i, r := range portfolio {
		fmt.Printf("  #%d cost=%g width=%d fill=%d", i+1, r.Cost, r.Tree.Width(),
			r.H.NumEdges()-g.NumEdges())
		if i > 0 {
			fmt.Printf("  (fill distance to optimum: %d)",
				rankedtriang.FillDistance(g, portfolio[0], r))
		}
		fmt.Println()
	}
	fmt.Println("\nfor comparison, the plain top-4 are often near-identical:")
	for i, r := range solver.TopK(4) {
		if i == 0 {
			fmt.Printf("  #1 (optimum)\n")
			continue
		}
		fmt.Printf("  #%d fill distance to optimum: %d\n",
			i+1, rankedtriang.FillDistance(g, portfolio[0], r))
	}
}

// buildBoard makes an n×n rook-ish constraint graph (rows and columns are
// cliques) with one diagonal — a classic CSP structure.
func buildBoard(n int) *rankedtriang.Graph {
	g := rankedtriang.NewGraph(n * n)
	id := func(r, c int) int { return r*n + c }
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			g.SetName(id(r, c), fmt.Sprintf("q%d%d", r, c))
			for c2 := c + 1; c2 < n; c2++ {
				g.AddEdge(id(r, c), id(r, c2))
			}
			for r2 := r + 1; r2 < n; r2++ {
				g.AddEdge(id(r, c), id(r2, c))
			}
		}
	}
	for d := 0; d+1 < n; d++ {
		g.AddEdge(id(d, d), id(d+1, d+1))
	}
	return g
}
