// Quickstart: enumerate the minimal triangulations of the paper's running
// example (Figure 1) by increasing width, then by increasing fill-in.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	rankedtriang "repro"
)

func main() {
	// The graph G of Figure 1(a): u and v each see three "w" vertices,
	// and v has a pendant v'.
	const (
		u  = 0
		v  = 1
		vp = 2
		w1 = 3
		w2 = 4
		w3 = 5
	)
	g := rankedtriang.NewGraph(6)
	for _, w := range []int{w1, w2, w3} {
		g.AddEdge(u, w)
		g.AddEdge(v, w)
	}
	g.AddEdge(v, vp)
	for i, name := range []string{"u", "v", "v'", "w1", "w2", "w3"} {
		g.SetName(i, name)
	}

	fmt.Println("=== ranked by width ===")
	enumerate(g, rankedtriang.Width())

	fmt.Println()
	fmt.Println("=== ranked by fill-in ===")
	enumerate(g, rankedtriang.FillIn())
}

func enumerate(g *rankedtriang.Graph, c rankedtriang.Cost) {
	solver := rankedtriang.NewSolver(g, c)
	fmt.Printf("init: %d minimal separators, %d potential maximal cliques\n",
		len(solver.MinimalSeparators()), len(solver.PMCs()))
	enum := solver.Enumerate()
	for i := 1; ; i++ {
		r, ok := enum.Next()
		if !ok {
			break
		}
		fmt.Printf("#%d %s=%g, width=%d, bags:", i, c.Name(), r.Cost, r.Tree.Width())
		for _, b := range r.Bags {
			fmt.Printf(" {")
			for j, vtx := range b.Slice() {
				if j > 0 {
					fmt.Print(",")
				}
				fmt.Print(g.Name(vtx))
			}
			fmt.Print("}")
		}
		fmt.Println()
	}
}
