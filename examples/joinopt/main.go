// Join optimization: the database workload that motivates the paper.
//
// A conjunctive query's Gaifman graph is decomposed; different proper tree
// decompositions of the same width can differ wildly in execution cost
// because of adhesion skew (Kalinsky et al., "Flexible Caching in Trie
// Joins"). The optimizer therefore streams decompositions ranked by a
// generic cost (width, then fill) and scores each candidate with its own
// specialized cost — here, a simulated adhesion-skew estimate — stopping
// after a fixed exploration budget and keeping the best.
//
// Run with: go run ./examples/joinopt
package main

import (
	"fmt"
	"math/rand"

	rankedtriang "repro"
)

// relation is one atom of the query with simulated per-attribute skew
// statistics (a real system would read these from catalog histograms).
type relation struct {
	name string
	vars []int
}

func main() {
	// A snowflake-ish join over 9 variables:
	//   R(a,b,c) ⋈ S(c,d) ⋈ T(d,e,f) ⋈ U(f,g) ⋈ V(g,h,a) ⋈ W(h,i)
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i"}
	rels := []relation{
		{"R", []int{0, 1, 2}},
		{"S", []int{2, 3}},
		{"T", []int{3, 4, 5}},
		{"U", []int{5, 6}},
		{"V", []int{6, 7, 0}},
		{"W", []int{7, 8}},
	}
	h := rankedtriang.NewHypergraph(len(names))
	for _, r := range rels {
		h.AddEdgeSet(rankedtriang.NewVertexSet(len(names), r.vars...))
	}
	g := h.Primal()
	for i, n := range names {
		g.SetName(i, n)
	}
	fmt.Printf("query Gaifman graph: %d variables, %d co-occurrence edges\n",
		g.NumVertices(), g.NumEdges())

	// Simulated per-variable skew: the app-specific statistic the generic
	// cost knows nothing about.
	rng := rand.New(rand.NewSource(7))
	skew := make([]float64, len(names))
	for i := range skew {
		skew[i] = 1 + 9*rng.Float64()
	}

	solver := rankedtriang.NewSolver(g, rankedtriang.WidthThenFill())
	enum := solver.EnumerateProperTDs()

	const budget = 25 // candidate decompositions to inspect
	bestCost := -1.0
	var bestPlan string
	for i := 0; i < budget; i++ {
		d, r, ok := enum.Next()
		if !ok {
			fmt.Printf("space exhausted after %d candidates\n", i)
			break
		}
		c := adhesionSkewCost(d, skew)
		marker := " "
		if bestCost < 0 || c < bestCost {
			bestCost = c
			bestPlan = fmt.Sprintf("candidate #%d (width %d, generic cost %g)", i+1, d.Width(), r.Cost)
			marker = "*"
		}
		fmt.Printf("%s candidate %2d: width=%d adhesion-skew-cost=%.2f\n", marker, i+1, d.Width(), c)
	}
	fmt.Printf("\nchosen plan: %s with estimated execution cost %.2f\n", bestPlan, bestCost)
	fmt.Println("(the generic ranking surfaces low-width candidates early; the")
	fmt.Println(" specialized cost separates isomorphic-width plans, as in the paper)")
}

// adhesionSkewCost estimates trie-join caching cost: the product of the
// skews across each adhesion (intersection of neighboring bags), summed
// over the decomposition's edges — decompositions whose adhesions avoid
// skewed variables cache better.
func adhesionSkewCost(d *rankedtriang.Decomposition, skew []float64) float64 {
	total := 0.0
	for x, nb := range d.Adj {
		for _, y := range nb {
			if x >= y {
				continue
			}
			prod := 1.0
			d.Bags[x].Intersect(d.Bags[y]).ForEach(func(v int) bool {
				prod *= skew[v]
				return true
			})
			total += prod
		}
	}
	return total
}
