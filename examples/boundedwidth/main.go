// Bounded-width enumeration: Theorem 4.5 of the paper.
//
// When a graph has too many minimal separators for the poly-MS route, the
// bounded variant MinTriangB enumerates only the triangulations of width
// at most b — and the paper proves polynomial delay for constant b with no
// assumption on the separator count. This example enumerates the width-
// bounded triangulations of a grid (grids have Θ(3^k)-style separator
// growth, the classic poly-MS stress case) and shows how the bound prunes
// the space.
//
// Run with: go run ./examples/boundedwidth
package main

import (
	"fmt"

	rankedtriang "repro"
)

func main() {
	const rows, cols = 3, 4
	g := grid(rows, cols)
	fmt.Printf("grid %dx%d: %d vertices, %d edges (treewidth %d)\n\n",
		rows, cols, g.NumVertices(), g.NumEdges(), rows)

	for _, bound := range []int{2, 3, 4} {
		solver := rankedtriang.NewBoundedSolver(g, rankedtriang.FillIn(), bound)
		fmt.Printf("width ≤ %d: %d separators, %d PMCs admitted; ",
			bound, len(solver.MinimalSeparators()), len(solver.PMCs()))
		enum := solver.Enumerate()
		count := 0
		bestFill := -1.0
		for count < 5000 {
			r, ok := enum.Next()
			if !ok {
				break
			}
			if count == 0 {
				bestFill = r.Cost
			}
			count++
		}
		if count == 0 {
			fmt.Printf("no triangulation of width ≤ %d exists\n", bound)
			continue
		}
		fmt.Printf("%d minimal triangulations, best fill-in %g\n", count, bestFill)
	}

	fmt.Println()
	fmt.Println("top 3 width-≤3 triangulations by fill, with their clique trees:")
	solver := rankedtriang.NewBoundedSolver(g, rankedtriang.FillIn(), 3)
	enum := solver.Enumerate()
	for i := 1; i <= 3; i++ {
		r, ok := enum.Next()
		if !ok {
			break
		}
		fmt.Printf("  #%d fill=%g width=%d bags=%d\n", i, r.Cost, r.Tree.Width(), len(r.Bags))
	}
}

func grid(rows, cols int) *rankedtriang.Graph {
	g := rankedtriang.NewGraph(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.SetName(id(r, c), fmt.Sprintf("x%d%d", r, c))
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}
