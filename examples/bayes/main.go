// Probabilistic inference: choosing a junction tree for a Bayesian
// network.
//
// Exact inference cost is governed by the total clique-table size of the
// junction tree — the sum over bags of the product of variable domain
// sizes, the paper's "sum over exponents of bag cardinalities" cost. A
// minimum-width decomposition is not necessarily minimum-table-size when
// domains are heterogeneous; ranking directly by the state-space cost
// finds the right tree, and ranking by width shows the gap.
//
// Run with: go run ./examples/bayes
package main

import (
	"fmt"
	"math/rand"

	rankedtriang "repro"
)

func main() {
	// A small diagnostic network: diseases with large domains, binary
	// symptoms. Edges are the moral graph of the DAG.
	vars := []struct {
		name   string
		domain int
	}{
		{"age", 8}, {"exposure", 3}, {"disease1", 6}, {"disease2", 6},
		{"fever", 2}, {"cough", 2}, {"rash", 2}, {"fatigue", 2},
		{"test1", 3}, {"test2", 3},
	}
	n := len(vars)
	g := rankedtriang.NewGraph(n)
	domains := make([]int, n)
	for i, v := range vars {
		g.SetName(i, v.name)
		domains[i] = v.domain
	}
	edges := [][2]int{
		{0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, // moralized disease parents
		{2, 4}, {2, 5}, {3, 6}, {3, 7}, {2, 7},
		// A chordless diagnostic loop disease1–fever–test1–cough: its
		// triangulations have equal width but very different table sizes.
		{4, 8}, {5, 8}, {6, 9}, {3, 9},
	}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	fmt.Printf("moral graph: %d variables, %d edges\n\n", g.NumVertices(), g.NumEdges())

	// Rank by total junction-tree state space (the inference cost).
	space := rankedtriang.StateSpace(domains)
	solver := rankedtriang.NewSolver(g, space)
	best, err := solver.MinTriang(nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("minimum state-space junction tree: total table size %.0f, width %d\n",
		best.Cost, best.Tree.Width())
	printBags(g, best, domains)

	// Compare against width-based selection: enumerate every minimum-width
	// junction tree and measure the spread of their table sizes — the
	// paper's point that same-width decompositions differ by a lot under
	// the application's real cost.
	wSolver := rankedtriang.NewSolver(g, rankedtriang.Width())
	wEnum := wSolver.Enumerate()
	minWidth := -1
	worst, bestW := 0.0, 0.0
	count := 0
	for {
		r, ok := wEnum.Next()
		if !ok {
			break
		}
		if minWidth == -1 {
			minWidth = r.Tree.Width()
		}
		if r.Tree.Width() > minWidth {
			break // ranked: all later trees are wider
		}
		s := stateSpaceOf(r, domains)
		if count == 0 || s > worst {
			worst = s
		}
		if count == 0 || s < bestW {
			bestW = s
		}
		count++
	}
	fmt.Printf("\nall %d minimum-width (width %d) junction trees span table sizes %.0f … %.0f\n",
		count, minWidth, bestW, worst)
	fmt.Printf("→ picking a min-width tree blindly risks a %.2fx larger table than the\n", worst/best.Cost)
	fmt.Println("  state-space optimum; ranked enumeration under the real cost avoids that.")

	// Stream a few more candidates the way an application would, e.g. to
	// also balance memory locality (simulated here with random tie-break
	// noise).
	fmt.Println("\ntop 5 by state space:")
	rng := rand.New(rand.NewSource(1))
	enum := solver.Enumerate()
	for i := 1; i <= 5; i++ {
		r, ok := enum.Next()
		if !ok {
			break
		}
		fmt.Printf("  #%d table size %.0f, width %d, locality score %.2f\n",
			i, r.Cost, r.Tree.Width(), rng.Float64())
	}

	// And actually run exact inference over the chosen junction tree:
	// random positive potentials per moral edge, then query a marginal.
	model := rankedtriang.NewFactorModel(domains)
	for _, e := range edges {
		size := domains[e[0]] * domains[e[1]]
		vals := make([]float64, size)
		for j := range vals {
			vals[j] = 0.2 + rng.Float64()
		}
		if _, err := model.AddFactor([]int{e[0], e[1]}, vals); err != nil {
			panic(err)
		}
	}
	tree, err := rankedtriang.BuildJunctionTree(model, best.Tree)
	if err != nil {
		panic(err)
	}
	marg, err := tree.Marginal(2) // disease1
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nexact inference over the chosen tree (tables: %d entries):\n", tree.TotalTableSize())
	fmt.Printf("  P(%s) = %s\n", g.Name(2), fmtDist(marg))
}

func fmtDist(d []float64) string {
	out := "["
	for i, p := range d {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.3f", p)
	}
	return out + "]"
}

func printBags(g *rankedtriang.Graph, r *rankedtriang.Result, domains []int) {
	for _, b := range r.Bags {
		size := 1
		names := ""
		b.ForEach(func(v int) bool {
			if names != "" {
				names += ","
			}
			names += g.Name(v)
			size *= domains[v]
			return true
		})
		fmt.Printf("  clique {%s}: table size %d\n", names, size)
	}
}

func stateSpaceOf(r *rankedtriang.Result, domains []int) float64 {
	total := 0.0
	for _, b := range r.Bags {
		size := 1.0
		b.ForEach(func(v int) bool {
			size *= float64(domains[v])
			return true
		})
		total += size
	}
	return total
}
